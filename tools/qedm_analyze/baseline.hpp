/**
 * @file
 * Suppression baselines for qedm_analyze. A baseline file lets a new
 * rule land gated-on-new-findings: every existing finding is
 * recorded once, with a human justification, and only *new* findings
 * fail the build.
 *
 * Entries are fingerprinted by rule + file + token-context +
 * ordinal, where the token-context is the normalized spelling of the
 * flagged line's tokens (string literals collapsed). Line numbers
 * are deliberately absent, so inserting code above a suppressed
 * finding does not invalidate the entry; editing the flagged
 * statement itself does — the suppression is re-reviewed exactly
 * when the code it covers changes. The ordinal disambiguates
 * identical statements in one file (0-based, line order).
 *
 * Staleness is an error in both directions: a finding without an
 * entry fails the run, and an entry without a finding is reported as
 * `stale-baseline` — baselines can only shrink by editing the file,
 * never rot silently.
 */

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "qedm_analyze/rule.hpp"

namespace qedm::analyze {

/** One suppression. */
struct BaselineEntry
{
    std::string rule;
    std::string file;
    std::string context;
    int ordinal = 0;
    std::string justification;
};

struct Baseline
{
    std::vector<BaselineEntry> entries;
};

/** FNV-1a 64 over the fingerprint tuple; hex form is what SARIF's
 *  partialFingerprints and the baseline tooling display. */
std::uint64_t fingerprintHash(const std::string &rule,
                              const std::string &file,
                              const std::string &context,
                              int ordinal);
std::string fingerprintHex(const Finding &f);

/**
 * Load @p path. Returns false and fills @p error on parse errors,
 * unknown versions, or entries missing a justification — a baseline
 * nobody can read is worse than none.
 */
bool loadBaseline(const std::string &path, Baseline &out,
                  std::string &error);

/** Serialize @p findings as a fresh baseline (deterministic order,
 *  justifications left as TODO markers for the author to fill). */
std::string writeBaseline(const std::vector<Finding> &findings);

/**
 * Split @p findings against @p baseline: matched findings are
 * suppressed (counted in @p suppressed), unmatched ones stay, and
 * unmatched baseline entries append `stale-baseline` findings.
 */
std::vector<Finding> applyBaseline(const std::vector<Finding> &findings,
                                   const Baseline &baseline,
                                   int &suppressed);

} // namespace qedm::analyze
