#include "qedm_analyze/json.hpp"

#include <cctype>
#include <cstdio>

namespace qedm::analyze {

namespace {

class Parser
{
  public:
    Parser(const std::string &text, std::string &error)
        : text_(text), error_(error)
    {
    }

    std::unique_ptr<JsonValue> parse()
    {
        auto v = value();
        if (v) {
            skipWs();
            if (pos_ != text_.size()) {
                fail("trailing content");
                return nullptr;
            }
        }
        return v;
    }

  private:
    void skipWs()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(
                   text_[pos_])) != 0)
            ++pos_;
    }

    void fail(const std::string &what)
    {
        if (error_.empty()) {
            error_ = what + " at byte " + std::to_string(pos_);
        }
    }

    bool consume(char c)
    {
        skipWs();
        if (pos_ < text_.size() && text_[pos_] == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    std::unique_ptr<JsonValue> value()
    {
        skipWs();
        if (pos_ >= text_.size()) {
            fail("unexpected end of input");
            return nullptr;
        }
        const char c = text_[pos_];
        if (c == '{')
            return object();
        if (c == '[')
            return array();
        if (c == '"')
            return string();
        if (c == 't' || c == 'f')
            return boolean();
        if (c == 'n')
            return null();
        if (c == '-' ||
            std::isdigit(static_cast<unsigned char>(c)) != 0)
            return number();
        fail("unexpected character");
        return nullptr;
    }

    std::unique_ptr<JsonValue> object()
    {
        auto v = std::make_unique<JsonValue>();
        v->kind = JsonValue::Kind::Object;
        ++pos_; // '{'
        skipWs();
        if (consume('}'))
            return v;
        while (true) {
            skipWs();
            if (pos_ >= text_.size() || text_[pos_] != '"') {
                fail("expected object key");
                return nullptr;
            }
            auto key = string();
            if (!key)
                return nullptr;
            if (!consume(':')) {
                fail("expected ':'");
                return nullptr;
            }
            auto member = value();
            if (!member)
                return nullptr;
            v->object.emplace_back(key->string, std::move(member));
            if (consume(','))
                continue;
            if (consume('}'))
                return v;
            fail("expected ',' or '}'");
            return nullptr;
        }
    }

    std::unique_ptr<JsonValue> array()
    {
        auto v = std::make_unique<JsonValue>();
        v->kind = JsonValue::Kind::Array;
        ++pos_; // '['
        skipWs();
        if (consume(']'))
            return v;
        while (true) {
            auto element = value();
            if (!element)
                return nullptr;
            v->array.push_back(std::move(element));
            if (consume(','))
                continue;
            if (consume(']'))
                return v;
            fail("expected ',' or ']'");
            return nullptr;
        }
    }

    std::unique_ptr<JsonValue> string()
    {
        auto v = std::make_unique<JsonValue>();
        v->kind = JsonValue::Kind::String;
        ++pos_; // '"'
        while (pos_ < text_.size() && text_[pos_] != '"') {
            char c = text_[pos_];
            if (c == '\\') {
                ++pos_;
                if (pos_ >= text_.size())
                    break;
                const char e = text_[pos_];
                switch (e) {
                  case 'n': c = '\n'; break;
                  case 't': c = '\t'; break;
                  case 'r': c = '\r'; break;
                  case 'b': c = '\b'; break;
                  case 'f': c = '\f'; break;
                  case 'u': {
                    // Keep it simple: decode Basic Latin, replace
                    // the rest with '?' (fingerprints are ASCII).
                    unsigned code = 0;
                    for (int k = 0; k < 4 && pos_ + 1 < text_.size();
                         ++k) {
                        ++pos_;
                        const char h = text_[pos_];
                        code <<= 4;
                        if (h >= '0' && h <= '9')
                            code += static_cast<unsigned>(h - '0');
                        else if (h >= 'a' && h <= 'f')
                            code +=
                                static_cast<unsigned>(h - 'a' + 10);
                        else if (h >= 'A' && h <= 'F')
                            code +=
                                static_cast<unsigned>(h - 'A' + 10);
                    }
                    c = code < 0x80 ? static_cast<char>(code) : '?';
                    break;
                  }
                  default: c = e; break;
                }
            }
            v->string += c;
            ++pos_;
        }
        if (pos_ >= text_.size()) {
            fail("unterminated string");
            return nullptr;
        }
        ++pos_; // closing '"'
        return v;
    }

    std::unique_ptr<JsonValue> number()
    {
        auto v = std::make_unique<JsonValue>();
        v->kind = JsonValue::Kind::Number;
        const std::size_t start = pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(
                    text_[pos_])) != 0 ||
                text_[pos_] == '-' || text_[pos_] == '+' ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E'))
            ++pos_;
        try {
            v->number = std::stod(text_.substr(start, pos_ - start));
        } catch (...) {
            fail("malformed number");
            return nullptr;
        }
        return v;
    }

    std::unique_ptr<JsonValue> boolean()
    {
        auto v = std::make_unique<JsonValue>();
        v->kind = JsonValue::Kind::Bool;
        if (text_.compare(pos_, 4, "true") == 0) {
            v->boolean = true;
            pos_ += 4;
            return v;
        }
        if (text_.compare(pos_, 5, "false") == 0) {
            v->boolean = false;
            pos_ += 5;
            return v;
        }
        fail("malformed literal");
        return nullptr;
    }

    std::unique_ptr<JsonValue> null()
    {
        if (text_.compare(pos_, 4, "null") == 0) {
            pos_ += 4;
            return std::make_unique<JsonValue>();
        }
        fail("malformed literal");
        return nullptr;
    }

    const std::string &text_;
    std::string &error_;
    std::size_t pos_ = 0;
};

} // namespace

const JsonValue *
JsonValue::get(const std::string &key) const
{
    if (kind != Kind::Object)
        return nullptr;
    for (const auto &[k, v] : object) {
        if (k == key)
            return v.get();
    }
    return nullptr;
}

std::unique_ptr<JsonValue>
parseJson(const std::string &text, std::string &error)
{
    return Parser(text, error).parse();
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 8);
    for (const char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

} // namespace qedm::analyze
