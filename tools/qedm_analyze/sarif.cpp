#include "qedm_analyze/sarif.hpp"

#include <algorithm>
#include <sstream>

#include "qedm_analyze/baseline.hpp"
#include "qedm_analyze/json.hpp"

namespace qedm::analyze {

std::string
renderSarif(const std::vector<Finding> &findings)
{
    std::vector<Finding> sorted = findings;
    std::sort(sorted.begin(), sorted.end(), findingLess);

    std::ostringstream out;
    out << "{\n"
        << "  \"$schema\": "
           "\"https://json.schemastore.org/sarif-2.1.0.json\",\n"
        << "  \"version\": \"2.1.0\",\n"
        << "  \"runs\": [\n"
        << "    {\n"
        << "      \"tool\": {\n"
        << "        \"driver\": {\n"
        << "          \"name\": \"qedm_analyze\",\n"
        << "          \"informationUri\": "
           "\"https://github.com/qedm/qedm\",\n"
        << "          \"version\": \"1.0.0\",\n"
        << "          \"rules\": [";
    const auto &docs = RuleRegistry::instance().allRuleDocs();
    for (std::size_t i = 0; i < docs.size(); ++i) {
        out << (i == 0 ? "" : ",") << "\n            {\n"
            << "              \"id\": \"" << jsonEscape(docs[i].first)
            << "\",\n"
            << "              \"shortDescription\": { \"text\": \""
            << jsonEscape(docs[i].second) << "\" }\n"
            << "            }";
    }
    out << "\n          ]\n"
        << "        }\n"
        << "      },\n"
        << "      \"columnKind\": \"utf16CodeUnits\",\n"
        << "      \"results\": [";
    for (std::size_t i = 0; i < sorted.size(); ++i) {
        const Finding &f = sorted[i];
        out << (i == 0 ? "" : ",") << "\n        {\n"
            << "          \"ruleId\": \"" << jsonEscape(f.rule)
            << "\",\n"
            << "          \"level\": \"error\",\n"
            << "          \"message\": { \"text\": \""
            << jsonEscape(f.message) << "\" },\n"
            << "          \"locations\": [\n"
            << "            {\n"
            << "              \"physicalLocation\": {\n"
            << "                \"artifactLocation\": { \"uri\": \""
            << jsonEscape(f.file) << "\" },\n"
            << "                \"region\": { \"startLine\": "
            << (f.line > 0 ? f.line : 1) << " }\n"
            << "              }\n"
            << "            }\n"
            << "          ],\n"
            << "          \"partialFingerprints\": {\n"
            << "            \"qedmTokenContext/v1\": \""
            << fingerprintHex(f) << "\"\n"
            << "          }\n"
            << "        }";
    }
    out << "\n      ]\n    }\n  ]\n}\n";
    return out.str();
}

} // namespace qedm::analyze
