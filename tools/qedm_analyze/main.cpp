/**
 * @file
 * CLI for the token-aware static analyzer. Built twice: as
 * `qedm_analyze` (the full interface) and as `qedm_lint` (the
 * legacy name, same binary — `qedm_lint [root]` keeps working for
 * every script and ctest case that predates the engine swap).
 *
 * Usage: qedm_analyze [options] [root]
 *   --format text|sarif   output format (default text)
 *   --jobs N              parallel scan workers (default 1; output
 *                         is byte-identical at any value)
 *   --baseline FILE|none  suppression baseline (default: auto-detect
 *                         <root>/tools/analyze_baseline.json)
 *   --write-baseline FILE record current findings as a baseline and
 *                         exit 0 (justifications left as TODOs,
 *                         which the loader rejects until filled in)
 *   --output FILE         write the report to FILE instead of stdout
 *
 * Exit: 0 clean (every finding baselined), 1 findings (including
 * stale baseline entries), 2 usage or I/O error.
 */

#include <fstream>
#include <iostream>
#include <string>

#include "qedm_analyze/engine.hpp"
#include "qedm_analyze/sarif.hpp"

namespace {

int
usage(const char *argv0)
{
    std::cerr << "usage: " << argv0
              << " [--format text|sarif] [--jobs N]"
                 " [--baseline FILE|none] [--write-baseline FILE]"
                 " [--output FILE] [root]\n";
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    qedm::analyze::AnalyzeOptions opts;
    std::string format = "text";
    std::string write_baseline;
    std::string output_path;
    bool saw_root = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char * {
            return i + 1 < argc ? argv[++i] : nullptr;
        };
        if (arg == "--format") {
            const char *v = next();
            if (v == nullptr)
                return usage(argv[0]);
            format = v;
            if (format != "text" && format != "sarif")
                return usage(argv[0]);
        } else if (arg == "--jobs") {
            const char *v = next();
            if (v == nullptr)
                return usage(argv[0]);
            try {
                opts.jobs = std::stoi(v);
            } catch (...) {
                return usage(argv[0]);
            }
            if (opts.jobs < 1)
                return usage(argv[0]);
        } else if (arg == "--baseline") {
            const char *v = next();
            if (v == nullptr)
                return usage(argv[0]);
            opts.baseline = v;
        } else if (arg == "--write-baseline") {
            const char *v = next();
            if (v == nullptr)
                return usage(argv[0]);
            write_baseline = v;
        } else if (arg == "--output") {
            const char *v = next();
            if (v == nullptr)
                return usage(argv[0]);
            output_path = v;
        } else if (!arg.empty() && arg[0] == '-') {
            return usage(argv[0]);
        } else if (!saw_root) {
            opts.root = arg;
            saw_root = true;
        } else {
            return usage(argv[0]);
        }
    }

    if (!write_baseline.empty())
        opts.baseline = "none"; // record everything, suppress nothing

    const qedm::analyze::Report report =
        qedm::analyze::analyzeTree(opts);
    if (!report.error.empty()) {
        std::cerr << "qedm_analyze: " << report.error << "\n";
        return 2;
    }

    if (!write_baseline.empty()) {
        std::ofstream out(write_baseline, std::ios::binary);
        if (!out) {
            std::cerr << "qedm_analyze: cannot write "
                      << write_baseline << "\n";
            return 2;
        }
        out << qedm::analyze::writeBaseline(report.findings);
        std::cerr << "qedm_analyze: wrote " << report.findings.size()
                  << " entr(ies) to " << write_baseline
                  << "; fill in the justifications\n";
        return 0;
    }

    const std::string rendered =
        format == "sarif" ? qedm::analyze::renderSarif(report.findings)
                          : qedm::analyze::renderText(report);
    if (output_path.empty()) {
        std::cout << rendered;
    } else {
        std::ofstream out(output_path, std::ios::binary);
        if (!out) {
            std::cerr << "qedm_analyze: cannot write " << output_path
                      << "\n";
            return 2;
        }
        out << rendered;
    }
    return report.findings.empty() ? 0 : 1;
}
