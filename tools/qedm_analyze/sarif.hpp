/**
 * @file
 * SARIF 2.1.0 output for qedm_analyze, so findings flow into code
 * scanning UIs (GitHub's SARIF upload, VS Code SARIF viewers)
 * unchanged. One run object: the tool driver lists every registered
 * rule with its description; each result carries ruleId, level,
 * message, the physical location (relative URI + line region), and a
 * partialFingerprints entry with the same rule+file+token-context
 * hash the baseline uses, so external dedup agrees with ours.
 * Rendering is fully deterministic — findings are pre-sorted and the
 * writer is serial — which is what makes `--jobs N` byte-identical.
 */

#pragma once

#include <string>
#include <vector>

#include "qedm_analyze/rule.hpp"

namespace qedm::analyze {

/** Render @p findings as a SARIF 2.1.0 log (one run). */
std::string renderSarif(const std::vector<Finding> &findings);

} // namespace qedm::analyze
