/**
 * @file
 * Rule engine for qedm_analyze, modelled on clang-tidy's registry:
 * every rule is a named object registered once at static-init time;
 * the driver instantiates the whole registry and feeds each scanned
 * file through every rule whose per-directory profile says it
 * applies. Two rule flavours exist:
 *
 *   - FileRule: sees one tokenized file at a time. These run in
 *     parallel across files on the runtime thread pool; a FileRule
 *     must therefore be stateless across check() calls.
 *   - Tree rules (the include-graph layering/cycle analysis) are not
 *     Rule subclasses — they need every file's includes at once and
 *     run serially after the parallel scan (include_graph.hpp).
 *
 * Findings carry a token-context string — the normalized token
 * spelling of the flagged line — which the baseline fingerprints, so
 * suppressions survive line drift (baseline.hpp).
 */

#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "qedm_analyze/lexer.hpp"

namespace qedm::analyze {

/** One diagnostic. */
struct Finding
{
    std::string file; ///< path relative to the scan root
    int line = 0;     ///< 1-based; 0 for whole-file/graph findings
    std::string rule;
    std::string message;
    /**
     * Fingerprint context: normally the space-joined token spellings
     * of the flagged line (filled in by the engine when a rule leaves
     * it empty); graph rules set it explicitly (e.g. the include
     * target), because they have no single line to normalize.
     */
    std::string context;
    /**
     * Disambiguates repeated identical contexts within one file
     * (0-based, in line order). Assigned by the engine.
     */
    int ordinal = 0;
};

/** Deterministic ordering: file, line, rule, message. */
bool findingLess(const Finding &a, const Finding &b);

/** One scanned file, tokenized once and shared by every rule. */
struct FileScan
{
    std::string rel_path; ///< generic (forward-slash) relative path
    bool is_header = false;
    std::vector<Token> tokens;
};

/**
 * Which rules run on one file, decided by its top-level tree —
 * library code (src/) runs everything; driver trees (tools/, bench/,
 * examples/) legitimately print and assert but still may not draw
 * raw randomness or leak naked ownership.
 */
struct RuleProfile
{
    bool rngDiscipline = true;
    bool timeSeed = true;
    bool assertDiscipline = false;
    bool stdoutDiscipline = false;
    bool pragmaOnce = true;
    bool nakedNew = true;
    bool denseDistance = false;
    bool unorderedIteration = false;
    bool localStatic = false;
    bool floatAccumulate = false;
    /**
     * Reject std::chrono::steady_clock::now() in result-bearing code:
     * wall time must flow through the injectable runtime::Clock so
     * watchdog decisions are recordable and replayable.
     */
    bool wallClock = false;
    /**
     * Non-empty exempts the file from the wall-clock rule *with a
     * stated justification* (shown nowhere, but the requirement keeps
     * carve-outs deliberate). Only the sanctioned clock/watchdog
     * modules set this.
     */
    std::string wallClockExemptReason;
    /**
     * Ban randomness from the batched trajectory kernels: those TUs
     * must consume pre-sampled draws (sim/shot_plan.hpp), never the
     * Rng itself. A draw inside a kernel would break the DESIGN.md
     * §12 draw-order contract between the scalar and batched paths —
     * silently, since both would still look "random".
     */
    bool rngInKernel = false;
    /**
     * Ban heap allocation inside functions marked `// qedm:hot`: the
     * placement-search and VF2 inner loops preallocate every buffer
     * when the search plan/worker is built (DESIGN.md §18), so an
     * allocation on the per-node path is a throughput regression at
     * 127/433-qubit scale, not a style nit.
     */
    bool hotPathAlloc = false;
};

/** Per-directory rule profile for @p rel_path (see rules.cpp). */
RuleProfile profileFor(const std::string &rel_path);

/** A per-file rule. Stateless across calls; run in parallel. */
class FileRule
{
  public:
    FileRule(std::string name, std::string description)
        : name_(std::move(name)), description_(std::move(description))
    {
    }
    virtual ~FileRule() = default;
    FileRule(const FileRule &) = delete;
    FileRule &operator=(const FileRule &) = delete;

    const std::string &name() const { return name_; }
    const std::string &description() const { return description_; }

    /** Does this rule apply to @p rel_path under @p profile? */
    virtual bool appliesTo(const std::string &rel_path,
                           const RuleProfile &profile) const = 0;

    /** Scan one file; append findings (rule/context filled later). */
    virtual void check(const FileScan &scan,
                       std::vector<Finding> &out) const = 0;

  private:
    std::string name_;
    std::string description_;
};

/** Registry of every FileRule, plus the graph-rule metadata (for
 *  SARIF's rule table). Construction order is registration order and
 *  registration order is deterministic (one translation unit). */
class RuleRegistry
{
  public:
    /** The process-wide registry (rules register in rules.cpp). */
    static const RuleRegistry &instance();

    const std::vector<std::unique_ptr<FileRule>> &fileRules() const
    {
        return file_rules_;
    }

    /** name → description for every rule, including the tree rules
     *  and engine-level rules that are not FileRule objects. */
    const std::vector<std::pair<std::string, std::string>> &
    allRuleDocs() const
    {
        return docs_;
    }

    void add(std::unique_ptr<FileRule> rule);
    void document(const std::string &name,
                  const std::string &description);

  private:
    RuleRegistry();
    std::vector<std::unique_ptr<FileRule>> file_rules_;
    std::vector<std::pair<std::string, std::string>> docs_;
};

/** Space-joined spelling of every non-comment token on @p line
 *  (the baseline fingerprint context for line findings). */
std::string lineContext(const FileScan &scan, int line);

} // namespace qedm::analyze
