/**
 * @file
 * Cross-TU include-graph analysis: collects every quoted #include
 * from the tokenized files into one graph and enforces
 *
 *   - layering: module-to-module includes must follow the DESIGN.md
 *     layer DAG (common at the bottom; hw/circuit/stats above it;
 *     check/sim/transpile in the middle; core on top; runtime,
 *     resilience, and analysis as leaves off common/stats; the
 *     driver trees tools/, bench/, and examples/ may include
 *     anything). The allowed-edge table is explicit — adding a new
 *     cross-module dependency is a reviewed change here, not an
 *     accident;
 *   - include-cycle: the quoted-include graph over the scanned files
 *     must be acyclic (#pragma once merely hides a cycle; it does
 *     not make one sound).
 *
 * Quoted includes resolve against src/ (the project convention) and
 * against the including file's own directory; edges into unscanned
 * files are ignored.
 */

#pragma once

#include <set>
#include <string>
#include <vector>

#include "qedm_analyze/rule.hpp"

namespace qedm::analyze {

/** One quoted #include directive found in a scanned file. */
struct IncludeEdge
{
    std::string from; ///< scanned file (path relative to the root)
    int line = 0;
    std::string target; ///< the include path as written
};

/** Extract quoted-include edges from one tokenized file. */
void collectIncludes(const FileScan &scan,
                     std::vector<IncludeEdge> &out);

/** Run the layering and cycle rules over the whole graph. */
void analyzeIncludeGraph(const std::vector<IncludeEdge> &edges,
                         const std::set<std::string> &scanned,
                         std::vector<Finding> &out);

} // namespace qedm::analyze
