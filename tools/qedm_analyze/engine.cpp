#include "qedm_analyze/engine.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <tuple>

#include "qedm_analyze/include_graph.hpp"
#include "runtime/thread_pool.hpp"

namespace qedm::analyze {

namespace {

namespace fs = std::filesystem;

bool
isHeaderPath(const std::string &rel_path)
{
    const std::size_t dot = rel_path.find_last_of('.');
    if (dot == std::string::npos)
        return false;
    const std::string ext = rel_path.substr(dot);
    return ext == ".hpp" || ext == ".h";
}

bool
isSourcePath(const std::string &rel_path)
{
    const std::size_t dot = rel_path.find_last_of('.');
    if (dot == std::string::npos)
        return false;
    const std::string ext = rel_path.substr(dot);
    return ext == ".cpp" || ext == ".cc" || ext == ".hpp" ||
           ext == ".h";
}

/** Per-file scan slot: findings and include edges produced by one
 *  worker, merged in file order afterwards. */
struct FileSlot
{
    std::vector<Finding> findings;
    std::vector<IncludeEdge> includes;
};

void
scanOne(const SourceFile &source, FileSlot &slot)
{
    FileScan scan;
    scan.rel_path = source.rel_path;
    scan.is_header = isHeaderPath(source.rel_path);
    scan.tokens = tokenize(source.text);

    collectIncludes(scan, slot.includes);

    const RuleProfile profile = profileFor(scan.rel_path);
    for (const auto &rule : RuleRegistry::instance().fileRules()) {
        if (!rule->appliesTo(scan.rel_path, profile))
            continue;
        const std::size_t before = slot.findings.size();
        rule->check(scan, slot.findings);
        for (std::size_t i = before; i < slot.findings.size(); ++i) {
            Finding &f = slot.findings[i];
            if (f.rule.empty())
                f.rule = rule->name();
            if (f.context.empty())
                f.context = lineContext(scan, f.line);
        }
    }
}

/** Assign ordinals: the n-th finding (line order) sharing one
 *  (rule, file, context) triple gets ordinal n. */
void
assignOrdinals(std::vector<Finding> &findings)
{
    std::sort(findings.begin(), findings.end(), findingLess);
    std::map<std::tuple<std::string, std::string, std::string>, int>
        counts;
    for (Finding &f : findings)
        f.ordinal = counts[{f.rule, f.file, f.context}]++;
}

} // namespace

Report
analyzeSources(const std::vector<SourceFile> &sources,
               const Baseline *baseline, int jobs)
{
    Report report;
    report.files_scanned = static_cast<int>(sources.size());

    std::vector<FileSlot> slots(sources.size());
    runtime::ThreadPool pool(std::max(jobs, 1));
    pool.parallelFor(sources.size(), [&](std::size_t i) {
        scanOne(sources[i], slots[i]);
    });

    std::vector<Finding> findings;
    std::vector<IncludeEdge> edges;
    std::set<std::string> scanned;
    for (std::size_t i = 0; i < sources.size(); ++i) {
        scanned.insert(sources[i].rel_path);
        findings.insert(findings.end(), slots[i].findings.begin(),
                        slots[i].findings.end());
        edges.insert(edges.end(), slots[i].includes.begin(),
                     slots[i].includes.end());
    }
    analyzeIncludeGraph(edges, scanned, findings);
    assignOrdinals(findings);

    if (baseline != nullptr) {
        findings =
            applyBaseline(findings, *baseline, report.suppressed);
        std::sort(findings.begin(), findings.end(), findingLess);
    }
    report.findings = std::move(findings);
    return report;
}

Report
analyzeTree(const AnalyzeOptions &opts)
{
    Report report;
    const fs::path root(opts.root);

    std::vector<fs::path> scan_dirs;
    for (const char *dir : {"src", "tools", "bench", "examples"}) {
        if (fs::is_directory(root / dir))
            scan_dirs.push_back(root / dir);
    }
    if (scan_dirs.empty()) {
        report.error = "no src/, tools/, bench/, or examples/ under " +
                       root.string();
        return report;
    }

    std::vector<SourceFile> sources;
    for (const fs::path &dir : scan_dirs) {
        for (const auto &entry :
             fs::recursive_directory_iterator(dir)) {
            if (!entry.is_regular_file())
                continue;
            const std::string rel =
                fs::relative(entry.path(), root).generic_string();
            if (!isSourcePath(rel))
                continue;
            std::ifstream in(entry.path(), std::ios::binary);
            if (!in) {
                report.error = "cannot open " + rel;
                return report;
            }
            std::ostringstream buffer;
            buffer << in.rdbuf();
            sources.push_back(SourceFile{rel, buffer.str()});
        }
    }
    // Directory iteration order is filesystem-dependent; the sorted
    // list is what makes the parallel scan reproducible.
    std::sort(sources.begin(), sources.end(),
              [](const SourceFile &a, const SourceFile &b) {
                  return a.rel_path < b.rel_path;
              });

    Baseline baseline;
    const Baseline *baseline_ptr = nullptr;
    if (opts.baseline != "none") {
        std::string path = opts.baseline;
        if (path.empty()) {
            const fs::path auto_path =
                root / "tools" / "analyze_baseline.json";
            if (fs::exists(auto_path))
                path = auto_path.string();
        }
        if (!path.empty()) {
            std::string error;
            if (!loadBaseline(path, baseline, error)) {
                report.error = error;
                return report;
            }
            baseline_ptr = &baseline;
        }
    }

    return analyzeSources(sources, baseline_ptr, opts.jobs);
}

std::string
renderText(const Report &report)
{
    std::ostringstream out;
    for (const Finding &f : report.findings) {
        out << f.file << ":" << f.line << ": [" << f.rule << "] "
            << f.message << "\n";
    }
    out << "qedm_analyze: " << report.files_scanned << " files, "
        << report.findings.size() << " finding(s), "
        << report.suppressed << " baselined\n";
    return out.str();
}

} // namespace qedm::analyze
