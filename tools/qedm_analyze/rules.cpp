/**
 * @file
 * Every registered qedm_analyze rule. The legacy qedm_lint rule
 * families keep their names (CI greps for them on the seeded
 * fixture); the determinism family is new and only possible on the
 * token stream:
 *
 *   - time-seed:           wall-clock sources (time(), clock(),
 *                          getpid(), system_clock/
 *                          high_resolution_clock::now) feed neither
 *                          seeds nor results — reproducibility
 *                          derives all randomness from SeedSequence
 *                          and all timing from steady_clock;
 *   - unordered-iteration: range-for over std::unordered_{map,set}
 *                          in the result-bearing modules (src/core,
 *                          src/transpile, src/sim), where hash-order
 *                          iteration can leak into merged
 *                          distributions and placement ranking;
 *   - local-static:        mutable function-local statics are hidden
 *                          cross-call state; only the sanctioned
 *                          *Registry singletons may use them;
 *   - float-accumulate:    std::accumulate / std::reduce /
 *                          std::transform_reduce over floating-point
 *                          values in the ESP/merge paths must carry a
 *                          `canonical order` comment within the three
 *                          preceding lines documenting why the
 *                          summation order is parallelism-invariant;
 *   - hot-path-alloc:      functions marked `// qedm:hot` (the
 *                          placement-search/VF2 per-node loops) must
 *                          not allocate — no new, make_unique/
 *                          make_shared, or allocating std container
 *                          construction.
 */

#include "qedm_analyze/rule.hpp"

#include <algorithm>
#include <cstddef>
#include <set>
#include <tuple>

namespace qedm::analyze {

bool
findingLess(const Finding &a, const Finding &b)
{
    return std::tie(a.file, a.line, a.rule, a.message) <
           std::tie(b.file, b.line, b.rule, b.message);
}

std::string
lineContext(const FileScan &scan, int line)
{
    std::string ctx;
    for (const Token &t : scan.tokens) {
        if (t.line != line || t.kind == TokKind::Comment)
            continue;
        if (!ctx.empty())
            ctx += ' ';
        // Literal contents are free-form prose; normalize them away
        // so editing a message string does not invalidate a
        // suppression of the surrounding statement.
        if (t.kind == TokKind::String || t.kind == TokKind::RawString)
            ctx += "<str>";
        else if (t.kind == TokKind::CharLit)
            ctx += "<chr>";
        else
            ctx += t.text;
    }
    return ctx;
}

namespace {

bool
underDir(const std::string &rel_path, const char *dir)
{
    const std::string prefix = std::string(dir) + "/";
    return rel_path.rfind(prefix, 0) == 0;
}

/** Indices of the non-comment tokens, shared by most rules. */
std::vector<std::size_t>
codeTokens(const FileScan &scan)
{
    std::vector<std::size_t> idx;
    idx.reserve(scan.tokens.size());
    for (std::size_t i = 0; i < scan.tokens.size(); ++i) {
        if (scan.tokens[i].kind != TokKind::Comment)
            idx.push_back(i);
    }
    return idx;
}

bool
isIdent(const Token &t, const char *text)
{
    return t.kind == TokKind::Identifier && t.text == text;
}

bool
isPunct(const Token &t, const char *text)
{
    return t.kind == TokKind::Punct && t.text == text;
}

/** Does code[i] start the sequence `std :: name`? */
bool
stdQualified(const FileScan &scan,
             const std::vector<std::size_t> &code, std::size_t i,
             const char *name)
{
    return i + 2 < code.size() &&
           isIdent(scan.tokens[code[i]], "std") &&
           isPunct(scan.tokens[code[i + 1]], "::") &&
           isIdent(scan.tokens[code[i + 2]], name);
}

class RngDisciplineRule final : public FileRule
{
  public:
    RngDisciplineRule()
        : FileRule("rng-discipline",
                   "raw RNG engines/sources outside src/common/rng "
                   "bypass the deterministic SeedSequence streams")
    {
    }
    bool appliesTo(const std::string &,
                   const RuleProfile &p) const override
    {
        return p.rngDiscipline;
    }
    void check(const FileScan &scan,
               std::vector<Finding> &out) const override
    {
        static const char *const kEngines[] = {
            "mt19937",     "mt19937_64",    "rand",
            "random_device", "srand",       "default_random_engine",
            "minstd_rand", "minstd_rand0"};
        const auto code = codeTokens(scan);
        for (std::size_t i = 0; i < code.size(); ++i) {
            const Token &t = scan.tokens[code[i]];
            std::string hit;
            if (isIdent(t, "srand") &&
                !(i >= 1 && isPunct(scan.tokens[code[i - 1]], "::"))) {
                hit = "srand";
            }
            for (const char *engine : kEngines) {
                if (stdQualified(scan, code, i, engine))
                    hit = std::string("std::") + engine;
            }
            if (!hit.empty()) {
                out.push_back(Finding{
                    scan.rel_path, t.line, {},
                    hit +
                        " bypasses the deterministic "
                        "SeedSequence/Rng streams; use "
                        "src/common/rng",
                    {}, 0});
            }
        }
    }
};

/**
 * The batched-kernel hot path (src/sim/batched*, src/sim/lane_kernels*)
 * must never draw randomness: every stochastic decision is pre-sampled
 * into the per-shot plan (sim/shot_plan.hpp) before the batch walk, so
 * the scalar and batched engines replay the identical draw sequence.
 * Flag any mention of the Rng type and any member call spelled like a
 * draw (`x.uniform(...)`, `plan->bernoulli(...)`): either one means a
 * kernel could consume entropy mid-walk, silently breaking the
 * DESIGN.md §12 draw-order contract — the results would still look
 * plausibly random, just not reproducible against the scalar path.
 */
class RngInKernelRule final : public FileRule
{
  public:
    RngInKernelRule()
        : FileRule("rng-in-kernel",
                   "batched trajectory kernels must consume "
                   "pre-sampled draws (sim/shot_plan.hpp), never the "
                   "Rng: a mid-walk draw breaks the scalar/batched "
                   "draw-order contract")
    {
    }
    bool appliesTo(const std::string &,
                   const RuleProfile &p) const override
    {
        return p.rngInKernel;
    }
    void check(const FileScan &scan,
               std::vector<Finding> &out) const override
    {
        static const char *const kDraws[] = {
            "uniform", "uniformInt", "bernoulli", "normal",
            "discrete"};
        const auto code = codeTokens(scan);
        for (std::size_t i = 0; i < code.size(); ++i) {
            const Token &t = scan.tokens[code[i]];
            if (isIdent(t, "Rng")) {
                out.push_back(Finding{
                    scan.rel_path, t.line, {},
                    "Rng inside a batched-kernel TU; draws must be "
                    "pre-sampled via sim/shot_plan.hpp (DESIGN.md "
                    "§12 draw-order contract)",
                    {}, 0});
                continue;
            }
            // Draw-shaped member call: `.name(` or `->name(`. Plain
            // identifiers (a local named `uniform`) stay legal.
            if (i >= 1 && i + 1 < code.size() &&
                (isPunct(scan.tokens[code[i - 1]], ".") ||
                 isPunct(scan.tokens[code[i - 1]], "->")) &&
                isPunct(scan.tokens[code[i + 1]], "(")) {
                for (const char *draw : kDraws) {
                    if (isIdent(t, draw)) {
                        out.push_back(Finding{
                            scan.rel_path, t.line, {},
                            std::string("draw call `") + draw +
                                "` inside a batched-kernel TU; "
                                "pre-sample it into the shot plan "
                                "instead",
                            {}, 0});
                    }
                }
            }
        }
    }
};

class TimeSeedRule final : public FileRule
{
  public:
    TimeSeedRule()
        : FileRule("time-seed",
                   "wall-clock sources must not feed seeds or "
                   "results; randomness comes from SeedSequence, "
                   "timing from steady_clock")
    {
    }
    bool appliesTo(const std::string &,
                   const RuleProfile &p) const override
    {
        return p.timeSeed;
    }
    void check(const FileScan &scan,
               std::vector<Finding> &out) const override
    {
        const auto code = codeTokens(scan);
        for (std::size_t i = 0; i < code.size(); ++i) {
            const Token &t = scan.tokens[code[i]];
            std::string hit;
            if (t.kind == TokKind::Identifier &&
                (t.text == "time" || t.text == "clock" ||
                 t.text == "getpid" || t.text == "gettimeofday")) {
                const bool called =
                    i + 1 < code.size() &&
                    isPunct(scan.tokens[code[i + 1]], "(");
                const bool member =
                    i >= 1 &&
                    (isPunct(scan.tokens[code[i - 1]], ".") ||
                     isPunct(scan.tokens[code[i - 1]], "->"));
                bool foreign_qualified = false;
                if (i >= 2 && isPunct(scan.tokens[code[i - 1]], "::"))
                    foreign_qualified =
                        !isIdent(scan.tokens[code[i - 2]], "std");
                if (called && !member && !foreign_qualified)
                    hit = t.text + "()";
            }
            if ((isIdent(t, "system_clock") ||
                 isIdent(t, "high_resolution_clock")) &&
                i + 2 < code.size() &&
                isPunct(scan.tokens[code[i + 1]], "::") &&
                isIdent(scan.tokens[code[i + 2]], "now")) {
                hit = t.text + "::now";
            }
            if (!hit.empty()) {
                out.push_back(Finding{
                    scan.rel_path, t.line, {},
                    hit +
                        " is a wall-clock source; seeds come from "
                        "SeedSequence streams and timing from "
                        "std::chrono::steady_clock",
                    {}, 0});
            }
        }
    }
};

/**
 * Library code must not read std::chrono::steady_clock directly: wall
 * time is inherently nondeterministic, so every read has to flow
 * through the injectable runtime::Clock interface, where tests
 * substitute a ManualClock and the watchdog's record/replay contract
 * can make timing decisions reproducible. Only the sanctioned clock
 * and watchdog modules (non-empty wallClockExemptReason in
 * profileFor) may touch the real clock.
 */
class WallClockRule final : public FileRule
{
  public:
    WallClockRule()
        : FileRule("wall-clock",
                   "steady_clock reads outside runtime/clock must go "
                   "through the injectable runtime::Clock so timing "
                   "decisions stay recordable and replayable")
    {
    }
    bool appliesTo(const std::string &,
                   const RuleProfile &p) const override
    {
        return p.wallClock && p.wallClockExemptReason.empty();
    }
    void check(const FileScan &scan,
               std::vector<Finding> &out) const override
    {
        const auto code = codeTokens(scan);
        for (std::size_t i = 0; i + 2 < code.size(); ++i) {
            const Token &t = scan.tokens[code[i]];
            if (isIdent(t, "steady_clock") &&
                isPunct(scan.tokens[code[i + 1]], "::") &&
                isIdent(scan.tokens[code[i + 2]], "now")) {
                out.push_back(Finding{
                    scan.rel_path, t.line, {},
                    "steady_clock::now is a raw wall-clock read; use "
                    "the injectable runtime::Clock (runtime/clock.hpp) "
                    "so timing decisions stay recordable and "
                    "replayable",
                    {}, 0});
            }
        }
    }
};

class AssertDisciplineRule final : public FileRule
{
  public:
    AssertDisciplineRule()
        : FileRule("assert-discipline",
                   "library invariants use QEDM_ASSERT/QEDM_REQUIRE, "
                   "which throw typed diagnostics in every build type")
    {
    }
    bool appliesTo(const std::string &,
                   const RuleProfile &p) const override
    {
        return p.assertDiscipline;
    }
    void check(const FileScan &scan,
               std::vector<Finding> &out) const override
    {
        const auto code = codeTokens(scan);
        for (std::size_t i = 0; i + 1 < code.size(); ++i) {
            if (isIdent(scan.tokens[code[i]], "assert") &&
                isPunct(scan.tokens[code[i + 1]], "(")) {
                out.push_back(Finding{
                    scan.rel_path, scan.tokens[code[i]].line, {},
                    "raw assert( in library code; use QEDM_ASSERT "
                    "or QEDM_REQUIRE",
                    {}, 0});
            }
        }
    }
};

class StdoutDisciplineRule final : public FileRule
{
  public:
    StdoutDisciplineRule()
        : FileRule("stdout-discipline",
                   "libraries return data; only tools/, bench/, and "
                   "examples/ write to stdout")
    {
    }
    bool appliesTo(const std::string &,
                   const RuleProfile &p) const override
    {
        return p.stdoutDiscipline;
    }
    void check(const FileScan &scan,
               std::vector<Finding> &out) const override
    {
        const auto code = codeTokens(scan);
        for (std::size_t i = 0; i < code.size(); ++i) {
            if (stdQualified(scan, code, i, "cout")) {
                out.push_back(Finding{
                    scan.rel_path, scan.tokens[code[i]].line, {},
                    "std::cout in library code; only tools/, "
                    "bench/, and examples/ write to stdout",
                    {}, 0});
            }
        }
    }
};

class PragmaOnceRule final : public FileRule
{
  public:
    PragmaOnceRule()
        : FileRule("pragma-once",
                   "every header starts with #pragma once")
    {
    }
    bool appliesTo(const std::string &,
                   const RuleProfile &p) const override
    {
        return p.pragmaOnce;
    }
    void check(const FileScan &scan,
               std::vector<Finding> &out) const override
    {
        if (!scan.is_header)
            return;
        const auto code = codeTokens(scan);
        for (std::size_t i = 0; i + 1 < code.size(); ++i) {
            if (scan.tokens[code[i]].kind == TokKind::PPDirective &&
                scan.tokens[code[i]].text == "pragma" &&
                isIdent(scan.tokens[code[i + 1]], "once")) {
                return;
            }
        }
        out.push_back(Finding{scan.rel_path, 1, {},
                              "header is missing #pragma once",
                              "pragma-once", 0});
    }
};

class NakedNewRule final : public FileRule
{
  public:
    NakedNewRule()
        : FileRule("naked-new",
                   "ownership goes through containers and smart "
                   "pointers, never naked new")
    {
    }
    bool appliesTo(const std::string &,
                   const RuleProfile &p) const override
    {
        return p.nakedNew;
    }
    void check(const FileScan &scan,
               std::vector<Finding> &out) const override
    {
        const auto code = codeTokens(scan);
        for (const std::size_t i : code) {
            if (isIdent(scan.tokens[i], "new")) {
                out.push_back(Finding{
                    scan.rel_path, scan.tokens[i].line, {},
                    "naked new; use containers or "
                    "std::make_unique/std::make_shared",
                    {}, 0});
            }
        }
    }
};

class DenseDistanceRule final : public FileRule
{
  public:
    DenseDistanceRule()
        : FileRule("dense-distance",
                   "library code goes through "
                   "sharedDistanceProvider so 433-qubit topologies "
                   "never allocate an O(n^2) matrix")
    {
    }
    bool appliesTo(const std::string &,
                   const RuleProfile &p) const override
    {
        return p.denseDistance;
    }
    void check(const FileScan &scan,
               std::vector<Finding> &out) const override
    {
        const auto code = codeTokens(scan);
        for (const std::size_t i : code) {
            const Token &t = scan.tokens[i];
            if (isIdent(t, "distanceMatrix") ||
                isIdent(t, "sharedDistanceMatrix")) {
                out.push_back(Finding{
                    scan.rel_path, t.line, {},
                    t.text +
                        " accesses the dense all-pairs matrix "
                        "directly; go through "
                        "sharedDistanceProvider so large devices "
                        "stay on the on-demand path",
                    {}, 0});
            }
        }
    }
};

class UnorderedIterationRule final : public FileRule
{
  public:
    UnorderedIterationRule()
        : FileRule("unordered-iteration",
                   "range-for over std::unordered_{map,set} in "
                   "result-bearing modules lets hash order leak "
                   "into results")
    {
    }
    bool appliesTo(const std::string &,
                   const RuleProfile &p) const override
    {
        return p.unorderedIteration;
    }
    void check(const FileScan &scan,
               std::vector<Finding> &out) const override
    {
        const auto code = codeTokens(scan);
        // Pass 1: names declared with an unordered container type.
        // `std::unordered_map<K, V> name` — skip the template
        // argument list by bracket depth (tokens keep < and > as
        // single punctuators, so >> never fuses).
        std::set<std::string> unordered_names;
        for (std::size_t i = 0; i < code.size(); ++i) {
            const Token &t = scan.tokens[code[i]];
            if (!isIdent(t, "unordered_map") &&
                !isIdent(t, "unordered_set") &&
                !isIdent(t, "unordered_multimap") &&
                !isIdent(t, "unordered_multiset")) {
                continue;
            }
            std::size_t j = i + 1;
            if (j < code.size() &&
                isPunct(scan.tokens[code[j]], "<")) {
                int depth = 0;
                for (; j < code.size(); ++j) {
                    if (isPunct(scan.tokens[code[j]], "<"))
                        ++depth;
                    else if (isPunct(scan.tokens[code[j]], ">")) {
                        if (--depth == 0) {
                            ++j;
                            break;
                        }
                    }
                }
            }
            // Possibly `&` / `*` / `const` between type and name.
            while (j < code.size() &&
                   (isPunct(scan.tokens[code[j]], "&") ||
                    isPunct(scan.tokens[code[j]], "*") ||
                    isIdent(scan.tokens[code[j]], "const"))) {
                ++j;
            }
            if (j < code.size() &&
                scan.tokens[code[j]].kind == TokKind::Identifier) {
                unordered_names.insert(scan.tokens[code[j]].text);
            }
        }
        // Pass 2: range-for statements whose range expression names
        // an unordered container (or constructs one inline).
        for (std::size_t i = 0; i + 1 < code.size(); ++i) {
            if (!isIdent(scan.tokens[code[i]], "for") ||
                !isPunct(scan.tokens[code[i + 1]], "("))
                continue;
            int depth = 0;
            std::size_t colon = 0;
            std::size_t close = 0;
            for (std::size_t j = i + 1; j < code.size(); ++j) {
                if (isPunct(scan.tokens[code[j]], "("))
                    ++depth;
                else if (isPunct(scan.tokens[code[j]], ")")) {
                    if (--depth == 0) {
                        close = j;
                        break;
                    }
                } else if (depth == 1 && colon == 0 &&
                           isPunct(scan.tokens[code[j]], ":")) {
                    colon = j;
                }
            }
            if (colon == 0 || close == 0)
                continue; // classic for, or unterminated
            for (std::size_t j = colon + 1; j < close; ++j) {
                const Token &t = scan.tokens[code[j]];
                const bool inline_ctor =
                    t.kind == TokKind::Identifier &&
                    t.text.rfind("unordered_", 0) == 0;
                if (inline_ctor ||
                    (t.kind == TokKind::Identifier &&
                     unordered_names.count(t.text) != 0)) {
                    out.push_back(Finding{
                        scan.rel_path,
                        scan.tokens[code[i]].line, {},
                        "range-for over std::unordered container '" +
                            t.text +
                            "'; hash iteration order can leak into "
                            "results — iterate a sorted view or an "
                            "ordered container",
                        {}, 0});
                    break;
                }
            }
        }
    }
};

class LocalStaticRule final : public FileRule
{
  public:
    LocalStaticRule()
        : FileRule("local-static",
                   "mutable function-local statics are hidden "
                   "cross-call state; only *Registry singletons are "
                   "sanctioned")
    {
    }
    bool appliesTo(const std::string &,
                   const RuleProfile &p) const override
    {
        return p.localStatic;
    }
    void check(const FileScan &scan,
               std::vector<Finding> &out) const override
    {
        const auto code = codeTokens(scan);
        enum class Scope
        {
            Namespace,
            Class,
            Function,
            Init
        };
        std::vector<Scope> scopes;
        // Pending classifier for the next `{`, reset at ; and }.
        enum class Pending
        {
            None,
            Namespace,
            Class,
            Function
        };
        Pending pending = Pending::None;
        for (std::size_t i = 0; i < code.size(); ++i) {
            const Token &t = scan.tokens[code[i]];
            if (t.kind == TokKind::PPDirective)
                continue;
            if (isIdent(t, "namespace")) {
                pending = Pending::Namespace;
            } else if (isIdent(t, "class") || isIdent(t, "struct") ||
                       isIdent(t, "union") || isIdent(t, "enum")) {
                // `enum class` keeps Pending::Class; template
                // parameter `class T` is reset by the `>`/`,` punct
                // never reaching a `{`.
                pending = Pending::Class;
            } else if (isPunct(t, ";")) {
                pending = Pending::None;
            } else if (isPunct(t, "{")) {
                Scope s = Scope::Init;
                const bool in_function =
                    !scopes.empty() &&
                    scopes.back() == Scope::Function;
                if (pending == Pending::Namespace)
                    s = Scope::Namespace;
                else if (pending == Pending::Class && !in_function)
                    s = Scope::Class;
                else if (in_function)
                    s = Scope::Function; // nested block / lambda body
                else if (i >= 1 &&
                         (isPunct(scan.tokens[code[i - 1]], ")") ||
                          isIdent(scan.tokens[code[i - 1]], "try") ||
                          isIdent(scan.tokens[code[i - 1]],
                                  "noexcept") ||
                          isIdent(scan.tokens[code[i - 1]], "const")))
                    s = Scope::Function;
                scopes.push_back(s);
                pending = Pending::None;
            } else if (isPunct(t, "}")) {
                if (!scopes.empty())
                    scopes.pop_back();
                pending = Pending::None;
            } else if (isIdent(t, "static") && !scopes.empty() &&
                       scopes.back() == Scope::Function) {
                // Scan the declaration up to `=`, `{`, `(` or `;`:
                // const/constexpr make it immutable; an identifier
                // containing Registry marks the sanctioned pattern.
                bool immutable = false;
                bool registry = false;
                for (std::size_t j = i + 1; j < code.size(); ++j) {
                    const Token &d = scan.tokens[code[j]];
                    if (isPunct(d, ";") || isPunct(d, "=") ||
                        isPunct(d, "{") || isPunct(d, "("))
                        break;
                    if (isIdent(d, "const") ||
                        isIdent(d, "constexpr") ||
                        isIdent(d, "constinit"))
                        immutable = true;
                    if (d.kind == TokKind::Identifier &&
                        (d.text.find("Registry") !=
                             std::string::npos ||
                         d.text.find("registry") !=
                             std::string::npos))
                        registry = true;
                }
                if (!immutable && !registry) {
                    out.push_back(Finding{
                        scan.rel_path, t.line, {},
                        "mutable function-local static; hidden "
                        "cross-call state breaks run-to-run "
                        "reproducibility — make it const/constexpr, "
                        "pass it explicitly, or register it as a "
                        "*Registry singleton",
                        {}, 0});
                }
            }
        }
    }
};

class FloatAccumulateRule final : public FileRule
{
  public:
    FloatAccumulateRule()
        : FileRule("float-accumulate",
                   "floating-point reductions in ESP/merge paths "
                   "must document a parallelism-invariant summation "
                   "order with a `canonical order` comment")
    {
    }
    bool appliesTo(const std::string &,
                   const RuleProfile &p) const override
    {
        return p.floatAccumulate;
    }
    void check(const FileScan &scan,
               std::vector<Finding> &out) const override
    {
        const auto code = codeTokens(scan);
        for (std::size_t i = 0; i < code.size(); ++i) {
            const Token &t = scan.tokens[code[i]];
            if (!isIdent(t, "accumulate") && !isIdent(t, "reduce") &&
                !isIdent(t, "transform_reduce"))
                continue;
            // Only the std algorithms: member functions and
            // definitions named `accumulate` order their own terms.
            if (i < 2 || !isIdent(scan.tokens[code[i - 2]], "std") ||
                !isPunct(scan.tokens[code[i - 1]], "::"))
                continue;
            // Find the call's argument list (optional explicit
            // template arguments first).
            std::size_t j = i + 1;
            if (j < code.size() &&
                isPunct(scan.tokens[code[j]], "<")) {
                int depth = 0;
                for (; j < code.size(); ++j) {
                    if (isPunct(scan.tokens[code[j]], "<"))
                        ++depth;
                    else if (isPunct(scan.tokens[code[j]], ">") &&
                             --depth == 0) {
                        ++j;
                        break;
                    }
                }
            }
            if (j >= code.size() ||
                !isPunct(scan.tokens[code[j]], "("))
                continue;
            // Floating reduction if any argument is a floating
            // literal or names float/double explicitly.
            bool floating = false;
            int depth = 0;
            for (std::size_t k = j; k < code.size(); ++k) {
                const Token &a = scan.tokens[code[k]];
                if (isPunct(a, "("))
                    ++depth;
                else if (isPunct(a, ")") && --depth == 0)
                    break;
                if (a.kind == TokKind::Number &&
                    a.text.rfind("0x", 0) != 0 &&
                    (a.text.find('.') != std::string::npos ||
                     a.text.find('e') != std::string::npos ||
                     a.text.find('E') != std::string::npos ||
                     a.text.back() == 'f' || a.text.back() == 'F'))
                    floating = true;
                if (isIdent(a, "double") || isIdent(a, "float"))
                    floating = true;
            }
            if (!floating)
                continue;
            // Satisfied by a `canonical order` / `canonical-order`
            // comment on the call line or the three lines above it.
            const int line = t.line;
            bool documented = false;
            for (const Token &c : scan.tokens) {
                if (c.kind != TokKind::Comment)
                    continue;
                if (c.end_line < line - 3 || c.line > line)
                    continue;
                if (c.text.find("canonical order") !=
                        std::string::npos ||
                    c.text.find("canonical-order") !=
                        std::string::npos) {
                    documented = true;
                    break;
                }
            }
            if (!documented) {
                out.push_back(Finding{
                    scan.rel_path, line, {},
                    "std::" + t.text +
                        " over floating-point values without a "
                        "canonical-order comment; parallel or "
                        "reordered summation changes the result "
                        "bits — document the fixed order with a "
                        "`canonical order:` comment or canonicalize "
                        "first",
                    {}, 0});
            }
        }
    }
};

/**
 * Functions annotated `// qedm:hot` are the per-node inner loops of
 * the placement search and the VF2 matcher: everything they need is
 * preallocated when the search plan or worker is built, so the
 * recursion itself never touches the allocator (DESIGN.md §18). The
 * marker covers the next function definition after the comment — the
 * first `{` past the marker line, brace-matched to its close. Inside
 * that body, flag `new`, std::make_unique/make_shared, and
 * construction of allocating std containers (spelling `std::vector`
 * etc. — uses of an already-built container go through its variable
 * name and stay legal).
 */
class HotPathAllocRule final : public FileRule
{
  public:
    HotPathAllocRule()
        : FileRule("hot-path-alloc",
                   "functions marked `// qedm:hot` must not allocate: "
                   "no new, make_unique/make_shared, or allocating "
                   "std container construction on the per-node path")
    {
    }
    bool appliesTo(const std::string &,
                   const RuleProfile &p) const override
    {
        return p.hotPathAlloc;
    }
    void check(const FileScan &scan,
               std::vector<Finding> &out) const override
    {
        static const char *const kAllocators[] = {
            "vector",        "map",
            "set",           "multimap",
            "multiset",      "unordered_map",
            "unordered_set", "unordered_multimap",
            "unordered_multiset", "string",
            "deque",         "list",
            "function",      "make_unique",
            "make_shared"};
        const auto code = codeTokens(scan);
        // A marker is a comment whose entire content is `qedm:hot` —
        // prose that merely mentions the marker is not one.
        const auto isMarker = [](const Token &t) {
            if (t.kind != TokKind::Comment)
                return false;
            std::string body = t.text;
            if (body.rfind("//", 0) == 0)
                body = body.substr(2);
            else if (body.rfind("/*", 0) == 0) {
                body = body.substr(2);
                if (body.size() >= 2 &&
                    body.compare(body.size() - 2, 2, "*/") == 0)
                    body = body.substr(0, body.size() - 2);
            }
            const auto first = body.find_first_not_of(" \t\r\n");
            if (first == std::string::npos)
                return false;
            const auto last = body.find_last_not_of(" \t\r\n");
            return body.substr(first, last - first + 1) == "qedm:hot";
        };
        std::vector<int> markers;
        for (const Token &t : scan.tokens) {
            if (isMarker(t))
                markers.push_back(t.end_line);
        }
        for (const int marker : markers) {
            // The marked function body: first `{` past the marker,
            // brace-matched.
            std::size_t open = code.size();
            for (std::size_t i = 0; i < code.size(); ++i) {
                if (scan.tokens[code[i]].line > marker &&
                    isPunct(scan.tokens[code[i]], "{")) {
                    open = i;
                    break;
                }
            }
            if (open == code.size())
                continue;
            int depth = 0;
            for (std::size_t i = open; i < code.size(); ++i) {
                const Token &t = scan.tokens[code[i]];
                if (isPunct(t, "{")) {
                    ++depth;
                    continue;
                }
                if (isPunct(t, "}")) {
                    if (--depth == 0)
                        break;
                    continue;
                }
                std::string hit;
                if (isIdent(t, "new"))
                    hit = "new";
                for (const char *name : kAllocators) {
                    if (stdQualified(scan, code, i, name))
                        hit = std::string("std::") + name;
                }
                if (!hit.empty()) {
                    out.push_back(Finding{
                        scan.rel_path, t.line, {},
                        hit +
                            " allocates inside a `qedm:hot` "
                            "function; preallocate in the search "
                            "plan/worker and reuse scratch buffers "
                            "(DESIGN.md §18)",
                        {}, 0});
                }
            }
        }
    }
};

} // namespace

RuleProfile
profileFor(const std::string &rel_path)
{
    RuleProfile p;
    if (underDir(rel_path, "src")) {
        p.assertDiscipline = true;
        p.stdoutDiscipline = true;
        p.denseDistance = true;
        p.localStatic = true;
        p.wallClock = true;
    }
    if (underDir(rel_path, "src/core") ||
        underDir(rel_path, "src/transpile") ||
        underDir(rel_path, "src/sim")) {
        p.unorderedIteration = true;
    }
    if (underDir(rel_path, "src/core") ||
        underDir(rel_path, "src/transpile") ||
        underDir(rel_path, "src/stats")) {
        p.floatAccumulate = true;
    }
    if (rel_path.rfind("src/common/rng", 0) == 0) {
        p.rngDiscipline = false; // the one sanctioned engine home
        p.timeSeed = false;
    }
    // The batched trajectory kernels never draw: decisions arrive
    // pre-sampled (sim/shot_plan.hpp). shot_plan itself is the
    // sanctioned bridge and stays exempt.
    if (rel_path.rfind("src/sim/batched", 0) == 0 ||
        rel_path.rfind("src/sim/lane_kernels", 0) == 0) {
        p.rngInKernel = true;
    }
    // The `// qedm:hot` inner loops of the placement search and VF2
    // matcher are preallocated by design (DESIGN.md §18).
    if (underDir(rel_path, "src/transpile"))
        p.hotPathAlloc = true;
    if (rel_path.rfind("src/transpile/distances", 0) == 0)
        p.denseDistance = false; // the provider's own home
    if (rel_path.rfind("src/runtime/clock", 0) == 0) {
        p.wallClockExemptReason =
            "the sanctioned Clock implementation: the one place the "
            "real steady_clock is read";
    }
    return p;
}

RuleRegistry::RuleRegistry()
{
    add(std::make_unique<RngDisciplineRule>());
    add(std::make_unique<RngInKernelRule>());
    add(std::make_unique<TimeSeedRule>());
    add(std::make_unique<WallClockRule>());
    add(std::make_unique<AssertDisciplineRule>());
    add(std::make_unique<StdoutDisciplineRule>());
    add(std::make_unique<PragmaOnceRule>());
    add(std::make_unique<NakedNewRule>());
    add(std::make_unique<DenseDistanceRule>());
    add(std::make_unique<UnorderedIterationRule>());
    add(std::make_unique<LocalStaticRule>());
    add(std::make_unique<FloatAccumulateRule>());
    add(std::make_unique<HotPathAllocRule>());
    document("layering",
             "module includes must follow the DESIGN.md layer DAG");
    document("include-cycle",
             "the quoted-include graph must be acyclic");
    document("stale-baseline",
             "baseline entries must match a current finding; stale "
             "fingerprints are rejected");
    document("io", "scanned files must be readable");
}

void
RuleRegistry::add(std::unique_ptr<FileRule> rule)
{
    docs_.emplace_back(rule->name(), rule->description());
    file_rules_.push_back(std::move(rule));
}

void
RuleRegistry::document(const std::string &name,
                       const std::string &description)
{
    docs_.emplace_back(name, description);
}

const RuleRegistry &
RuleRegistry::instance()
{
    static const RuleRegistry registry;
    return registry;
}

} // namespace qedm::analyze
