#include "qedm_analyze/baseline.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <tuple>

#include "qedm_analyze/json.hpp"

namespace qedm::analyze {

namespace {

std::uint64_t
fnv1a(std::uint64_t h, const std::string &s)
{
    for (const char c : s) {
        h ^= static_cast<unsigned char>(c);
        h *= 1099511628211ULL;
    }
    h ^= 0xff; // field separator so ("ab","c") != ("a","bc")
    h *= 1099511628211ULL;
    return h;
}

using Key = std::tuple<std::string, std::string, std::string, int>;

Key
keyOf(const BaselineEntry &e)
{
    return {e.rule, e.file, e.context, e.ordinal};
}

Key
keyOf(const Finding &f)
{
    return {f.rule, f.file, f.context, f.ordinal};
}

} // namespace

std::uint64_t
fingerprintHash(const std::string &rule, const std::string &file,
                const std::string &context, int ordinal)
{
    std::uint64_t h = 14695981039346656037ULL;
    h = fnv1a(h, rule);
    h = fnv1a(h, file);
    h = fnv1a(h, context);
    h = fnv1a(h, std::to_string(ordinal));
    return h;
}

std::string
fingerprintHex(const Finding &f)
{
    char buf[24];
    std::snprintf(buf, sizeof buf, "%016llx",
                  static_cast<unsigned long long>(fingerprintHash(
                      f.rule, f.file, f.context, f.ordinal)));
    return buf;
}

bool
loadBaseline(const std::string &path, Baseline &out,
             std::string &error)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        error = "cannot open baseline file " + path;
        return false;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    std::string parse_error;
    const auto root = parseJson(buffer.str(), parse_error);
    if (!root) {
        error = path + ": " + parse_error;
        return false;
    }
    const JsonValue *version = root->get("version");
    if (version == nullptr ||
        version->kind != JsonValue::Kind::Number ||
        version->number != 1.0) {
        error = path + ": unsupported baseline version";
        return false;
    }
    const JsonValue *entries = root->get("entries");
    if (entries == nullptr ||
        entries->kind != JsonValue::Kind::Array) {
        error = path + ": missing entries array";
        return false;
    }
    using StringField =
        std::pair<const char *, std::string BaselineEntry::*>;
    static const StringField kStringFields[] = {
        {"rule", &BaselineEntry::rule},
        {"file", &BaselineEntry::file},
        {"context", &BaselineEntry::context},
        {"justification", &BaselineEntry::justification}};
    for (const auto &item : entries->array) {
        BaselineEntry e;
        for (const auto &[field, member] : kStringFields) {
            const JsonValue *v = item->get(field);
            if (v == nullptr || v->kind != JsonValue::Kind::String) {
                error = path + ": entry missing string field '" +
                        std::string(field) + "'";
                return false;
            }
            e.*member = v->string;
        }
        if (const JsonValue *ord = item->get("ordinal");
            ord != nullptr && ord->kind == JsonValue::Kind::Number)
            e.ordinal = static_cast<int>(ord->number);
        if (e.justification.empty() ||
            e.justification.rfind("TODO", 0) == 0) {
            error = path + ": entry for " + e.file + " [" + e.rule +
                    "] has no justification; every suppression "
                    "must say why the finding is safe";
            return false;
        }
        out.entries.push_back(std::move(e));
    }
    return true;
}

std::string
writeBaseline(const std::vector<Finding> &findings)
{
    std::vector<Finding> sorted = findings;
    std::sort(sorted.begin(), sorted.end(), findingLess);
    std::ostringstream out;
    out << "{\n  \"version\": 1,\n  \"entries\": [";
    bool first = true;
    for (const Finding &f : sorted) {
        if (f.rule == "stale-baseline")
            continue; // never baseline the baseline's own hygiene
        out << (first ? "" : ",") << "\n    {\n"
            << "      \"rule\": \"" << jsonEscape(f.rule) << "\",\n"
            << "      \"file\": \"" << jsonEscape(f.file) << "\",\n"
            << "      \"context\": \"" << jsonEscape(f.context)
            << "\",\n"
            << "      \"ordinal\": " << f.ordinal << ",\n"
            << "      \"fingerprint\": \"" << fingerprintHex(f)
            << "\",\n"
            << "      \"justification\": \"TODO: justify (found at "
            << jsonEscape(f.file) << ":" << f.line << ")\"\n    }";
        first = false;
    }
    out << "\n  ]\n}\n";
    return out.str();
}

std::vector<Finding>
applyBaseline(const std::vector<Finding> &findings,
              const Baseline &baseline, int &suppressed)
{
    std::map<Key, const BaselineEntry *> index;
    std::map<Key, bool> used;
    for (const BaselineEntry &e : baseline.entries) {
        index[keyOf(e)] = &e;
        used[keyOf(e)] = false;
    }
    std::vector<Finding> kept;
    suppressed = 0;
    for (const Finding &f : findings) {
        const auto it = index.find(keyOf(f));
        if (it != index.end()) {
            used[it->first] = true;
            ++suppressed;
        } else {
            kept.push_back(f);
        }
    }
    for (const auto &[key, was_used] : used) {
        if (was_used)
            continue;
        const BaselineEntry &e = *index[key];
        kept.push_back(Finding{
            e.file, 0, "stale-baseline",
            "baseline entry [" + e.rule + "] with context '" +
                e.context +
                "' matches no current finding; the code it "
                "suppressed has changed — delete or re-justify the "
                "entry",
            e.context, e.ordinal});
    }
    return kept;
}

} // namespace qedm::analyze
