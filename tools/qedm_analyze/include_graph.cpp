#include "qedm_analyze/include_graph.hpp"

#include <functional>
#include <map>

namespace qedm::analyze {

namespace {

/**
 * The layer DAG: module → modules it may include. Matches DESIGN.md
 * §5/§15 and the dependency edges the build actually links today;
 * growing a module's dependencies means editing this table in the
 * same PR. Modules absent from the table (and files directly under
 * src/) carry no constraint.
 */
const std::map<std::string, std::set<std::string>> &
allowedDeps()
{
    static const std::map<std::string, std::set<std::string>> table = {
        {"common", {}},
        {"stats", {"common"}},
        {"circuit", {"common"}},
        {"hw", {"common"}},
        {"runtime", {"common"}},
        // resilience reaches down to stats (journaled batch counts)
        // and check (structured journal-corruption errors); see the
        // crash-safe journal design in DESIGN.md.
        {"resilience", {"common", "runtime", "stats", "check"}},
        {"analysis", {"common", "stats"}},
        {"check", {"common", "circuit", "hw"}},
        {"sim", {"common", "circuit", "hw", "stats"}},
        {"variational", {"common", "circuit", "hw", "stats"}},
        // transpile uses runtime for the injectable wall clock that
        // times its passes (runtime/clock.hpp).
        {"transpile", {"common", "circuit", "hw", "check", "runtime"}},
        {"benchmarks", {"common", "circuit", "sim"}},
        {"core",
         {"common", "stats", "circuit", "hw", "check", "sim",
          "transpile", "benchmarks", "resilience", "runtime"}},
    };
    return table;
}

/** Module of a scanned file: "src/transpile/x.hpp" → "transpile";
 *  files outside src/ or directly under it have no module. */
std::string
moduleOf(const std::string &rel_path)
{
    if (rel_path.rfind("src/", 0) != 0)
        return {};
    const std::size_t start = 4;
    const std::size_t slash = rel_path.find('/', start);
    if (slash == std::string::npos)
        return {};
    return rel_path.substr(start, slash - start);
}

/** Module of an include target: "transpile/router.hpp" →
 *  "transpile"; same-directory includes have no module. */
std::string
targetModule(const std::string &target)
{
    const std::size_t slash = target.find('/');
    if (slash == std::string::npos)
        return {};
    return target.substr(0, slash);
}

std::string
dirname(const std::string &rel_path)
{
    const std::size_t slash = rel_path.find_last_of('/');
    return slash == std::string::npos ? std::string()
                                      : rel_path.substr(0, slash);
}

} // namespace

void
collectIncludes(const FileScan &scan, std::vector<IncludeEdge> &out)
{
    for (std::size_t i = 0; i + 1 < scan.tokens.size(); ++i) {
        const Token &d = scan.tokens[i];
        if (d.kind != TokKind::PPDirective || d.text != "include")
            continue;
        // The header-name token follows immediately (comments
        // between `#include` and the name are legal but unheard-of;
        // skip them if present).
        std::size_t j = i + 1;
        while (j < scan.tokens.size() &&
               scan.tokens[j].kind == TokKind::Comment)
            ++j;
        if (j < scan.tokens.size() &&
            scan.tokens[j].kind == TokKind::PPHeaderQuote) {
            out.push_back(IncludeEdge{scan.rel_path,
                                      scan.tokens[j].line,
                                      scan.tokens[j].text});
        }
    }
}

void
analyzeIncludeGraph(const std::vector<IncludeEdge> &edges,
                    const std::set<std::string> &scanned,
                    std::vector<Finding> &out)
{
    const auto &allowed = allowedDeps();
    std::map<std::string, std::vector<std::string>> graph;
    for (const IncludeEdge &e : edges) {
        const std::string from_mod = moduleOf(e.from);
        const std::string to_mod = targetModule(e.target);
        if (!from_mod.empty() && !to_mod.empty() &&
            from_mod != to_mod) {
            const auto it = allowed.find(from_mod);
            if (it != allowed.end() &&
                it->second.count(to_mod) == 0) {
                out.push_back(Finding{
                    e.from, e.line, "layering",
                    "src/" + from_mod + " may not include " + to_mod +
                        "/ headers (" + e.target +
                        "); the layer DAG allows no such edge — see "
                        "DESIGN.md and "
                        "tools/qedm_analyze/include_graph.cpp",
                    e.target, 0});
            }
        }
        // Cycle graph: resolve against src/ (project convention) and
        // the including file's own directory.
        for (const std::string &resolved :
             {"src/" + e.target, dirname(e.from) + "/" + e.target}) {
            if (scanned.count(resolved) != 0) {
                graph[e.from].push_back(resolved);
                break;
            }
        }
    }

    // Iterative-enough three-color DFS (recursion depth is bounded by
    // include-chain length); a back edge to an in-progress node
    // closes a cycle, reported once with the full path.
    std::map<std::string, int> color; // 0 white, 1 gray, 2 black
    std::vector<std::string> stack;
    std::set<std::string> reported;
    std::function<void(const std::string &)> visit =
        [&](const std::string &node) {
            color[node] = 1;
            stack.push_back(node);
            for (const std::string &next : graph[node]) {
                if (color[next] == 1) {
                    std::string path = next;
                    for (std::size_t i = stack.size(); i-- > 0;) {
                        path += " -> " + stack[i];
                        if (stack[i] == next)
                            break;
                    }
                    if (reported.insert(path).second) {
                        out.push_back(
                            Finding{node, 0, "include-cycle",
                                    "include cycle: " + path, path,
                                    0});
                    }
                } else if (color[next] == 0) {
                    visit(next);
                }
            }
            stack.pop_back();
            color[node] = 2;
        };
    for (const auto &[node, _] : graph) {
        if (color[node] == 0)
            visit(node);
    }
}

} // namespace qedm::analyze
