/**
 * @file
 * Minimal JSON support for qedm_analyze: a recursive-descent parser
 * covering the subset the baseline file uses (objects, arrays,
 * strings, integers, booleans, null) and an escaper for the SARIF
 * and baseline writers. Deliberately tiny — the analyzer must stay
 * free of external dependencies so the lint gate builds before
 * anything else does.
 */

#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

namespace qedm::analyze {

/** A parsed JSON value (tree-owning). */
struct JsonValue
{
    enum class Kind
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object
    };
    Kind kind = Kind::Null;
    bool boolean = false;
    double number = 0.0;
    std::string string;
    std::vector<std::unique_ptr<JsonValue>> array;
    // Key order preserved for deterministic round-trips.
    std::vector<std::pair<std::string, std::unique_ptr<JsonValue>>>
        object;

    /** Object member lookup; nullptr when absent or not an object. */
    const JsonValue *get(const std::string &key) const;
};

/**
 * Parse @p text. Returns nullptr and fills @p error on malformed
 * input (with a byte offset), never throws.
 */
std::unique_ptr<JsonValue> parseJson(const std::string &text,
                                     std::string &error);

/** Escape @p s for embedding inside a JSON string literal. */
std::string jsonEscape(const std::string &s);

} // namespace qedm::analyze
