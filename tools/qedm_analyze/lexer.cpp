#include "qedm_analyze/lexer.hpp"

#include <cctype>

namespace qedm::analyze {

namespace {

/**
 * Cursor over the raw text that splices backslash-newline
 * continuations (translation phase 2) while tracking physical line
 * and column for diagnostics.
 */
class Cursor
{
  public:
    explicit Cursor(const std::string &text) : text_(text) { splice(); }

    bool atEnd() const { return pos_ >= text_.size(); }
    char peek(std::size_t ahead = 0) const
    {
        // Peeking past a continuation is only needed for two-char
        // operators; splice() guarantees pos_ itself never sits on
        // one, and a continuation between the two chars of `::` or
        // `//` is pathological enough to ignore.
        const std::size_t p = pos_ + ahead;
        return p < text_.size() ? text_[p] : '\0';
    }
    int line() const { return line_; }
    int col() const { return col_; }

    void advance()
    {
        if (atEnd())
            return;
        if (text_[pos_] == '\n') {
            ++line_;
            col_ = 1;
        } else {
            ++col_;
        }
        ++pos_;
        splice();
    }

    /** Advance without splicing — raw string bodies take every
     *  character literally, including backslash-newline. */
    void advanceRaw()
    {
        if (atEnd())
            return;
        if (text_[pos_] == '\n') {
            ++line_;
            col_ = 1;
        } else {
            ++col_;
        }
        ++pos_;
    }

  private:
    void splice()
    {
        while (pos_ + 1 < text_.size() && text_[pos_] == '\\' &&
               (text_[pos_ + 1] == '\n' ||
                (text_[pos_ + 1] == '\r' && pos_ + 2 < text_.size() &&
                 text_[pos_ + 2] == '\n'))) {
            pos_ += text_[pos_ + 1] == '\r' ? 3 : 2;
            ++line_;
            col_ = 1;
        }
    }

    const std::string &text_;
    std::size_t pos_ = 0;
    int line_ = 1;
    int col_ = 1;
};

bool
isStringPrefix(const std::string &ident)
{
    return ident == "u8" || ident == "u" || ident == "U" || ident == "L";
}

bool
isRawStringPrefix(const std::string &ident)
{
    return ident == "R" || ident == "u8R" || ident == "uR" ||
           ident == "UR" || ident == "LR";
}

} // namespace

bool
isIdentChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

std::vector<Token>
tokenize(const std::string &text)
{
    std::vector<Token> out;
    Cursor cur(text);
    bool at_line_start = true; // only whitespace seen on this line
    bool in_directive = false; // inside a preprocessor logical line
    bool want_header = false;  // directive was #include; next <>/"" is
                               // a header-name
    int directive_line = 0;

    auto start_token = [&](TokKind kind) {
        Token t;
        t.kind = kind;
        t.line = cur.line();
        t.end_line = cur.line();
        t.col = cur.col();
        return t;
    };

    auto lex_string_body = [&](Token &t, char terminator) {
        // cur sits on the opening quote
        cur.advance();
        while (!cur.atEnd() && cur.peek() != terminator &&
               cur.peek() != '\n') {
            if (cur.peek() == '\\') {
                t.text += cur.peek();
                cur.advance();
                if (cur.atEnd())
                    break;
            }
            t.text += cur.peek();
            cur.advance();
        }
        if (!cur.atEnd() && cur.peek() == terminator)
            cur.advance(); // closing quote
        t.end_line = cur.line();
    };

    auto lex_raw_string = [&](Token &t) {
        // cur sits on the opening quote of R"delim( ... )delim"
        cur.advanceRaw();
        std::string delim;
        while (!cur.atEnd() && cur.peek() != '(' && cur.peek() != '\n')
        {
            delim += cur.peek();
            cur.advanceRaw();
        }
        if (!cur.atEnd())
            cur.advanceRaw(); // '('
        const std::string close = ")" + delim + "\"";
        std::string body;
        while (!cur.atEnd()) {
            body += cur.peek();
            cur.advanceRaw();
            if (body.size() >= close.size() &&
                body.compare(body.size() - close.size(), close.size(),
                             close) == 0) {
                body.resize(body.size() - close.size());
                break;
            }
        }
        t.text = body;
        t.end_line = cur.line();
    };

    while (!cur.atEnd()) {
        const char c = cur.peek();

        if (c == '\n') {
            at_line_start = true;
            in_directive = false;
            want_header = false;
            cur.advance();
            continue;
        }
        if (std::isspace(static_cast<unsigned char>(c)) != 0) {
            cur.advance();
            continue;
        }

        // Comments (legal inside directives too).
        if (c == '/' && cur.peek(1) == '/') {
            Token t = start_token(TokKind::Comment);
            while (!cur.atEnd() && cur.peek() != '\n') {
                t.text += cur.peek();
                cur.advance();
            }
            t.end_line = cur.line();
            out.push_back(std::move(t));
            continue;
        }
        if (c == '/' && cur.peek(1) == '*') {
            Token t = start_token(TokKind::Comment);
            t.text += cur.peek();
            cur.advance();
            t.text += cur.peek();
            cur.advance();
            // C++ block comments do not nest: the first */ closes.
            while (!cur.atEnd()) {
                if (cur.peek() == '*' && cur.peek(1) == '/') {
                    t.text += "*/";
                    cur.advance();
                    cur.advance();
                    break;
                }
                t.text += cur.peek();
                cur.advance();
            }
            t.end_line = cur.line();
            out.push_back(std::move(t));
            continue;
        }

        // Preprocessor directive at line start.
        if (c == '#' && at_line_start) {
            cur.advance();
            while (!cur.atEnd() &&
                   (cur.peek() == ' ' || cur.peek() == '\t'))
                cur.advance();
            Token t = start_token(TokKind::PPDirective);
            while (!cur.atEnd() && isIdentChar(cur.peek())) {
                t.text += cur.peek();
                cur.advance();
            }
            in_directive = true;
            directive_line = t.line;
            want_header = t.text == "include" || t.text == "import" ||
                          t.text == "include_next";
            at_line_start = false;
            out.push_back(std::move(t));
            continue;
        }

        // Header-name after #include: "path" or <path>.
        if (want_header && in_directive && cur.line() >= directive_line &&
            (c == '"' || c == '<')) {
            const char term = c == '"' ? '"' : '>';
            Token t = start_token(c == '"' ? TokKind::PPHeaderQuote
                                           : TokKind::PPHeaderAngle);
            cur.advance();
            while (!cur.atEnd() && cur.peek() != term &&
                   cur.peek() != '\n') {
                t.text += cur.peek();
                cur.advance();
            }
            if (!cur.atEnd() && cur.peek() == term)
                cur.advance();
            t.end_line = cur.line();
            want_header = false;
            at_line_start = false;
            out.push_back(std::move(t));
            continue;
        }

        at_line_start = false;

        // Identifiers — possibly a string-literal prefix.
        if (std::isalpha(static_cast<unsigned char>(c)) != 0 ||
            c == '_') {
            Token t = start_token(TokKind::Identifier);
            while (!cur.atEnd() && isIdentChar(cur.peek())) {
                t.text += cur.peek();
                cur.advance();
            }
            if (!cur.atEnd() && cur.peek() == '"' &&
                isRawStringPrefix(t.text)) {
                t.kind = TokKind::RawString;
                t.text.clear();
                lex_raw_string(t);
                out.push_back(std::move(t));
                continue;
            }
            if (!cur.atEnd() && cur.peek() == '"' &&
                isStringPrefix(t.text)) {
                t.kind = TokKind::String;
                t.text.clear();
                lex_string_body(t, '"');
                out.push_back(std::move(t));
                continue;
            }
            if (!cur.atEnd() && cur.peek() == '\'' &&
                isStringPrefix(t.text)) {
                t.kind = TokKind::CharLit;
                t.text.clear();
                lex_string_body(t, '\'');
                out.push_back(std::move(t));
                continue;
            }
            out.push_back(std::move(t));
            continue;
        }

        // Numbers (pp-number: digits, separators, exponents, suffix
        // letters, and a leading dot).
        if (std::isdigit(static_cast<unsigned char>(c)) != 0 ||
            (c == '.' &&
             std::isdigit(static_cast<unsigned char>(cur.peek(1))) !=
                 0)) {
            Token t = start_token(TokKind::Number);
            while (!cur.atEnd()) {
                const char d = cur.peek();
                if (isIdentChar(d) || d == '.') {
                    t.text += d;
                    cur.advance();
                    continue;
                }
                if (d == '\'' && isIdentChar(cur.peek(1))) {
                    t.text += d; // digit separator
                    cur.advance();
                    continue;
                }
                if ((d == '+' || d == '-') && !t.text.empty()) {
                    const char e = t.text.back();
                    if (e == 'e' || e == 'E' || e == 'p' || e == 'P') {
                        t.text += d;
                        cur.advance();
                        continue;
                    }
                }
                break;
            }
            t.end_line = cur.line();
            out.push_back(std::move(t));
            continue;
        }

        // String and char literals.
        if (c == '"') {
            Token t = start_token(TokKind::String);
            lex_string_body(t, '"');
            out.push_back(std::move(t));
            continue;
        }
        if (c == '\'') {
            Token t = start_token(TokKind::CharLit);
            lex_string_body(t, '\'');
            out.push_back(std::move(t));
            continue;
        }

        // Punctuation; keep `::` and `->` whole for qualified-name
        // and member matching.
        Token t = start_token(TokKind::Punct);
        t.text += c;
        if ((c == ':' && cur.peek(1) == ':') ||
            (c == '-' && cur.peek(1) == '>')) {
            cur.advance();
            t.text += cur.peek();
        }
        cur.advance();
        t.end_line = t.line;
        out.push_back(std::move(t));
    }
    return out;
}

} // namespace qedm::analyze
