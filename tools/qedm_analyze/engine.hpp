/**
 * @file
 * The qedm_analyze driver: walks the scanned trees (src/, tools/,
 * bench/, examples/), tokenizes and rule-checks every file in
 * parallel on a runtime::ThreadPool, then runs the serial
 * whole-graph phases (include layering/cycles, baseline matching,
 * ordinal assignment) and renders text or SARIF.
 *
 * Determinism contract: output is byte-identical at any --jobs. The
 * file list is sorted before the parallel scan, per-file findings
 * land in a slot indexed by file (never a shared vector), the merge
 * walks slots in order, and every late phase is serial — the same
 * slot-ordered pattern the ensemble materializer uses (DESIGN.md
 * §9). A determinism test diffs --jobs 1 vs --jobs 4 output.
 */

#pragma once

#include <string>
#include <vector>

#include "qedm_analyze/baseline.hpp"
#include "qedm_analyze/rule.hpp"

namespace qedm::analyze {

struct AnalyzeOptions
{
    /** Scan root (the repository checkout). */
    std::string root = ".";
    /** Worker threads for the per-file scan; >= 1. */
    int jobs = 1;
    /**
     * Baseline path; empty auto-detects <root>/tools/
     * analyze_baseline.json, the literal "none" disables baselining.
     */
    std::string baseline;
};

/** In-memory source file (tests feed these directly). */
struct SourceFile
{
    std::string rel_path;
    std::string text;
};

struct Report
{
    /** Unsuppressed findings, deterministically sorted. */
    std::vector<Finding> findings;
    int files_scanned = 0;
    int suppressed = 0;
    /** Fatal I/O or option errors (exit 2); empty otherwise. */
    std::string error;
};

/** Analyze in-memory sources (no filesystem). @p baseline may be
 *  nullptr. */
Report analyzeSources(const std::vector<SourceFile> &sources,
                      const Baseline *baseline, int jobs);

/** Analyze the tree under opts.root. */
Report analyzeTree(const AnalyzeOptions &opts);

/** Text rendering: one `file:line: [rule] message` line per finding
 *  plus a summary line. */
std::string renderText(const Report &report);

} // namespace qedm::analyze
