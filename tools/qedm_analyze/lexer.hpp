/**
 * @file
 * A real C++ tokenizer for qedm_analyze. One pass turns a source file
 * into a token stream that every rule shares, replacing qedm_lint's
 * per-rule comment-stripping regex scans:
 *
 *   - comments become Comment tokens (start and end line preserved,
 *     so rules can look for adjacent justification comments);
 *   - string/char literals become single tokens (their *contents*
 *     can never trip an identifier rule), including raw strings
 *     (`R"delim(...)delim"` with encoding prefixes) and escape
 *     sequences;
 *   - preprocessor directives are recognised at line start (after a
 *     backslash-continuation-aware scan), with `#include` targets
 *     emitted as dedicated header-name tokens — quoted and angled
 *     forms distinguished — so the include-graph analyzer needs no
 *     second parse;
 *   - backslash-newline line continuations splice everywhere (as the
 *     phase-2 translation the standard prescribes) while physical
 *     line numbers stay exact for diagnostics;
 *   - digit separators (1'000) never open char literals, and `::` is
 *     a single punctuator so qualified-name matching is trivial.
 */

#pragma once

#include <string>
#include <vector>

namespace qedm::analyze {

enum class TokKind
{
    Identifier,  ///< identifiers and keywords (no keyword table needed)
    Number,      ///< numeric literal, digit separators included
    String,      ///< ordinary string literal (token text excludes quotes)
    RawString,   ///< raw string literal (token text is the raw contents)
    CharLit,     ///< character literal
    Comment,     ///< // or /* */ comment, full text
    Punct,       ///< punctuation; `::` and `->` are single tokens
    PPDirective, ///< directive name token (`include`, `pragma`, ...)
    PPHeaderQuote, ///< `"path"` after #include (text is the inner path)
    PPHeaderAngle, ///< `<path>` after #include (text is the inner path)
};

struct Token
{
    TokKind kind = TokKind::Punct;
    std::string text;
    int line = 0;     ///< 1-based physical line of the token start
    int end_line = 0; ///< last physical line (differs for block comments)
    int col = 0;      ///< 1-based column of the token start
};

/** Tokenize one translation unit. Never throws on malformed input —
 *  unterminated literals/comments simply end at EOF. */
std::vector<Token> tokenize(const std::string &text);

/** Is @p c an identifier character? */
bool isIdentChar(char c);

} // namespace qedm::analyze
