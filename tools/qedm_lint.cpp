/**
 * @file
 * qedm_lint — standalone repository linter enforcing qedm's project
 * invariants over `src/`, `tools/`, `bench/`, and `examples/`:
 *
 *   - rng-discipline:    no std::rand / std::mt19937 /
 *                        std::random_device / srand outside
 *                        src/common/rng (all randomness must flow
 *                        through the deterministic SeedSequence/Rng
 *                        streams, or parallel runs stop being
 *                        bit-identical);
 *   - assert-discipline: no raw assert( in library code — invariants
 *                        use QEDM_ASSERT / QEDM_REQUIRE so they throw
 *                        typed, testable diagnostics in every build
 *                        type;
 *   - stdout-discipline: no std::cout in src/ (libraries return data;
 *                        only tools/, bench/, and examples/ talk to
 *                        stdout);
 *   - pragma-once:       every header starts with #pragma once;
 *   - naked-new:         no naked `new` (ownership goes through
 *                        containers and smart pointers);
 *   - dense-distance:    no direct dense distance-matrix access
 *                        (distanceMatrix / sharedDistanceMatrix) in
 *                        library code outside src/transpile/distances —
 *                        consumers go through sharedDistanceProvider,
 *                        which picks a dense or on-demand
 *                        implementation by device size, so a 433-qubit
 *                        topology never allocates an O(n^2) matrix;
 *   - layering:          src/check (the static verifier layer) must
 *                        not include transpile/ headers — the checkers
 *                        validate the transpiler's *output* and must
 *                        stay independent of its implementation;
 *   - include-cycle:     the quoted-include graph over the scanned
 *                        trees must be acyclic (#pragma once merely
 *                        hides a cycle; it does not make one sound).
 *
 * Each scanned tree gets a rule profile: src/ runs every rule;
 * tools/, bench/, and examples/ relax assert- and stdout-discipline
 * (drivers print and may use raw assert in demo code) but keep
 * rng-discipline, pragma-once, and naked-new — a benchmark that draws
 * from std::mt19937 silently breaks reproducibility, which is exactly
 * the regression this linter exists to catch.
 *
 * Comments and string/char literals are stripped before matching, so
 * prose and diagnostic text never trip a rule (including this file's
 * own rule table). Run in CI over the repo root; also registered as
 * ctest cases `lint_repo` (must pass) and `lint_fixture` (a seeded
 * violation set that must fail).
 *
 * Usage: qedm_lint [root]   (default root: current directory)
 * Exit:  0 clean, 1 violations found, 2 usage or I/O error.
 */

#include <cctype>
#include <filesystem>
#include <fstream>
#include <functional>
#include <iostream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace {

namespace fs = std::filesystem;

struct Violation
{
    std::string file;
    int line = 0;
    std::string rule;
    std::string message;
};

bool
isIdentChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/**
 * Blank out comments and string/char literals, preserving the line
 * structure so diagnostics keep their line numbers. Replaced
 * characters become spaces.
 */
std::string
stripCommentsAndStrings(const std::string &text)
{
    enum class State
    {
        Code,
        LineComment,
        BlockComment,
        StringLit,
        CharLit,
    };
    std::string out = text;
    State state = State::Code;
    for (std::size_t i = 0; i < text.size(); ++i) {
        const char c = text[i];
        const char next = i + 1 < text.size() ? text[i + 1] : '\0';
        const char prev = i > 0 ? text[i - 1] : '\0';
        switch (state) {
          case State::Code:
            if (c == '/' && next == '/') {
                state = State::LineComment;
                out[i] = ' ';
            } else if (c == '/' && next == '*') {
                state = State::BlockComment;
                out[i] = ' ';
            } else if (c == '"') {
                state = State::StringLit;
                out[i] = ' ';
            } else if (c == '\'' && !(isIdentChar(prev) &&
                                      isIdentChar(next))) {
                // Skip digit separators (1'000) and u8'' prefixes by
                // requiring a non-identifier character on one side.
                state = State::CharLit;
                out[i] = ' ';
            }
            break;
          case State::LineComment:
            if (c != '\n')
                out[i] = ' ';
            else
                state = State::Code;
            break;
          case State::BlockComment:
            if (c == '*' && next == '/') {
                out[i] = ' ';
                out[i + 1] = ' ';
                ++i;
                state = State::Code;
            } else if (c != '\n') {
                out[i] = ' ';
            }
            break;
          case State::StringLit:
          case State::CharLit:
            if (c == '\\' && next != '\0') {
                out[i] = ' ';
                if (next != '\n')
                    out[i + 1] = ' ';
                ++i;
            } else if ((state == State::StringLit && c == '"') ||
                       (state == State::CharLit && c == '\'')) {
                out[i] = ' ';
                state = State::Code;
            } else if (c != '\n') {
                out[i] = ' ';
            }
            break;
        }
    }
    return out;
}

/** Does @p line contain @p token bounded by non-identifier chars? */
bool
containsToken(const std::string &line, const std::string &token,
              bool require_call = false)
{
    std::size_t pos = 0;
    while ((pos = line.find(token, pos)) != std::string::npos) {
        const bool left_ok =
            pos == 0 || !isIdentChar(line[pos - 1]);
        std::size_t end = pos + token.size();
        const bool right_ok =
            end >= line.size() || !isIdentChar(line[end]);
        if (left_ok && right_ok) {
            if (!require_call)
                return true;
            while (end < line.size() &&
                   std::isspace(static_cast<unsigned char>(line[end]))) {
                ++end;
            }
            if (end < line.size() && line[end] == '(')
                return true;
        }
        pos += token.size();
    }
    return false;
}

/** Is @p path inside the top-level directory @p dir of the scan root? */
bool
underDir(const std::string &rel_path, const std::string &dir)
{
    return rel_path.rfind(dir + "/", 0) == 0;
}

/** Which rules apply to one file, decided by its top-level tree. */
struct RuleProfile
{
    bool rngDiscipline = true;
    bool assertDiscipline = false;
    bool stdoutDiscipline = false;
    bool pragmaOnce = true;
    bool nakedNew = true;
    bool denseDistance = false;
};

/**
 * Per-directory rule profiles. src/ is library code and runs every
 * rule; the driver trees (tools/, bench/, examples/) legitimately
 * print and assert, but still may not draw raw randomness or leak
 * naked ownership.
 */
RuleProfile
profileFor(const std::string &rel_path)
{
    RuleProfile profile;
    if (underDir(rel_path, "src")) {
        profile.assertDiscipline = true;
        profile.stdoutDiscipline = true;
        profile.denseDistance = true;
    }
    if (rel_path.rfind("src/common/rng", 0) == 0)
        profile.rngDiscipline = false; // the one sanctioned engine home
    if (rel_path.rfind("src/transpile/distances", 0) == 0)
        profile.denseDistance = false; // the provider's own home
    return profile;
}

bool
isHeader(const fs::path &p)
{
    const std::string ext = p.extension().string();
    return ext == ".hpp" || ext == ".h";
}

bool
isSource(const fs::path &p)
{
    const std::string ext = p.extension().string();
    return ext == ".cpp" || ext == ".cc" || isHeader(p);
}

/** One quoted #include directive found in a scanned file. */
struct IncludeEdge
{
    std::string from; ///< scanned file (path relative to the root)
    int line = 0;
    std::string target; ///< the include path as written
};

/**
 * Extract quoted includes from the RAW text (they live inside string
 * quotes, so this must run before literal stripping). Angle-bracket
 * includes are system headers and out of scope.
 */
void
collectIncludes(const std::string &raw, const std::string &rel_path,
                std::vector<IncludeEdge> &out)
{
    std::istringstream lines(raw);
    std::string line;
    int lineno = 0;
    while (std::getline(lines, line)) {
        ++lineno;
        std::size_t pos = line.find_first_not_of(" \t");
        if (pos == std::string::npos || line[pos] != '#')
            continue;
        pos = line.find_first_not_of(" \t", pos + 1);
        if (pos == std::string::npos ||
            line.compare(pos, 7, "include") != 0) {
            continue;
        }
        const std::size_t open = line.find('"', pos + 7);
        if (open == std::string::npos)
            continue;
        const std::size_t close = line.find('"', open + 1);
        if (close == std::string::npos)
            continue;
        out.push_back(IncludeEdge{
            rel_path, lineno,
            line.substr(open + 1, close - open - 1)});
    }
}

/**
 * Layering rules over the collected include graph:
 *  - src/check may not include transpile/ headers;
 *  - no include cycles. Quoted includes resolve against src/ (the
 *    project convention); edges into unscanned files are ignored.
 */
void
lintIncludeGraph(const std::vector<IncludeEdge> &edges,
                 const std::set<std::string> &scanned,
                 std::vector<Violation> &out)
{
    std::map<std::string, std::vector<std::string>> graph;
    for (const IncludeEdge &e : edges) {
        if (underDir(e.from, "src/check") &&
            e.target.rfind("transpile/", 0) == 0) {
            out.push_back(Violation{
                e.from, e.line, "layering",
                "src/check must not include transpile/ headers (" +
                    e.target +
                    "); the verifiers validate transpiler output "
                    "and may not depend on its implementation"});
        }
        const std::string resolved = "src/" + e.target;
        if (scanned.count(resolved))
            graph[e.from].push_back(resolved);
    }

    // Iterative three-color DFS; a back edge to an in-progress node
    // closes a cycle, reported once with the full path.
    std::map<std::string, int> color; // 0 white, 1 gray, 2 black
    std::vector<std::string> stack;
    std::set<std::string> reported;
    std::function<void(const std::string &)> visit =
        [&](const std::string &node) {
            color[node] = 1;
            stack.push_back(node);
            for (const std::string &next : graph[node]) {
                if (color[next] == 1) {
                    std::string path = next;
                    for (std::size_t i = stack.size(); i-- > 0;) {
                        path += " -> " + stack[i];
                        if (stack[i] == next)
                            break;
                    }
                    if (reported.insert(path).second) {
                        out.push_back(Violation{
                            node, 0, "include-cycle",
                            "include cycle: " + path});
                    }
                } else if (color[next] == 0) {
                    visit(next);
                }
            }
            stack.pop_back();
            color[node] = 2;
        };
    for (const auto &[node, _] : graph) {
        if (color[node] == 0)
            visit(node);
    }
}

void
lintFile(const fs::path &path, const std::string &rel_path,
         std::vector<Violation> &out, std::vector<IncludeEdge> &edges)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        out.push_back(Violation{rel_path, 0, "io",
                                "cannot open file for linting"});
        return;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    const std::string raw = buffer.str();
    collectIncludes(raw, rel_path, edges);

    const RuleProfile profile = profileFor(rel_path);
    if (profile.pragmaOnce && isHeader(path) &&
        raw.find("#pragma once") == std::string::npos) {
        out.push_back(Violation{rel_path, 1, "pragma-once",
                                "header is missing #pragma once"});
    }

    const std::string code = stripCommentsAndStrings(raw);
    std::istringstream lines(code);
    std::string line;
    int lineno = 0;
    while (std::getline(lines, line)) {
        ++lineno;
        if (profile.rngDiscipline) {
            for (const char *token :
                 {"std::mt19937", "std::rand", "std::random_device",
                  "srand"}) {
                if (containsToken(line, token)) {
                    out.push_back(Violation{
                        rel_path, lineno, "rng-discipline",
                        std::string(token) +
                            " bypasses the deterministic "
                            "SeedSequence/Rng streams; use "
                            "src/common/rng"});
                }
            }
        }
        if (profile.assertDiscipline &&
            containsToken(line, "assert", true)) {
            out.push_back(Violation{
                rel_path, lineno, "assert-discipline",
                "raw assert( in library code; use QEDM_ASSERT or "
                "QEDM_REQUIRE"});
        }
        if (profile.stdoutDiscipline &&
            containsToken(line, "std::cout")) {
            out.push_back(Violation{
                rel_path, lineno, "stdout-discipline",
                "std::cout in library code; only tools/, bench/, and "
                "examples/ write to stdout"});
        }
        if (profile.denseDistance) {
            for (const char *token :
                 {"distanceMatrix", "sharedDistanceMatrix"}) {
                if (containsToken(line, token)) {
                    out.push_back(Violation{
                        rel_path, lineno, "dense-distance",
                        std::string(token) +
                            " accesses the dense all-pairs matrix "
                            "directly; go through "
                            "sharedDistanceProvider so large devices "
                            "stay on the on-demand path"});
                }
            }
        }
        if (profile.nakedNew && containsToken(line, "new")) {
            out.push_back(Violation{
                rel_path, lineno, "naked-new",
                "naked new; use containers or std::make_unique/"
                "std::make_shared"});
        }
    }
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc > 2) {
        std::cerr << "usage: qedm_lint [root]\n";
        return 2;
    }
    const fs::path root = argc == 2 ? fs::path(argv[1]) : fs::path(".");

    std::vector<fs::path> scan_dirs;
    for (const char *dir : {"src", "tools", "bench", "examples"}) {
        if (fs::is_directory(root / dir))
            scan_dirs.push_back(root / dir);
    }
    if (scan_dirs.empty()) {
        std::cerr << "qedm_lint: no src/, tools/, bench/, or "
                     "examples/ under "
                  << root.string() << "\n";
        return 2;
    }

    std::vector<Violation> violations;
    std::vector<IncludeEdge> edges;
    std::set<std::string> scanned;
    int files_scanned = 0;
    for (const fs::path &dir : scan_dirs) {
        for (const auto &entry :
             fs::recursive_directory_iterator(dir)) {
            if (!entry.is_regular_file() || !isSource(entry.path()))
                continue;
            ++files_scanned;
            const std::string rel =
                fs::relative(entry.path(), root).generic_string();
            scanned.insert(rel);
            lintFile(entry.path(), rel, violations, edges);
        }
    }
    lintIncludeGraph(edges, scanned, violations);

    for (const Violation &v : violations) {
        std::cout << v.file << ":" << v.line << ": [" << v.rule
                  << "] " << v.message << "\n";
    }
    std::cout << "qedm_lint: " << files_scanned << " files, "
              << violations.size() << " violation(s)\n";
    return violations.empty() ? 0 : 1;
}
