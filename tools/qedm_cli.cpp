/**
 * @file
 * qedm command-line driver.
 *
 * Subcommands:
 *   list                          all built-in benchmarks
 *   show <bench>                  logical QASM + metadata
 *   compile <bench> [seed]        variation-aware compile; physical
 *                                 QASM, ESP, SWAP count
 *   candidates <bench> [seed]     ranked isomorphic placements
 *   run <bench> [seed] [shots]    baseline vs EDM vs WEDM one-shot
 *   experiment <bench> [seed]     multi-round median experiment
 *
 * `run` and `experiment` accept `--jobs N` anywhere on the line:
 * N worker threads (0 = all hardware threads, default 1). Results are
 * bit-identical for every N.
 *
 * `--sim-batch B` sets the trajectory engine's SoA lane width
 * (0 = scalar per-shot path). Throughput only — results are
 * bit-identical at every width.
 *
 * `--check` (anywhere on the line) runs the qedm::check static
 * verifier passes over every compiled program: compile/candidates
 * verify the transpiler output, run/experiment verify every ensemble
 * member of every round. Debug builds verify always; `--check` is
 * how release builds opt in.
 *
 * Resilience flags (run/experiment, anywhere on the line):
 *   --faults <spec>              enable fault injection; spec is a
 *                                comma list of key=value pairs among
 *                                dropout, staleness,
 *                                staleness-severity, transient, slow,
 *                                slow-factor, batch-ms-per-shot
 *   --fail-member <m>            force member m to drop out (repeat
 *                                for several members)
 *   --retry-max <n>              retries per shot batch (default 2)
 *   --member-deadline-ms <ms>    virtual-time budget per member
 *   --min-trials-per-member <n>  keep floor for partial results
 * Fault schedules are a pure function of the seed and the fault
 * config, so a faulted run replays bit-identically at any --jobs.
 *
 * Region flags (compile/candidates/run/experiment, anywhere on the
 * line):
 *   --region q0,q1,...           restrict placement, routing, and
 *                                measurement to the listed physical
 *                                qubits (an allowed-region mask)
 *   --region-file <path>         same, reading whitespace- or
 *                                newline-separated qubit indices
 * Omitting both uses the whole device and is bit-identical to builds
 * that predate the flags.
 *
 * Crash-safety flags (experiment only, anywhere on the line):
 *   --journal <path>         record every completed batch and round
 *                            into a crash-safe journal (fsync'd,
 *                            checksummed, append-only)
 *   --resume <path>          resume a crashed journaled run: committed
 *                            rounds and batches are restored, recorded
 *                            wall-clock fires are forced, and the
 *                            summary is bit-identical to an
 *                            uninterrupted run at any --jobs
 *   --replay-faults <path>   re-execute everything but force the
 *                            journal's recorded wall-clock fires (and
 *                            disable the live watchdog), reproducing a
 *                            watchdog-hit run bit-identically
 *   --wall-deadline-ms <ms>  real wall-clock budget per member per
 *                            round; the watchdog abandons a member
 *                            that blows it and records the fire
 * Journal progress notes print to stderr; stdout stays diffable.
 *
 * Exit code 0 on success, 1 on a usage/user error (including a
 * verifier rejection, an ensemble that lost every member, and a
 * corrupt or mismatched journal).
 */

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "analysis/report.hpp"
#include "benchmarks/benchmarks.hpp"
#include "check/check.hpp"
#include "common/error.hpp"
#include "benchmarks/extra.hpp"
#include "core/edm.hpp"
#include "core/experiment.hpp"
#include "hw/device.hpp"
#include "hw/device_view.hpp"
#include "resilience/degradation.hpp"
#include "resilience/journal.hpp"
#include "stats/metrics.hpp"
#include "transpile/transpiler.hpp"

namespace {

using namespace qedm;

std::vector<benchmarks::Benchmark>
allBenchmarks()
{
    auto suite = benchmarks::paperSuite();
    for (auto &extra : benchmarks::extraSuite())
        suite.push_back(std::move(extra));
    return suite;
}

benchmarks::Benchmark
lookup(const std::string &name)
{
    for (const auto &b : allBenchmarks()) {
        if (b.name == name)
            return b;
    }
    throw UserError("unknown benchmark `" + name +
                    "`; run `qedm_cli list`");
}

int
cmdList()
{
    analysis::Table table({"name", "description", "output", "qubits"});
    for (const auto &b : allBenchmarks()) {
        table.addRow({b.name, b.description,
                      toBitstring(b.expected, b.outputWidth),
                      std::to_string(b.circuit.numQubits())});
    }
    std::cout << table.toString();
    return 0;
}

int
cmdShow(const std::string &name)
{
    const auto b = lookup(name);
    const auto counts = b.circuit.countGates();
    std::cout << b.name << ": " << b.description << "\n"
              << "expected output: "
              << toBitstring(b.expected, b.outputWidth) << "\n"
              << "gates: SG " << counts.singleQubit << ", CX "
              << counts.twoQubit << ", M " << counts.measure
              << ", depth " << b.circuit.depth() << "\n\n"
              << b.circuit.toQasm();
    return 0;
}

/** The device view a subcommand operates on (full when no --region). */
hw::DeviceView
viewFor(const hw::Device &device, const std::vector<int> &region)
{
    return region.empty() ? hw::DeviceView(device)
                          : hw::DeviceView(device, region);
}

int
cmdCompile(const std::string &name, std::uint64_t seed, bool verify,
           const std::vector<int> &region)
{
    const auto b = lookup(name);
    const hw::Device device = hw::Device::melbourne(seed);
    const transpile::Transpiler compiler(
        viewFor(device, region), transpile::RouteCost::Reliability,
        verify);
    const auto program = compiler.compile(b.circuit);
    std::cout << "device " << device.name() << " (seed " << seed
              << ")\nESP " << analysis::fmt(program.esp) << ", "
              << program.swapCount << " SWAPs, qubits";
    for (int q : program.usedQubits())
        std::cout << " " << q;
    std::cout << "\n\n" << program.physical.toQasm();
    return 0;
}

int
cmdCandidates(const std::string &name, std::uint64_t seed, bool verify,
              const std::vector<int> &region)
{
    const auto b = lookup(name);
    const hw::Device device = hw::Device::melbourne(seed);
    core::EnsembleConfig ensemble_config;
    ensemble_config.verifyPasses |= verify;
    ensemble_config.region = region;
    const core::EnsembleBuilder builder(device, ensemble_config);
    const auto all = builder.candidates(b.circuit);
    analysis::Table table({"rank", "ESP", "qubits"});
    const std::size_t show = std::min<std::size_t>(all.size(), 12);
    for (std::size_t i = 0; i < show; ++i) {
        std::string qubits;
        for (int q : all[i].usedQubits())
            qubits += std::to_string(q) + " ";
        table.addRow({std::to_string(i),
                      analysis::fmt(all[i].esp), qubits});
    }
    std::cout << all.size() << " isomorphic placements; top " << show
              << ":\n"
              << table.toString();
    return 0;
}

/** Parse one double with a clear error naming the offending flag. */
double
parseDouble(const std::string &flag, const std::string &value)
{
    char *end = nullptr;
    const double parsed = std::strtod(value.c_str(), &end);
    if (end == value.c_str() || *end != '\0' || parsed < 0.0)
        throw UserError(flag + " expects a non-negative number, got `" +
                        value + "`");
    return parsed;
}

/** Parse one non-negative integer with a flag-naming error. */
long
parseCount(const std::string &flag, const std::string &value)
{
    char *end = nullptr;
    const long parsed = std::strtol(value.c_str(), &end, 10);
    if (end == value.c_str() || *end != '\0' || parsed < 0)
        throw UserError(flag + " expects a non-negative integer, got `" +
                        value + "`");
    return parsed;
}

/** Parse a `--region` spec: a comma list of physical qubit indices. */
std::vector<int>
parseRegionSpec(const std::string &spec)
{
    std::vector<int> region;
    std::size_t start = 0;
    while (start <= spec.size()) {
        std::size_t comma = spec.find(',', start);
        if (comma == std::string::npos)
            comma = spec.size();
        const std::string entry = spec.substr(start, comma - start);
        start = comma + 1;
        if (entry.empty())
            continue;
        region.push_back(
            static_cast<int>(parseCount("--region", entry)));
    }
    if (region.empty())
        throw UserError("--region expects at least one qubit index");
    return region;
}

/** Read a `--region-file`: whitespace-separated qubit indices. */
std::vector<int>
parseRegionFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        throw UserError("--region-file: cannot open `" + path + "`");
    std::vector<int> region;
    std::string token;
    while (in >> token) {
        region.push_back(
            static_cast<int>(parseCount("--region-file", token)));
    }
    if (region.empty())
        throw UserError("--region-file `" + path +
                        "` contains no qubit indices");
    return region;
}

/**
 * Parse a `--faults` spec: a comma list of key=value pairs, e.g.
 * `dropout=0.25,transient=0.1,slow=0.2,slow-factor=32`.
 */
resilience::FaultConfig
parseFaultSpec(const std::string &spec)
{
    resilience::FaultConfig faults;
    std::size_t start = 0;
    while (start <= spec.size()) {
        std::size_t comma = spec.find(',', start);
        if (comma == std::string::npos)
            comma = spec.size();
        const std::string pair = spec.substr(start, comma - start);
        start = comma + 1;
        if (pair.empty())
            continue;
        const std::size_t eq = pair.find('=');
        if (eq == std::string::npos)
            throw UserError("--faults entries must look like "
                            "key=value, got `" +
                            pair + "`");
        const std::string key = pair.substr(0, eq);
        const double value =
            parseDouble("--faults " + key, pair.substr(eq + 1));
        if (key == "dropout")
            faults.dropoutProb = value;
        else if (key == "staleness")
            faults.stalenessProb = value;
        else if (key == "staleness-severity")
            faults.stalenessSeverity = value;
        else if (key == "transient")
            faults.transientProb = value;
        else if (key == "slow")
            faults.slowProb = value;
        else if (key == "slow-factor")
            faults.slowFactor = value;
        else if (key == "batch-ms-per-shot")
            faults.batchMsPerShot = value;
        else
            throw UserError("unknown --faults key `" + key + "`");
    }
    return faults;
}

int
cmdRun(const std::string &name, std::uint64_t seed,
       std::uint64_t shots, int jobs, long sim_batch, bool verify,
       const resilience::ResilienceConfig &resilience,
       const std::vector<int> &region)
{
    const auto b = lookup(name);
    const hw::Device device = hw::Device::melbourne(seed);
    core::EdmConfig config;
    config.totalShots = shots;
    config.jobs = jobs;
    if (sim_batch >= 0)
        config.simBatch = static_cast<std::size_t>(sim_batch);
    config.verifyPasses |= verify;
    config.resilience = resilience;
    config.ensemble.region = region;
    const core::EdmPipeline pipeline(device, config);
    Rng rng(seed * 1000 + 1);
    const auto result = pipeline.run(b.circuit, rng);
    const auto baseline =
        pipeline.runSingle(result.members.front().program, rng);

    analysis::Table table({"policy", "PST", "IST"});
    auto add = [&](const std::string &policy,
                   const stats::Distribution &dist) {
        table.addRow({policy,
                      analysis::fmt(stats::pst(dist, b.expected), 4),
                      analysis::fmt(stats::ist(dist, b.expected), 2)});
    };
    add("single best mapping", baseline);
    add("EDM", result.edm);
    add("WEDM", result.wedm);
    std::cout << table.toString() << "\nEDM distribution:\n"
              << analysis::distributionReport(result.edm, b.expected,
                                              8);
    if (resilience.active())
        std::cout << "\n" << result.degradation.toString();
    return 0;
}

int
cmdExperiment(const std::string &name, std::uint64_t seed, int jobs,
              long sim_batch, bool verify,
              const resilience::ResilienceConfig &resilience,
              const std::vector<int> &region,
              const std::string &journal_path,
              const std::string &resume_path,
              const std::string &replay_path)
{
    const auto b = lookup(name);
    const hw::Device device = hw::Device::melbourne(seed);
    core::ExperimentConfig config;
    config.jobs = jobs;
    if (sim_batch >= 0)
        config.simBatch = static_cast<std::size_t>(sim_batch);
    config.verifyPasses |= verify;
    config.resilience = resilience;
    config.region = region;

    // Journal wiring. Progress notes go to stderr so stdout stays
    // byte-diffable against an uninterrupted run's output.
    std::optional<resilience::JournalReplay> replay;
    std::optional<resilience::Journal> journal;
    if (!resume_path.empty()) {
        replay.emplace(resilience::JournalReplay::load(resume_path));
        replay->requireMatches(
            core::experimentFingerprint(device, b, config, seed));
        if (replay->truncatedTail())
            std::cerr << "journal: discarded a torn tail record\n";
        std::cerr << "journal: resuming from " << resume_path << " ("
                  << replay->roundCount() << " committed round(s), "
                  << replay->batchCount() << " recorded batch(es))\n";
        journal.emplace(resilience::Journal::resume(
            resume_path, replay->validBytes()));
        config.replay = &*replay;
        config.journal = &*journal;
    } else if (!replay_path.empty()) {
        replay.emplace(resilience::JournalReplay::load(replay_path));
        config.replay = &*replay;
        config.replayFaultsOnly = true;
        std::cerr << "journal: replaying recorded wall-clock faults "
                     "from "
                  << replay_path << "\n";
    } else if (!journal_path.empty()) {
        journal.emplace(resilience::Journal::create(
            journal_path,
            core::experimentFingerprint(device, b, config, seed)));
        config.journal = &*journal;
    }

    const auto summary = core::runExperiment(device, b, config, seed);
    analysis::Table table({"policy", "median IST", "median PST"});
    table.addRow({"baseline (compile-time best)",
                  analysis::fmt(summary.median.baselineEst.ist, 2),
                  analysis::fmt(summary.median.baselineEst.pst, 4)});
    table.addRow({"baseline (post-execution best)",
                  analysis::fmt(summary.median.baselinePost.ist, 2),
                  analysis::fmt(summary.median.baselinePost.pst, 4)});
    table.addRow({"EDM", analysis::fmt(summary.median.edm.ist, 2),
                  analysis::fmt(summary.median.edm.pst, 4)});
    table.addRow({"WEDM", analysis::fmt(summary.median.wedm.ist, 2),
                  analysis::fmt(summary.median.wedm.pst, 4)});
    std::cout << summary.rounds.size() << " rounds on "
              << device.name() << "\n"
              << table.toString() << "\nEDM gain "
              << analysis::fmt(summary.edmIstGain(), 2)
              << "x, WEDM gain "
              << analysis::fmt(summary.wedmIstGain(), 2) << "x\n";
    // Replay mode injects forced wall faults per round inside
    // runExperiment, so the CLI-level config alone cannot tell whether
    // degradation reporting ran; treat replay as resilience-active so
    // the replayed stdout matches the live run's byte-for-byte.
    if (resilience.active() || !replay_path.empty()) {
        std::cout << "resilience: " << summary.degradedRounds << "/"
                  << summary.rounds.size() << " rounds degraded, "
                  << summary.trialsLost << " trial(s) lost, "
                  << summary.trialsReassigned << " reassigned, "
                  << summary.retriesTotal << " retries\n";
        for (std::size_t r = 0; r < summary.rounds.size(); ++r) {
            const auto &deg = summary.rounds[r].degradation;
            if (deg.degraded())
                std::cout << "round " << r << ": " << deg.toString();
        }
    }
    return 0;
}

int
usage()
{
    std::cerr << "usage: qedm_cli <list|show|compile|candidates|run|"
                 "experiment> [benchmark] [seed] [shots] [--jobs N] "
                 "[--sim-batch B] [--check] "
                 "[--region q0,q1,...] [--region-file PATH] "
                 "[--faults SPEC] [--fail-member M] "
                 "[--retry-max N] [--member-deadline-ms MS] "
                 "[--min-trials-per-member N] "
                 "[--journal PATH | --resume PATH | "
                 "--replay-faults PATH] [--wall-deadline-ms MS]\n";
    return 1;
}

} // namespace

int
main(int argc, char **argv)
{
    try {
        // Split `--jobs N` / `--check` (accepted anywhere) out of the
        // positionals.
        std::vector<std::string> pos;
        int jobs = 1;
        long sim_batch = -1; // -1 = keep the EdmConfig default
        bool verify = qedm::check::kDefaultVerify;
        qedm::resilience::ResilienceConfig resilience;
        std::vector<int> region;
        std::string journal_path, resume_path, replay_path;
        const auto flagValue = [&](int &i) -> std::string {
            if (i + 1 >= argc)
                throw qedm::UserError(std::string(argv[i]) +
                                      " expects a value");
            return argv[++i];
        };
        for (int i = 1; i < argc; ++i) {
            const std::string arg = argv[i];
            if (arg == "--check") {
                verify = true;
                continue;
            }
            if (arg == "--jobs") {
                jobs = static_cast<int>(
                    parseCount("--jobs", flagValue(i)));
            } else if (arg == "--sim-batch") {
                sim_batch = parseCount("--sim-batch", flagValue(i));
            } else if (arg == "--region") {
                region = parseRegionSpec(flagValue(i));
            } else if (arg == "--region-file") {
                region = parseRegionFile(flagValue(i));
            } else if (arg == "--faults") {
                resilience.faults = parseFaultSpec(flagValue(i));
            } else if (arg == "--fail-member") {
                resilience.faults.forcedDropouts.push_back(
                    static_cast<int>(
                        parseCount("--fail-member", flagValue(i))));
            } else if (arg == "--retry-max") {
                resilience.retryMax = static_cast<int>(
                    parseCount("--retry-max", flagValue(i)));
            } else if (arg == "--member-deadline-ms") {
                resilience.memberDeadlineMs =
                    parseDouble("--member-deadline-ms", flagValue(i));
            } else if (arg == "--min-trials-per-member") {
                resilience.minTrialsPerMember =
                    static_cast<std::uint64_t>(parseCount(
                        "--min-trials-per-member", flagValue(i)));
            } else if (arg == "--wall-deadline-ms") {
                resilience.wallDeadlineMs =
                    parseDouble("--wall-deadline-ms", flagValue(i));
            } else if (arg == "--journal") {
                journal_path = flagValue(i);
            } else if (arg == "--resume") {
                resume_path = flagValue(i);
            } else if (arg == "--replay-faults") {
                replay_path = flagValue(i);
            } else {
                pos.push_back(arg);
            }
        }
        const int journal_modes = (journal_path.empty() ? 0 : 1) +
                                  (resume_path.empty() ? 0 : 1) +
                                  (replay_path.empty() ? 0 : 1);
        if (journal_modes > 1) {
            throw qedm::UserError(
                "--journal, --resume, and --replay-faults are mutually "
                "exclusive (--resume already appends to its journal)");
        }
        if (pos.empty())
            return usage();
        const std::string cmd = pos[0];
        const std::string name = pos.size() > 1 ? pos[1] : "";
        const std::uint64_t seed =
            pos.size() > 2 ? std::strtoull(pos[2].c_str(), nullptr, 10)
                           : 2;
        const std::uint64_t shots =
            pos.size() > 3 ? std::strtoull(pos[3].c_str(), nullptr, 10)
                           : 16384;
        if (cmd == "list")
            return cmdList();
        if (name.empty())
            return usage();
        if (cmd == "show")
            return cmdShow(name);
        if (cmd == "compile")
            return cmdCompile(name, seed, verify, region);
        if (cmd == "candidates")
            return cmdCandidates(name, seed, verify, region);
        if (cmd != "experiment" &&
            (journal_modes > 0 || resilience.wallDeadlineMs > 0.0)) {
            throw qedm::UserError(
                "--journal/--resume/--replay-faults/--wall-deadline-ms "
                "apply to the experiment subcommand only");
        }
        if (cmd == "run") {
            return cmdRun(name, seed, shots, jobs, sim_batch, verify,
                          resilience, region);
        }
        if (cmd == "experiment") {
            return cmdExperiment(name, seed, jobs, sim_batch, verify,
                                 resilience, region, journal_path,
                                 resume_path, replay_path);
        }
        return usage();
    } catch (const qedm::resilience::EnsembleFailedError &e) {
        std::cerr << "error: " << e.what() << " ("
                  << e.failedMembers() << "/" << e.totalMembers()
                  << " members failed)\n";
        return 1;
    } catch (const qedm::Error &e) {
        std::cerr << "error: " << e.what() << "\n";
        return 1;
    }
}
