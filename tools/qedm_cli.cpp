/**
 * @file
 * qedm command-line driver.
 *
 * Subcommands:
 *   list                          all built-in benchmarks
 *   show <bench>                  logical QASM + metadata
 *   compile <bench> [seed]        variation-aware compile; physical
 *                                 QASM, ESP, SWAP count
 *   candidates <bench> [seed]     ranked isomorphic placements
 *   run <bench> [seed] [shots]    baseline vs EDM vs WEDM one-shot
 *   experiment <bench> [seed]     multi-round median experiment
 *
 * `run` and `experiment` accept `--jobs N` anywhere on the line:
 * N worker threads (0 = all hardware threads, default 1). Results are
 * bit-identical for every N.
 *
 * `--check` (anywhere on the line) runs the qedm::check static
 * verifier passes over every compiled program: compile/candidates
 * verify the transpiler output, run/experiment verify every ensemble
 * member of every round. Debug builds verify always; `--check` is
 * how release builds opt in.
 *
 * Exit code 0 on success, 1 on a usage/user error (including a
 * verifier rejection).
 */

#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "analysis/report.hpp"
#include "benchmarks/benchmarks.hpp"
#include "check/check.hpp"
#include "common/error.hpp"
#include "benchmarks/extra.hpp"
#include "core/edm.hpp"
#include "core/experiment.hpp"
#include "hw/device.hpp"
#include "stats/metrics.hpp"
#include "transpile/transpiler.hpp"

namespace {

using namespace qedm;

std::vector<benchmarks::Benchmark>
allBenchmarks()
{
    auto suite = benchmarks::paperSuite();
    for (auto &extra : benchmarks::extraSuite())
        suite.push_back(std::move(extra));
    return suite;
}

benchmarks::Benchmark
lookup(const std::string &name)
{
    for (const auto &b : allBenchmarks()) {
        if (b.name == name)
            return b;
    }
    throw UserError("unknown benchmark `" + name +
                    "`; run `qedm_cli list`");
}

int
cmdList()
{
    analysis::Table table({"name", "description", "output", "qubits"});
    for (const auto &b : allBenchmarks()) {
        table.addRow({b.name, b.description,
                      toBitstring(b.expected, b.outputWidth),
                      std::to_string(b.circuit.numQubits())});
    }
    std::cout << table.toString();
    return 0;
}

int
cmdShow(const std::string &name)
{
    const auto b = lookup(name);
    const auto counts = b.circuit.countGates();
    std::cout << b.name << ": " << b.description << "\n"
              << "expected output: "
              << toBitstring(b.expected, b.outputWidth) << "\n"
              << "gates: SG " << counts.singleQubit << ", CX "
              << counts.twoQubit << ", M " << counts.measure
              << ", depth " << b.circuit.depth() << "\n\n"
              << b.circuit.toQasm();
    return 0;
}

int
cmdCompile(const std::string &name, std::uint64_t seed, bool verify)
{
    const auto b = lookup(name);
    const hw::Device device = hw::Device::melbourne(seed);
    const transpile::Transpiler compiler(
        device, transpile::RouteCost::Reliability, verify);
    const auto program = compiler.compile(b.circuit);
    std::cout << "device " << device.name() << " (seed " << seed
              << ")\nESP " << analysis::fmt(program.esp) << ", "
              << program.swapCount << " SWAPs, qubits";
    for (int q : program.usedQubits())
        std::cout << " " << q;
    std::cout << "\n\n" << program.physical.toQasm();
    return 0;
}

int
cmdCandidates(const std::string &name, std::uint64_t seed, bool verify)
{
    const auto b = lookup(name);
    const hw::Device device = hw::Device::melbourne(seed);
    core::EnsembleConfig ensemble_config;
    ensemble_config.verifyPasses |= verify;
    const core::EnsembleBuilder builder(device, ensemble_config);
    const auto all = builder.candidates(b.circuit);
    analysis::Table table({"rank", "ESP", "qubits"});
    const std::size_t show = std::min<std::size_t>(all.size(), 12);
    for (std::size_t i = 0; i < show; ++i) {
        std::string qubits;
        for (int q : all[i].usedQubits())
            qubits += std::to_string(q) + " ";
        table.addRow({std::to_string(i),
                      analysis::fmt(all[i].esp), qubits});
    }
    std::cout << all.size() << " isomorphic placements; top " << show
              << ":\n"
              << table.toString();
    return 0;
}

int
cmdRun(const std::string &name, std::uint64_t seed,
       std::uint64_t shots, int jobs, bool verify)
{
    const auto b = lookup(name);
    const hw::Device device = hw::Device::melbourne(seed);
    core::EdmConfig config;
    config.totalShots = shots;
    config.jobs = jobs;
    config.verifyPasses |= verify;
    const core::EdmPipeline pipeline(device, config);
    Rng rng(seed * 1000 + 1);
    const auto result = pipeline.run(b.circuit, rng);
    const auto baseline =
        pipeline.runSingle(result.members.front().program, rng);

    analysis::Table table({"policy", "PST", "IST"});
    auto add = [&](const std::string &policy,
                   const stats::Distribution &dist) {
        table.addRow({policy,
                      analysis::fmt(stats::pst(dist, b.expected), 4),
                      analysis::fmt(stats::ist(dist, b.expected), 2)});
    };
    add("single best mapping", baseline);
    add("EDM", result.edm);
    add("WEDM", result.wedm);
    std::cout << table.toString() << "\nEDM distribution:\n"
              << analysis::distributionReport(result.edm, b.expected,
                                              8);
    return 0;
}

int
cmdExperiment(const std::string &name, std::uint64_t seed, int jobs,
              bool verify)
{
    const auto b = lookup(name);
    const hw::Device device = hw::Device::melbourne(seed);
    core::ExperimentConfig config;
    config.jobs = jobs;
    config.verifyPasses |= verify;
    const auto summary = core::runExperiment(device, b, config, seed);
    analysis::Table table({"policy", "median IST", "median PST"});
    table.addRow({"baseline (compile-time best)",
                  analysis::fmt(summary.median.baselineEst.ist, 2),
                  analysis::fmt(summary.median.baselineEst.pst, 4)});
    table.addRow({"baseline (post-execution best)",
                  analysis::fmt(summary.median.baselinePost.ist, 2),
                  analysis::fmt(summary.median.baselinePost.pst, 4)});
    table.addRow({"EDM", analysis::fmt(summary.median.edm.ist, 2),
                  analysis::fmt(summary.median.edm.pst, 4)});
    table.addRow({"WEDM", analysis::fmt(summary.median.wedm.ist, 2),
                  analysis::fmt(summary.median.wedm.pst, 4)});
    std::cout << summary.rounds.size() << " rounds on "
              << device.name() << "\n"
              << table.toString() << "\nEDM gain "
              << analysis::fmt(summary.edmIstGain(), 2)
              << "x, WEDM gain "
              << analysis::fmt(summary.wedmIstGain(), 2) << "x\n";
    return 0;
}

int
usage()
{
    std::cerr << "usage: qedm_cli <list|show|compile|candidates|run|"
                 "experiment> [benchmark] [seed] [shots] [--jobs N] "
                 "[--check]\n";
    return 1;
}

} // namespace

int
main(int argc, char **argv)
{
    try {
        // Split `--jobs N` / `--check` (accepted anywhere) out of the
        // positionals.
        std::vector<std::string> pos;
        int jobs = 1;
        bool verify = qedm::check::kDefaultVerify;
        for (int i = 1; i < argc; ++i) {
            const std::string arg = argv[i];
            if (arg == "--check") {
                verify = true;
                continue;
            }
            if (arg == "--jobs") {
                if (i + 1 >= argc)
                    return usage();
                char *end = nullptr;
                const long parsed = std::strtol(argv[++i], &end, 10);
                if (end == argv[i] || *end != '\0' || parsed < 0)
                    return usage();
                jobs = static_cast<int>(parsed);
            } else {
                pos.push_back(arg);
            }
        }
        if (pos.empty())
            return usage();
        const std::string cmd = pos[0];
        const std::string name = pos.size() > 1 ? pos[1] : "";
        const std::uint64_t seed =
            pos.size() > 2 ? std::strtoull(pos[2].c_str(), nullptr, 10)
                           : 2;
        const std::uint64_t shots =
            pos.size() > 3 ? std::strtoull(pos[3].c_str(), nullptr, 10)
                           : 16384;
        if (cmd == "list")
            return cmdList();
        if (name.empty())
            return usage();
        if (cmd == "show")
            return cmdShow(name);
        if (cmd == "compile")
            return cmdCompile(name, seed, verify);
        if (cmd == "candidates")
            return cmdCandidates(name, seed, verify);
        if (cmd == "run")
            return cmdRun(name, seed, shots, jobs, verify);
        if (cmd == "experiment")
            return cmdExperiment(name, seed, jobs, verify);
        return usage();
    } catch (const qedm::Error &e) {
        std::cerr << "error: " << e.what() << "\n";
        return 1;
    }
}
