/**
 * @file
 * Extension study: statistical confidence of the inference. IST is
 * estimated from finitely many trials; this bench attaches bootstrap
 * 95% confidence intervals to the baseline and EDM IST estimates on
 * BV-6, showing when "IST > 1" is actually resolved by the shot
 * budget — the quantitative version of the paper's inference-quality
 * argument.
 */

#include <iostream>

#include "analysis/report.hpp"
#include "bench_util.hpp"
#include "benchmarks/benchmarks.hpp"
#include "core/edm.hpp"
#include "sim/executor.hpp"
#include "stats/metrics.hpp"

int
main()
{
    using namespace qedm;
    bench::banner("Extension: IST confidence",
                  "bootstrap 95% intervals on baseline vs EDM IST");

    const auto bv6 = benchmarks::bv6();
    const hw::Device device = bench::paperMachine();
    const sim::Executor exec(device);

    analysis::Table table({"shots", "policy", "IST", "95% CI",
                           "IST>1 resolved?"});
    for (std::uint64_t shots : {1024ull, 4096ull, 16384ull}) {
        core::EdmConfig config;
        config.totalShots = shots;
        const core::EdmPipeline pipeline(device, config);
        Rng rng(7);
        const auto result = pipeline.run(bv6.circuit, rng);

        // Rebuild EDM as a merged COUNTS object for bootstrap: pool
        // the members' shot logs.
        stats::Counts pooled(bv6.outputWidth);
        for (const auto &member : result.members) {
            Rng member_rng(rng.split());
            pooled.merge(member.output.sample(member_rng,
                                              member.shots));
        }
        const auto baseline_counts = exec.run(
            result.members.front().program.physical, shots, rng);

        for (int which = 0; which < 2; ++which) {
            const stats::Counts &counts =
                which == 0 ? baseline_counts : pooled;
            Rng boot_rng(41);
            const auto ci = stats::istConfidenceInterval(
                counts, bv6.expected, boot_rng, 300, 0.95);
            const bool resolved = ci.lower > 1.0 || ci.upper < 1.0;
            table.addRow(
                {std::to_string(shots),
                 which == 0 ? "single best" : "EDM (pooled members)",
                 analysis::fmt(ci.pointEstimate, 2),
                 "[" + analysis::fmt(ci.lower, 2) + ", " +
                     analysis::fmt(ci.upper, 2) + "]",
                 resolved ? "yes" : "no"});
        }
        std::cout << "." << std::flush;
    }
    std::cout << "\n\n" << table.toString()
              << "\nwide intervals at small shot budgets mean the "
                 "machine cannot certify its own answer;\nEDM must "
                 "clear IST = 1 by more than the sampling error to "
                 "help in practice\n";
    return 0;
}
