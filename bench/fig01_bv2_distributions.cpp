/**
 * @file
 * Figure 1 reproduction: Bernstein-Vazirani with a 2-bit key on
 * (a) an ideal machine, (b) a NISQ machine that still answers
 * correctly, and (c) a NISQ machine where a correlated error makes a
 * wrong answer dominate. Cases (b) and (c) are real device instances
 * of the model found by scanning noise seeds.
 */

#include <iostream>
#include <optional>

#include "analysis/report.hpp"
#include "bench_util.hpp"
#include "benchmarks/benchmarks.hpp"
#include "sim/executor.hpp"
#include "stats/metrics.hpp"
#include "transpile/transpiler.hpp"

int
main()
{
    using namespace qedm;
    bench::banner("Figure 1", "BV-2 output distributions");

    const auto bv2 = benchmarks::bernsteinVazirani("11");

    std::cout << "\n(a) ideal machine:\n"
              << analysis::distributionReport(
                     sim::idealDistribution(bv2.circuit), bv2.expected,
                     4);

    // Scan device instances for a correct-mode case and a wrong-mode
    // case (both exist because the systematic noise differs per seed).
    std::optional<stats::Distribution> correct_case, wrong_case;
    std::uint64_t correct_seed = 0, wrong_seed = 0;
    for (std::uint64_t seed = 1; seed <= 200; ++seed) {
        const hw::Device device = hw::Device::melbourne(seed);
        const transpile::Transpiler compiler(device);
        const auto program = compiler.compile(bv2.circuit);
        const sim::Executor exec(device);
        const auto dist = exec.exactDistribution(program.physical);
        const double ist = stats::ist(dist, bv2.expected);
        if (!correct_case && ist > 1.1 && ist < 3.0) {
            correct_case = dist;
            correct_seed = seed;
        }
        if (!wrong_case && ist < 0.95 &&
            stats::pst(dist, bv2.expected) > 0.15) {
            wrong_case = dist;
            wrong_seed = seed;
        }
        if (correct_case && wrong_case)
            break;
    }

    if (correct_case) {
        std::cout << "\n(b) NISQ machine, correct answer inferable "
                     "(device seed "
                  << correct_seed << "):\n"
                  << analysis::distributionReport(*correct_case,
                                                  bv2.expected, 4);
    }
    if (wrong_case) {
        std::cout << "\n(c) NISQ machine, wrong answer dominates "
                     "(device seed "
                  << wrong_seed << "):\n"
                  << analysis::distributionReport(*wrong_case,
                                                  bv2.expected, 4);
    }
    if (!correct_case || !wrong_case)
        std::cout << "\n(seed scan did not find both regimes)\n";
    return 0;
}
