/**
 * @file
 * Figure 6 reproduction: IST of BV-6 under eight individual mappings
 * (A-H) and under the ensemble EDM = A+B+C+D. In the paper no single
 * mapping reaches IST = 1 while the ensemble reaches 1.2.
 */

#include <iostream>
#include <vector>

#include "analysis/report.hpp"
#include "bench_util.hpp"
#include "benchmarks/benchmarks.hpp"
#include "core/ensemble.hpp"
#include "sim/executor.hpp"
#include "stats/metrics.hpp"

int
main()
{
    using namespace qedm;
    bench::banner("Figure 6", "IST of eight mappings A-H vs the "
                              "EDM(A+B+C+D) ensemble, BV-6");

    const auto bv6 = benchmarks::bv6();
    const hw::Device device = bench::paperMachine();

    core::EnsembleConfig config;
    config.size = 8;
    config.maxOverlap = 0.5;
    const core::EnsembleBuilder builder(device, config);
    const auto programs = builder.build(bv6.circuit);

    const sim::Executor exec(device);
    Rng rng(1);

    // Each individual mapping runs the full trial budget (paper:
    // 16,384 each); the ensemble members run a quarter each.
    analysis::Table table({"Mapping", "ESP", "PST", "IST", ""});
    std::vector<stats::Distribution> quarter_runs;
    const std::uint64_t full = bench::shots();
    for (std::size_t i = 0; i < programs.size(); ++i) {
        const auto dist = stats::Distribution::fromCounts(
            exec.run(programs[i].physical, full, rng));
        const double ist_v = stats::ist(dist, bv6.expected);
        table.addRow({std::string(1, char('A' + i)),
                      analysis::fmt(programs[i].esp),
                      analysis::fmt(stats::pst(dist, bv6.expected), 4),
                      analysis::fmt(ist_v, 2),
                      analysis::bar(ist_v, 2.0, 20)});
        if (i < 4) {
            quarter_runs.push_back(stats::Distribution::fromCounts(
                exec.run(programs[i].physical, full / 4, rng)));
        }
    }
    const auto edm = stats::mergeUniform(quarter_runs);
    const double edm_ist = stats::ist(edm, bv6.expected);
    table.addRow({"EDM(A+B+C+D)", "-",
                  analysis::fmt(stats::pst(edm, bv6.expected), 4),
                  analysis::fmt(edm_ist, 2),
                  analysis::bar(edm_ist, 2.0, 20)});
    std::cout << "\n" << table.toString()
              << "\npaper reference: all individual mappings IST < 1, "
                 "EDM IST = 1.2\n";
    return 0;
}
