/**
 * @file
 * Table 1 reproduction: benchmark characteristics. Prints every
 * workload with its expected output and SG/CX/M gate totals, side by
 * side with the counts the paper reports (which came from different
 * RevLib syntheses for some circuits).
 */

#include <iostream>

#include "analysis/report.hpp"
#include "bench_util.hpp"
#include "benchmarks/benchmarks.hpp"
#include "transpile/transpiler.hpp"

int
main()
{
    using namespace qedm;
    bench::banner("Table 1", "benchmark characteristics");

    const hw::Device device = bench::paperMachine();
    const transpile::Transpiler compiler(device);

    analysis::Table table({"Benchmark", "Description", "Output", "SG",
                           "CX", "CX mapped", "M", "paper SG",
                           "paper CX", "paper M"});
    for (const auto &b : benchmarks::paperSuite()) {
        const auto counts = b.circuit.countGates();
        // The paper's CX column counts the *mapped* circuit (routing
        // SWAPs included: bv-6 = 4 oracle CX + 1 SWAP = 7).
        const auto mapped = compiler.compile(b.circuit);
        const auto mapped_counts = mapped.physical.countGates();
        table.addRow({b.name, b.description,
                      toBitstring(b.expected, b.outputWidth),
                      std::to_string(counts.singleQubit),
                      std::to_string(counts.twoQubit),
                      std::to_string(mapped_counts.twoQubit),
                      std::to_string(counts.measure),
                      std::to_string(b.paperCounts.sg),
                      std::to_string(b.paperCounts.cx),
                      std::to_string(b.paperCounts.m)});
    }
    std::cout << table.toString()
              << "\nNotes: 'CX mapped' counts the circuit after "
                 "placement and routing on the\nmodeled IBMQ-14 "
                 "(SWAP = 3 CX, Toffoli = 6-CX network); this is what "
                 "the paper's\nCX column reports (e.g. bv-6: 4 oracle "
                 "CX + 1 SWAP = 7). Our reversible\nsyntheses differ "
                 "from the paper's RevLib sources, so SG totals "
                 "differ while\nthe workload semantics match.\n";
    return 0;
}
