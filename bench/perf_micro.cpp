/**
 * @file
 * Microbenchmarks (google-benchmark) for the performance-critical
 * substrate paths: state-vector gate application, per-shot noisy
 * execution, exact density-matrix simulation, VF2 enumeration, and
 * routing/compilation.
 *
 * After the google-benchmark suite, three self-timed sweeps run:
 *  - a sim-kernel sweep over the guarded statevector/executor paths,
 *    writing one JSON object per kernel to BENCH_sim.json (each with a
 *    machine-normalized `per_cal` ratio against a fixed scalar
 *    calibration workload — the quantity the CI perf-guard compares,
 *    see bench/compare_bench.py);
 *  - a compile-path sweep over the guarded placement/routing kernels
 *    (pruned VF2 enumeration, bounded top-K placement search, the
 *    lookahead router, ensemble candidate generation), writing
 *    BENCH_compile.json in the same format;
 *  - a runtime-scaling sweep timing a 4-round K=4 experiment at
 *    --jobs 1/2/4/8, writing BENCH_runtime.json plus the
 *    speedup-over-sequential summary to stdout.
 *
 * Passing --sim-sweep-only (or --compile-sweep-only) runs just that
 * self-timed sweep (no google-benchmark pass, no runtime sweep) so the
 * CI perf-guard job stays fast.
 */

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "benchmarks/benchmarks.hpp"
#include "core/ensemble.hpp"
#include "core/experiment.hpp"
#include "hw/device.hpp"
#include "sim/channels.hpp"
#include "sim/executor.hpp"
#include "sim/statevector.hpp"
#include "transpile/placer.hpp"
#include "transpile/router.hpp"
#include "transpile/transpiler.hpp"
#include "transpile/vf2.hpp"

namespace {

using namespace qedm;

void
BM_StateVectorHadamard(benchmark::State &state)
{
    const int n = static_cast<int>(state.range(0));
    sim::StateVector sv(n);
    const auto h = circuit::gateMatrix1q(circuit::OpKind::H, {});
    for (auto _ : state) {
        for (int q = 0; q < n; ++q)
            sv.apply1q(h, q);
        benchmark::DoNotOptimize(sv.amplitudes().data());
    }
    state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_StateVectorHadamard)->Arg(8)->Arg(11)->Arg(14);

void
BM_StateVectorCx(benchmark::State &state)
{
    const int n = static_cast<int>(state.range(0));
    sim::StateVector sv(n);
    const auto cx = circuit::gateMatrix2q(circuit::OpKind::Cx);
    for (auto _ : state) {
        for (int q = 0; q + 1 < n; ++q)
            sv.apply2q(cx, q, q + 1);
        benchmark::DoNotOptimize(sv.amplitudes().data());
    }
    state.SetItemsProcessed(state.iterations() * (n - 1));
}
BENCHMARK(BM_StateVectorCx)->Arg(8)->Arg(11)->Arg(14);

void
BM_NoisyShotsBv6(benchmark::State &state)
{
    const hw::Device device = hw::Device::melbourne(2);
    const transpile::Transpiler compiler(device);
    const auto program =
        compiler.compile(benchmarks::bv6().circuit);
    const sim::Executor exec(device);
    Rng rng(1);
    const std::uint64_t shots =
        static_cast<std::uint64_t>(state.range(0));
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            exec.run(program.physical, shots, rng));
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<int64_t>(shots));
}
BENCHMARK(BM_NoisyShotsBv6)->Arg(256)->Arg(1024);

void
BM_ExactDistributionBv6(benchmark::State &state)
{
    const hw::Device device = hw::Device::melbourne(2);
    const transpile::Transpiler compiler(device);
    const auto program =
        compiler.compile(benchmarks::bv6().circuit);
    const sim::Executor exec(device);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            exec.exactDistribution(program.physical));
    }
}
BENCHMARK(BM_ExactDistributionBv6);

void
BM_Vf2PathIntoMelbourne(benchmark::State &state)
{
    const hw::Topology pattern =
        hw::Topology::linear(static_cast<int>(state.range(0)));
    const hw::Topology target = hw::Topology::melbourne();
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            transpile::vf2AllEmbeddings(pattern, target));
    }
}
BENCHMARK(BM_Vf2PathIntoMelbourne)->Arg(4)->Arg(7)->Arg(10);

void
BM_Vf2Enumerate(benchmark::State &state)
{
    // Cycle-n patterns exercise back-edge checks and the
    // neighborhood-signature filter harder than open paths.
    const int n = static_cast<int>(state.range(0));
    std::vector<std::pair<int, int>> edges;
    for (int v = 0; v < n; ++v)
        edges.emplace_back(v, (v + 1) % n);
    const hw::Topology pattern(n, edges);
    const hw::Topology target = hw::Topology::melbourne();
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            transpile::vf2AllEmbeddings(pattern, target));
    }
}
BENCHMARK(BM_Vf2Enumerate)->Arg(4)->Arg(8)->Arg(12);

void
BM_TopKPlacements(benchmark::State &state)
{
    // The acceptance kernel: K=4 placements of the 7-qubit QAOA path
    // on melbourne via branch-and-bound (pre-rewrite this cost a full
    // rankedEmbeddings materialize-then-sort).
    const hw::Device device = hw::Device::melbourne(2);
    const transpile::Placer placer(device);
    const auto logical = benchmarks::qaoaMaxcutPath(7).circuit;
    for (auto _ : state) {
        benchmark::DoNotOptimize(placer.topPlacements(logical, 4));
    }
}
BENCHMARK(BM_TopKPlacements);

/**
 * A 127-qubit heavy-hex device with a spread (non-uniform) synthetic
 * calibration. The spread matters: on a uniform-error device every
 * placement scores identically and the branch-and-bound never prunes
 * realistically.
 */
hw::Device
heavyHex127Device()
{
    return hw::Device::synthetic("heavy-hex-127",
                                 hw::Topology::heavyHex127(),
                                 hw::CalibrationSpec{}, hw::NoiseSpec{},
                                 7);
}

/** The 433-qubit Osprey-class equivalent of heavyHex127Device(). */
hw::Device
heavyHex433Device()
{
    return hw::Device::synthetic("heavy-hex-433",
                                 hw::Topology::heavyHex433(),
                                 hw::CalibrationSpec{}, hw::NoiseSpec{},
                                 7);
}

void
BM_TopKPlacementsHeavyHex127(benchmark::State &state)
{
    // Large-topology acceptance kernel: K=4 placements of the 7-qubit
    // QAOA path on a 127-qubit heavy-hex lattice. Exercises the
    // on-demand distance provider and the masked-free search path at
    // a scale where the dense O(n^2) precompute would dominate.
    const hw::Device device = heavyHex127Device();
    const transpile::Placer placer(device);
    const auto logical = benchmarks::qaoaMaxcutPath(7).circuit;
    for (auto _ : state) {
        benchmark::DoNotOptimize(placer.topPlacements(logical, 4));
    }
}
BENCHMARK(BM_TopKPlacementsHeavyHex127);

void
BM_RouteBv(benchmark::State &state)
{
    // SWAP routing from a deliberately spread-out placement, hitting
    // the memoized all-pairs distance path on every gate.
    const hw::Device device = hw::Device::melbourne(2);
    const transpile::Router router(device,
                                   transpile::RouteCost::Reliability);
    const auto logical = benchmarks::bv6().circuit;
    const std::vector<int> spread = {0, 2, 4, 6, 8, 10, 12};
    for (auto _ : state) {
        benchmark::DoNotOptimize(router.route(logical, spread));
    }
}
BENCHMARK(BM_RouteBv);

void
BM_CompileBv6(benchmark::State &state)
{
    const hw::Device device = hw::Device::melbourne(2);
    const transpile::Transpiler compiler(device);
    const auto logical = benchmarks::bv6().circuit;
    for (auto _ : state) {
        benchmark::DoNotOptimize(compiler.compile(logical));
    }
}
BENCHMARK(BM_CompileBv6);

void
BM_EnsembleBuildBv6(benchmark::State &state)
{
    const hw::Device device = hw::Device::melbourne(2);
    const core::EnsembleBuilder builder(device);
    const auto logical = benchmarks::bv6().circuit;
    for (auto _ : state) {
        benchmark::DoNotOptimize(builder.build(logical));
    }
}
BENCHMARK(BM_EnsembleBuildBv6);

/**
 * Time one full 4-round K=4 experiment at @p jobs workers and return
 * wall milliseconds (best of @p reps).
 */
double
timeExperimentMs(int jobs, int reps = 3)
{
    const hw::Device device = hw::Device::melbourne(2);
    const benchmarks::Benchmark bench = benchmarks::bv6();
    core::ExperimentConfig config;
    config.rounds = 4;
    config.ensembleSize = 4;
    config.totalShots = 16384;
    config.jobs = jobs;

    double best = 0.0;
    for (int r = 0; r < reps; ++r) {
        const auto start = std::chrono::steady_clock::now();
        auto summary = core::runExperiment(device, bench, config, 11);
        benchmark::DoNotOptimize(summary);
        const double ms = std::chrono::duration<double, std::milli>(
                              std::chrono::steady_clock::now() - start)
                              .count();
        if (r == 0 || ms < best)
            best = ms;
    }
    return best;
}

/**
 * Wall-time one callable: @p warmup throwaway runs, then best of
 * @p reps timed runs (best-of suppresses scheduler noise better than
 * the mean on shared CI machines).
 */
template <typename Fn>
double
timeBestNs(const Fn &fn, int reps, int warmup = 1)
{
    double best = 0.0;
    for (int r = 0; r < warmup + reps; ++r) {
        const auto start = std::chrono::steady_clock::now();
        fn();
        const double ns = std::chrono::duration<double, std::nano>(
                              std::chrono::steady_clock::now() - start)
                              .count();
        if (r >= warmup && (r == warmup || ns < best))
            best = ns;
    }
    return best;
}

/**
 * Calibration workload: a fixed serial scalar FP chain, independent of
 * every qedm code path. Its wall time tracks the host's scalar
 * floating-point latency, so kernel times divided by it (`per_cal`)
 * are comparable across machines of different speeds — a real kernel
 * regression moves the ratio, a slower CI machine does not.
 */
double
calibrationNs()
{
    return timeBestNs(
        [] {
            double x = 1.0;
            for (int i = 0; i < 8'000'000; ++i)
                x = x * 0.999999 + 1e-7;
            benchmark::DoNotOptimize(x);
        },
        5);
}

/**
 * Sim-kernel sweep over the hot paths guarded by CI: statevector
 * butterfly/diagonal/permutation kernels, Kraus sampling, the noisy
 * and deterministic shot loops, and exact density-matrix simulation.
 * Emits one JSON object per line to BENCH_sim.json.
 */
void
runSimKernelSweep()
{
    const double cal_ns = calibrationNs();

    std::ofstream json("BENCH_sim.json");
    std::cout << "\nsim-kernel sweep (best-of wall times, per_cal = "
                 "wall_ns / calibration):\n";
    auto emit = [&](const std::string &name, double wall_ns) {
        json << "{\"bench\":\"" << name << "\",\"wall_ns\":" << wall_ns
             << ",\"per_cal\":" << wall_ns / cal_ns << "}\n";
        std::cout << "  " << name << ": " << wall_ns * 1e-6 << " ms ("
                  << wall_ns / cal_ns << " per_cal)\n";
    };
    emit("calibration", cal_ns);

    // Gate kernels on a 14-qubit state (2^14 amplitudes), one layer
    // across all qubits per run — same shape as the google-benchmark
    // BM_StateVector* cases.
    {
        sim::StateVector sv(14);
        const auto h = circuit::gateMatrix1q(circuit::OpKind::H, {});
        emit("sv_h_14", timeBestNs(
                            [&] {
                                for (int q = 0; q < 14; ++q)
                                    sv.apply1q(h, q);
                                benchmark::DoNotOptimize(
                                    sv.amplitudes().data());
                            },
                            20, 3));
    }
    {
        sim::StateVector sv(14);
        const auto cx = circuit::gateMatrix2q(circuit::OpKind::Cx);
        emit("sv_cx_14", timeBestNs(
                             [&] {
                                 for (int q = 0; q + 1 < 14; ++q)
                                     sv.apply2q(cx, q, q + 1);
                                 benchmark::DoNotOptimize(
                                     sv.amplitudes().data());
                             },
                             20, 3));
    }
    {
        sim::StateVector sv(14);
        const auto rz =
            circuit::gateMatrix1q(circuit::OpKind::Rz, {0.37});
        emit("sv_rz_14", timeBestNs(
                             [&] {
                                 for (int q = 0; q < 14; ++q)
                                     sv.apply1q(rz, q);
                                 benchmark::DoNotOptimize(
                                     sv.amplitudes().data());
                             },
                             20, 3));
    }
    {
        // Kraus sampling with norm tracking: a damping channel swept
        // across every qubit (the dominant no-event branch each time).
        sim::StateVector sv(14);
        const auto damp = sim::amplitudeDamping(1e-3);
        Rng rng(99);
        emit("sv_kraus_14", timeBestNs(
                                [&] {
                                    for (int q = 0; q < 14; ++q)
                                        sv.applyKraus1q(damp, q, rng);
                                    benchmark::DoNotOptimize(
                                        sv.amplitudes().data());
                                },
                                20, 3));
    }

    // Shot loops on compiled bv-6 (the guarded end-to-end paths).
    {
        const hw::Device device = hw::Device::melbourne(2);
        const transpile::Transpiler compiler(device);
        const auto program =
            compiler.compile(benchmarks::bv6().circuit);
        const sim::Executor exec(device);
        Rng rng(1);
        emit("noisy_shots_bv6_1024",
             timeBestNs(
                 [&] {
                     benchmark::DoNotOptimize(
                         exec.run(program.physical, 1024, rng));
                 },
                 5));
        emit("exact_bv6", timeBestNs(
                              [&] {
                                  benchmark::DoNotOptimize(
                                      exec.exactDistribution(
                                          program.physical));
                              },
                              3));
        // Batched-engine width sweep (BM_BatchedShotsBv6): the same
        // noisy shot loop at explicit SoA lane widths, so the guard
        // catches a regression that only hits one batching regime
        // (B=1 exercises the per-batch overhead, 256 the width cap).
        for (const std::size_t width : {std::size_t(1),
                                        std::size_t(16),
                                        std::size_t(64),
                                        std::size_t(256)}) {
            sim::Executor batched(device);
            batched.setSimBatch(width);
            emit("batched_shots_bv6_1024_b" + std::to_string(width),
                 timeBestNs(
                     [&] {
                         benchmark::DoNotOptimize(
                             batched.run(program.physical, 1024, rng));
                     },
                     5));
        }
    }
    {
        // Coherent-only device: the tape is deterministic, so this
        // times the evolve-once + binary-search-sampling fast path.
        hw::NoiseSpec spec;
        spec.coherentScale = 1.5;
        spec.stochasticScale = 0.0;
        spec.correlatedReadoutScale = 0.0;
        spec.enableDecoherence = false;
        const hw::Device device = hw::Device::melbourne(41, spec);
        const transpile::Transpiler compiler(device);
        const auto program =
            compiler.compile(benchmarks::bv6().circuit);
        const sim::Executor exec(device);
        Rng rng(777);
        emit("deterministic_shots_bv6_4096",
             timeBestNs(
                 [&] {
                     benchmark::DoNotOptimize(
                         exec.run(program.physical, 4096, rng));
                 },
                 5));
    }
}

/**
 * Compile-path sweep over the placement/routing kernels guarded by CI:
 * pruned VF2 enumeration, the bounded top-K placement search, SWAP
 * routing from a spread-out placement, and ensemble candidate
 * generation. Emits one JSON object per line to BENCH_compile.json,
 * `per_cal`-normalized exactly like the sim sweep.
 */
void
runCompileSweep()
{
    const double cal_ns = calibrationNs();

    std::ofstream json("BENCH_compile.json");
    std::cout << "\ncompile-path sweep (best-of wall times, per_cal = "
                 "wall_ns / calibration):\n";
    auto emit = [&](const std::string &name, double wall_ns) {
        json << "{\"bench\":\"" << name << "\",\"wall_ns\":" << wall_ns
             << ",\"per_cal\":" << wall_ns / cal_ns << "}\n";
        std::cout << "  " << name << ": " << wall_ns * 1e-6 << " ms ("
                  << wall_ns / cal_ns << " per_cal)\n";
    };
    emit("calibration", cal_ns);

    const hw::Device device = hw::Device::melbourne(2);
    {
        // Cycle-8 into the melbourne ladder: back-edge-heavy pruned
        // VF2 enumeration.
        std::vector<std::pair<int, int>> edges;
        for (int v = 0; v < 8; ++v)
            edges.emplace_back(v, (v + 1) % 8);
        const hw::Topology pattern(8, edges);
        const hw::Topology target = hw::Topology::melbourne();
        emit("vf2_cycle8_melbourne",
             timeBestNs(
                 [&] {
                     benchmark::DoNotOptimize(
                         transpile::vf2AllEmbeddings(pattern, target));
                 },
                 10, 2));
    }
    {
        const transpile::Placer placer(device);
        const auto logical = benchmarks::qaoaMaxcutPath(7).circuit;
        emit("topk_qaoa7path_k4",
             timeBestNs(
                 [&] {
                     benchmark::DoNotOptimize(
                         placer.topPlacements(logical, 4));
                 },
                 10, 2));
    }
    {
        // 127-qubit heavy-hex placement: the large-topology guard,
        // then the same search fanned out over 4 and 8 workers. On a
        // many-core host the parallel entries track scaling; on a
        // single-core runner they bound the fan-out overhead (which
        // must stay a small constant factor, never a blowup). Either
        // way they double as a determinism smoke check: every jobs
        // value must return byte-identical placements.
        const hw::Device hex = heavyHex127Device();
        const transpile::Placer placer(hex);
        const auto logical = benchmarks::qaoaMaxcutPath(7).circuit;
        emit("topk_heavyhex127_k4",
             timeBestNs(
                 [&] {
                     benchmark::DoNotOptimize(
                         placer.topPlacements(logical, 4));
                 },
                 5, 1));
        const auto serial_top = placer.topPlacements(logical, 4);
        const auto same = [](const auto &a, const auto &b) {
            if (a.size() != b.size())
                return false;
            for (std::size_t i = 0; i < a.size(); ++i) {
                if (a[i].map != b[i].map || a[i].esp != b[i].esp)
                    return false;
            }
            return true;
        };
        for (const int jobs : {4, 8}) {
            const runtime::JobScheduler sched(jobs);
            transpile::Placer parallel_placer(hex);
            parallel_placer.setScheduler(&sched);
            emit("topk_heavyhex127_k4_j" + std::to_string(jobs),
                 timeBestNs(
                     [&] {
                         benchmark::DoNotOptimize(
                             parallel_placer.topPlacements(logical,
                                                           4));
                     },
                     5, 1));
            if (!same(parallel_placer.topPlacements(logical, 4),
                      serial_top)) {
                std::cerr << "FATAL: parallel placement diverged at "
                             "jobs="
                          << jobs << "\n";
                std::exit(1);
            }
        }
    }
    {
        // 433-qubit heavy-hex placement: the Osprey-class scale
        // target (must stay far under a second).
        const hw::Device hex = heavyHex433Device();
        const transpile::Placer placer(hex);
        const auto logical = benchmarks::qaoaMaxcutPath(7).circuit;
        emit("topk_heavyhex433_k4",
             timeBestNs(
                 [&] {
                     benchmark::DoNotOptimize(
                         placer.topPlacements(logical, 4));
                 },
                 5, 1));
    }
    {
        const transpile::Router router(
            device, transpile::RouteCost::Reliability);
        const auto logical = benchmarks::bv6().circuit;
        const std::vector<int> spread = {0, 2, 4, 6, 8, 10, 12};
        emit("route_bv6_spread",
             timeBestNs(
                 [&] {
                     benchmark::DoNotOptimize(
                         router.route(logical, spread));
                 },
                 10, 2));
    }
    {
        const core::EnsembleBuilder builder(device);
        const auto logical = benchmarks::bv6().circuit;
        emit("ensemble_candidates_bv6",
             timeBestNs(
                 [&] {
                     benchmark::DoNotOptimize(
                         builder.candidates(logical));
                 },
                 5, 1));
        // The same materialization fanned over 4 workers — tracks
        // parallel scoring/materialization cost (scaling on many-core
        // hosts, bounded fan-out overhead on single-core runners).
        const runtime::JobScheduler sched(4);
        core::EnsembleConfig config;
        config.scheduler = &sched;
        const core::EnsembleBuilder parallel_builder(device, config);
        emit("ensemble_candidates_bv6_j4",
             timeBestNs(
                 [&] {
                     benchmark::DoNotOptimize(
                         parallel_builder.candidates(logical));
                 },
                 5, 1));
    }
}

/** Jobs-scaling sweep; emits BENCH_runtime.json and a stdout table. */
void
runRuntimeScalingSweep()
{
    const int jobs_sweep[] = {1, 2, 4, 8};
    std::ofstream json("BENCH_runtime.json");
    std::cout << "\nruntime scaling (4-round K=4 experiment, bv-6, "
                 "16384 shots):\n";
    double sequential_ms = 0.0;
    for (int jobs : jobs_sweep) {
        const double ms = timeExperimentMs(jobs);
        if (jobs == 1)
            sequential_ms = ms;
        const double speedup = sequential_ms / ms;
        json << "{\"bench\":\"experiment_4r_k4_bv6\",\"jobs\":" << jobs
             << ",\"wall_ms\":" << ms << ",\"speedup\":" << speedup
             << "}\n";
        std::cout << "  jobs " << jobs << ": " << ms << " ms ("
                  << speedup << "x)\n";
    }
}

} // namespace

int
main(int argc, char **argv)
{
    // CI perf-guard modes: only the requested self-timed sweep.
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--sim-sweep-only") == 0) {
            runSimKernelSweep();
            return 0;
        }
        if (std::strcmp(argv[i], "--compile-sweep-only") == 0) {
            runCompileSweep();
            return 0;
        }
    }
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    runSimKernelSweep();
    runCompileSweep();
    runRuntimeScalingSweep();
    return 0;
}
