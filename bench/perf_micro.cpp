/**
 * @file
 * Microbenchmarks (google-benchmark) for the performance-critical
 * substrate paths: state-vector gate application, per-shot noisy
 * execution, exact density-matrix simulation, VF2 enumeration, and
 * routing/compilation.
 *
 * After the google-benchmark suite, a runtime-scaling sweep times a
 * 4-round K=4 experiment at --jobs 1/2/4/8 and writes one JSON object
 * per configuration to BENCH_runtime.json (machine-readable, one line
 * each), plus the speedup-over-sequential summary to stdout.
 */

#include <benchmark/benchmark.h>

#include <chrono>
#include <fstream>
#include <iostream>

#include "benchmarks/benchmarks.hpp"
#include "core/ensemble.hpp"
#include "core/experiment.hpp"
#include "hw/device.hpp"
#include "sim/executor.hpp"
#include "sim/statevector.hpp"
#include "transpile/transpiler.hpp"
#include "transpile/vf2.hpp"

namespace {

using namespace qedm;

void
BM_StateVectorHadamard(benchmark::State &state)
{
    const int n = static_cast<int>(state.range(0));
    sim::StateVector sv(n);
    const auto h = circuit::gateMatrix1q(circuit::OpKind::H, {});
    for (auto _ : state) {
        for (int q = 0; q < n; ++q)
            sv.apply1q(h, q);
        benchmark::DoNotOptimize(sv.amplitudes().data());
    }
    state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_StateVectorHadamard)->Arg(8)->Arg(11)->Arg(14);

void
BM_StateVectorCx(benchmark::State &state)
{
    const int n = static_cast<int>(state.range(0));
    sim::StateVector sv(n);
    const auto cx = circuit::gateMatrix2q(circuit::OpKind::Cx);
    for (auto _ : state) {
        for (int q = 0; q + 1 < n; ++q)
            sv.apply2q(cx, q, q + 1);
        benchmark::DoNotOptimize(sv.amplitudes().data());
    }
    state.SetItemsProcessed(state.iterations() * (n - 1));
}
BENCHMARK(BM_StateVectorCx)->Arg(8)->Arg(11)->Arg(14);

void
BM_NoisyShotsBv6(benchmark::State &state)
{
    const hw::Device device = hw::Device::melbourne(2);
    const transpile::Transpiler compiler(device);
    const auto program =
        compiler.compile(benchmarks::bv6().circuit);
    const sim::Executor exec(device);
    Rng rng(1);
    const std::uint64_t shots =
        static_cast<std::uint64_t>(state.range(0));
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            exec.run(program.physical, shots, rng));
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<int64_t>(shots));
}
BENCHMARK(BM_NoisyShotsBv6)->Arg(256)->Arg(1024);

void
BM_ExactDistributionBv6(benchmark::State &state)
{
    const hw::Device device = hw::Device::melbourne(2);
    const transpile::Transpiler compiler(device);
    const auto program =
        compiler.compile(benchmarks::bv6().circuit);
    const sim::Executor exec(device);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            exec.exactDistribution(program.physical));
    }
}
BENCHMARK(BM_ExactDistributionBv6);

void
BM_Vf2PathIntoMelbourne(benchmark::State &state)
{
    const hw::Topology pattern =
        hw::Topology::linear(static_cast<int>(state.range(0)));
    const hw::Topology target = hw::Topology::melbourne();
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            transpile::vf2AllEmbeddings(pattern, target));
    }
}
BENCHMARK(BM_Vf2PathIntoMelbourne)->Arg(4)->Arg(7)->Arg(10);

void
BM_CompileBv6(benchmark::State &state)
{
    const hw::Device device = hw::Device::melbourne(2);
    const transpile::Transpiler compiler(device);
    const auto logical = benchmarks::bv6().circuit;
    for (auto _ : state) {
        benchmark::DoNotOptimize(compiler.compile(logical));
    }
}
BENCHMARK(BM_CompileBv6);

void
BM_EnsembleBuildBv6(benchmark::State &state)
{
    const hw::Device device = hw::Device::melbourne(2);
    const core::EnsembleBuilder builder(device);
    const auto logical = benchmarks::bv6().circuit;
    for (auto _ : state) {
        benchmark::DoNotOptimize(builder.build(logical));
    }
}
BENCHMARK(BM_EnsembleBuildBv6);

/**
 * Time one full 4-round K=4 experiment at @p jobs workers and return
 * wall milliseconds (best of @p reps).
 */
double
timeExperimentMs(int jobs, int reps = 3)
{
    const hw::Device device = hw::Device::melbourne(2);
    const benchmarks::Benchmark bench = benchmarks::bv6();
    core::ExperimentConfig config;
    config.rounds = 4;
    config.ensembleSize = 4;
    config.totalShots = 16384;
    config.jobs = jobs;

    double best = 0.0;
    for (int r = 0; r < reps; ++r) {
        const auto start = std::chrono::steady_clock::now();
        auto summary = core::runExperiment(device, bench, config, 11);
        benchmark::DoNotOptimize(summary);
        const double ms = std::chrono::duration<double, std::milli>(
                              std::chrono::steady_clock::now() - start)
                              .count();
        if (r == 0 || ms < best)
            best = ms;
    }
    return best;
}

/** Jobs-scaling sweep; emits BENCH_runtime.json and a stdout table. */
void
runRuntimeScalingSweep()
{
    const int jobs_sweep[] = {1, 2, 4, 8};
    std::ofstream json("BENCH_runtime.json");
    std::cout << "\nruntime scaling (4-round K=4 experiment, bv-6, "
                 "16384 shots):\n";
    double sequential_ms = 0.0;
    for (int jobs : jobs_sweep) {
        const double ms = timeExperimentMs(jobs);
        if (jobs == 1)
            sequential_ms = ms;
        const double speedup = sequential_ms / ms;
        json << "{\"bench\":\"experiment_4r_k4_bv6\",\"jobs\":" << jobs
             << ",\"wall_ms\":" << ms << ",\"speedup\":" << speedup
             << "}\n";
        std::cout << "  jobs " << jobs << ": " << ms << " ms ("
                  << speedup << "x)\n";
    }
}

} // namespace

int
main(int argc, char **argv)
{
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    runRuntimeScalingSweep();
    return 0;
}
