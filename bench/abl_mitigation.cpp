/**
 * @file
 * Ablation: composing EDM with measurement-error countermeasures —
 * confusion-matrix readout mitigation and Invert-and-Measure (the
 * paper's companion technique [41]). Shows the techniques attack
 * different error sources and compose.
 */

#include <iostream>

#include "analysis/report.hpp"
#include "bench_util.hpp"
#include "benchmarks/benchmarks.hpp"
#include "core/edm.hpp"
#include "sim/executor.hpp"
#include "sim/mitigation.hpp"
#include "stats/metrics.hpp"
#include "transpile/invert_measure.hpp"

int
main()
{
    using namespace qedm;
    bench::banner("Ablation: measurement mitigation",
                  "baseline / invert-and-measure / confusion "
                  "inversion / EDM / EDM+mitigation");

    const hw::Device device = bench::paperMachine();
    const sim::Executor exec(device);

    analysis::Table table({"Benchmark", "policy", "PST", "IST"});
    for (const char *name : {"bv-6", "greycode", "adder"}) {
        const auto bench_def = benchmarks::byName(name);
        core::EdmConfig config;
        config.totalShots = bench::shots();
        const core::EdmPipeline pipeline(device, config);
        Rng rng(9);
        const auto result = pipeline.run(bench_def.circuit, rng);
        const auto &best = result.members.front().program;

        auto add = [&](const std::string &policy,
                       const stats::Distribution &dist) {
            table.addRow(
                {name, policy,
                 analysis::fmt(stats::pst(dist, bench_def.expected), 4),
                 analysis::fmt(stats::ist(dist, bench_def.expected),
                               2)});
        };

        // Baseline: all shots, best mapping.
        const auto baseline = stats::Distribution::fromCounts(
            exec.run(best.physical, bench::shots(), rng));
        add("single best", baseline);

        // Invert-and-measure: half the shots inverted, merged.
        const auto inverted =
            transpile::invertMeasurements(best.physical);
        const auto im_half = sim::flipOutcomeBits(
            stats::Distribution::fromCounts(exec.run(
                inverted.circuit, bench::shots() / 2, rng)),
            inverted.flipMask);
        const auto plain_half = stats::Distribution::fromCounts(
            exec.run(best.physical, bench::shots() / 2, rng));
        add("invert-and-measure",
            stats::mergeUniform({plain_half, im_half}));

        // Confusion-matrix mitigation of the baseline.
        std::vector<int> clbit_to_phys(
            static_cast<std::size_t>(bench_def.outputWidth), -1);
        for (const auto &g : best.physical.gates()) {
            if (g.kind == circuit::OpKind::Measure)
                clbit_to_phys[static_cast<std::size_t>(g.clbit)] =
                    g.qubits[0];
        }
        const sim::ReadoutMitigator mitigator(device, clbit_to_phys);
        add("confusion inversion", mitigator.mitigate(baseline));

        // EDM, and EDM post-processed per member qubit assignment.
        add("EDM", result.edm);
        std::vector<stats::Distribution> mitigated_members;
        for (const auto &member : result.members) {
            std::vector<int> member_map(
                static_cast<std::size_t>(bench_def.outputWidth), -1);
            for (const auto &g : member.program.physical.gates()) {
                if (g.kind == circuit::OpKind::Measure)
                    member_map[static_cast<std::size_t>(g.clbit)] =
                        g.qubits[0];
            }
            mitigated_members.push_back(
                sim::ReadoutMitigator(device, member_map)
                    .mitigate(member.output));
        }
        add("EDM + confusion inversion",
            stats::mergeUniform(mitigated_members));
        std::cout << "." << std::flush;
    }
    std::cout << "\n\n" << table.toString()
              << "\nmitigation fixes readout-induced errors; EDM fixes "
                 "mapping-correlated errors;\nthe composition "
                 "addresses both.\n";
    return 0;
}
