/**
 * @file
 * Extension study: per-source error budget of the compiled paper
 * benchmarks. For each workload, shows how much PST each noise
 * family costs (by re-simulating with that family disabled) — the
 * quantitative version of the paper's Section 3 characterization of
 * where correlated mistakes come from.
 */

#include <iostream>

#include "analysis/report.hpp"
#include "bench_util.hpp"
#include "benchmarks/benchmarks.hpp"
#include "core/ensemble.hpp"
#include "core/error_budget.hpp"

int
main()
{
    using namespace qedm;
    bench::banner("Extension: error budget",
                  "PST recovered by disabling each noise family");

    const hw::Device device = bench::paperMachine();
    const core::EnsembleBuilder builder(device);

    for (const char *name : {"bv-6", "qaoa-6", "greycode"}) {
        const auto bench_def = benchmarks::byName(name);
        const auto program =
            builder.candidates(bench_def.circuit).front();
        const auto budget = core::errorBudget(
            device, program.physical, bench_def.expected);

        std::cout << "\n" << name << " (best mapping): base PST "
                  << analysis::fmt(budget.basePst, 4) << ", base IST "
                  << analysis::fmt(budget.baseIst, 2)
                  << ", ideal PST "
                  << analysis::fmt(budget.idealPst, 3) << "\n";
        analysis::Table table({"noise family disabled", "PST",
                               "IST", "PST recovered"});
        for (const auto &entry : budget.entries) {
            table.addRow({entry.source,
                          analysis::fmt(entry.pstWithout, 4),
                          analysis::fmt(entry.istWithout, 2),
                          analysis::fmt(entry.pstRecovered, 4)});
        }
        std::cout << table.toString();
    }
    std::cout << "\nthe coherent family dominates the IST loss — the "
                 "correlated errors EDM targets\n";
    return 0;
}
