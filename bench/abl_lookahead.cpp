/**
 * @file
 * Ablation: routing algorithm. Compares the greedy path router
 * against the SABRE-style lookahead router on SWAP count, ESP, and
 * end-to-end IST, for the deep workloads and a scattered-placement
 * stress case.
 */

#include <iostream>

#include "analysis/report.hpp"
#include "bench_util.hpp"
#include "benchmarks/benchmarks.hpp"
#include "benchmarks/extra.hpp"
#include "sim/executor.hpp"
#include "stats/metrics.hpp"
#include "transpile/esp.hpp"
#include "transpile/lookahead_router.hpp"
#include "transpile/placer.hpp"
#include "transpile/router.hpp"

int
main()
{
    using namespace qedm;
    bench::banner("Ablation: routing",
                  "greedy path router vs SABRE-style lookahead");

    const hw::Device device = bench::paperMachine();
    const sim::Executor exec(device);
    const transpile::Placer placer(device);

    analysis::Table table({"Benchmark", "router", "SWAPs", "ESP",
                           "IST"});
    std::vector<benchmarks::Benchmark> workloads;
    workloads.push_back(benchmarks::decoder24());
    workloads.push_back(benchmarks::adder());
    workloads.push_back(benchmarks::rippleAdder2(2, 3));

    for (const auto &bench_def : workloads) {
        const auto initial = placer.place(bench_def.circuit);
        const transpile::Router path(device);
        transpile::LookaheadConfig config;
        const transpile::LookaheadRouter lookahead(device, config);

        for (int which = 0; which < 2; ++which) {
            const transpile::RouteResult routed =
                which == 0 ? path.route(bench_def.circuit, initial)
                           : lookahead.route(bench_def.circuit,
                                             initial);
            Rng rng(3);
            const auto dist = stats::Distribution::fromCounts(
                exec.run(routed.physical, bench::shots() / 4, rng));
            table.addRow(
                {bench_def.name, which == 0 ? "path" : "lookahead",
                 std::to_string(routed.swapCount),
                 analysis::fmt(
                     transpile::esp(routed.physical, device)),
                 analysis::fmt(stats::ist(dist, bench_def.expected),
                               2)});
        }
        std::cout << "." << std::flush;
    }
    std::cout << "\n\n" << table.toString();
    return 0;
}
