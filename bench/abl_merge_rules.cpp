/**
 * @file
 * Ablation: merge rule. Uniform average (EDM), symmetric-KL weights
 * (WEDM, Appendix B) and entropy weights, on the same member runs.
 */

#include <iostream>

#include "analysis/report.hpp"
#include "bench_util.hpp"
#include "benchmarks/benchmarks.hpp"
#include "core/edm.hpp"
#include "stats/metrics.hpp"

int
main()
{
    using namespace qedm;
    bench::banner("Ablation: merge rules",
                  "uniform (EDM) vs KL-weighted (WEDM) vs "
                  "entropy-weighted");

    const hw::Device device = bench::paperMachine();
    core::EdmConfig config;
    config.totalShots = bench::shots();
    const core::EdmPipeline pipeline(device, config);

    analysis::Table table({"Benchmark", "uniform", "KL-weighted",
                           "entropy-weighted"});
    for (const char *name : {"bv-6", "bv-7", "qaoa-6", "greycode"}) {
        const auto bench_def = benchmarks::byName(name);
        Rng rng(7);
        const auto result = pipeline.run(bench_def.circuit, rng);
        auto ist_for = [&](core::MergeRule rule) {
            return stats::ist(
                core::EdmPipeline::merge(result.members, rule),
                bench_def.expected);
        };
        table.addRow(
            {name,
             analysis::fmt(ist_for(core::MergeRule::Uniform), 2),
             analysis::fmt(ist_for(core::MergeRule::KlWeighted), 2),
             analysis::fmt(ist_for(core::MergeRule::EntropyWeighted),
                           2)});
        std::cout << "." << std::flush;
    }
    std::cout << "\n\n" << table.toString();
    return 0;
}
