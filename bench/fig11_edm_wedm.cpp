/**
 * @file
 * Figure 11 reproduction: IST improvement of EDM and WEDM over the
 * single-best-mapping baseline for all nine workloads. The paper
 * reports improvements of up to 1.6x (EDM) and 2.3x (WEDM), with
 * every workload entering the IST > 1 regime under WEDM.
 */

#include <algorithm>
#include <iostream>

#include "analysis/report.hpp"
#include "bench_util.hpp"
#include "benchmarks/benchmarks.hpp"
#include "core/experiment.hpp"

int
main()
{
    using namespace qedm;
    bench::banner("Figure 11", "EDM and WEDM IST improvement over the "
                               "single-best baseline, all workloads");

    const hw::Device device = bench::paperMachine();
    core::ExperimentConfig config;
    config.rounds = bench::rounds(5);
    config.totalShots = bench::shots();

    analysis::Table table({"Benchmark", "IST base", "IST EDM",
                           "IST WEDM", "EDM gain", "WEDM gain"});
    double best_edm = 0.0, best_wedm = 0.0;
    for (const auto &bench_def : benchmarks::paperSuite()) {
        const auto summary =
            core::runExperiment(device, bench_def, config, 311);
        const auto &m = summary.median;
        const double edm_gain = m.edm.ist / m.baselineEst.ist;
        const double wedm_gain = m.wedm.ist / m.baselineEst.ist;
        best_edm = std::max(best_edm, edm_gain);
        best_wedm = std::max(best_wedm, wedm_gain);
        table.addRow({bench_def.name,
                      analysis::fmt(m.baselineEst.ist, 2),
                      analysis::fmt(m.edm.ist, 2),
                      analysis::fmt(m.wedm.ist, 2),
                      analysis::fmt(edm_gain, 2) + "x",
                      analysis::fmt(wedm_gain, 2) + "x"});
        std::cout << "." << std::flush;
    }
    std::cout << "\n\n" << table.toString()
              << "\nmax gain: EDM " << analysis::fmt(best_edm, 2)
              << "x, WEDM " << analysis::fmt(best_wedm, 2)
              << "x  (paper: up to 1.6x EDM, 2.3x WEDM)\n";
    return 0;
}
