/**
 * @file
 * Extension study: zero-noise extrapolation vs / with EDM. ZNE
 * extrapolates an observable to the noiseless limit on one mapping;
 * EDM suppresses mapping-correlated wrong answers across mappings.
 * This bench measures the PST observable of three workloads under
 * (1) raw baseline, (2) ZNE on the best mapping, and (3) ZNE applied
 * to each EDM member then averaged.
 */

#include <iostream>

#include "analysis/report.hpp"
#include "bench_util.hpp"
#include "benchmarks/benchmarks.hpp"
#include "core/ensemble.hpp"
#include "core/zne.hpp"
#include "sim/executor.hpp"
#include "stats/metrics.hpp"

int
main()
{
    using namespace qedm;
    bench::banner("Extension: ZNE",
                  "zero-noise extrapolation of PST, alone and per "
                  "EDM member");

    const hw::Device device = bench::paperMachine();
    const sim::Executor exec(device);
    const std::vector<int> scales{1, 3, 5};

    analysis::Table table({"Benchmark", "raw PST", "ZNE PST (best "
                                                   "mapping)",
                           "ZNE PST (EDM members avg)"});
    for (const char *name : {"greycode", "bv-6", "adder"}) {
        const auto bench_def = benchmarks::byName(name);
        const core::Observable pst_obs =
            [&](const stats::Distribution &d) {
                return stats::pst(d, bench_def.expected);
            };
        const core::EnsembleBuilder builder(device);
        const auto members = builder.build(bench_def.circuit);
        Rng rng(7);

        const auto raw = stats::Distribution::fromCounts(exec.run(
            members.front().physical, bench::shots() / 2, rng));
        const auto zne_best = core::zneExpectation(
            device, members.front().physical, pst_obs, scales,
            bench::shots() / 2 / scales.size(), rng);

        double zne_members = 0.0;
        for (const auto &member : members) {
            zne_members +=
                core::zneExpectation(
                    device, member.physical, pst_obs, scales,
                    bench::shots() / 2 / scales.size() /
                        members.size(),
                    rng)
                    .extrapolated;
        }
        zne_members /= static_cast<double>(members.size());

        table.addRow(
            {name,
             analysis::fmt(stats::pst(raw, bench_def.expected), 4),
             analysis::fmt(zne_best.extrapolated, 4),
             analysis::fmt(zne_members, 4)});
        std::cout << "." << std::flush;
    }
    std::cout << "\n\n" << table.toString()
              << "\nZNE recovers signal lost to *stochastic* noise; "
                 "purely coherent mapping-specific\nerrors do not "
                 "scale away cleanly, which is exactly the regime EDM "
                 "targets\n";
    return 0;
}
