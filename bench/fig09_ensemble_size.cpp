/**
 * @file
 * Figure 9 reproduction: sensitivity of EDM to ensemble size. EDM-2
 * adds too little diversity (and can even lose to the baseline);
 * EDM-4 balances diversity against qubit quality; EDM-6 is forced
 * onto weaker qubits and starts to degrade.
 */

#include <iostream>

#include "analysis/report.hpp"
#include "bench_util.hpp"
#include "benchmarks/benchmarks.hpp"
#include "core/experiment.hpp"

int
main()
{
    using namespace qedm;
    bench::banner("Figure 9", "EDM sensitivity to ensemble size "
                              "(EDM-2 / EDM-4 / EDM-6)");

    const hw::Device device = bench::paperMachine();

    analysis::Table table({"Benchmark", "IST base", "EDM-2", "EDM-4",
                           "EDM-6"});
    for (const char *name :
         {"bv-6", "bv-7", "qaoa-5", "qaoa-6", "qaoa-7"}) {
        const auto bench_def = benchmarks::byName(name);
        std::vector<std::string> row{name};
        bool base_added = false;
        for (int k : {2, 4, 6}) {
            core::ExperimentConfig config;
            config.rounds = bench::rounds(3);
            config.totalShots = bench::shots();
            config.ensembleSize = k;
            const auto summary = core::runExperiment(
                device, bench_def, config, 211);
            if (!base_added) {
                row.push_back(
                    analysis::fmt(summary.median.baselineEst.ist, 2));
                base_added = true;
            }
            row.push_back(analysis::fmt(summary.median.edm.ist, 2));
            std::cout << "." << std::flush;
        }
        table.addRow(row);
    }
    std::cout << "\n\n" << table.toString()
              << "\npaper reference: EDM-4 is the sweet spot; EDM-2 "
                 "under-diversifies, EDM-6 maps onto weaker qubits\n";
    return 0;
}
