/**
 * @file
 * Extension study: the paper's future-work direction — diversity from
 * program transformations. Compares, on BV-6:
 *   (1) single best mapping (baseline),
 *   (2) ensemble of 4 Pauli-twirled copies of that one mapping,
 *   (3) EDM (4 diverse mappings),
 *   (4) EDM x twirl (both sources composed).
 */

#include <iostream>

#include "analysis/report.hpp"
#include "bench_util.hpp"
#include "benchmarks/benchmarks.hpp"
#include "core/diversity.hpp"
#include "core/edm.hpp"
#include "sim/executor.hpp"
#include "stats/metrics.hpp"

int
main()
{
    using namespace qedm;
    bench::banner("Extension: transformation diversity",
                  "mapping diversity vs Pauli-twirl diversity vs both");

    const auto bv6 = benchmarks::bv6();
    analysis::Table table({"seed", "baseline", "twirl-4", "EDM-4",
                           "EDM x twirl"});
    for (std::uint64_t seed :
         {bench::machineSeed(), bench::machineSeed() + 1,
          bench::machineSeed() + 2}) {
        const hw::Device device = hw::Device::melbourne(seed);
        core::EdmConfig config;
        config.totalShots = bench::shots() / 2;
        const core::EdmPipeline pipeline(device, config);
        Rng rng(41);
        const auto edm_result = pipeline.run(bv6.circuit, rng);
        const auto &best = edm_result.members.front().program;

        const auto baseline = pipeline.runSingle(best, rng);
        const auto twirl = core::runTwirlEnsemble(
            device, best, 4, config.totalShots, rng);
        core::EnsembleBuilder builder(device, config.ensemble);
        const auto twirled_edm = core::runTwirledEdm(
            device, builder.build(bv6.circuit), config.totalShots,
            rng);

        auto ist_of = [&](const stats::Distribution &d) {
            return analysis::fmt(stats::ist(d, bv6.expected), 2);
        };
        table.addRow({std::to_string(seed), ist_of(baseline),
                      ist_of(twirl.merged), ist_of(edm_result.edm),
                      ist_of(twirled_edm.merged)});
        std::cout << "." << std::flush;
    }
    std::cout << "\n\n" << table.toString()
              << "\ntwirling diversifies against the same mapping's "
                 "coherent errors; EDM also\nescapes bad qubits; the "
                 "composition inherits both effects\n";
    return 0;
}
