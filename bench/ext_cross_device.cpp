/**
 * @file
 * Extension study (beyond the paper): does EDM's benefit carry to
 * other device generations? Runs BV-6 on three modeled machines —
 * the paper's 14-qubit ladder, the 20-qubit Tokyo grid (denser
 * coupling = more isomorphic placements), and a 27-qubit heavy-hex
 * Falcon (sparser coupling) — and reports baseline vs EDM IST.
 */

#include <iostream>

#include "analysis/report.hpp"
#include "bench_util.hpp"
#include "benchmarks/benchmarks.hpp"
#include "core/edm.hpp"
#include "stats/metrics.hpp"

int
main()
{
    using namespace qedm;
    bench::banner("Extension: cross-device",
                  "EDM gain on ladder / Tokyo grid / heavy-hex");

    const auto bv6 = benchmarks::bv6();
    hw::CalibrationSpec cal_spec; // defaults mirror IBM postings

    analysis::Table table({"Device", "qubits", "candidates", "base "
                                                             "IST",
                           "EDM IST", "gain"});
    struct Target { const char *name; hw::Topology topo; };
    const Target targets[] = {
        {"melbourne-ladder", hw::Topology::melbourne()},
        {"tokyo-grid", hw::Topology::tokyo()},
        {"heavy-hex-27", hw::Topology::heavyHex27()},
    };
    for (const auto &target : targets) {
        const hw::Device device = hw::Device::synthetic(
            target.name, target.topo, cal_spec, hw::NoiseSpec{},
            bench::machineSeed() + 400);
        core::EdmConfig config;
        config.totalShots = bench::shots() / 2;
        const core::EdmPipeline pipeline(device, config);
        Rng rng(31);
        const auto result = pipeline.run(bv6.circuit, rng);
        const auto baseline = pipeline.runSingle(
            result.members.front().program, rng);
        const core::EnsembleBuilder builder(device, config.ensemble);
        const auto candidate_count =
            builder.candidates(bv6.circuit).size();
        const double b = stats::ist(baseline, bv6.expected);
        const double e = stats::ist(result.edm, bv6.expected);
        table.addRow({target.name,
                      std::to_string(device.numQubits()),
                      std::to_string(candidate_count),
                      analysis::fmt(b, 2), analysis::fmt(e, 2),
                      analysis::fmt(e / std::max(b, 1e-9), 2) + "x"});
        std::cout << "." << std::flush;
    }
    std::cout << "\n\n" << table.toString()
              << "\ndenser coupling graphs admit more isomorphic "
                 "placements, giving EDM a richer ensemble pool\n";
    return 0;
}
