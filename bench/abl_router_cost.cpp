/**
 * @file
 * Ablation: router cost metric. Reliability-aware routing (the
 * paper's [40, 48] heuristic) vs plain SWAP-count minimization, for
 * the workloads that need SWAPs.
 */

#include <iostream>

#include "analysis/report.hpp"
#include "bench_util.hpp"
#include "benchmarks/benchmarks.hpp"
#include "sim/executor.hpp"
#include "stats/metrics.hpp"
#include "transpile/transpiler.hpp"

int
main()
{
    using namespace qedm;
    bench::banner("Ablation: router cost",
                  "reliability-aware vs SWAP-minimizing routing");

    const hw::Device device = bench::paperMachine();
    const sim::Executor exec(device);

    analysis::Table table({"Benchmark", "policy", "SWAPs", "ESP",
                           "PST", "IST"});
    for (const char *name : {"bv-6", "bv-7", "decode-24"}) {
        const auto bench_def = benchmarks::byName(name);
        for (auto cost : {transpile::RouteCost::Reliability,
                          transpile::RouteCost::HopCount}) {
            const transpile::Transpiler compiler(device, cost);
            const auto program = compiler.compile(bench_def.circuit);
            Rng rng(3);
            const auto dist = stats::Distribution::fromCounts(
                exec.run(program.physical, bench::shots() / 2, rng));
            table.addRow(
                {name,
                 cost == transpile::RouteCost::Reliability
                     ? "reliability"
                     : "hop-count",
                 std::to_string(program.swapCount),
                 analysis::fmt(program.esp),
                 analysis::fmt(stats::pst(dist, bench_def.expected), 4),
                 analysis::fmt(stats::ist(dist, bench_def.expected),
                               2)});
        }
        std::cout << "." << std::flush;
    }
    std::cout << "\n\n" << table.toString();
    return 0;
}
