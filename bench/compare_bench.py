#!/usr/bin/env python3
"""CI perf-guard: compare a BENCH_sim.json run against the checked-in
baseline and fail on regression.

Both files hold one JSON object per line:

    {"bench": "<name>", "wall_ns": <float>, "per_cal": <float>}

Comparison uses `per_cal` — each kernel's wall time divided by a fixed
scalar calibration workload timed in the same process — so a slower CI
machine shifts every number together and cancels out of the ratio,
while a genuine kernel regression does not.

A benchmark REGRESSES when

    current.per_cal > baseline.per_cal * tolerance

with a generous default tolerance (shared runners still jitter a few
tens of percent even after normalization). A guarded benchmark missing
from the current run is also a failure: silently dropping a kernel
from the sweep must not read as "no regression".

Improvements are reported but never fail the run; refresh the baseline
(copy BENCH_sim.json over bench/baselines/BENCH_sim.baseline.json) to
ratchet them in.

Usage:
    compare_bench.py --current BENCH_sim.json \
        --baseline bench/baselines/BENCH_sim.baseline.json \
        [--tolerance 1.6]

Exit status: 0 = within tolerance, 1 = regression or missing
benchmark, 2 = malformed input.
"""

import argparse
import json
import sys


def load(path):
    """Parse a one-object-per-line bench file into {name: per_cal}."""
    out = {}
    try:
        with open(path, encoding="utf-8") as fh:
            for lineno, line in enumerate(fh, 1):
                line = line.strip()
                if not line:
                    continue
                try:
                    obj = json.loads(line)
                    name = obj["bench"]
                    per_cal = float(obj["per_cal"])
                except (json.JSONDecodeError, KeyError, TypeError,
                        ValueError) as exc:
                    sys.exit(f"error: {path}:{lineno}: {exc}")
                if per_cal < 0.0:
                    sys.exit(f"error: {path}:{lineno}: negative per_cal")
                out[name] = per_cal
    except OSError as exc:
        sys.exit(f"error: cannot read {path}: {exc}")
    if not out:
        sys.exit(f"error: {path}: no benchmark entries")
    return out


def main():
    parser = argparse.ArgumentParser(
        description="fail CI on sim-kernel perf regression")
    parser.add_argument("--current", required=True,
                        help="BENCH_sim.json from this run")
    parser.add_argument("--baseline", required=True,
                        help="checked-in baseline to compare against")
    parser.add_argument("--tolerance", type=float, default=1.6,
                        help="allowed per_cal growth factor "
                             "(default: %(default)s)")
    args = parser.parse_args()
    if args.tolerance <= 1.0:
        sys.exit("error: --tolerance must be > 1.0")

    current = load(args.current)
    baseline = load(args.baseline)

    failures = []
    width = max(len(n) for n in baseline)
    print(f"perf-guard: tolerance {args.tolerance}x on per_cal")
    for name in sorted(baseline):
        if name == "calibration":
            continue  # the normalizer itself, 1.0 by construction
        base = baseline[name]
        if name not in current:
            failures.append(f"{name}: missing from current run")
            print(f"  {name:<{width}}  MISSING")
            continue
        cur = current[name]
        ratio = cur / base if base > 0.0 else float("inf")
        verdict = "ok"
        if ratio > args.tolerance:
            verdict = "REGRESSION"
            failures.append(
                f"{name}: per_cal {cur:.6g} vs baseline {base:.6g} "
                f"({ratio:.2f}x > {args.tolerance}x)")
        elif ratio < 1.0 / args.tolerance:
            verdict = "improved (consider refreshing the baseline)"
        print(f"  {name:<{width}}  {cur:>10.6g} vs {base:>10.6g}"
              f"  ({ratio:5.2f}x)  {verdict}")

    extra = sorted(set(current) - set(baseline))
    if extra:
        print(f"  note: unguarded benchmarks in current run: "
              f"{', '.join(extra)}")

    if failures:
        print("\nperf-guard FAILED:")
        for f in failures:
            print(f"  - {f}")
        sys.exit(1)
    print("perf-guard passed")


if __name__ == "__main__":
    main()
