/**
 * @file
 * Ablation: correlated-error strength. Sweeps the coherent
 * (systematic) error scale — the end-to-end analogue of the
 * buckets-and-balls Qcor — and measures, across device instances,
 * how often the baseline and EDM infer the correct answer (IST > 1)
 * and the median EDM IST gain. With IID-only noise (scale 0) both
 * policies almost always succeed and EDM has nothing to fix; as the
 * correlated share grows the baseline starts failing and EDM's
 * advantage appears — the end-to-end counterpart of the paper's
 * Section 4.4 argument and Appendix-A model.
 */

#include <iostream>
#include <vector>

#include "analysis/report.hpp"
#include "bench_util.hpp"
#include "benchmarks/benchmarks.hpp"
#include "core/edm.hpp"
#include "sim/executor.hpp"
#include "stats/metrics.hpp"

int
main()
{
    using namespace qedm;
    bench::banner("Ablation: coherent scale",
                  "baseline vs EDM inference success as correlated "
                  "errors grow");

    const auto bv6 = benchmarks::bv6();
    const int instances = static_cast<int>(bench::rounds(6));

    analysis::Table table({"coherent scale", "base success", "EDM "
                                                             "success",
                           "median base IST", "median EDM IST",
                           "median gain"});
    for (double scale : {0.0, 0.5, 1.0, 1.5, 2.0}) {
        hw::NoiseSpec spec;
        spec.coherentScale = scale;
        int base_ok = 0, edm_ok = 0;
        std::vector<double> base_ists, edm_ists, gains;
        for (int i = 0; i < instances; ++i) {
            const hw::Device device = hw::Device::melbourne(
                bench::machineSeed() + 10 * i, spec);
            core::EdmConfig config;
            config.totalShots = bench::shots() / 2;
            const core::EdmPipeline pipeline(device, config);
            Rng rng(19 + i);
            const auto result = pipeline.run(bv6.circuit, rng);
            const auto baseline = pipeline.runSingle(
                result.members.front().program, rng);
            const double b = stats::ist(baseline, bv6.expected);
            const double e = stats::ist(result.edm, bv6.expected);
            base_ok += b > 1.0 ? 1 : 0;
            edm_ok += e > 1.0 ? 1 : 0;
            base_ists.push_back(b);
            edm_ists.push_back(e);
            gains.push_back(e / std::max(b, 1e-9));
        }
        table.addRow(
            {analysis::fmt(scale, 2),
             std::to_string(base_ok) + "/" + std::to_string(instances),
             std::to_string(edm_ok) + "/" + std::to_string(instances),
             analysis::fmt(stats::median(base_ists), 2),
             analysis::fmt(stats::median(edm_ists), 2),
             analysis::fmt(stats::median(gains), 2) + "x"});
        std::cout << "." << std::flush;
    }
    std::cout << "\n\n" << table.toString()
              << "\nEDM's advantage concentrates where correlated "
                 "errors make the baseline fail;\nwith IID-only noise "
                 "(scale 0) there is nothing to diversify against.\n";
    return 0;
}
