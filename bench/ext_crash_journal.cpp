/**
 * @file
 * Extension study: cost of crash-safety. Runs the bv-6 experiment
 * three ways — bare, journaled (one fsync'd record per completed work
 * unit and round), and resumed from a half-truncated journal — and
 * reports wall time plus the journal's size and record counts. The
 * durability tax is the journaled-vs-bare delta; the resume row shows
 * the payoff: committed rounds restore without recompiling or
 * re-executing, and the summary stays bit-identical.
 */

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <vector>

#include "analysis/report.hpp"
#include "bench_util.hpp"
#include "benchmarks/benchmarks.hpp"
#include "core/experiment.hpp"
#include "resilience/journal.hpp"
#include "runtime/clock.hpp"

int
main()
{
    using namespace qedm;
    bench::banner("Extension: crash journal",
                  "overhead and payoff of journaled execution");

    const std::uint64_t seed = 7;
    const hw::Device device = hw::Device::melbourne(seed);
    const auto bench_def = benchmarks::byName("bv-6");
    core::ExperimentConfig config;
    config.rounds = 6;
    config.totalShots = 8192;
    config.jobs = 4;

    const runtime::Clock &clock = runtime::steadyClock();
    const std::string path = "crash_journal_bench.bin";

    const double bare_start = clock.nowMs();
    const auto bare =
        core::runExperiment(device, bench_def, config, seed);
    const double bare_ms = clock.nowMs() - bare_start;

    double journaled_ms = 0.0;
    std::uint64_t journal_bytes = 0;
    std::size_t batches = 0;
    {
        core::ExperimentConfig recording = config;
        resilience::Journal journal = resilience::Journal::create(
            path, core::experimentFingerprint(device, bench_def,
                                              recording, seed));
        recording.journal = &journal;
        const double start = clock.nowMs();
        core::runExperiment(device, bench_def, recording, seed);
        journaled_ms = clock.nowMs() - start;
    }
    {
        std::ifstream in(path, std::ios::binary | std::ios::ate);
        journal_bytes = static_cast<std::uint64_t>(in.tellg());
    }

    // Crash simulation: keep only the first half of the journal, then
    // resume — recorded units restore instead of re-executing.
    double resumed_ms = 0.0;
    {
        std::ifstream in(path, std::ios::binary);
        std::vector<char> bytes(
            (std::istreambuf_iterator<char>(in)),
            std::istreambuf_iterator<char>());
        bytes.resize(bytes.size() / 2);
        std::ofstream out(path,
                          std::ios::binary | std::ios::trunc);
        out.write(bytes.data(),
                  static_cast<std::streamsize>(bytes.size()));
    }
    {
        core::ExperimentConfig resuming = config;
        const resilience::JournalReplay replay =
            resilience::JournalReplay::load(path);
        batches = replay.batchCount();
        resilience::Journal journal =
            resilience::Journal::resume(path, replay.validBytes());
        resuming.replay = &replay;
        resuming.journal = &journal;
        const double start = clock.nowMs();
        const auto resumed =
            core::runExperiment(device, bench_def, resuming, seed);
        resumed_ms = clock.nowMs() - start;
        if (resumed.median.edm.pst != bare.median.edm.pst ||
            resumed.median.wedm.pst != bare.median.wedm.pst) {
            std::cout << "ERROR: resumed summary diverged from the "
                         "bare run\n";
            return 1;
        }
    }

    analysis::Table table({"mode", "wall ms", "notes"});
    table.addRow({"bare", analysis::fmt(bare_ms, 1), "no journal"});
    table.addRow({"journaled", analysis::fmt(journaled_ms, 1),
                  std::to_string(journal_bytes) + " bytes on disk"});
    table.addRow({"resumed (half journal)",
                  analysis::fmt(resumed_ms, 1),
                  std::to_string(batches) + " batches restored"});
    std::cout << table.toString() << "\njournal overhead "
              << analysis::fmt(journaled_ms - bare_ms, 1)
              << " ms; resumed summary bit-identical to the bare run\n";
    std::remove(path.c_str());
    return 0;
}
