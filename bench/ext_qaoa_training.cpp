/**
 * @file
 * Extension study: variational training under correlated noise. The
 * QAOA optimizer tunes (gamma, beta) against three objective
 * backends — the ideal simulator, the noisy single-best-mapping
 * executor, and the EDM-merged executor — and each trained angle set
 * is then scored on the ideal machine. Correlated errors bias the
 * noisy objective landscape; EDM's merge flattens the
 * mapping-specific bias, yielding angles that transfer better.
 */

#include <iostream>

#include "analysis/report.hpp"
#include "bench_util.hpp"
#include "core/ensemble.hpp"
#include "hw/device.hpp"
#include "sim/executor.hpp"
#include "stats/metrics.hpp"
#include "variational/maxcut.hpp"
#include "variational/qaoa.hpp"

int
main()
{
    using namespace qedm;
    using namespace qedm::variational;
    bench::banner("Extension: QAOA training",
                  "angle optimization against ideal / noisy / EDM "
                  "objectives");

    const hw::Topology graph = hw::Topology::linear(5);
    const hw::Device device = bench::paperMachine();
    const sim::Executor exec(device);
    const std::uint64_t eval_shots = 2048;

    OptimizerConfig config;
    config.maxEvaluations = 60;

    // Backends to train against.
    const QaoaObjective ideal_objective =
        [&](const circuit::Circuit &c) {
            return expectedCut(graph, sim::idealDistribution(c));
        };

    core::EnsembleConfig ens_config;
    const core::EnsembleBuilder builder(device, ens_config);
    Rng shot_rng(3);
    auto noisy_objective = [&](const circuit::Circuit &c) {
        const auto program = builder.candidates(c).front();
        return expectedCut(
            graph, stats::Distribution::fromCounts(exec.run(
                       program.physical, eval_shots, shot_rng)));
    };
    auto edm_objective = [&](const circuit::Circuit &c) {
        const auto members = builder.build(c);
        std::vector<stats::Distribution> outs;
        for (const auto &member : members) {
            outs.push_back(stats::Distribution::fromCounts(
                exec.run(member.physical,
                         eval_shots / members.size(), shot_rng)));
        }
        return expectedCut(graph, stats::mergeUniform(outs));
    };

    analysis::Table table({"objective backend", "trained objective",
                           "ideal cut @ trained angles",
                           "approx ratio"});
    struct Backend { const char *name; QaoaObjective fn; };
    const Backend backends[] = {
        {"ideal", ideal_objective},
        {"noisy single-best", noisy_objective},
        {"noisy EDM-merged", edm_objective},
    };
    const int best_cut = maxCutValue(graph);
    for (const auto &backend : backends) {
        Rng rng(17); // identical starting angles for all backends
        const auto result =
            optimizeQaoa(graph, 1, backend.fn, config, rng);
        // Score the trained angles on the ideal machine.
        const auto trained = qaoaCircuit(graph, result.angles);
        const double ideal_cut =
            expectedCut(graph, sim::idealDistribution(trained));
        table.addRow({backend.name,
                      analysis::fmt(result.bestObjective, 3),
                      analysis::fmt(ideal_cut, 3),
                      analysis::fmt(ideal_cut / best_cut, 3)});
        std::cout << "." << std::flush;
    }
    std::cout << "\n\n" << table.toString()
              << "\n(max cut of the 5-node path = " << best_cut
              << "; higher 'ideal cut @ trained angles' means the "
                 "noisy training transferred better)\n";
    return 0;
}
