/**
 * @file
 * Figure 3 reproduction: BV-6 output probability distribution on the
 * modeled IBMQ-14 machine with the single best mapping, outcomes
 * sorted by frequency. The paper observed PST = 2.8%, all 64 outcomes
 * present, and a correct-answer relative strength of only 68%
 * (IST = 0.68).
 */

#include <iostream>

#include "analysis/report.hpp"
#include "bench_util.hpp"
#include "benchmarks/benchmarks.hpp"
#include "sim/executor.hpp"
#include "stats/metrics.hpp"
#include "transpile/transpiler.hpp"

int
main()
{
    using namespace qedm;
    bench::banner("Figure 3", "BV-6 sorted output distribution, "
                              "single best mapping");

    const auto bench_def = benchmarks::bv6();
    const hw::Device device = bench::paperMachine();
    const transpile::Transpiler compiler(device);
    const auto program = compiler.compile(bench_def.circuit);

    const sim::Executor exec(device);
    Rng rng(1);
    const auto counts =
        exec.run(program.physical, bench::shots(), rng);
    const auto dist = stats::Distribution::fromCounts(counts);

    std::cout << "\ncompile-time ESP = " << analysis::fmt(program.esp)
              << ", SWAPs inserted = " << program.swapCount << "\n\n"
              << "top outcomes (sorted by frequency):\n"
              << analysis::distributionReport(dist, bench_def.expected,
                                              16)
              << "\ndistinct outcomes observed: " << counts.distinct()
              << " / 64\n"
              << "paper reference: PST 2.8%, IST 0.68, all 64 outcomes "
                 "present\n";
    return 0;
}
