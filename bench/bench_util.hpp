/**
 * @file
 * Shared helpers for the figure/table reproduction benches.
 *
 * Every bench accepts environment overrides so CI can run a fast pass:
 *   QEDM_SHOTS   total trials per policy (default: paper's 16384)
 *   QEDM_ROUNDS  experimental rounds (default varies per bench)
 *   QEDM_SEED    machine seed selecting the modeled device instance
 */

#pragma once

#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <string>

#include "hw/device.hpp"

namespace qedm::bench {

inline std::uint64_t
envU64(const char *name, std::uint64_t def)
{
    const char *v = std::getenv(name);
    if (!v)
        return def;
    return std::strtoull(v, nullptr, 10);
}

inline std::uint64_t
shots(std::uint64_t def = 16384)
{
    return envU64("QEDM_SHOTS", def);
}

inline int
rounds(int def)
{
    return static_cast<int>(envU64("QEDM_ROUNDS", def));
}

inline std::uint64_t
machineSeed(std::uint64_t def = 2)
{
    return envU64("QEDM_SEED", def);
}

/** The modeled IBMQ-14 machine used across all figure benches. */
inline hw::Device
paperMachine()
{
    return hw::Device::melbourne(machineSeed());
}

/** Standard bench banner. */
inline void
banner(const std::string &id, const std::string &what)
{
    std::cout << "==================================================="
                 "=============\n"
              << id << ": " << what << "\n"
              << "device seed " << machineSeed() << ", "
              << shots() << " trials\n"
              << "==================================================="
                 "=============\n";
}

} // namespace qedm::bench
