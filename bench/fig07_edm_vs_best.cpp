/**
 * @file
 * Figure 7 reproduction: EDM's IST improvement over (i) the single
 * best mapping estimated at compile time (highest ESP) and (ii) the
 * single best mapping observed post-execution (highest runtime PST),
 * for bv-6, bv-7 and qaoa-5/6/7. The paper's point: EDM beats both,
 * so its win is not merely ESP mis-estimation.
 */

#include <iostream>

#include "analysis/report.hpp"
#include "bench_util.hpp"
#include "benchmarks/benchmarks.hpp"
#include "core/experiment.hpp"

int
main()
{
    using namespace qedm;
    bench::banner("Figure 7",
                  "EDM vs best-at-compile-time and best-post-execution");

    const hw::Device device = bench::paperMachine();
    core::ExperimentConfig config;
    config.rounds = bench::rounds(5);
    config.totalShots = bench::shots();

    analysis::Table table({"Benchmark", "IST base-est", "IST base-post",
                           "IST EDM", "EDM/est", "EDM/post"});
    for (const char *name :
         {"bv-6", "bv-7", "qaoa-5", "qaoa-6", "qaoa-7"}) {
        const auto bench_def = benchmarks::byName(name);
        const auto summary =
            core::runExperiment(device, bench_def, config, 101);
        const auto &m = summary.median;
        table.addRow({name, analysis::fmt(m.baselineEst.ist, 2),
                      analysis::fmt(m.baselinePost.ist, 2),
                      analysis::fmt(m.edm.ist, 2),
                      analysis::fmt(m.edm.ist / m.baselineEst.ist, 2) +
                          "x",
                      analysis::fmt(m.edm.ist / m.baselinePost.ist, 2) +
                          "x"});
        std::cout << "." << std::flush;
    }
    std::cout << "\n\n" << table.toString()
              << "\npaper reference: EDM improves IST over both "
                 "baselines (up to ~1.6x vs compile-time best)\n";
    return 0;
}
