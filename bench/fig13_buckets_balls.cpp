/**
 * @file
 * Figure 13 / Appendix-A reproduction: IST vs PST for the
 * buckets-and-balls model (uncorrelated, Qcor = 10%, Qcor = 50%),
 * the PST frontiers, and experimental (PST, IST) points from runs of
 * QAOA-6, BV-6 and greycode on the modeled device. Experimental
 * points fall below the uncorrelated curve — the signature of
 * correlated errors.
 */

#include <iostream>

#include "analysis/buckets_balls.hpp"
#include "analysis/report.hpp"
#include "bench_util.hpp"
#include "benchmarks/benchmarks.hpp"
#include "core/ensemble.hpp"
#include "sim/executor.hpp"
#include "stats/metrics.hpp"

int
main()
{
    using namespace qedm;
    bench::banner("Figure 13", "IST vs PST: buckets-and-balls model + "
                               "experimental runs");

    const std::uint64_t balls = 8192;
    Rng rng(1);

    // Model curves for M = 64, k = log2(M) = 6.
    analysis::BucketsModel model;
    model.numBuckets = 64;
    model.numFavored = 6;

    std::cout << "\nIST vs PST curves (M = 64, k = 6, N = " << balls
              << " balls, Monte-Carlo):\n";
    analysis::Table curve_table({"PST", "IST Qcor=0", "IST Qcor=10%",
                                 "IST Qcor=50%", "analytical Qcor=0"});
    for (double ps :
         {0.01, 0.02, 0.03, 0.05, 0.08, 0.12, 0.16, 0.20}) {
        model.ps = ps;
        model.qcor = 0.0;
        const double i0 =
            analysis::meanMonteCarloIst(model, balls, 20, rng);
        model.qcor = 0.10;
        const double i10 =
            analysis::meanMonteCarloIst(model, balls, 20, rng);
        model.qcor = 0.50;
        const double i50 =
            analysis::meanMonteCarloIst(model, balls, 20, rng);
        curve_table.addRow(
            {analysis::fmt(ps, 2), analysis::fmt(i0, 2),
             analysis::fmt(i10, 2), analysis::fmt(i50, 2),
             analysis::fmt(
                 analysis::analyticalIstUncorrelated(ps, 64, balls),
                 2)});
    }
    std::cout << curve_table.toString();

    std::cout << "\nPST frontier (minimum PST with IST >= 1):\n";
    analysis::Table frontier_table({"Model", "frontier", "paper"});
    model.qcor = 0.0;
    frontier_table.addRow(
        {"uncorrelated",
         analysis::fmt(analysis::pstFrontier(model, balls, 16, rng), 3),
         "0.018"});
    model.qcor = 0.10;
    frontier_table.addRow(
        {"weak correlation (10%)",
         analysis::fmt(analysis::pstFrontier(model, balls, 16, rng), 3),
         "0.036"});
    model.qcor = 0.50;
    frontier_table.addRow(
        {"strong correlation (50%)",
         analysis::fmt(analysis::pstFrontier(model, balls, 16, rng), 3),
         "0.080"});
    std::cout << frontier_table.toString();

    // Experimental scatter: single-best-mapping runs on drifting
    // device instances.
    const int runs_per_bench =
        static_cast<int>(bench::rounds(8));
    std::cout << "\nexperimental runs (single best mapping, "
              << balls << " trials each):\n";
    analysis::Table exp_table({"Benchmark", "run", "PST", "IST",
                               "below uncorrelated curve?"});
    for (const char *name : {"qaoa-6", "bv-6", "greycode"}) {
        const auto bench_def = benchmarks::byName(name);
        hw::Device device = bench::paperMachine();
        Rng drift_rng(17);
        for (int run = 0; run < runs_per_bench; ++run) {
            if (run > 0)
                device = device.driftedRound(drift_rng, 0.15);
            const core::EnsembleBuilder builder(device);
            const auto program =
                builder.candidates(bench_def.circuit).front();
            const sim::Executor exec(device);
            const auto dist = stats::Distribution::fromCounts(
                exec.run(program.physical, balls, rng));
            const double pst_v = stats::pst(dist, bench_def.expected);
            const double ist_v = stats::ist(dist, bench_def.expected);
            const double model_ist =
                analysis::analyticalIstUncorrelated(
                    std::max(pst_v, 1e-4), 64, balls);
            exp_table.addRow({name, std::to_string(run),
                              analysis::fmt(pst_v, 3),
                              analysis::fmt(ist_v, 2),
                              ist_v < model_ist ? "yes" : "no"});
        }
        std::cout << "." << std::flush;
    }
    std::cout << "\n" << exp_table.toString()
              << "\npaper reference: experimental IST sits well below "
                 "the uncorrelated model at equal PST\n";
    return 0;
}
