/**
 * @file
 * Figure 4 reproduction: pairwise KL-divergence heat maps for BV-6.
 * (a) eight repeated runs of the single best mapping — distributions
 * nearly identical (paper: average divergence 0.03);
 * (b) eight different mappings — outputs diverge (paper: average 0.5).
 */

#include <iostream>
#include <vector>

#include "analysis/report.hpp"
#include "bench_util.hpp"
#include "benchmarks/benchmarks.hpp"
#include "core/ensemble.hpp"
#include "sim/executor.hpp"
#include "stats/metrics.hpp"

int
main()
{
    using namespace qedm;
    bench::banner("Figure 4", "pairwise output divergence: one mapping "
                              "vs eight diverse mappings");

    const auto bv6 = benchmarks::bv6();
    const hw::Device device = bench::paperMachine();
    const std::uint64_t shots_per_run = bench::shots() / 8;

    core::EnsembleConfig config;
    config.size = 8;
    config.maxOverlap = 0.5;
    const core::EnsembleBuilder builder(device, config);
    const auto programs = builder.build(bv6.circuit);

    const sim::Executor exec(device);
    Rng rng(1);

    // (a) Eight runs, same (best) mapping.
    std::vector<stats::Distribution> same;
    for (int run = 0; run < 8; ++run) {
        same.push_back(stats::Distribution::fromCounts(exec.run(
            programs.front().physical, shots_per_run, rng)));
    }
    // (b) Eight diverse mappings.
    std::vector<stats::Distribution> diverse;
    for (const auto &program : programs) {
        diverse.push_back(stats::Distribution::fromCounts(
            exec.run(program.physical, shots_per_run, rng)));
    }

    const std::vector<std::string> labels{"A", "B", "C", "D",
                                          "E", "F", "G", "H"};
    const auto same_matrix = stats::pairwiseDivergence(same);
    const auto diverse_matrix = stats::pairwiseDivergence(diverse);

    std::cout << "\n(a) eight runs of the single best mapping:\n"
              << analysis::heatmap(same_matrix, labels)
              << "average pairwise SKL = "
              << analysis::fmt(stats::meanOffDiagonal(same_matrix))
              << "  (paper: ~0.03)\n\n"
              << "(b) eight diverse mappings:\n"
              << analysis::heatmap(diverse_matrix, labels)
              << "average pairwise SKL = "
              << analysis::fmt(stats::meanOffDiagonal(diverse_matrix))
              << "  (paper: ~0.5)\n\n"
              << "diversity ratio (diverse / same) = "
              << analysis::fmt(stats::meanOffDiagonal(diverse_matrix) /
                               std::max(stats::meanOffDiagonal(
                                            same_matrix),
                                        1e-9), 1)
              << "x\n";
    return 0;
}
