/**
 * @file
 * Table 2 / Appendix-B reproduction: the KL-divergence worked example.
 * P = (0.2, 0.3, 0.4, 0.1) against uniform Q. The paper prints 0.046
 * and 0.052 labeled "ln"; those are the base-10 values, which this
 * bench shows alongside the natural-log ones.
 */

#include <cmath>
#include <iostream>

#include "analysis/report.hpp"
#include "stats/distribution.hpp"
#include "stats/metrics.hpp"

int
main()
{
    using namespace qedm;
    std::cout << "Table 2 / Appendix B: KL-divergence worked example\n\n";

    const auto p =
        stats::Distribution::fromProbabilities({0.2, 0.3, 0.4, 0.1});
    const auto q = stats::Distribution::uniform(2);

    analysis::Table dist_table({"Distribution", "0", "1", "2", "3"});
    dist_table.addRow({"P(x)", "0.2", "0.3", "0.4", "0.1"});
    dist_table.addRow({"Q(x)", "0.25", "0.25", "0.25", "0.25"});
    std::cout << dist_table.toString() << "\n";

    const double pq = stats::klDivergence(p, q, 0.0);
    const double qp = stats::klDivergence(q, p, 0.0);
    analysis::Table kl({"Quantity", "nats", "log10 (paper)",
                        "paper value"});
    kl.addRow({"D(P||Q)", analysis::fmt(pq, 4),
               analysis::fmt(pq / std::log(10.0), 4), "0.046"});
    kl.addRow({"D(Q||P)", analysis::fmt(qp, 4),
               analysis::fmt(qp / std::log(10.0), 4), "0.052"});
    kl.addRow({"SKL(P,Q)", analysis::fmt(pq + qp, 4),
               analysis::fmt((pq + qp) / std::log(10.0), 4), "-"});
    std::cout << kl.toString()
              << "\nSKL(P,Q) = D(P||Q) + D(Q||P) (Eq. 4) and equals "
                 "SKL(Q,P): "
              << analysis::fmt(stats::symmetricKl(p, q, 0.0), 4)
              << " == "
              << analysis::fmt(stats::symmetricKl(q, p, 0.0), 4)
              << "\n";
    return 0;
}
