/**
 * @file
 * Ablation: ensemble selection policy. Compares (i) the paper's
 * literal top-K by ESP, (ii) overlap-capped top-K (this repo's
 * default, matching the qubit-set diversity the paper observed on
 * real hardware), and (iii) random-K candidates. Shows why qubit-set
 * diversity, not just ESP rank, drives EDM's win.
 */

#include <iostream>

#include "analysis/report.hpp"
#include "bench_util.hpp"
#include "benchmarks/benchmarks.hpp"
#include "core/edm.hpp"
#include "sim/executor.hpp"
#include "stats/metrics.hpp"

int
main()
{
    using namespace qedm;
    bench::banner("Ablation: selection",
                  "plain top-K vs overlap-capped vs random ensembles");

    const hw::Device device = bench::paperMachine();
    const auto bv6 = benchmarks::bv6();
    const sim::Executor exec(device);

    analysis::Table table({"Policy", "IST", "PST", "member diversity "
                                                   "(mean SKL)"});

    auto evaluate = [&](const std::string &label,
                        const std::vector<transpile::CompiledProgram>
                            &programs,
                        Rng &rng) {
        std::vector<stats::Distribution> outputs;
        const std::uint64_t per =
            bench::shots() / programs.size();
        for (const auto &program : programs) {
            outputs.push_back(stats::Distribution::fromCounts(
                exec.run(program.physical, per, rng)));
        }
        const auto merged = stats::mergeUniform(outputs);
        table.addRow(
            {label, analysis::fmt(stats::ist(merged, bv6.expected), 2),
             analysis::fmt(stats::pst(merged, bv6.expected), 4),
             analysis::fmt(stats::meanOffDiagonal(
                 stats::pairwiseDivergence(outputs)))});
    };

    Rng rng(1);
    for (double cap : {1.0, 0.75, 0.5}) {
        core::EnsembleConfig config;
        config.size = 4;
        config.maxOverlap = cap;
        const core::EnsembleBuilder builder(device, config);
        evaluate("top-4, overlap cap " + analysis::fmt(cap, 2),
                 builder.build(bv6.circuit), rng);
    }
    {
        core::EnsembleConfig config;
        config.size = 4;
        const core::EnsembleBuilder builder(device, config);
        Rng pick_rng(5);
        evaluate("best + random-3",
                 builder.buildRandom(bv6.circuit, pick_rng), rng);
    }
    std::cout << "\n" << table.toString()
              << "\ncap 1.0 is the paper's literal policy; the capped "
                 "variants reproduce the qubit-set diversity the "
                 "paper's machine exhibited naturally\n";
    return 0;
}
