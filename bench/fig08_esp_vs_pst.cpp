/**
 * @file
 * Figure 8 reproduction: compile-time ESP vs observed runtime PST for
 * eight BV-6 mappings. The correlation is good but imperfect — the
 * mapping estimated best at compile time need not have the highest
 * PST at runtime, which motivates using the top-K rather than top-1.
 */

#include <algorithm>
#include <cmath>
#include <iostream>
#include <vector>

#include "analysis/report.hpp"
#include "bench_util.hpp"
#include "benchmarks/benchmarks.hpp"
#include "core/ensemble.hpp"
#include "sim/executor.hpp"
#include "stats/metrics.hpp"

namespace {

double
pearson(const std::vector<double> &x, const std::vector<double> &y)
{
    const double n = static_cast<double>(x.size());
    double sx = 0, sy = 0, sxx = 0, syy = 0, sxy = 0;
    for (std::size_t i = 0; i < x.size(); ++i) {
        sx += x[i];
        sy += y[i];
        sxx += x[i] * x[i];
        syy += y[i] * y[i];
        sxy += x[i] * y[i];
    }
    const double cov = sxy - sx * sy / n;
    const double vx = sxx - sx * sx / n;
    const double vy = syy - sy * sy / n;
    if (vx <= 0.0 || vy <= 0.0)
        return 0.0;
    return cov / std::sqrt(vx * vy);
}

} // namespace

int
main()
{
    using namespace qedm;
    bench::banner("Figure 8", "compile-time ESP vs runtime PST for "
                              "eight BV-6 mappings");

    const auto bv6 = benchmarks::bv6();
    const hw::Device device = bench::paperMachine();

    core::EnsembleConfig config;
    config.size = 8;
    config.maxOverlap = 0.5;
    const core::EnsembleBuilder builder(device, config);
    const auto programs = builder.build(bv6.circuit);

    const sim::Executor exec(device);
    Rng rng(1);

    analysis::Table table({"Mapping", "ESP (compile)", "PST (runtime)",
                           "ESP rank", "PST rank"});
    std::vector<double> esps, psts;
    for (const auto &program : programs) {
        const auto dist = stats::Distribution::fromCounts(
            exec.run(program.physical, bench::shots() / 2, rng));
        esps.push_back(program.esp);
        psts.push_back(stats::pst(dist, bv6.expected));
    }
    auto rank_of = [](const std::vector<double> &v, std::size_t i) {
        int rank = 1;
        for (std::size_t j = 0; j < v.size(); ++j) {
            if (v[j] > v[i])
                ++rank;
        }
        return rank;
    };
    for (std::size_t i = 0; i < programs.size(); ++i) {
        table.addRow({std::string(1, char('A' + i)),
                      analysis::fmt(esps[i]),
                      analysis::fmt(psts[i], 4),
                      std::to_string(rank_of(esps, i)),
                      std::to_string(rank_of(psts, i))});
    }
    const std::size_t best_pst = static_cast<std::size_t>(
        std::max_element(psts.begin(), psts.end()) - psts.begin());
    std::cout << "\n" << table.toString()
              << "\nPearson correlation(ESP, PST) = "
              << analysis::fmt(pearson(esps, psts), 2)
              << "\nbest-by-ESP is A; best-by-PST is "
              << std::string(1, char('A' + best_pst))
              << "  (paper: Map-A best at compile time, Map-C best at "
                 "runtime)\n";
    return 0;
}
