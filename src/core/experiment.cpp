#include "core/experiment.hpp"

#include <optional>

#include "common/error.hpp"
#include "common/hash.hpp"
#include "runtime/scheduler.hpp"
#include "sim/execution_tape.hpp"
#include "stats/metrics.hpp"
#include "transpile/compile_cache.hpp"

namespace qedm::core {
namespace {

PolicyOutcome
score(const stats::Distribution &dist, Outcome correct)
{
    return PolicyOutcome{stats::ist(dist, correct),
                         stats::pst(dist, correct)};
}

/** Median of one policy field across rounds. */
PolicyOutcome
medianPolicy(const std::vector<RoundOutcome> &rounds,
             PolicyOutcome RoundOutcome::*field)
{
    std::vector<double> ists, psts;
    ists.reserve(rounds.size());
    psts.reserve(rounds.size());
    for (const auto &r : rounds) {
        ists.push_back((r.*field).ist);
        psts.push_back((r.*field).pst);
    }
    return PolicyOutcome{stats::median(ists), stats::median(psts)};
}

// Per-round RNG stream layout under root.child(round): the four
// stochastic stages of a round each own a fixed subdomain key, so no
// stage's consumption can perturb another's stream (and rounds can run
// concurrently without sharing generator state).
constexpr std::uint64_t kStreamDrift = 0;
constexpr std::uint64_t kStreamPipeline = 1;
constexpr std::uint64_t kStreamBaselineEst = 2;
constexpr std::uint64_t kStreamBaselinePost = 3;

/** Pack a round's four policy outcomes into a journal RoundRecord. */
resilience::RoundRecord
packRound(const RoundOutcome &out)
{
    resilience::RoundRecord rec;
    rec.policy = {out.baselineEst.ist, out.baselineEst.pst,
                  out.baselinePost.ist, out.baselinePost.pst,
                  out.edm.ist,          out.edm.pst,
                  out.wedm.ist,         out.wedm.pst};
    rec.degradation = out.degradation;
    return rec;
}

/** Restore a committed round from its journal record, bit-exactly. */
RoundOutcome
unpackRound(const resilience::RoundRecord &rec)
{
    RoundOutcome out;
    out.baselineEst = {rec.policy[0], rec.policy[1]};
    out.baselinePost = {rec.policy[2], rec.policy[3]};
    out.edm = {rec.policy[4], rec.policy[5]};
    out.wedm = {rec.policy[6], rec.policy[7]};
    out.degradation = rec.degradation;
    return out;
}

} // namespace

resilience::JournalFingerprint
experimentFingerprint(const hw::Device &device,
                      const benchmarks::Benchmark &benchmark,
                      const ExperimentConfig &config, std::uint64_t seed)
{
    // Everything that shapes the summary goes in; operational knobs
    // (jobs, simBatch, wallDeadlineMs, backoff pacing) deliberately
    // stay out so a journal can be resumed under different machine
    // conditions.
    Fingerprint fp(0x4a4f55524e414cull); // "JOURNAL"
    fp.add(std::string_view(benchmark.name));
    fp.add(config.rounds);
    fp.add(config.totalShots);
    fp.add(config.ensembleSize);
    fp.add(config.calibrationDrift);
    fp.add(config.uniformityGuard);
    const resilience::FaultConfig &faults = config.resilience.faults;
    fp.add(faults.dropoutProb);
    fp.add(faults.stalenessProb);
    fp.add(faults.stalenessSeverity);
    fp.add(faults.transientProb);
    fp.add(faults.slowProb);
    fp.add(faults.slowFactor);
    fp.add(faults.batchMsPerShot);
    fp.addRange(faults.forcedDropouts);
    fp.add(config.resilience.retryMax);
    fp.add(config.resilience.memberDeadlineMs);
    fp.add(config.resilience.minTrialsPerMember);
    fp.addRange(config.region);

    resilience::JournalFingerprint id;
    id.config = fp.value();
    id.device = device.fingerprint();
    id.seedRoot = seed;
    return id;
}

double
ExperimentSummary::edmIstGain() const
{
    QEDM_REQUIRE(median.baselineEst.ist > 0.0,
                 "baseline IST is zero; gain undefined");
    return median.edm.ist / median.baselineEst.ist;
}

double
ExperimentSummary::wedmIstGain() const
{
    QEDM_REQUIRE(median.baselineEst.ist > 0.0,
                 "baseline IST is zero; gain undefined");
    return median.wedm.ist / median.baselineEst.ist;
}

ExperimentSummary
runExperiment(const hw::Device &device,
              const benchmarks::Benchmark &benchmark,
              const ExperimentConfig &config, std::uint64_t seed)
{
    QEDM_REQUIRE(config.rounds >= 1, "need at least one round");
    if (config.replay != nullptr) {
        config.replay->requireMatches(
            experimentFingerprint(device, benchmark, config, seed));
    }
    const SeedSequence root(seed);

    // One pool serves both the round fan-out and the nested
    // member/shot-batch fan-outs; caches are shared so baselines reuse
    // the ensemble's tapes and undrifted rounds reuse compilations
    // (drift changes the device fingerprint, invalidating both).
    const runtime::JobScheduler scheduler(config.jobs);
    transpile::CompileCache compile_cache;
    sim::TapeCache tape_cache;

    EdmConfig edm_config;
    edm_config.ensemble.size = config.ensembleSize;
    edm_config.ensemble.compileCache = &compile_cache;
    edm_config.ensemble.region = config.region;
    edm_config.totalShots = config.totalShots;
    edm_config.uniformityGuard = config.uniformityGuard;
    edm_config.simBatch = config.simBatch;
    edm_config.verifyPasses = config.verifyPasses;
    edm_config.scheduler = &scheduler;
    edm_config.tapeCache = &tape_cache;
    edm_config.resilience = config.resilience;

    ExperimentSummary summary;
    summary.benchmark = benchmark.name;
    summary.rounds.resize(static_cast<std::size_t>(config.rounds));

    const Outcome correct = benchmark.expected;
    scheduler.parallelFor(
        static_cast<std::size_t>(config.rounds), [&](std::size_t round) {
            // Committed rounds restore from the journal without
            // compiling or executing anything (the round record is the
            // commit point; its policy doubles are stored bit-exactly).
            if (config.replay != nullptr && !config.replayFaultsOnly) {
                const resilience::RoundRecord *rec =
                    config.replay->findRound(
                        static_cast<std::uint32_t>(round));
                if (rec != nullptr) {
                    summary.rounds[round] = unpackRound(*rec);
                    return;
                }
            }

            EdmConfig round_config = edm_config;
            round_config.journalRound =
                static_cast<std::uint32_t>(round);
            round_config.journal = config.journal;
            if (config.replay != nullptr) {
                // Recorded wall-clock fires become forced faults so
                // the resumed or replayed round makes the same cut the
                // live watchdog made.
                round_config.resilience.forcedWallAbandons =
                    config.replay->wallAbandons(
                        static_cast<std::uint32_t>(round));
                if (config.replayFaultsOnly) {
                    // Re-execute everything; the only journal input is
                    // the forced fires, and the live watchdog is off
                    // so no *new* nondeterminism can creep in.
                    round_config.resilience.wallDeadlineMs = 0.0;
                } else {
                    round_config.replay = config.replay;
                }
            }

            const SeedSequence seq =
                root.child(static_cast<std::uint64_t>(round));

            std::optional<hw::Device> drifted;
            if (round != 0) {
                Rng drift_rng = seq.child(kStreamDrift).rng();
                drifted = device.driftedRound(drift_rng,
                                              config.calibrationDrift);
            }
            const hw::Device &round_device =
                drifted ? *drifted : device;
            const EdmPipeline pipeline(round_device, round_config);

            const EdmResult result = pipeline.run(
                benchmark.circuit, seq.child(kStreamPipeline));

            RoundOutcome out;
            out.degradation = result.degradation;
            out.edm = score(result.edm, correct);
            out.wedm = score(result.wedm, correct);

            // Baseline-est: all trials on the compile-time best
            // mapping (ensemble member 0 by construction).
            out.baselineEst = score(
                pipeline.runSingle(result.members.front().program,
                                   seq.child(kStreamBaselineEst),
                                   resilience::JournalStage::BaselineEst),
                correct);

            // Baseline-post: all trials on the member that showed the
            // best PST at runtime.
            const std::size_t best = result.bestMemberByPst(correct);
            if (best == 0) {
                out.baselinePost = out.baselineEst;
            } else {
                out.baselinePost = score(
                    pipeline.runSingle(
                        result.members[best].program,
                        seq.child(kStreamBaselinePost),
                        resilience::JournalStage::BaselinePost),
                    correct);
            }
            summary.rounds[round] = out;

            // Commit the round: after this record lands, a resumed run
            // restores the round wholesale and never recompiles it.
            if (config.journal != nullptr) {
                config.journal->recordRound(
                    static_cast<std::uint32_t>(round), packRound(out));
            }
        });

    summary.median.baselineEst =
        medianPolicy(summary.rounds, &RoundOutcome::baselineEst);
    summary.median.baselinePost =
        medianPolicy(summary.rounds, &RoundOutcome::baselinePost);
    summary.median.edm = medianPolicy(summary.rounds, &RoundOutcome::edm);
    summary.median.wedm =
        medianPolicy(summary.rounds, &RoundOutcome::wedm);

    // Roll the per-round resilience accounts up into the summary.
    for (const auto &round : summary.rounds) {
        if (round.degradation.degraded())
            ++summary.degradedRounds;
        summary.trialsLost += round.degradation.trialsLost;
        summary.trialsReassigned += round.degradation.trialsReassigned;
        summary.retriesTotal += round.degradation.retriesTotal;
    }
    return summary;
}

} // namespace qedm::core
