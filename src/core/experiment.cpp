#include "core/experiment.hpp"

#include "common/error.hpp"
#include "stats/metrics.hpp"

namespace qedm::core {
namespace {

PolicyOutcome
score(const stats::Distribution &dist, Outcome correct)
{
    return PolicyOutcome{stats::ist(dist, correct),
                         stats::pst(dist, correct)};
}

/** Median of one policy field across rounds. */
PolicyOutcome
medianPolicy(const std::vector<RoundOutcome> &rounds,
             PolicyOutcome RoundOutcome::*field)
{
    std::vector<double> ists, psts;
    ists.reserve(rounds.size());
    psts.reserve(rounds.size());
    for (const auto &r : rounds) {
        ists.push_back((r.*field).ist);
        psts.push_back((r.*field).pst);
    }
    return PolicyOutcome{stats::median(ists), stats::median(psts)};
}

} // namespace

double
ExperimentSummary::edmIstGain() const
{
    QEDM_REQUIRE(median.baselineEst.ist > 0.0,
                 "baseline IST is zero; gain undefined");
    return median.edm.ist / median.baselineEst.ist;
}

double
ExperimentSummary::wedmIstGain() const
{
    QEDM_REQUIRE(median.baselineEst.ist > 0.0,
                 "baseline IST is zero; gain undefined");
    return median.wedm.ist / median.baselineEst.ist;
}

ExperimentSummary
runExperiment(const hw::Device &device,
              const benchmarks::Benchmark &benchmark,
              const ExperimentConfig &config, std::uint64_t seed)
{
    QEDM_REQUIRE(config.rounds >= 1, "need at least one round");
    Rng rng(seed);

    EdmConfig edm_config;
    edm_config.ensemble.size = config.ensembleSize;
    edm_config.totalShots = config.totalShots;
    edm_config.uniformityGuard = config.uniformityGuard;

    ExperimentSummary summary;
    summary.benchmark = benchmark.name;
    summary.rounds.reserve(static_cast<std::size_t>(config.rounds));

    const Outcome correct = benchmark.expected;
    for (int round = 0; round < config.rounds; ++round) {
        const hw::Device round_device =
            round == 0 ? device
                       : device.driftedRound(rng,
                                             config.calibrationDrift);
        const EdmPipeline pipeline(round_device, edm_config);

        const EdmResult result = pipeline.run(benchmark.circuit, rng);

        RoundOutcome out;
        out.edm = score(result.edm, correct);
        out.wedm = score(result.wedm, correct);

        // Baseline-est: all trials on the compile-time best mapping
        // (ensemble member 0 by construction).
        out.baselineEst = score(
            pipeline.runSingle(result.members.front().program, rng),
            correct);

        // Baseline-post: all trials on the member that showed the best
        // PST at runtime.
        const std::size_t best = result.bestMemberByPst(correct);
        if (best == 0) {
            out.baselinePost = out.baselineEst;
        } else {
            out.baselinePost = score(
                pipeline.runSingle(result.members[best].program, rng),
                correct);
        }
        summary.rounds.push_back(out);
    }

    summary.median.baselineEst =
        medianPolicy(summary.rounds, &RoundOutcome::baselineEst);
    summary.median.baselinePost =
        medianPolicy(summary.rounds, &RoundOutcome::baselinePost);
    summary.median.edm = medianPolicy(summary.rounds, &RoundOutcome::edm);
    summary.median.wedm =
        medianPolicy(summary.rounds, &RoundOutcome::wedm);
    return summary;
}

} // namespace qedm::core
