#include "core/experiment.hpp"

#include <optional>

#include "common/error.hpp"
#include "runtime/scheduler.hpp"
#include "sim/execution_tape.hpp"
#include "stats/metrics.hpp"
#include "transpile/compile_cache.hpp"

namespace qedm::core {
namespace {

PolicyOutcome
score(const stats::Distribution &dist, Outcome correct)
{
    return PolicyOutcome{stats::ist(dist, correct),
                         stats::pst(dist, correct)};
}

/** Median of one policy field across rounds. */
PolicyOutcome
medianPolicy(const std::vector<RoundOutcome> &rounds,
             PolicyOutcome RoundOutcome::*field)
{
    std::vector<double> ists, psts;
    ists.reserve(rounds.size());
    psts.reserve(rounds.size());
    for (const auto &r : rounds) {
        ists.push_back((r.*field).ist);
        psts.push_back((r.*field).pst);
    }
    return PolicyOutcome{stats::median(ists), stats::median(psts)};
}

// Per-round RNG stream layout under root.child(round): the four
// stochastic stages of a round each own a fixed subdomain key, so no
// stage's consumption can perturb another's stream (and rounds can run
// concurrently without sharing generator state).
constexpr std::uint64_t kStreamDrift = 0;
constexpr std::uint64_t kStreamPipeline = 1;
constexpr std::uint64_t kStreamBaselineEst = 2;
constexpr std::uint64_t kStreamBaselinePost = 3;

} // namespace

double
ExperimentSummary::edmIstGain() const
{
    QEDM_REQUIRE(median.baselineEst.ist > 0.0,
                 "baseline IST is zero; gain undefined");
    return median.edm.ist / median.baselineEst.ist;
}

double
ExperimentSummary::wedmIstGain() const
{
    QEDM_REQUIRE(median.baselineEst.ist > 0.0,
                 "baseline IST is zero; gain undefined");
    return median.wedm.ist / median.baselineEst.ist;
}

ExperimentSummary
runExperiment(const hw::Device &device,
              const benchmarks::Benchmark &benchmark,
              const ExperimentConfig &config, std::uint64_t seed)
{
    QEDM_REQUIRE(config.rounds >= 1, "need at least one round");
    const SeedSequence root(seed);

    // One pool serves both the round fan-out and the nested
    // member/shot-batch fan-outs; caches are shared so baselines reuse
    // the ensemble's tapes and undrifted rounds reuse compilations
    // (drift changes the device fingerprint, invalidating both).
    const runtime::JobScheduler scheduler(config.jobs);
    transpile::CompileCache compile_cache;
    sim::TapeCache tape_cache;

    EdmConfig edm_config;
    edm_config.ensemble.size = config.ensembleSize;
    edm_config.ensemble.compileCache = &compile_cache;
    edm_config.ensemble.region = config.region;
    edm_config.totalShots = config.totalShots;
    edm_config.uniformityGuard = config.uniformityGuard;
    edm_config.verifyPasses = config.verifyPasses;
    edm_config.scheduler = &scheduler;
    edm_config.tapeCache = &tape_cache;
    edm_config.resilience = config.resilience;

    ExperimentSummary summary;
    summary.benchmark = benchmark.name;
    summary.rounds.resize(static_cast<std::size_t>(config.rounds));

    const Outcome correct = benchmark.expected;
    scheduler.parallelFor(
        static_cast<std::size_t>(config.rounds), [&](std::size_t round) {
            const SeedSequence seq =
                root.child(static_cast<std::uint64_t>(round));

            std::optional<hw::Device> drifted;
            if (round != 0) {
                Rng drift_rng = seq.child(kStreamDrift).rng();
                drifted = device.driftedRound(drift_rng,
                                              config.calibrationDrift);
            }
            const hw::Device &round_device =
                drifted ? *drifted : device;
            const EdmPipeline pipeline(round_device, edm_config);

            const EdmResult result = pipeline.run(
                benchmark.circuit, seq.child(kStreamPipeline));

            RoundOutcome out;
            out.degradation = result.degradation;
            out.edm = score(result.edm, correct);
            out.wedm = score(result.wedm, correct);

            // Baseline-est: all trials on the compile-time best
            // mapping (ensemble member 0 by construction).
            out.baselineEst = score(
                pipeline.runSingle(result.members.front().program,
                                   seq.child(kStreamBaselineEst)),
                correct);

            // Baseline-post: all trials on the member that showed the
            // best PST at runtime.
            const std::size_t best = result.bestMemberByPst(correct);
            if (best == 0) {
                out.baselinePost = out.baselineEst;
            } else {
                out.baselinePost = score(
                    pipeline.runSingle(result.members[best].program,
                                       seq.child(kStreamBaselinePost)),
                    correct);
            }
            summary.rounds[round] = out;
        });

    summary.median.baselineEst =
        medianPolicy(summary.rounds, &RoundOutcome::baselineEst);
    summary.median.baselinePost =
        medianPolicy(summary.rounds, &RoundOutcome::baselinePost);
    summary.median.edm = medianPolicy(summary.rounds, &RoundOutcome::edm);
    summary.median.wedm =
        medianPolicy(summary.rounds, &RoundOutcome::wedm);

    // Roll the per-round resilience accounts up into the summary.
    for (const auto &round : summary.rounds) {
        if (round.degradation.degraded())
            ++summary.degradedRounds;
        summary.trialsLost += round.degradation.trialsLost;
        summary.trialsReassigned += round.degradation.trialsReassigned;
        summary.retriesTotal += round.degradation.retriesTotal;
    }
    return summary;
}

} // namespace qedm::core
