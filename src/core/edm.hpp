/**
 * @file
 * The EDM / WEDM pipelines (paper Sections 5-6).
 *
 * EDM: split the shot budget evenly across the top-K mappings, run
 * each, and average the K output distributions. WEDM: same runs, but
 * merge with weights proportional to each member's cumulative
 * symmetric-KL divergence from the others (Appendix B).
 *
 * Execution goes through the qedm::runtime layer: members and fixed
 * shot batches fan out over a JobScheduler, each work unit drawing
 * from its own SeedSequence-derived RNG stream and writing into a
 * pre-assigned result slot. Outputs are therefore bit-identical for
 * any jobs value, including fully sequential execution.
 */

#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "circuit/circuit.hpp"
#include "common/rng.hpp"
#include "core/ensemble.hpp"
#include "hw/device.hpp"
#include "resilience/degradation.hpp"
#include "resilience/journal.hpp"
#include "runtime/scheduler.hpp"
#include "sim/execution_tape.hpp"
#include "sim/executor.hpp"
#include "stats/distribution.hpp"
#include "stats/metrics.hpp"

namespace qedm::core {

/** How member distributions are combined. */
enum class MergeRule
{
    Uniform,         ///< plain average (EDM)
    KlWeighted,      ///< symmetric-KL diversity weights (WEDM)
    EntropyWeighted, ///< weight by member output entropy (ablation)
};

/** Pipeline configuration. */
struct EdmConfig
{
    EnsembleConfig ensemble;
    /** Total trials, split evenly across members (paper: 16384). */
    std::uint64_t totalShots = 16384;
    /** Smoothing used inside KL computations. */
    double klSmoothing = 1e-6;
    /**
     * Paper footnote 2: drop members whose output is statistically
     * indistinguishable from uniform noise before merging (unless all
     * members are, in which case everything is kept).
     */
    bool uniformityGuard = false;
    double uniformityMargin = 0.25;
    /**
     * Worker threads for the member/shot-batch fan-out: 1 = strictly
     * sequential (no threads), 0 = hardware concurrency, N = pool of
     * N. Ignored when @ref scheduler is set. Results are identical for
     * every value.
     */
    int jobs = 1;
    /**
     * External scheduler to run on instead of building one from
     * @ref jobs (not owned; must outlive the pipeline). runExperiment
     * hands each round's pipeline its own scheduler so nested
     * fan-outs share one pool.
     */
    const runtime::JobScheduler *scheduler = nullptr;
    /**
     * Execution-granularity unit: each member's shots are cut into
     * batches of this size, each batch an independent RNG stream and
     * a schedulable work unit. Part of the result's identity — the
     * same (seed, shotBatch) yields the same distributions at any
     * jobs value; changing shotBatch changes which streams are drawn.
     */
    std::uint64_t shotBatch = 2048;
    /**
     * Trajectory-engine lane width: shots per SoA batch inside the
     * simulator (sim::Executor::setSimBatch). 0 = scalar per-shot
     * path, 1+ = batched. NOT part of the result's identity — every
     * width replays the §12 draw-order contract bit-identically; this
     * only tunes throughput (the executor clamps to an L1-friendly
     * width internally).
     */
    std::size_t simBatch = sim::Executor::kDefaultSimBatch;
    /** Optional shared tape cache (not owned; must outlive run()). */
    sim::TapeCache *tapeCache = nullptr;
    /**
     * Run the qedm::check static verifiers over every compiled
     * ensemble member before execution (ORed into
     * EnsembleConfig::verifyPasses). Always-on in debug builds;
     * opt-in via this flag or `qedm_cli --check` in release.
     */
    bool verifyPasses = check::kDefaultVerify;
    /**
     * Fault injection + graceful degradation (all-off by default).
     * When inactive the pipeline compiles down to the original
     * execution path: no injector, retry, or deadline bookkeeping
     * exists on the hot path.
     */
    resilience::ResilienceConfig resilience;
    /**
     * Crash-safe journaling (resilience/journal.hpp). When @ref journal
     * is set, every completed work unit's outcome is durably recorded
     * before the run proceeds; when @ref replay is set, units found in
     * it are restored instead of executed (crash resume). Neither is
     * owned. @ref journalRound keys this pipeline execution's records
     * inside a multi-round experiment.
     */
    resilience::Journal *journal = nullptr;
    const resilience::JournalReplay *replay = nullptr;
    std::uint32_t journalRound = 0;
};

/** One executed ensemble member. */
struct MemberResult
{
    transpile::CompiledProgram program;
    /** Trials merged into the ensemble (0 for failed members). */
    std::uint64_t shots = 0;
    stats::Distribution output{1};
    /**
     * True when the member failed mid-run and its trials were dropped
     * by the degradation policy; @ref output is then a uniform
     * placeholder and the member is excluded from every merge.
     */
    bool failed = false;
};

/** Output of one EDM pipeline execution. */
struct EdmResult
{
    std::vector<MemberResult> members;
    /** EDM merge (uniform weights) over the kept members. */
    stats::Distribution edm{1};
    /** WEDM merge (diversity weights) over the kept members. */
    stats::Distribution wedm{1};
    /** WEDM weights, parallel to members (0 for discarded/failed). */
    std::vector<double> wedmWeights;
    /** Member indices discarded by the uniformity guard. */
    std::vector<std::size_t> discarded;
    /** What the resilience layer saw (empty when faults are off). */
    resilience::DegradationReport degradation;

    /** Member with the highest observed PST for @p correct
     *  (failed members are never selected). */
    std::size_t bestMemberByPst(Outcome correct) const;
};

/** Runs the full EDM/WEDM flow against one device. */
class EdmPipeline
{
  public:
    EdmPipeline(const hw::Device &device, EdmConfig config = EdmConfig{});

    /**
     * Compile the ensemble, run each member for totalShots / K trials,
     * and build the merged distributions. Consumes exactly one draw
     * from @p rng to root the execution streams.
     */
    EdmResult run(const circuit::Circuit &logical, Rng &rng) const;

    /** Same, rooted at an explicit stream node (the parallel-safe
     *  entry point used by runExperiment). */
    EdmResult run(const circuit::Circuit &logical,
                  const SeedSequence &seq) const;

    /**
     * Run @p program for all totalShots trials (the single-mapping
     * baselines). Consumes one draw from @p rng. @p stage keys the
     * journal records of this run (the two baselines of a round must
     * not collide).
     */
    stats::Distribution
    runSingle(const transpile::CompiledProgram &program, Rng &rng,
              resilience::JournalStage stage =
                  resilience::JournalStage::BaselineEst) const;

    /** Same, rooted at an explicit stream node. */
    stats::Distribution
    runSingle(const transpile::CompiledProgram &program,
              const SeedSequence &seq,
              resilience::JournalStage stage =
                  resilience::JournalStage::BaselineEst) const;

    /** Merge explicitly with a chosen rule (ablation hook). */
    static stats::Distribution
    merge(const std::vector<MemberResult> &members, MergeRule rule,
          double kl_smoothing = 1e-6);

    /**
     * Split @p total trials across @p members: every member gets the
     * floor share and the remainder goes to the lowest-indexed members
     * one trial each, so the budget is preserved exactly. Degenerate
     * case total < members: every member still gets one trial (the
     * historical minimum-viable-ensemble behaviour).
     */
    static std::vector<std::uint64_t> splitShots(std::uint64_t total,
                                                 std::size_t members);

    const hw::Device &device() const { return device_; }
    const EdmConfig &config() const { return config_; }

  private:
    const hw::Device &device_;
    EdmConfig config_;
};

} // namespace qedm::core
