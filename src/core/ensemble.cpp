#include "core/ensemble.hpp"

#include <algorithm>
#include <cmath>
#include <set>
#include <utility>

#include "common/error.hpp"
#include "sim/executor.hpp"
#include "stats/metrics.hpp"
#include "transpile/esp_model.hpp"
#include "transpile/placement_search.hpp"
#include "transpile/vf2.hpp"

namespace qedm::core {

using transpile::CompiledProgram;

namespace {

/**
 * One isomorphic transfer before materialization: the full relabeling,
 * the relabeled initial map (the deterministic tie-break key), and the
 * exact trace-scored ESP. Cheap to build and sort; the physical
 * circuit is only materialized for candidates that survive the
 * automorphism dedup.
 */
struct CandidateRecord
{
    std::vector<int> relabel;
    std::vector<int> initialMap;
    std::vector<int> usedSet; ///< sorted embedding targets (dedup key)
    double esp = 0.0;
};

/** Deterministic candidate order: ESP descending, ties broken on the
 *  initial map and then on the full relabeling — a total order
 *  independent of enumeration order. */
bool
candidateBefore(const CandidateRecord &a, const CandidateRecord &b)
{
    if (a.esp != b.esp)
        return a.esp > b.esp;
    if (a.initialMap != b.initialMap)
        return a.initialMap < b.initialMap;
    return a.relabel < b.relabel;
}

} // namespace

EnsembleBuilder::EnsembleBuilder(const hw::Device &device,
                                 EnsembleConfig config)
    : device_(device), config_(std::move(config)),
      view_(config_.region.empty()
                ? hw::DeviceView(device)
                : hw::DeviceView(device, config_.region))
{
    QEDM_REQUIRE(config_.size >= 1, "ensemble size must be >= 1");
    QEDM_REQUIRE(config_.expectedDropoutProb >= 0.0 &&
                     config_.expectedDropoutProb < 1.0,
                 "expected dropout probability must be in [0, 1)");
    QEDM_REQUIRE(config_.plannedDropouts >= 0,
                 "planned dropout count must be non-negative");
}

std::vector<CompiledProgram>
EnsembleBuilder::candidates(const circuit::Circuit &logical) const
{
    transpile::Transpiler compiler(view_, config_.routeCost,
                                   config_.verifyPasses);
    compiler.setScheduler(config_.scheduler);
    std::shared_ptr<const CompiledProgram> cached;
    if (config_.compileCache != nullptr)
        cached = config_.compileCache->getOrCompile(compiler, logical);
    const CompiledProgram seed =
        cached ? *cached : compiler.compile(logical);
    const auto &topo = device_.topology();

    // Pattern: the induced subgraph on the qubits the seed executable
    // touches (including any SWAP waypoints).
    const std::vector<int> used = seed.usedQubits();
    QEDM_ASSERT(!used.empty(), "compiled program uses no qubits");
    std::vector<int> patternIndex(topo.numQubits(), -1);
    for (std::size_t i = 0; i < used.size(); ++i)
        patternIndex[used[i]] = static_cast<int>(i);
    std::vector<std::pair<int, int>> pattern_edges;
    for (const auto &edge : topo.edges()) {
        if (patternIndex[edge.a] >= 0 && patternIndex[edge.b] >= 0)
            pattern_edges.emplace_back(patternIndex[edge.a],
                                       patternIndex[edge.b]);
    }
    const hw::Topology pattern(static_cast<int>(used.size()),
                               pattern_edges);

    const auto embeddings = transpile::vf2AllEmbeddings(
        pattern, topo, config_.vf2Limit, view_.maskPtr());
    QEDM_ASSERT(!embeddings.empty(),
                "identity embedding must always exist");

    // Score every transfer from the seed's gate trace — the same
    // factors esp() multiplies on the materialized circuit, in the
    // same order, so the scores are bit-identical, without building
    // a circuit per candidate.
    const auto model = transpile::sharedEspModel(view_);
    const transpile::GateTrace trace =
        transpile::EspModel::trace(seed.physical.decomposed());

    // Record building is embarrassingly parallel: each embedding's
    // relabeling and trace score depend only on immutable shared
    // state, and every worker writes a pre-assigned slot. The sort
    // below imposes the canonical total order, so the result is
    // bit-identical at any --jobs.
    std::vector<CandidateRecord> records(embeddings.size());
    auto score = [&](std::size_t idx) {
        const auto &embedding = embeddings[idx];
        // Full physical-to-physical relabeling: used qubits move via
        // the embedding; the rest fill the remaining slots (their
        // placement is irrelevant, no gate touches them).
        CandidateRecord rec;
        rec.relabel.assign(topo.numQubits(), -1);
        std::vector<bool> taken(topo.numQubits(), false);
        for (std::size_t i = 0; i < used.size(); ++i) {
            rec.relabel[used[i]] = embedding[i];
            taken[embedding[i]] = true;
        }
        int fill = 0;
        for (int q = 0; q < topo.numQubits(); ++q) {
            if (rec.relabel[q] >= 0)
                continue;
            while (taken[fill])
                ++fill;
            rec.relabel[q] = fill;
            taken[fill] = true;
        }
        rec.initialMap.reserve(seed.initialMap.size());
        for (int p : seed.initialMap)
            rec.initialMap.push_back(rec.relabel[p]);
        rec.usedSet = embedding;
        std::sort(rec.usedSet.begin(), rec.usedSet.end());
        rec.esp = model->espOfTrace(trace, rec.relabel);
        records[idx] = std::move(rec);
    };
    if (config_.scheduler != nullptr) {
        config_.scheduler->parallelFor(embeddings.size(), score);
    } else {
        for (std::size_t idx = 0; idx < embeddings.size(); ++idx)
            score(idx);
    }
    std::sort(records.begin(), records.end(), candidateBefore);

    // The paper ranks isomorphic *sub-graphs*: collapse automorphic
    // relabelings onto the same qubit set, keeping the best-ESP one.
    // Dedup happens *before* materialization, so automorphic copies
    // never cost a circuit build.
    std::vector<CandidateRecord> survivors;
    std::set<std::vector<int>> seen_sets;
    for (auto &rec : records) {
        if (seen_sets.insert(rec.usedSet).second)
            survivors.push_back(std::move(rec));
    }

    // Materialize (and verify) only the survivors, fanned out over the
    // scheduler when one is configured. Each worker writes its
    // pre-assigned slot, so the output is bit-identical at any --jobs.
    std::vector<CompiledProgram> out(survivors.size());
    auto materialize = [&](std::size_t i) {
        const CandidateRecord &rec = survivors[i];
        CompiledProgram member;
        member.physical =
            seed.physical.remapQubits(rec.relabel, topo.numQubits());
        member.initialMap = rec.initialMap;
        member.finalMap.reserve(seed.finalMap.size());
        for (int p : seed.finalMap)
            member.finalMap.push_back(rec.relabel[p]);
        member.swapCount = seed.swapCount;
        member.esp = rec.esp;
        // Isomorphic transfer must preserve validity; verify every
        // member the builder hands out, not just the compiled seed.
        if (config_.verifyPasses) {
            check::ProgramView view;
            view.physical = &member.physical;
            view.initialMap = &member.initialMap;
            view.finalMap = &member.finalMap;
            view.swapCount = member.swapCount;
            view.esp = member.esp;
            view.device = &device_;
            view.logical = &logical;
            view.region = &view_;
            check::verifyProgram(view);
        }
        out[i] = std::move(member);
    };
    if (config_.scheduler != nullptr) {
        config_.scheduler->parallelFor(survivors.size(), materialize);
    } else {
        for (std::size_t i = 0; i < survivors.size(); ++i)
            materialize(i);
    }
    return out;
}

namespace {

/** Fraction of @p a's qubits also present in @p b (both sorted). */
double
overlapFraction(const std::vector<int> &a, const std::vector<int> &b)
{
    if (a.empty())
        return 0.0;
    std::size_t shared = 0;
    for (int q : a) {
        if (std::binary_search(b.begin(), b.end(), q))
            ++shared;
    }
    return static_cast<double>(shared) / static_cast<double>(a.size());
}

} // namespace

std::vector<CompiledProgram>
EnsembleBuilder::build(const circuit::Circuit &logical) const
{
    const std::vector<CompiledProgram> all = candidates(logical);
    // Fault-aware sizing: when the fault plan predicts member dropout,
    // over-provision K so the ensemble *expected to survive* still has
    // config_.size members — size / (1 - p) against probabilistic
    // dropout, plus one slot per deterministically-failed member.
    std::size_t want = static_cast<std::size_t>(config_.size);
    if (config_.expectedDropoutProb > 0.0 || config_.plannedDropouts > 0) {
        const double p = std::min(config_.expectedDropoutProb, 0.9);
        want = static_cast<std::size_t>(std::ceil(
                   static_cast<double>(config_.size) / (1.0 - p))) +
               static_cast<std::size_t>(config_.plannedDropouts);
    }

    // Greedy top-K selection under the overlap cap. If the cap
    // starves the ensemble below K, it is relaxed progressively for
    // the *remaining* slots only, so the tight-cap prefix (the most
    // diverse members) is preserved.
    std::vector<CompiledProgram> out;
    std::vector<std::vector<int>> used_sets;
    std::vector<bool> taken(all.size(), false);
    for (double cap = config_.maxOverlap;
         out.size() < want && out.size() < all.size(); cap += 0.25) {
        for (std::size_t i = 0; i < all.size() && out.size() < want;
             ++i) {
            if (taken[i])
                continue;
            const std::vector<int> used = all[i].usedQubits();
            bool ok = true;
            if (cap < 1.0) {
                for (const auto &prev : used_sets) {
                    if (overlapFraction(used, prev) > cap) {
                        ok = false;
                        break;
                    }
                }
            }
            if (ok) {
                out.push_back(all[i]);
                used_sets.push_back(used);
                taken[i] = true;
            }
        }
        if (cap >= 1.0)
            break;
    }
    return out;
}

std::vector<CompiledProgram>
EnsembleBuilder::buildPredictive(const circuit::Circuit &logical,
                                 std::size_t pool_size) const
{
    QEDM_REQUIRE(pool_size >= 2, "predictive pool needs >= 2 members");
    std::vector<CompiledProgram> pool = candidates(logical);
    if (pool.size() > pool_size)
        pool.resize(pool_size);
    const std::size_t want = std::min<std::size_t>(
        static_cast<std::size_t>(config_.size), pool.size());

    // Exact compile-time prediction of every pool member's output.
    const sim::Executor exec(device_);
    std::vector<stats::Distribution> predicted;
    predicted.reserve(pool.size());
    for (const auto &member : pool)
        predicted.push_back(exec.exactDistribution(member.physical));

    // Greedy max-diversity: seed with the best-ESP member, then add
    // the candidate with the largest summed divergence from the
    // already-selected set.
    std::vector<std::size_t> chosen{0};
    while (chosen.size() < want) {
        double best_gain = -1.0;
        std::size_t best_idx = 0;
        for (std::size_t i = 0; i < pool.size(); ++i) {
            if (std::find(chosen.begin(), chosen.end(), i) !=
                chosen.end()) {
                continue;
            }
            double gain = 0.0;
            for (std::size_t j : chosen)
                gain += stats::symmetricKl(predicted[i], predicted[j]);
            if (gain > best_gain) {
                best_gain = gain;
                best_idx = i;
            }
        }
        chosen.push_back(best_idx);
    }
    std::vector<CompiledProgram> out;
    out.reserve(chosen.size());
    for (std::size_t i : chosen)
        out.push_back(pool[i]);
    return out;
}

std::vector<CompiledProgram>
EnsembleBuilder::buildAdaptive(const circuit::Circuit &logical,
                               double min_esp_ratio) const
{
    QEDM_REQUIRE(min_esp_ratio > 0.0 && min_esp_ratio <= 1.0,
                 "min_esp_ratio must be in (0, 1]");
    std::vector<CompiledProgram> selected = build(logical);
    QEDM_ASSERT(!selected.empty(), "ensemble builder returned nothing");
    const double floor_esp = selected.front().esp * min_esp_ratio;
    std::size_t keep = 1;
    while (keep < selected.size() && selected[keep].esp >= floor_esp)
        ++keep;
    selected.resize(keep);
    return selected;
}

std::vector<CompiledProgram>
EnsembleBuilder::buildRandom(const circuit::Circuit &logical,
                             Rng &rng) const
{
    std::vector<CompiledProgram> all = candidates(logical);
    if (static_cast<int>(all.size()) <= config_.size)
        return all;
    std::vector<CompiledProgram> out;
    out.push_back(all.front()); // keep the compile-time best
    // Fisher-Yates over the remainder.
    for (std::size_t i = 1; i < all.size() &&
                            out.size() <
                                static_cast<std::size_t>(config_.size);
         ++i) {
        const std::size_t j =
            i + static_cast<std::size_t>(
                    rng.uniformInt(all.size() - i));
        std::swap(all[i], all[j]);
        out.push_back(std::move(all[i]));
    }
    return out;
}

} // namespace qedm::core
