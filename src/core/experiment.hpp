/**
 * @file
 * Experiment driver reproducing the paper's methodology (Section 4.2):
 * run baseline and proposed policies back-to-back within each round,
 * repeat over rounds with drifted calibration, and report the median
 * round.
 *
 * Policies evaluated per round:
 *  - baseline-est:  all trials on the single best compile-time mapping
 *                   (highest ESP) — the variation-aware baseline;
 *  - baseline-post: all trials on the mapping that turned out to have
 *                   the highest PST at runtime (oracle baseline of
 *                   Fig. 7);
 *  - EDM:           uniform merge of the top-K ensemble;
 *  - WEDM:          diversity-weighted merge of the same runs.
 */

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "benchmarks/benchmarks.hpp"
#include "check/check.hpp"
#include "core/edm.hpp"
#include "hw/device.hpp"

namespace qedm::core {

/** IST/PST pair for one policy in one round. */
struct PolicyOutcome
{
    double ist = 0.0;
    double pst = 0.0;
};

/** All policies for one round. */
struct RoundOutcome
{
    PolicyOutcome baselineEst;
    PolicyOutcome baselinePost;
    PolicyOutcome edm;
    PolicyOutcome wedm;
    /** Resilience account for this round (empty when faults are off). */
    resilience::DegradationReport degradation;
};

/** Aggregate over rounds (medians, as in the paper). */
struct ExperimentSummary
{
    std::string benchmark;
    std::vector<RoundOutcome> rounds;
    RoundOutcome median;
    /** Rounds in which at least one member degraded. */
    std::size_t degradedRounds = 0;
    /** Trials lost to faults across all rounds (not recovered). */
    std::uint64_t trialsLost = 0;
    /** Trials reassigned to healthy members across all rounds. */
    std::uint64_t trialsReassigned = 0;
    /** Retries consumed across all rounds. */
    int retriesTotal = 0;

    /** IST improvement ratios over baseline-est. */
    double edmIstGain() const;
    double wedmIstGain() const;
};

/** Experiment configuration. */
struct ExperimentConfig
{
    int rounds = 10;
    std::uint64_t totalShots = 16384;
    int ensembleSize = 4;
    /** Calibration drift between rounds (0 = frozen machine). */
    double calibrationDrift = 0.10;
    bool uniformityGuard = false;
    /**
     * Worker threads shared by the round fan-out and each round's
     * nested member/shot-batch fan-out: 1 = sequential, 0 = hardware
     * concurrency, N = pool of N. Summaries are bit-identical for
     * every value (see runtime/scheduler.hpp).
     */
    int jobs = 1;
    /**
     * Trajectory-engine lane width forwarded to every round's
     * EdmConfig::simBatch (0 = scalar per-shot path). Throughput
     * only — results are bit-identical at every width.
     */
    std::size_t simBatch = sim::Executor::kDefaultSimBatch;
    /**
     * Run the qedm::check static verifiers over every compiled
     * program of every round (forwarded to EdmConfig::verifyPasses).
     * Always-on in debug builds; opt-in in release.
     */
    bool verifyPasses = check::kDefaultVerify;
    /**
     * Fault injection + graceful degradation, forwarded to every
     * round's EdmConfig. Rounds share one fault model but draw their
     * fault decisions from independent per-round streams.
     */
    resilience::ResilienceConfig resilience;
    /**
     * Allowed-region mask forwarded to EnsembleConfig::region: the
     * physical qubits every round's placements, SWAPs, and
     * measurements are confined to. Empty means the whole device.
     */
    std::vector<int> region;
    /**
     * Crash-safe journal to record into (resilience/journal.hpp).
     * Every completed work unit and every committed round is durably
     * recorded before execution proceeds. Not owned.
     */
    resilience::Journal *journal = nullptr;
    /**
     * Parsed journal to resume from: committed rounds are restored
     * without recompiling or re-executing, completed batches restore
     * their recorded outcome, and recorded wall-clock fires are forced
     * so the resumed summary is bit-identical to an uninterrupted run.
     * Not owned. The caller must have validated the fingerprint
     * (runExperiment re-validates).
     */
    const resilience::JournalReplay *replay = nullptr;
    /**
     * Replay-faults mode: ignore the journal's batch and round records
     * and re-execute everything, but force its recorded wall-clock
     * abandonments and disable the live watchdog — a watchdog-hit run
     * then reproduces bit-identically at any jobs value.
     */
    bool replayFaultsOnly = false;
};

/**
 * Identity triple binding a journal to one experiment invocation:
 * everything that shapes the summary (benchmark, rounds, budgets,
 * fault model, region, device calibration epoch, seed) and nothing
 * operational (jobs, wall deadline, backoff pacing) — a journal
 * recorded at --jobs 8 resumes at --jobs 1 and vice versa.
 */
resilience::JournalFingerprint
experimentFingerprint(const hw::Device &device,
                      const benchmarks::Benchmark &benchmark,
                      const ExperimentConfig &config, std::uint64_t seed);

/**
 * Run the full EDM experiment for one benchmark on @p device.
 * @param seed drives shot noise and calibration drift.
 */
ExperimentSummary runExperiment(const hw::Device &device,
                                const benchmarks::Benchmark &benchmark,
                                const ExperimentConfig &config,
                                std::uint64_t seed);

} // namespace qedm::core
