/**
 * @file
 * Alternative diversity sources (the paper's future-work direction):
 * ensembles built from program *transformations* rather than — or in
 * addition to — mapping changes.
 */

#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "hw/device.hpp"
#include "stats/distribution.hpp"
#include "transpile/transpiler.hpp"

namespace qedm::core {

/** Output of a transformation-ensemble run. */
struct TransformEnsembleResult
{
    std::vector<stats::Distribution> members;
    stats::Distribution merged{1};
};

/**
 * Ensemble-of-twirls: run @p copies independently Pauli-twirled
 * versions of one executable, splitting @p total_shots evenly, and
 * merge uniformly. Diversity comes from randomized compiling on a
 * single mapping.
 */
TransformEnsembleResult
runTwirlEnsemble(const hw::Device &device,
                 const transpile::CompiledProgram &program, int copies,
                 std::uint64_t total_shots, Rng &rng);

/**
 * EDM x twirling: each mapping member additionally gets an
 * independent random twirl, composing both diversity sources.
 */
TransformEnsembleResult
runTwirledEdm(const hw::Device &device,
              const std::vector<transpile::CompiledProgram> &members,
              std::uint64_t total_shots, Rng &rng);

} // namespace qedm::core
