#include "core/diversity.hpp"

#include "common/error.hpp"
#include "sim/executor.hpp"
#include "transpile/twirl.hpp"

namespace qedm::core {

TransformEnsembleResult
runTwirlEnsemble(const hw::Device &device,
                 const transpile::CompiledProgram &program, int copies,
                 std::uint64_t total_shots, Rng &rng)
{
    QEDM_REQUIRE(copies >= 1, "need at least one twirled copy");
    QEDM_REQUIRE(total_shots >= static_cast<std::uint64_t>(copies),
                 "need at least one shot per copy");
    const sim::Executor exec(device);
    const std::uint64_t per =
        total_shots / static_cast<std::uint64_t>(copies);

    TransformEnsembleResult result;
    for (int i = 0; i < copies; ++i) {
        const circuit::Circuit twirled =
            transpile::pauliTwirl(program.physical, rng);
        result.members.push_back(stats::Distribution::fromCounts(
            exec.run(twirled, per, rng)));
    }
    result.merged = stats::mergeUniform(result.members);
    return result;
}

TransformEnsembleResult
runTwirledEdm(const hw::Device &device,
              const std::vector<transpile::CompiledProgram> &members,
              std::uint64_t total_shots, Rng &rng)
{
    QEDM_REQUIRE(!members.empty(), "empty mapping ensemble");
    QEDM_REQUIRE(total_shots >= members.size(),
                 "need at least one shot per member");
    const sim::Executor exec(device);
    const std::uint64_t per = total_shots / members.size();

    TransformEnsembleResult result;
    for (const auto &member : members) {
        const circuit::Circuit twirled =
            transpile::pauliTwirl(member.physical, rng);
        result.members.push_back(stats::Distribution::fromCounts(
            exec.run(twirled, per, rng)));
    }
    result.merged = stats::mergeUniform(result.members);
    return result;
}

} // namespace qedm::core
