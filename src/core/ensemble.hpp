/**
 * @file
 * Ensemble construction: the top-K diverse mappings (paper Section 5.2,
 * steps 1-2).
 *
 * Starting from the variation-aware compiler's best executable, the
 * builder enumerates every subgraph of the device isomorphic to the
 * used region (VF2), transfers the compiled program onto each via the
 * isomorphism (so all members execute an identical gate sequence), and
 * ranks the candidates by ESP. The top K become the ensemble.
 */

#pragma once

#include <cstddef>
#include <vector>

#include "check/check.hpp"
#include "circuit/circuit.hpp"
#include "common/rng.hpp"
#include "hw/device.hpp"
#include "hw/device_view.hpp"
#include "runtime/scheduler.hpp"
#include "transpile/compile_cache.hpp"
#include "transpile/transpiler.hpp"

namespace qedm::core {

/** Configuration for ensemble construction. */
struct EnsembleConfig
{
    /** Ensemble size K (paper default: 4). */
    int size = 4;
    /** Cap on VF2 embedding enumeration. */
    std::size_t vf2Limit = 200000;
    /**
     * Diversity cap: a candidate is skipped if it shares more than
     * this fraction of its qubits with an already-selected member;
     * 1.0 disables the cap (the paper's literal plain top-K). If the
     * cap starves the ensemble below K, it is relaxed progressively.
     *
     * The default 0.5 reproduces the paper's *observed* ensembles
     * (top-8 mappings sharing only 2-3 of ~7 qubits, Section 6): on
     * our synthetic calibration a literal top-K collapses onto
     * one-qubit variations of the best mapping, which the real
     * machine's calibration geometry did not do. The ablation bench
     * abl_selection quantifies the difference.
     */
    double maxOverlap = 0.5;
    /** Routing cost metric for the seed compilation. */
    transpile::RouteCost routeCost = transpile::RouteCost::Reliability;
    /**
     * Run the qedm::check static verifiers over the compiled seed
     * (as the transpiler's post-pass hook) and over every isomorphic
     * transfer the builder emits. Always-on in debug builds; opt-in
     * in release (zero cost when off).
     */
    bool verifyPasses = check::kDefaultVerify;
    /**
     * Optional shared compile cache for the seed compilation (not
     * owned; must outlive the builder). Keys include the calibration
     * fingerprint, so drifted devices never reuse stale programs.
     */
    transpile::CompileCache *compileCache = nullptr;
    /**
     * Optional scheduler for fanning candidate materialization and
     * verification across worker threads (not owned; must outlive the
     * builder). Results are written into index-assigned slots, so the
     * candidate list is bit-identical at every `--jobs` value. Null
     * means serial.
     */
    const runtime::JobScheduler *scheduler = nullptr;
    /**
     * Allowed-region mask: the physical qubits the ensemble may use
     * (multi-programming / reliable-region scoping). Empty means the
     * whole device — bit-identical to the pre-region behavior. When
     * set, every member's placement, SWAPs, and measurements are
     * confined to (and verified against) the induced subgraph.
     */
    std::vector<int> region;
    /**
     * Expected per-member dropout probability predicted by the fault
     * plan (FaultConfig::dropoutProb). When positive, build()
     * over-provisions K so the *expected surviving* ensemble still
     * has `size` members. 0 (default) disables over-provisioning.
     */
    double expectedDropoutProb = 0.0;
    /**
     * Members the fault plan drops deterministically (--fail-member
     * count). Each one costs exactly one member, so build() adds this
     * many on top of the probabilistic over-provisioning.
     */
    int plannedDropouts = 0;
};

/** Builds mapping ensembles for one device. */
class EnsembleBuilder
{
  public:
    explicit EnsembleBuilder(const hw::Device &device,
                             EnsembleConfig config = EnsembleConfig{});

    /**
     * All candidate programs: isomorphic transfers of the compiled
     * seed, sorted by descending ESP. The first entry is the
     * compile-time best mapping (the paper's baseline).
     */
    std::vector<transpile::CompiledProgram>
    candidates(const circuit::Circuit &logical) const;

    /**
     * The top-K ensemble (paper policy). Fewer than K members are
     * returned when the device does not admit K distinct placements.
     */
    std::vector<transpile::CompiledProgram>
    build(const circuit::Circuit &logical) const;

    /**
     * Ablation policy: the compile-time best mapping plus K-1
     * candidates drawn uniformly at random from the rest, ignoring
     * ESP rank.
     */
    std::vector<transpile::CompiledProgram>
    buildRandom(const circuit::Circuit &logical, Rng &rng) const;

    /**
     * Predictive selection (the alternative the paper sketches in
     * Section 5.3: "we could form an ensemble of mappings that is
     * estimated to produce the highest IST"). Simulates the top
     * @p pool_size candidates exactly at compile time and greedily
     * picks K members maximizing predicted pairwise output
     * divergence, subject to the ESP floor of the pool. Much more
     * expensive than top-K; quantified in bench/abl_selection.
     */
    std::vector<transpile::CompiledProgram>
    buildPredictive(const circuit::Circuit &logical,
                    std::size_t pool_size = 12) const;

    /**
     * Adaptive sizing (Section 5.5): grow the ensemble while every
     * member's ESP stays within @p min_esp_ratio of the best
     * candidate's (the paper observed its usable mappings sat within
     * 10% of the best ESP, i.e. ratio 0.9), up to config().size
     * members. Always returns at least one member.
     */
    std::vector<transpile::CompiledProgram>
    buildAdaptive(const circuit::Circuit &logical,
                  double min_esp_ratio = 0.9) const;

    const EnsembleConfig &config() const { return config_; }

    /** The device view the ensemble is scoped to (full when
     *  config().region is empty). */
    const hw::DeviceView &view() const { return view_; }

  private:
    const hw::Device &device_;
    EnsembleConfig config_;
    hw::DeviceView view_;
};

} // namespace qedm::core
