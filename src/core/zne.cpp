#include "core/zne.hpp"

#include <cmath>
#include <set>

#include "common/error.hpp"
#include "sim/executor.hpp"
#include "transpile/folding.hpp"

namespace qedm::core {

double
richardsonExtrapolate(
    const std::vector<std::pair<double, double>> &points)
{
    QEDM_REQUIRE(points.size() >= 2,
                 "extrapolation needs at least two points");
    std::set<double> xs;
    for (const auto &[x, y] : points) {
        QEDM_REQUIRE(xs.insert(x).second,
                     "extrapolation points must have distinct x");
        (void)y;
    }
    // Lagrange interpolation evaluated at x = 0.
    double value = 0.0;
    for (std::size_t i = 0; i < points.size(); ++i) {
        double weight = 1.0;
        for (std::size_t j = 0; j < points.size(); ++j) {
            if (i == j)
                continue;
            weight *= (0.0 - points[j].first) /
                      (points[i].first - points[j].first);
        }
        value += weight * points[i].second;
    }
    return value;
}

ZneResult
zneExpectation(const hw::Device &device,
               const circuit::Circuit &physical,
               const Observable &observable,
               const std::vector<int> &scales,
               std::uint64_t shots_per_scale, Rng &rng)
{
    QEDM_REQUIRE(scales.size() >= 2, "ZNE needs at least two scales");
    QEDM_REQUIRE(shots_per_scale > 0, "shots must be positive");
    const sim::Executor exec(device);

    ZneResult result;
    for (int scale : scales) {
        const circuit::Circuit folded =
            transpile::foldTwoQubitGates(physical, scale);
        const auto dist = stats::Distribution::fromCounts(
            exec.run(folded, shots_per_scale, rng));
        result.points.emplace_back(static_cast<double>(scale),
                                   observable(dist));
    }
    result.extrapolated = richardsonExtrapolate(result.points);
    return result;
}

} // namespace qedm::core
