/**
 * @file
 * Error-budget analysis: which noise source is killing the answer?
 *
 * Re-simulates an executable with each noise family toggled off in
 * turn (coherent terms, stochastic depolarizing, decoherence,
 * readout, correlated readout) and reports the PST/IST recovered by
 * removing each — the per-source "blame" view behind the paper's
 * Section 3 characterization.
 */

#pragma once

#include <string>
#include <vector>

#include "circuit/circuit.hpp"
#include "common/bits.hpp"
#include "hw/device.hpp"

namespace qedm::core {

/** One noise family's contribution. */
struct ErrorBudgetEntry
{
    std::string source;
    /** PST with this source disabled (all others active). */
    double pstWithout = 0.0;
    /** IST with this source disabled. */
    double istWithout = 0.0;
    /** PST recovered relative to the fully-noisy run. */
    double pstRecovered = 0.0;
};

/** Full per-source budget for one executable. */
struct ErrorBudget
{
    double basePst = 0.0;
    double baseIst = 0.0;
    double idealPst = 0.0;
    std::vector<ErrorBudgetEntry> entries;
};

/**
 * Analyze @p physical on @p device against the known @p correct
 * outcome via exact simulation (active qubits <= 10).
 */
ErrorBudget errorBudget(const hw::Device &device,
                        const circuit::Circuit &physical,
                        Outcome correct);

} // namespace qedm::core
