/**
 * @file
 * Zero-noise extrapolation (ZNE) over the noisy executor.
 *
 * Runs an executable at noise scales {1, 3, 5, ...} via two-qubit
 * gate folding, evaluates a scalar observable of the output
 * distribution at each scale, and Richardson-extrapolates to the
 * zero-noise limit. Composable with EDM: extrapolate the merged
 * ensemble observable instead of a single mapping's.
 */

#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/rng.hpp"
#include "hw/device.hpp"
#include "stats/distribution.hpp"
#include "transpile/transpiler.hpp"

namespace qedm::core {

/** Scalar observable of a measured distribution (e.g. expected cut,
 *  PST of a known answer). */
using Observable = std::function<double(const stats::Distribution &)>;

/** One ZNE evaluation. */
struct ZneResult
{
    /** (noise scale, observable value) measurements. */
    std::vector<std::pair<double, double>> points;
    /** Richardson extrapolation to scale 0. */
    double extrapolated = 0.0;
};

/**
 * Lagrange/Richardson extrapolation of @p points to x = 0. Requires
 * at least two points with distinct x values.
 */
double
richardsonExtrapolate(const std::vector<std::pair<double, double>> &points);

/**
 * Evaluate @p observable on @p program at each fold scale (odd,
 * ascending) with @p shots_per_scale trials, then extrapolate.
 */
ZneResult zneExpectation(const hw::Device &device,
                         const circuit::Circuit &physical,
                         const Observable &observable,
                         const std::vector<int> &scales,
                         std::uint64_t shots_per_scale, Rng &rng);

} // namespace qedm::core
