#include "core/error_budget.hpp"

#include "common/error.hpp"
#include "sim/executor.hpp"
#include "stats/metrics.hpp"

namespace qedm::core {
namespace {

/** Rebuild the device with a modified noise spec / calibration. */
hw::Device
variant(const hw::Device &device, const hw::NoiseSpec &spec,
        bool zero_readout)
{
    // The systematic angles must stay identical across variants, so
    // start from the existing model and only swap the spec knobs that
    // the executor reads (scales/flags) via fromParts.
    const auto &noise = device.noise();
    const auto &topo = device.topology();
    std::vector<double> rot1q;
    for (int q = 0; q < topo.numQubits(); ++q)
        rot1q.push_back(spec.coherentScale == 0.0
                            ? 0.0
                            : noise.overRotation1q(q));
    std::vector<double> rotedge, phase;
    std::vector<std::vector<hw::CrosstalkTerm>> crosstalk;
    for (std::size_t e = 0; e < topo.numEdges(); ++e) {
        rotedge.push_back(spec.coherentScale == 0.0
                              ? 0.0
                              : noise.overRotation(e));
        phase.push_back(spec.coherentScale == 0.0
                            ? 0.0
                            : noise.controlPhase(e));
        crosstalk.push_back(spec.coherentScale == 0.0
                                ? std::vector<hw::CrosstalkTerm>{}
                                : noise.crosstalk(e));
    }
    std::vector<hw::CorrelatedReadout> corr =
        spec.correlatedReadoutScale == 0.0
            ? std::vector<hw::CorrelatedReadout>{}
            : noise.correlatedReadout();
    hw::Device out = device.withNoise(hw::NoiseModel::fromParts(
        spec, std::move(rot1q), std::move(rotedge), std::move(phase),
        std::move(crosstalk), std::move(corr)));
    if (zero_readout) {
        hw::Calibration cal = device.calibration();
        for (int q = 0; q < topo.numQubits(); ++q) {
            cal.qubit(q).readoutP01 = 0.0;
            cal.qubit(q).readoutP10 = 0.0;
        }
        out = out.withCalibration(cal);
    }
    return out;
}

} // namespace

ErrorBudget
errorBudget(const hw::Device &device, const circuit::Circuit &physical,
            Outcome correct)
{
    const hw::NoiseSpec base_spec = device.noise().spec();
    ErrorBudget budget;

    auto evaluate = [&](const hw::Device &d) {
        const sim::Executor exec(d);
        return exec.exactDistribution(physical);
    };

    const auto base = evaluate(device);
    budget.basePst = stats::pst(base, correct);
    budget.baseIst = stats::ist(base, correct);

    struct Toggle
    {
        std::string name;
        hw::NoiseSpec spec;
        bool zeroReadout;
    };
    std::vector<Toggle> toggles;
    {
        hw::NoiseSpec s = base_spec;
        s.coherentScale = 0.0;
        toggles.push_back({"coherent (over-rotation/crosstalk)", s,
                           false});
    }
    {
        hw::NoiseSpec s = base_spec;
        s.stochasticScale = 0.0;
        toggles.push_back({"stochastic depolarizing", s, false});
    }
    {
        hw::NoiseSpec s = base_spec;
        s.enableDecoherence = false;
        toggles.push_back({"decoherence (T1/T2)", s, false});
    }
    {
        hw::NoiseSpec s = base_spec;
        toggles.push_back({"readout confusion", s, true});
    }
    {
        hw::NoiseSpec s = base_spec;
        s.correlatedReadoutScale = 0.0;
        toggles.push_back({"correlated readout", s, false});
    }

    for (const auto &toggle : toggles) {
        const auto dist =
            evaluate(variant(device, toggle.spec, toggle.zeroReadout));
        ErrorBudgetEntry entry;
        entry.source = toggle.name;
        entry.pstWithout = stats::pst(dist, correct);
        entry.istWithout = stats::ist(dist, correct);
        entry.pstRecovered = entry.pstWithout - budget.basePst;
        budget.entries.push_back(std::move(entry));
    }

    // Fully-ideal reference.
    hw::NoiseSpec off = base_spec;
    off.coherentScale = 0.0;
    off.stochasticScale = 0.0;
    off.enableDecoherence = false;
    off.correlatedReadoutScale = 0.0;
    budget.idealPst =
        stats::pst(evaluate(variant(device, off, true)), correct);
    return budget;
}

} // namespace qedm::core
