#include "core/edm.hpp"

#include <algorithm>
#include <optional>
#include <utility>

#include <mutex>

#include "common/error.hpp"
#include "resilience/fault_injector.hpp"
#include "runtime/retry.hpp"
#include "runtime/watchdog.hpp"
#include "sim/executor.hpp"

namespace qedm::core {
namespace {

/** One schedulable unit: a shot batch of one ensemble member. */
struct ShotUnit
{
    std::size_t member;
    std::uint64_t batch;
    std::uint64_t shots;
};

/** Cut each member's shot share into fixed-size batches. */
std::vector<ShotUnit>
makeUnits(const std::vector<std::uint64_t> &splits, std::uint64_t batch)
{
    std::vector<ShotUnit> units;
    for (std::size_t m = 0; m < splits.size(); ++m) {
        for (std::uint64_t done = 0, b = 0; done < splits[m];
             done += batch, ++b) {
            units.push_back(
                ShotUnit{m, b, std::min(batch, splits[m] - done)});
        }
    }
    return units;
}

/**
 * Stream key rooting the fault-injection domain under the pipeline's
 * SeedSequence. Member execution streams use child keys 0..K-1, so
 * the fault domain sits at a large constant that can never collide
 * with a member index.
 */
constexpr std::uint64_t kStreamFaults = 0xFA171D05ull;

/**
 * Stream key under a unit's (member, batch) node for its retry-backoff
 * jitter draws. The unit's execution RNG is the node itself, so the
 * jitter domain sits one level down at a constant key.
 */
constexpr std::uint64_t kStreamRetryJitter = 0xBAC0FFull;

/** A resilient work unit; limit < shots when the dropout lands here. */
struct ResilientUnit
{
    std::size_t member;
    std::uint64_t batch;
    std::uint64_t shots;
    std::uint64_t limit;
};

/** What one resilient unit produced across its retry attempts. */
struct UnitResult
{
    std::optional<stats::Counts> counts;
    int attempts = 1;
    bool exhausted = false;
    /** Abandoned by the live wall-clock watchdog (never executed). */
    bool abandoned = false;
    /** Restored from a journal instead of executed (crash resume). */
    bool restored = false;
};

/** Per-member counts + keep mask + report from a faulted execution. */
struct ResilientOutcome
{
    std::vector<stats::Counts> counts;
    std::vector<bool> kept;
    resilience::DegradationReport report;
};

/** Primary failure cause, by severity:
 *  dropout > virtual deadline > wall clock > retries. */
resilience::FaultKind
memberCause(const resilience::MemberFaultPlan &plan,
            std::uint64_t abandon_batch, std::uint64_t wall_batch)
{
    if (plan.dropsOut)
        return resilience::FaultKind::QubitDropout;
    if (abandon_batch != resilience::FaultEvent::kNoBatch)
        return resilience::FaultKind::DeadlineAbandoned;
    if (wall_batch != resilience::FaultEvent::kNoBatch)
        return resilience::FaultKind::WallClockAbandoned;
    return resilience::FaultKind::RetryExhausted;
}

/**
 * The faulted execution path. Every *injected* fault decision is a
 * pure function of SeedSequence streams and the static batch plan
 * (virtual-time deadlines), so a faulted run — including its fault log
 * and degradation report — is bit-identical at any --jobs value.
 *
 * The wall-clock watchdog is the one deliberately nondeterministic
 * input: live fires depend on real elapsed time. Determinism is
 * restored by canonicalizing each member's fire to the *minimum*
 * abandoned batch index and excluding every contribution (counts,
 * fault events, retries) from batches at or past it — even ones that
 * happened to execute out of order — and by recording fires so a
 * replay can force the identical cut through forcedWallAbandons.
 */
ResilientOutcome
runResilient(const hw::Device &device, const EdmConfig &config,
             const std::vector<transpile::CompiledProgram> &programs,
             const std::vector<std::shared_ptr<const sim::ExecutionTape>>
                 &tapes,
             const sim::Executor &executor,
             const std::vector<std::uint64_t> &splits,
             const SeedSequence &seq,
             const runtime::JobScheduler &scheduler)
{
    const resilience::ResilienceConfig &res = config.resilience;
    const std::size_t count = programs.size();
    const resilience::FaultInjector injector(res.faults,
                                             seq.child(kStreamFaults));

    // Per-member fault plans. Stale members execute against their own
    // perturbed device snapshot (fresh tape, never cached).
    std::vector<resilience::MemberFaultPlan> plans(count);
    std::vector<std::shared_ptr<const sim::ExecutionTape>> member_tapes =
        tapes;
    std::vector<std::optional<sim::Executor>> stale_execs(count);
    for (std::size_t m = 0; m < count; ++m) {
        plans[m] = injector.memberPlan(m, splits[m]);
        if (plans[m].stale) {
            Rng stale_rng(plans[m].staleSeed);
            const hw::Device stale = device.withStaleCalibration(
                stale_rng, res.faults.stalenessSeverity);
            member_tapes[m] = std::make_shared<const sim::ExecutionTape>(
                sim::ExecutionTape::build(stale, programs[m].physical));
            stale_execs[m].emplace(stale);
            stale_execs[m]->setSimBatch(config.simBatch);
        }
    }
    const auto executorFor = [&](std::size_t m) -> const sim::Executor & {
        return stale_execs[m] ? *stale_execs[m] : executor;
    };

    // Wall-fire bookkeeping. wall_fire[m] is the canonical cut point:
    // the minimum batch index wall-abandoned for member m. Forced
    // entries (recorded fires from a resumed or replayed journal)
    // apply at plan time; live watchdog fires are collected during
    // execution and filtered out of every merge below.
    std::vector<std::uint64_t> wall_fire(
        count, resilience::FaultEvent::kNoBatch);
    for (const resilience::WallAbandon &w : res.forcedWallAbandons) {
        QEDM_REQUIRE(w.member < count,
                     "forced wall abandon names a member outside the "
                     "ensemble");
        wall_fire[w.member] = std::min(wall_fire[w.member], w.batch);
    }
    std::optional<runtime::Watchdog> watchdog;
    if (res.wallDeadlineMs > 0.0)
        watchdog.emplace(res.effectiveClock(), res.wallDeadlineMs, count);

    // Static batch plan: deadline abandonment (cumulative virtual time
    // exceeding the member budget) and dropout truncation are decided
    // up front, so the schedule is independent of execution order.
    std::vector<ResilientUnit> units;
    std::vector<std::uint64_t> next_batch(count, 0);
    std::vector<std::uint64_t> abandon_batch(
        count, resilience::FaultEvent::kNoBatch);
    for (std::size_t m = 0; m < count; ++m) {
        double virtual_ms = 0.0;
        std::uint64_t b = 0;
        for (std::uint64_t done = 0; done < splits[m];
             done += config.shotBatch, ++b) {
            const std::uint64_t batch_shots =
                std::min(config.shotBatch, splits[m] - done);
            virtual_ms += injector.virtualBatchMs(plans[m], batch_shots);
            if (res.memberDeadlineMs > 0.0 &&
                virtual_ms > res.memberDeadlineMs) {
                if (abandon_batch[m] == resilience::FaultEvent::kNoBatch)
                    abandon_batch[m] = b;
                continue;
            }
            if (b >= wall_fire[m])
                continue; // replaying a recorded wall-clock cut
            if (plans[m].dropsOut && done >= plans[m].dropoutTrial)
                continue; // batch lies entirely after the dropout
            std::uint64_t limit = batch_shots;
            if (plans[m].dropsOut &&
                done + batch_shots > plans[m].dropoutTrial)
                limit = plans[m].dropoutTrial - done;
            units.push_back(ResilientUnit{m, b, batch_shots, limit});
        }
        next_batch[m] = b;
    }

    // Execute one wave of units; each unit owns the RNG stream keyed
    // by (member, batch) and retries within its own result slot.
    const runtime::RetryPolicy policy{res.retryMax + 1,
                                      res.backoffBaseMs, 2.0,
                                      res.backoffJitter};
    const auto batchKey = [&](const ResilientUnit &unit) {
        return resilience::BatchKey{
            config.journalRound, resilience::JournalStage::Members,
            static_cast<std::uint32_t>(unit.member), unit.batch};
    };
    std::mutex wall_mutex;
    const auto runWave = [&](const std::vector<ResilientUnit> &wave,
                             std::vector<UnitResult> &results) {
        scheduler.parallelFor(wave.size(), [&](std::size_t u) {
            const ResilientUnit &unit = wave[u];
            if (config.replay != nullptr) {
                // Crash resume: completed units restore their durable
                // outcome instead of executing (no watchdog charge —
                // that wall time was spent before the crash).
                const resilience::BatchRecord *rec =
                    config.replay->findBatch(batchKey(unit));
                if (rec != nullptr) {
                    results[u].counts = rec->counts;
                    results[u].attempts = rec->attempts;
                    results[u].exhausted = rec->exhausted;
                    results[u].restored = true;
                    return;
                }
            }
            if (watchdog && watchdog->expired(unit.member)) {
                // The member's wall budget is blown: abandon instead
                // of executing. Which batch observes the fire first is
                // racy; contributions are canonicalized to the minimum
                // abandoned batch when waves are recorded, and the
                // fire is journaled so replays can force the same cut.
                results[u].abandoned = true;
                const std::lock_guard<std::mutex> lock(wall_mutex);
                if (unit.batch < wall_fire[unit.member]) {
                    wall_fire[unit.member] = unit.batch;
                    if (config.journal != nullptr) {
                        config.journal->recordWallAbandon(
                            config.journalRound,
                            {unit.member, unit.batch});
                    }
                }
                return;
            }
            const double start_ms =
                watchdog ? watchdog->timeSource().nowMs() : 0.0;
            const SeedSequence node =
                seq.child(unit.member).child(unit.batch);
            const runtime::RetryOutcome attempt_log =
                runtime::retryWithBackoff(
                    policy,
                    [&](int attempt) {
                        if (injector.transientFails(unit.member,
                                                    unit.batch,
                                                    attempt)) {
                            throw runtime::TransientError(
                                "injected transient batch failure");
                        }
                        Rng unit_rng = node.rng();
                        const sim::Executor &exec =
                            executorFor(unit.member);
                        if (unit.limit < unit.shots) {
                            const std::uint64_t limit = unit.limit;
                            results[u].counts = exec.run(
                                *member_tapes[unit.member], unit.shots,
                                unit_rng, [limit](std::uint64_t trial) {
                                    return trial < limit;
                                });
                        } else {
                            results[u].counts =
                                exec.run(*member_tapes[unit.member],
                                         unit.shots, unit_rng);
                        }
                    },
                    res.effectiveClock(),
                    node.child(kStreamRetryJitter));
            if (watchdog) {
                watchdog->charge(unit.member,
                                 watchdog->timeSource().nowMs() - start_ms);
            }
            results[u].attempts = attempt_log.attempts;
            results[u].exhausted = !attempt_log.succeeded;
            if (config.journal != nullptr) {
                config.journal->recordBatch(
                    batchKey(unit),
                    {results[u].attempts, results[u].exhausted,
                     results[u].counts});
            }
        });
    };

    ResilientOutcome out;
    out.counts.reserve(count);
    for (std::size_t m = 0; m < count; ++m)
        out.counts.emplace_back(member_tapes[m]->numClbits);
    std::vector<std::uint64_t> completed(count, 0);
    std::vector<int> retries(count, 0);
    resilience::DegradationReport &report = out.report;

    // Fold a wave back in fixed unit order: counts into the member
    // histograms, failed attempts into the deterministic fault log.
    // Units at or past a member's wall fire contribute nothing — not
    // counts, events, or retries — even when they executed before the
    // fire was observed, so the live cut matches the replayed one.
    const auto recordWave = [&](const std::vector<ResilientUnit> &wave,
                                const std::vector<UnitResult> &results) {
        for (std::size_t u = 0; u < wave.size(); ++u) {
            const ResilientUnit &unit = wave[u];
            const UnitResult &r = results[u];
            if (r.abandoned || unit.batch >= wall_fire[unit.member])
                continue;
            const int failed_attempts =
                r.exhausted ? r.attempts : r.attempts - 1;
            for (int a = 0; a < failed_attempts; ++a) {
                report.faults.push_back(
                    {resilience::FaultKind::TransientTrialFailure,
                     unit.member, unit.batch, a});
            }
            retries[unit.member] += r.attempts - 1;
            if (r.exhausted) {
                report.faults.push_back(
                    {resilience::FaultKind::RetryExhausted, unit.member,
                     unit.batch, r.attempts - 1});
                continue;
            }
            QEDM_ASSERT(r.counts.has_value(),
                        "successful unit produced no counts");
            completed[unit.member] += r.counts->total();
            out.counts[unit.member].merge(*r.counts);
        }
    };

    // Plan-level events first, in member order, then execution events.
    for (std::size_t m = 0; m < count; ++m) {
        if (plans[m].slow) {
            report.faults.push_back({resilience::FaultKind::SlowMember,
                                     m, resilience::FaultEvent::kNoBatch,
                                     -1});
        }
        if (plans[m].stale) {
            report.faults.push_back(
                {resilience::FaultKind::CalibrationStaleness, m,
                 resilience::FaultEvent::kNoBatch, -1});
        }
        if (plans[m].dropsOut) {
            report.faults.push_back(
                {resilience::FaultKind::QubitDropout, m,
                 plans[m].dropoutTrial / config.shotBatch, -1});
        }
        if (abandon_batch[m] != resilience::FaultEvent::kNoBatch) {
            report.faults.push_back(
                {resilience::FaultKind::DeadlineAbandoned, m,
                 abandon_batch[m], -1});
        }
    }
    std::vector<UnitResult> first(units.size());
    runWave(units, first);
    recordWave(units, first);

    // Degradation policy: a member that completed its full share is
    // healthy; anything else keeps its partial trials only above the
    // floor, and otherwise drops out of the merge entirely.
    out.kept.assign(count, false);
    std::vector<std::size_t> full;
    std::size_t failed_members = 0;
    const std::uint64_t floor =
        std::max<std::uint64_t>(res.minTrialsPerMember, 1);
    for (std::size_t m = 0; m < count; ++m) {
        if (completed[m] == splits[m]) {
            out.kept[m] = true;
            full.push_back(m);
            continue;
        }
        ++failed_members;
        out.kept[m] = completed[m] >= floor;
        resilience::MemberDegradation deg;
        deg.member = m;
        deg.cause = memberCause(plans[m], abandon_batch[m], wall_fire[m]);
        deg.plannedShots = splits[m];
        deg.completedShots = completed[m];
        deg.kept = out.kept[m];
        deg.retries = retries[m];
        report.members.push_back(deg);
    }
    if (std::none_of(out.kept.begin(), out.kept.end(),
                     [](bool k) { return k; }))
        throw resilience::EnsembleFailedError(count, failed_members);

    // Reassign the lost budget to fully-healthy survivors. The extra
    // batches continue each survivor's planned batch numbering, so the
    // reassigned streams stay a pure function of (member, batch).
    std::uint64_t budget = 0;
    for (std::uint64_t s : splits)
        budget += s;
    std::uint64_t used = 0;
    for (std::size_t m = 0; m < count; ++m) {
        if (out.kept[m])
            used += completed[m];
    }
    const std::uint64_t deficit = budget - used;
    if (deficit > 0 && !full.empty()) {
        std::vector<ResilientUnit> extra;
        const std::uint64_t base = deficit / full.size();
        const std::uint64_t rem = deficit % full.size();
        for (std::size_t i = 0; i < full.size(); ++i) {
            const std::size_t m = full[i];
            const std::uint64_t share = base + (i < rem ? 1 : 0);
            for (std::uint64_t done = 0, b = next_batch[m]; done < share;
                 done += config.shotBatch, ++b) {
                const std::uint64_t batch_shots =
                    std::min(config.shotBatch, share - done);
                extra.push_back(
                    ResilientUnit{m, b, batch_shots, batch_shots});
            }
        }
        std::vector<UnitResult> extra_results(extra.size());
        runWave(extra, extra_results);
        recordWave(extra, extra_results);
        std::uint64_t used_after = 0;
        for (std::size_t m = 0; m < count; ++m) {
            if (out.kept[m])
                used_after += completed[m];
        }
        report.trialsReassigned = used_after - used;
        used = used_after;
    }
    report.trialsLost = budget - used;
    for (int r : retries)
        report.retriesTotal += r;
    QEDM_ASSERT(used + report.trialsLost == budget,
                "degraded reallocation lost track of the trial budget");

    // Wall-clock fires last, in member order: the canonical cut point
    // per member, identical whether the fire was live or forced.
    for (std::size_t m = 0; m < count; ++m) {
        if (wall_fire[m] != resilience::FaultEvent::kNoBatch) {
            report.faults.push_back(
                {resilience::FaultKind::WallClockAbandoned, m,
                 wall_fire[m], -1});
        }
    }
    return out;
}

} // namespace

std::size_t
EdmResult::bestMemberByPst(Outcome correct) const
{
    QEDM_REQUIRE(!members.empty(), "empty ensemble result");
    std::size_t best = 0;
    double best_pst = -1.0;
    for (std::size_t i = 0; i < members.size(); ++i) {
        if (members[i].failed)
            continue;
        const double p = stats::pst(members[i].output, correct);
        if (p > best_pst) {
            best_pst = p;
            best = i;
        }
    }
    return best;
}

EdmPipeline::EdmPipeline(const hw::Device &device, EdmConfig config)
    : device_(device), config_(std::move(config))
{
    QEDM_REQUIRE(config_.totalShots > 0, "totalShots must be positive");
    QEDM_REQUIRE(config_.shotBatch > 0, "shotBatch must be positive");
    QEDM_REQUIRE(config_.resilience.retryMax >= 0,
                 "retryMax must be non-negative");
    QEDM_REQUIRE(config_.resilience.memberDeadlineMs >= 0.0,
                 "memberDeadlineMs must be non-negative");
}

std::vector<std::uint64_t>
EdmPipeline::splitShots(std::uint64_t total, std::size_t members)
{
    QEDM_REQUIRE(members > 0, "cannot split shots over zero members");
    std::vector<std::uint64_t> splits(members, 1);
    if (total < members)
        return splits; // degenerate: every member still runs one trial
    const std::uint64_t base = total / members;
    const std::uint64_t rem = total % members;
    std::uint64_t sum = 0;
    for (std::size_t m = 0; m < members; ++m) {
        splits[m] = base + (m < rem ? 1 : 0);
        sum += splits[m];
    }
    QEDM_ASSERT(sum == total, "shot split does not preserve the budget");
    return splits;
}

EdmResult
EdmPipeline::run(const circuit::Circuit &logical, Rng &rng) const
{
    return run(logical, SeedSequence(rng()));
}

EdmResult
EdmPipeline::run(const circuit::Circuit &logical,
                 const SeedSequence &seq) const
{
    std::optional<runtime::JobScheduler> owned;
    const runtime::JobScheduler *scheduler = config_.scheduler;
    if (scheduler == nullptr)
        scheduler = &owned.emplace(config_.jobs);

    EnsembleConfig ensemble_config = config_.ensemble;
    ensemble_config.verifyPasses =
        ensemble_config.verifyPasses || config_.verifyPasses;
    // Compilation shares the execution scheduler: candidate
    // materialization fans out over the same pool the shot batches
    // use, with index-assigned slots keeping results bit-identical at
    // any --jobs value.
    if (ensemble_config.scheduler == nullptr)
        ensemble_config.scheduler = scheduler;
    // Fault-aware sizing: when the fault plan predicts probabilistic
    // dropout, tell the builder so it over-provisions K and the
    // ensemble *expected to survive* still has the configured size.
    // Deliberate --fail-member injections are NOT over-provisioned —
    // they exist to watch a member fail and the survivors absorb its
    // share; padding them away would defeat the experiment. The
    // fault-free path leaves the config untouched (bit-identical).
    if (config_.resilience.active())
        ensemble_config.expectedDropoutProb =
            config_.resilience.faults.dropoutProb;
    const EnsembleBuilder builder(device_, ensemble_config);
    std::vector<transpile::CompiledProgram> programs =
        builder.build(logical);
    QEDM_ASSERT(!programs.empty(), "ensemble builder returned nothing");

    sim::Executor executor(device_);
    executor.setSimBatch(config_.simBatch);
    const std::vector<std::uint64_t> splits =
        splitShots(config_.totalShots, programs.size());

    // Tapes are immutable and shared across all batches of a member;
    // building one is independent of the others, so members fan out
    // over the scheduler into pre-assigned slots.
    std::vector<std::shared_ptr<const sim::ExecutionTape>> tapes(
        programs.size());
    scheduler->parallelFor(programs.size(), [&](std::size_t m) {
        tapes[m] =
            config_.tapeCache != nullptr
                ? config_.tapeCache->get(device_, programs[m].physical)
                : std::make_shared<const sim::ExecutionTape>(
                      sim::ExecutionTape::build(device_,
                                                programs[m].physical));
    });

    EdmResult result;
    std::vector<stats::Counts> member_counts;
    std::vector<bool> kept_mask;
    if (!config_.resilience.active()) {
        // Fault-free fast path: fan (member, batch) units out over the
        // scheduler. Each unit owns the RNG stream keyed by its
        // coordinates and writes only its own slot, so the outcome is
        // independent of scheduling order.
        const std::vector<ShotUnit> units =
            makeUnits(splits, config_.shotBatch);
        std::vector<std::optional<stats::Counts>> unit_counts(
            units.size());
        scheduler->parallelFor(units.size(), [&](std::size_t u) {
            const ShotUnit &unit = units[u];
            const resilience::BatchKey key{
                config_.journalRound, resilience::JournalStage::Members,
                static_cast<std::uint32_t>(unit.member), unit.batch};
            if (config_.replay != nullptr) {
                const resilience::BatchRecord *rec =
                    config_.replay->findBatch(key);
                if (rec != nullptr) {
                    QEDM_REQUIRE(rec->counts.has_value(),
                                 "journal holds a lost batch for a "
                                 "fault-free run");
                    unit_counts[u] = rec->counts;
                    return;
                }
            }
            Rng unit_rng =
                seq.child(unit.member).child(unit.batch).rng();
            unit_counts[u] =
                executor.run(*tapes[unit.member], unit.shots, unit_rng);
            if (config_.journal != nullptr)
                config_.journal->recordBatch(key,
                                             {1, false, unit_counts[u]});
        });

        // Merge batches back per member in fixed (member, batch) order.
        std::size_t u = 0;
        for (std::size_t m = 0; m < programs.size(); ++m) {
            QEDM_ASSERT(u < units.size() && units[u].member == m,
                        "shot unit bookkeeping out of sync");
            stats::Counts counts = std::move(*unit_counts[u]);
            ++u;
            while (u < units.size() && units[u].member == m) {
                counts.merge(*unit_counts[u]);
                ++u;
            }
            member_counts.push_back(std::move(counts));
        }
        kept_mask.assign(programs.size(), true);
    } else {
        ResilientOutcome out =
            runResilient(device_, config_, programs, tapes, executor,
                         splits, seq, *scheduler);
        member_counts = std::move(out.counts);
        kept_mask = std::move(out.kept);
        result.degradation = std::move(out.report);
    }

    result.members.reserve(programs.size());
    for (std::size_t m = 0; m < programs.size(); ++m) {
        MemberResult member;
        if (kept_mask[m]) {
            member.shots = member_counts[m].total();
            member.output = stats::Distribution::fromCounts(
                member_counts[m]);
        } else {
            member.failed = true;
            member.output =
                stats::Distribution::uniform(member_counts[m].width());
        }
        member.program = std::move(programs[m]);
        result.members.push_back(std::move(member));
    }

    // Uniformity guard (footnote 2): drop signal-free members. Failed
    // members are already out of the merge and are never "discarded".
    std::vector<MemberResult> kept;
    for (std::size_t i = 0; i < result.members.size(); ++i) {
        if (result.members[i].failed)
            continue;
        if (config_.uniformityGuard &&
            stats::isNearUniform(result.members[i].output,
                                 config_.uniformityMargin)) {
            result.discarded.push_back(i);
        } else {
            kept.push_back(result.members[i]);
        }
    }
    if (kept.empty()) {
        // Nothing usable: keep every surviving member.
        result.discarded.clear();
        for (const auto &member : result.members) {
            if (!member.failed)
                kept.push_back(member);
        }
    }
    QEDM_ASSERT(!kept.empty(), "no ensemble member survived to merge");

    result.edm = merge(kept, MergeRule::Uniform, config_.klSmoothing);
    result.wedm = merge(kept, MergeRule::KlWeighted, config_.klSmoothing);

    // Expose WEDM weights aligned with the full member list,
    // renormalized over the members that actually contribute.
    std::vector<stats::Distribution> kept_outputs;
    kept_outputs.reserve(kept.size());
    for (const auto &m : kept)
        kept_outputs.push_back(m.output);
    const std::vector<double> kept_weights =
        stats::wedmWeights(kept_outputs, config_.klSmoothing);
    result.wedmWeights.assign(result.members.size(), 0.0);
    std::size_t kept_idx = 0;
    for (std::size_t i = 0; i < result.members.size(); ++i) {
        if (result.members[i].failed)
            continue;
        if (std::find(result.discarded.begin(), result.discarded.end(),
                      i) == result.discarded.end()) {
            result.wedmWeights[i] = kept_weights[kept_idx++];
        }
    }
    return result;
}

stats::Distribution
EdmPipeline::runSingle(const transpile::CompiledProgram &program,
                       Rng &rng, resilience::JournalStage stage) const
{
    return runSingle(program, SeedSequence(rng()), stage);
}

stats::Distribution
EdmPipeline::runSingle(const transpile::CompiledProgram &program,
                       const SeedSequence &seq,
                       resilience::JournalStage stage) const
{
    sim::Executor executor(device_);
    executor.setSimBatch(config_.simBatch);
    const std::shared_ptr<const sim::ExecutionTape> tape =
        config_.tapeCache != nullptr
            ? config_.tapeCache->get(device_, program.physical)
            : std::make_shared<const sim::ExecutionTape>(
                  sim::ExecutionTape::build(device_, program.physical));

    const std::vector<ShotUnit> units =
        makeUnits({config_.totalShots}, config_.shotBatch);
    std::vector<std::optional<stats::Counts>> unit_counts(units.size());

    std::optional<runtime::JobScheduler> owned;
    const runtime::JobScheduler *scheduler = config_.scheduler;
    if (scheduler == nullptr)
        scheduler = &owned.emplace(config_.jobs);
    scheduler->parallelFor(units.size(), [&](std::size_t u) {
        const resilience::BatchKey key{config_.journalRound, stage, 0,
                                       units[u].batch};
        if (config_.replay != nullptr) {
            const resilience::BatchRecord *rec =
                config_.replay->findBatch(key);
            if (rec != nullptr) {
                QEDM_REQUIRE(rec->counts.has_value(),
                             "journal holds a lost batch for a "
                             "baseline run");
                unit_counts[u] = rec->counts;
                return;
            }
        }
        Rng unit_rng = seq.child(units[u].batch).rng();
        unit_counts[u] = executor.run(*tape, units[u].shots, unit_rng);
        if (config_.journal != nullptr)
            config_.journal->recordBatch(key, {1, false, unit_counts[u]});
    });

    stats::Counts counts = std::move(*unit_counts.front());
    for (std::size_t u = 1; u < unit_counts.size(); ++u)
        counts.merge(*unit_counts[u]);
    return stats::Distribution::fromCounts(counts);
}

stats::Distribution
EdmPipeline::merge(const std::vector<MemberResult> &members,
                   MergeRule rule, double kl_smoothing)
{
    QEDM_REQUIRE(!members.empty(), "cannot merge an empty ensemble");
    std::vector<stats::Distribution> outputs;
    outputs.reserve(members.size());
    for (const auto &m : members)
        outputs.push_back(m.output);

    switch (rule) {
      case MergeRule::Uniform:
        return stats::mergeUniform(outputs);
      case MergeRule::KlWeighted:
        return stats::mergeWeighted(
            outputs, stats::wedmWeights(outputs, kl_smoothing));
      case MergeRule::EntropyWeighted: {
        std::vector<double> weights;
        weights.reserve(outputs.size());
        for (const auto &o : outputs)
            weights.push_back(o.entropy());
        double sum = 0.0;
        for (double w : weights)
            sum += w;
        if (sum <= 0.0)
            return stats::mergeUniform(outputs);
        return stats::mergeWeighted(outputs, weights);
      }
    }
    throw InternalError("unknown merge rule");
}

} // namespace qedm::core
