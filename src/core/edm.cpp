#include "core/edm.hpp"

#include <algorithm>
#include <optional>

#include "common/error.hpp"
#include "sim/executor.hpp"

namespace qedm::core {
namespace {

/** One schedulable unit: a shot batch of one ensemble member. */
struct ShotUnit
{
    std::size_t member;
    std::uint64_t batch;
    std::uint64_t shots;
};

/** Cut @p total shots into fixed-size batches for @p members members. */
std::vector<ShotUnit>
makeUnits(std::size_t members, std::uint64_t total, std::uint64_t batch)
{
    std::vector<ShotUnit> units;
    for (std::size_t m = 0; m < members; ++m) {
        for (std::uint64_t done = 0, b = 0; done < total;
             done += batch, ++b) {
            units.push_back(
                ShotUnit{m, b, std::min(batch, total - done)});
        }
    }
    return units;
}

} // namespace

std::size_t
EdmResult::bestMemberByPst(Outcome correct) const
{
    QEDM_REQUIRE(!members.empty(), "empty ensemble result");
    std::size_t best = 0;
    double best_pst = -1.0;
    for (std::size_t i = 0; i < members.size(); ++i) {
        const double p = stats::pst(members[i].output, correct);
        if (p > best_pst) {
            best_pst = p;
            best = i;
        }
    }
    return best;
}

EdmPipeline::EdmPipeline(const hw::Device &device, EdmConfig config)
    : device_(device), config_(config)
{
    QEDM_REQUIRE(config_.totalShots > 0, "totalShots must be positive");
    QEDM_REQUIRE(config_.shotBatch > 0, "shotBatch must be positive");
}

EdmResult
EdmPipeline::run(const circuit::Circuit &logical, Rng &rng) const
{
    return run(logical, SeedSequence(rng()));
}

EdmResult
EdmPipeline::run(const circuit::Circuit &logical,
                 const SeedSequence &seq) const
{
    EnsembleConfig ensemble_config = config_.ensemble;
    ensemble_config.verifyPasses =
        ensemble_config.verifyPasses || config_.verifyPasses;
    const EnsembleBuilder builder(device_, ensemble_config);
    std::vector<transpile::CompiledProgram> programs =
        builder.build(logical);
    QEDM_ASSERT(!programs.empty(), "ensemble builder returned nothing");

    const sim::Executor executor(device_);
    const std::uint64_t shots_per_member =
        std::max<std::uint64_t>(config_.totalShots / programs.size(), 1);

    // Tapes are immutable and shared across all batches of a member.
    std::vector<std::shared_ptr<const sim::ExecutionTape>> tapes;
    tapes.reserve(programs.size());
    for (const auto &program : programs) {
        tapes.push_back(
            config_.tapeCache != nullptr
                ? config_.tapeCache->get(device_, program.physical)
                : std::make_shared<const sim::ExecutionTape>(
                      sim::ExecutionTape::build(device_,
                                                program.physical)));
    }

    // Fan (member, batch) units out over the scheduler. Each unit owns
    // the RNG stream keyed by its coordinates and writes only its own
    // slot, so the outcome is independent of scheduling order.
    const std::vector<ShotUnit> units = makeUnits(
        programs.size(), shots_per_member, config_.shotBatch);
    std::vector<std::optional<stats::Counts>> unit_counts(units.size());

    std::optional<runtime::JobScheduler> owned;
    const runtime::JobScheduler *scheduler = config_.scheduler;
    if (scheduler == nullptr)
        scheduler = &owned.emplace(config_.jobs);
    scheduler->parallelFor(units.size(), [&](std::size_t u) {
        const ShotUnit &unit = units[u];
        Rng unit_rng = seq.child(unit.member).child(unit.batch).rng();
        unit_counts[u] =
            executor.run(*tapes[unit.member], unit.shots, unit_rng);
    });

    // Merge batches back per member in fixed (member, batch) order.
    EdmResult result;
    result.members.reserve(programs.size());
    std::size_t u = 0;
    for (std::size_t m = 0; m < programs.size(); ++m) {
        QEDM_ASSERT(u < units.size() && units[u].member == m,
                    "shot unit bookkeeping out of sync");
        stats::Counts counts = std::move(*unit_counts[u]);
        ++u;
        while (u < units.size() && units[u].member == m) {
            counts.merge(*unit_counts[u]);
            ++u;
        }
        MemberResult member;
        member.shots = shots_per_member;
        member.output = stats::Distribution::fromCounts(counts);
        member.program = std::move(programs[m]);
        result.members.push_back(std::move(member));
    }

    // Uniformity guard (footnote 2): drop signal-free members.
    std::vector<MemberResult> kept;
    if (config_.uniformityGuard) {
        for (std::size_t i = 0; i < result.members.size(); ++i) {
            if (stats::isNearUniform(result.members[i].output,
                                     config_.uniformityMargin)) {
                result.discarded.push_back(i);
            } else {
                kept.push_back(result.members[i]);
            }
        }
        if (kept.empty()) {
            kept = result.members; // nothing usable: keep everything
            result.discarded.clear();
        }
    } else {
        kept = result.members;
    }

    result.edm = merge(kept, MergeRule::Uniform, config_.klSmoothing);
    result.wedm = merge(kept, MergeRule::KlWeighted, config_.klSmoothing);

    // Expose WEDM weights aligned with the full member list.
    std::vector<stats::Distribution> kept_outputs;
    kept_outputs.reserve(kept.size());
    for (const auto &m : kept)
        kept_outputs.push_back(m.output);
    const std::vector<double> kept_weights =
        stats::wedmWeights(kept_outputs, config_.klSmoothing);
    result.wedmWeights.assign(result.members.size(), 0.0);
    std::size_t kept_idx = 0;
    for (std::size_t i = 0; i < result.members.size(); ++i) {
        if (std::find(result.discarded.begin(), result.discarded.end(),
                      i) == result.discarded.end()) {
            result.wedmWeights[i] = kept_weights[kept_idx++];
        }
    }
    return result;
}

stats::Distribution
EdmPipeline::runSingle(const transpile::CompiledProgram &program,
                       Rng &rng) const
{
    return runSingle(program, SeedSequence(rng()));
}

stats::Distribution
EdmPipeline::runSingle(const transpile::CompiledProgram &program,
                       const SeedSequence &seq) const
{
    const sim::Executor executor(device_);
    const std::shared_ptr<const sim::ExecutionTape> tape =
        config_.tapeCache != nullptr
            ? config_.tapeCache->get(device_, program.physical)
            : std::make_shared<const sim::ExecutionTape>(
                  sim::ExecutionTape::build(device_, program.physical));

    const std::vector<ShotUnit> units =
        makeUnits(1, config_.totalShots, config_.shotBatch);
    std::vector<std::optional<stats::Counts>> unit_counts(units.size());

    std::optional<runtime::JobScheduler> owned;
    const runtime::JobScheduler *scheduler = config_.scheduler;
    if (scheduler == nullptr)
        scheduler = &owned.emplace(config_.jobs);
    scheduler->parallelFor(units.size(), [&](std::size_t u) {
        Rng unit_rng = seq.child(units[u].batch).rng();
        unit_counts[u] = executor.run(*tape, units[u].shots, unit_rng);
    });

    stats::Counts counts = std::move(*unit_counts.front());
    for (std::size_t u = 1; u < unit_counts.size(); ++u)
        counts.merge(*unit_counts[u]);
    return stats::Distribution::fromCounts(counts);
}

stats::Distribution
EdmPipeline::merge(const std::vector<MemberResult> &members,
                   MergeRule rule, double kl_smoothing)
{
    QEDM_REQUIRE(!members.empty(), "cannot merge an empty ensemble");
    std::vector<stats::Distribution> outputs;
    outputs.reserve(members.size());
    for (const auto &m : members)
        outputs.push_back(m.output);

    switch (rule) {
      case MergeRule::Uniform:
        return stats::mergeUniform(outputs);
      case MergeRule::KlWeighted:
        return stats::mergeWeighted(
            outputs, stats::wedmWeights(outputs, kl_smoothing));
      case MergeRule::EntropyWeighted: {
        std::vector<double> weights;
        weights.reserve(outputs.size());
        for (const auto &o : outputs)
            weights.push_back(o.entropy());
        double sum = 0.0;
        for (double w : weights)
            sum += w;
        if (sum <= 0.0)
            return stats::mergeUniform(outputs);
        return stats::mergeWeighted(outputs, weights);
      }
    }
    throw InternalError("unknown merge rule");
}

} // namespace qedm::core
