#include "core/edm.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "sim/executor.hpp"

namespace qedm::core {

std::size_t
EdmResult::bestMemberByPst(Outcome correct) const
{
    QEDM_REQUIRE(!members.empty(), "empty ensemble result");
    std::size_t best = 0;
    double best_pst = -1.0;
    for (std::size_t i = 0; i < members.size(); ++i) {
        const double p = stats::pst(members[i].output, correct);
        if (p > best_pst) {
            best_pst = p;
            best = i;
        }
    }
    return best;
}

EdmPipeline::EdmPipeline(const hw::Device &device, EdmConfig config)
    : device_(device), config_(config)
{
    QEDM_REQUIRE(config_.totalShots > 0, "totalShots must be positive");
}

EdmResult
EdmPipeline::run(const circuit::Circuit &logical, Rng &rng) const
{
    const EnsembleBuilder builder(device_, config_.ensemble);
    std::vector<transpile::CompiledProgram> programs =
        builder.build(logical);
    QEDM_ASSERT(!programs.empty(), "ensemble builder returned nothing");

    const sim::Executor executor(device_);
    const std::uint64_t shots_per_member =
        std::max<std::uint64_t>(config_.totalShots / programs.size(), 1);

    EdmResult result;
    result.members.reserve(programs.size());
    for (auto &program : programs) {
        MemberResult member;
        member.shots = shots_per_member;
        member.output = stats::Distribution::fromCounts(
            executor.run(program.physical, shots_per_member, rng));
        member.program = std::move(program);
        result.members.push_back(std::move(member));
    }

    // Uniformity guard (footnote 2): drop signal-free members.
    std::vector<MemberResult> kept;
    if (config_.uniformityGuard) {
        for (std::size_t i = 0; i < result.members.size(); ++i) {
            if (stats::isNearUniform(result.members[i].output,
                                     config_.uniformityMargin)) {
                result.discarded.push_back(i);
            } else {
                kept.push_back(result.members[i]);
            }
        }
        if (kept.empty()) {
            kept = result.members; // nothing usable: keep everything
            result.discarded.clear();
        }
    } else {
        kept = result.members;
    }

    result.edm = merge(kept, MergeRule::Uniform, config_.klSmoothing);
    result.wedm = merge(kept, MergeRule::KlWeighted, config_.klSmoothing);

    // Expose WEDM weights aligned with the full member list.
    std::vector<stats::Distribution> kept_outputs;
    kept_outputs.reserve(kept.size());
    for (const auto &m : kept)
        kept_outputs.push_back(m.output);
    const std::vector<double> kept_weights =
        stats::wedmWeights(kept_outputs, config_.klSmoothing);
    result.wedmWeights.assign(result.members.size(), 0.0);
    std::size_t kept_idx = 0;
    for (std::size_t i = 0; i < result.members.size(); ++i) {
        if (std::find(result.discarded.begin(), result.discarded.end(),
                      i) == result.discarded.end()) {
            result.wedmWeights[i] = kept_weights[kept_idx++];
        }
    }
    return result;
}

stats::Distribution
EdmPipeline::runSingle(const transpile::CompiledProgram &program,
                       Rng &rng) const
{
    const sim::Executor executor(device_);
    return stats::Distribution::fromCounts(
        executor.run(program.physical, config_.totalShots, rng));
}

stats::Distribution
EdmPipeline::merge(const std::vector<MemberResult> &members,
                   MergeRule rule, double kl_smoothing)
{
    QEDM_REQUIRE(!members.empty(), "cannot merge an empty ensemble");
    std::vector<stats::Distribution> outputs;
    outputs.reserve(members.size());
    for (const auto &m : members)
        outputs.push_back(m.output);

    switch (rule) {
      case MergeRule::Uniform:
        return stats::mergeUniform(outputs);
      case MergeRule::KlWeighted:
        return stats::mergeWeighted(
            outputs, stats::wedmWeights(outputs, kl_smoothing));
      case MergeRule::EntropyWeighted: {
        std::vector<double> weights;
        weights.reserve(outputs.size());
        for (const auto &o : outputs)
            weights.push_back(o.entropy());
        double sum = 0.0;
        for (double w : weights)
            sum += w;
        if (sum <= 0.0)
            return stats::mergeUniform(outputs);
        return stats::mergeWeighted(outputs, weights);
      }
    }
    throw InternalError("unknown merge rule");
}

} // namespace qedm::core
