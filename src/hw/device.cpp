#include "hw/device.hpp"

#include <utility>

#include "common/error.hpp"
#include "common/hash.hpp"

namespace qedm::hw {

Device::Device(std::string name, Topology topology,
               Calibration calibration, NoiseModel noise)
    : name_(std::move(name)),
      topology_(std::move(topology)),
      calibration_(std::move(calibration)),
      noise_(std::move(noise))
{
    QEDM_REQUIRE(calibration_.numQubits() ==
                     static_cast<std::size_t>(topology_.numQubits()),
                 "calibration does not match topology");
    QEDM_REQUIRE(calibration_.numEdges() == topology_.numEdges(),
                 "calibration does not match topology");
}

Device
Device::driftedRound(Rng &rng, double drift) const
{
    Device out = *this;
    out.calibration_ = calibration_.drifted(rng, drift);
    return out;
}

Device
Device::withStaleCalibration(Rng &rng, double severity) const
{
    Device out = *this;
    out.calibration_ = calibration_.staleJump(rng, severity);
    return out;
}

Device
Device::withNoise(NoiseModel noise) const
{
    Device out = *this;
    out.noise_ = std::move(noise);
    return out;
}

Device
Device::withCalibration(Calibration cal) const
{
    QEDM_REQUIRE(cal.numQubits() ==
                     static_cast<std::size_t>(topology_.numQubits()),
                 "calibration does not match topology");
    Device out = *this;
    out.calibration_ = std::move(cal);
    return out;
}

Device
Device::melbourne(std::uint64_t noise_seed, const NoiseSpec &spec)
{
    Topology topo = Topology::melbourne();
    Calibration cal = Calibration::melbourne();
    Rng rng(noise_seed);
    NoiseModel noise = NoiseModel::sample(topo, cal, spec, rng);
    return Device("ibmq-14-model", std::move(topo), std::move(cal),
                  std::move(noise));
}

Device
Device::idealMelbourne()
{
    return ideal("ibmq-14-ideal", Topology::melbourne());
}

Device
Device::ideal(std::string name, Topology topology)
{
    Calibration cal(topology);
    for (int q = 0; q < topology.numQubits(); ++q) {
        cal.qubit(q).error1q = 0.0;
        cal.qubit(q).readoutP01 = 0.0;
        cal.qubit(q).readoutP10 = 0.0;
        cal.qubit(q).t1Us = 1e12;
        cal.qubit(q).t2Us = 1e12;
    }
    for (std::size_t e = 0; e < topology.numEdges(); ++e)
        cal.edge(e).cxError = 0.0;
    NoiseModel noise = NoiseModel::ideal(topology);
    return Device(std::move(name), std::move(topology), std::move(cal),
                  std::move(noise));
}

Device
Device::synthetic(std::string name, Topology topology,
                  const CalibrationSpec &cal_spec,
                  const NoiseSpec &noise_spec, std::uint64_t seed)
{
    Rng rng(seed);
    Calibration cal = Calibration::sample(topology, cal_spec, rng);
    NoiseModel noise =
        NoiseModel::sample(topology, cal, noise_spec, rng);
    return Device(std::move(name), std::move(topology), std::move(cal),
                  std::move(noise));
}

std::uint64_t
Device::fingerprint() const
{
    Fingerprint fp(0xDE71CEull);
    fp.add(std::string_view(name_));
    fp.add(topology_.fingerprint());
    fp.add(calibration_.fingerprint());
    fp.add(noise_.fingerprint());
    return fp.value();
}

} // namespace qedm::hw
