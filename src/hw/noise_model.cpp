#include "hw/noise_model.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/hash.hpp"

namespace qedm::hw {

NoiseModel
NoiseModel::sample(const Topology &topology, const Calibration &cal,
                   const NoiseSpec &spec, Rng &rng)
{
    QEDM_REQUIRE(cal.numQubits() ==
                     static_cast<std::size_t>(topology.numQubits()),
                 "calibration does not match topology");
    QEDM_REQUIRE(cal.numEdges() == topology.numEdges(),
                 "calibration does not match topology");

    NoiseModel nm;
    nm.spec_ = spec;

    nm.overRotation1q_.resize(topology.numQubits());
    for (int q = 0; q < topology.numQubits(); ++q) {
        nm.overRotation1q_[q] = spec.coherentScale *
                                spec.overRotation1qSigma * rng.normal();
    }

    // Noisier links get proportionally larger systematic terms, so
    // the spatial variation in the calibration also shows up
    // coherently. The linear scaling keeps compile-time ESP a useful
    // (if imperfect) predictor of runtime PST, as the paper observed
    // (Fig. 8).
    const double mean_cx = std::max(cal.meanCxError(), 1e-9);
    nm.overRotationEdge_.resize(topology.numEdges());
    nm.controlPhaseEdge_.resize(topology.numEdges());
    nm.crosstalk_.resize(topology.numEdges());
    for (std::size_t e = 0; e < topology.numEdges(); ++e) {
        const double severity = cal.edge(e).cxError / mean_cx;
        nm.overRotationEdge_[e] = spec.coherentScale *
                                  spec.overRotationSigma * severity *
                                  rng.normal();
        nm.controlPhaseEdge_[e] = spec.coherentScale *
                                  spec.overRotationSigma * severity *
                                  rng.normal();
        const Edge edge = topology.edges()[e];
        for (int endpoint : {edge.a, edge.b}) {
            for (int nbr : topology.neighbors(endpoint)) {
                if (nbr == edge.a || nbr == edge.b)
                    continue;
                const double angle = spec.coherentScale *
                                     spec.zzCrosstalkSigma *
                                     rng.normal();
                if (angle != 0.0)
                    nm.crosstalk_[e].push_back(
                        CrosstalkTerm{nbr, angle});
            }
        }
    }

    for (const Edge &edge : topology.edges()) {
        const double p = spec.correlatedReadoutScale *
                         spec.correlatedReadoutMax * rng.uniform();
        if (p > 0.0)
            nm.correlatedReadout_.push_back(
                CorrelatedReadout{edge.a, edge.b, p});
    }
    return nm;
}

NoiseModel
NoiseModel::ideal(const Topology &topology)
{
    NoiseModel nm;
    nm.spec_ = NoiseSpec{};
    nm.spec_.coherentScale = 0.0;
    nm.spec_.correlatedReadoutScale = 0.0;
    nm.spec_.stochasticScale = 0.0;
    nm.spec_.enableDecoherence = false;
    nm.overRotation1q_.assign(topology.numQubits(), 0.0);
    nm.overRotationEdge_.assign(topology.numEdges(), 0.0);
    nm.controlPhaseEdge_.assign(topology.numEdges(), 0.0);
    nm.crosstalk_.resize(topology.numEdges());
    return nm;
}

NoiseModel
NoiseModel::fromParts(NoiseSpec spec,
                      std::vector<double> over_rotation_1q,
                      std::vector<double> over_rotation_edge,
                      std::vector<double> control_phase_edge,
                      std::vector<std::vector<CrosstalkTerm>> crosstalk,
                      std::vector<CorrelatedReadout> correlated_readout)
{
    QEDM_REQUIRE(over_rotation_edge.size() ==
                         control_phase_edge.size() &&
                     crosstalk.size() == over_rotation_edge.size(),
                 "noise model edge components must align");
    NoiseModel nm;
    nm.spec_ = spec;
    nm.overRotation1q_ = std::move(over_rotation_1q);
    nm.overRotationEdge_ = std::move(over_rotation_edge);
    nm.controlPhaseEdge_ = std::move(control_phase_edge);
    nm.crosstalk_ = std::move(crosstalk);
    nm.correlatedReadout_ = std::move(correlated_readout);
    return nm;
}

double
NoiseModel::overRotation(std::size_t edge_idx) const
{
    QEDM_REQUIRE(edge_idx < overRotationEdge_.size(),
                 "edge index out of range");
    return overRotationEdge_[edge_idx];
}

double
NoiseModel::overRotation1q(int q) const
{
    QEDM_REQUIRE(q >= 0 &&
                     q < static_cast<int>(overRotation1q_.size()),
                 "qubit index out of range");
    return overRotation1q_[q];
}

double
NoiseModel::controlPhase(std::size_t edge_idx) const
{
    QEDM_REQUIRE(edge_idx < controlPhaseEdge_.size(),
                 "edge index out of range");
    return controlPhaseEdge_[edge_idx];
}

const std::vector<CrosstalkTerm> &
NoiseModel::crosstalk(std::size_t edge_idx) const
{
    QEDM_REQUIRE(edge_idx < crosstalk_.size(), "edge index out of range");
    return crosstalk_[edge_idx];
}

std::uint64_t
NoiseModel::fingerprint() const
{
    Fingerprint fp(0x401Eull);
    fp.add(spec_.coherentScale).add(spec_.overRotationSigma);
    fp.add(spec_.zzCrosstalkSigma).add(spec_.overRotation1qSigma);
    fp.add(spec_.correlatedReadoutScale).add(spec_.correlatedReadoutMax);
    fp.add(spec_.stochasticScale).add(spec_.enableDecoherence);
    fp.add(spec_.idleDecoherence).add(spec_.gate1qNs);
    fp.add(spec_.gate2qNs).add(spec_.measureNs);
    fp.addRange(overRotation1q_).addRange(overRotationEdge_);
    fp.addRange(controlPhaseEdge_);
    fp.add(std::uint64_t(crosstalk_.size()));
    for (const auto &terms : crosstalk_) {
        fp.add(std::uint64_t(terms.size()));
        for (const CrosstalkTerm &t : terms)
            fp.add(t.spectator).add(t.angleRad);
    }
    fp.add(std::uint64_t(correlatedReadout_.size()));
    for (const CorrelatedReadout &cr : correlatedReadout_)
        fp.add(cr.qubitA).add(cr.qubitB).add(cr.jointFlipProb);
    return fp.value();
}

} // namespace qedm::hw
