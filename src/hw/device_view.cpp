#include "hw/device_view.hpp"

#include "common/error.hpp"
#include "common/hash.hpp"

namespace qedm::hw {

DeviceView::DeviceView(const Device &device)
    : device_(&device),
      mask_(static_cast<std::size_t>(device.numQubits()), true),
      full_(true),
      numAllowed_(device.numQubits()),
      fingerprint_(device.fingerprint())
{
}

DeviceView::DeviceView(const Device &device, const std::vector<int> &allowed)
    : device_(&device),
      mask_(static_cast<std::size_t>(device.numQubits()), false)
{
    QEDM_REQUIRE(!allowed.empty(), "device view needs at least one qubit");
    for (int q : allowed) {
        QEDM_REQUIRE(q >= 0 && q < device.numQubits(),
                     "region qubit index out of range");
        mask_[static_cast<std::size_t>(q)] = true;
    }
    numAllowed_ = 0;
    for (int q = 0; q < device.numQubits(); ++q) {
        if (mask_[static_cast<std::size_t>(q)])
            ++numAllowed_;
    }
    full_ = numAllowed_ == device.numQubits();
    if (full_) {
        fingerprint_ = device.fingerprint();
        return;
    }
    Fingerprint fp(0x5EED'71E3ull);
    fp.add(device.fingerprint()).add(numAllowed_);
    for (int q = 0; q < device.numQubits(); ++q) {
        if (mask_[static_cast<std::size_t>(q)])
            fp.add(q);
    }
    fingerprint_ = fp.value();
}

std::vector<int>
DeviceView::allowedQubits() const
{
    std::vector<int> out;
    out.reserve(static_cast<std::size_t>(numAllowed_));
    for (int q = 0; q < device_->numQubits(); ++q) {
        if (mask_[static_cast<std::size_t>(q)])
            out.push_back(q);
    }
    return out;
}

} // namespace qedm::hw
