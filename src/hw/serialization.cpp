#include "hw/serialization.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <vector>

#include "common/error.hpp"

namespace qedm::hw {
namespace {

/** Exact round-trip double encoding (hex float). */
std::string
enc(double v)
{
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%a", v);
    return buf;
}

double
dec(const std::string &token, const std::string &line)
{
    char *end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    QEDM_REQUIRE(end && *end == '\0',
                 "device parse error: bad number in line: " + line);
    return v;
}

std::vector<std::string>
tokens(const std::string &line)
{
    std::istringstream in(line);
    std::vector<std::string> out;
    std::string t;
    while (in >> t)
        out.push_back(t);
    return out;
}

} // namespace

std::string
serializeDevice(const Device &device)
{
    const auto &topo = device.topology();
    const auto &cal = device.calibration();
    const auto &noise = device.noise();
    const auto &spec = noise.spec();

    std::ostringstream os;
    os << "qedm-device v1\n";
    os << "name " << device.name() << "\n";
    os << "qubits " << topo.numQubits() << "\n";
    for (const auto &edge : topo.edges())
        os << "edge " << edge.a << " " << edge.b << "\n";
    for (int q = 0; q < topo.numQubits(); ++q) {
        const auto &qc = cal.qubit(q);
        os << "qubitcal " << q << " " << enc(qc.error1q) << " "
           << enc(qc.readoutP01) << " " << enc(qc.readoutP10) << " "
           << enc(qc.t1Us) << " " << enc(qc.t2Us) << "\n";
    }
    for (std::size_t e = 0; e < topo.numEdges(); ++e)
        os << "edgecal " << e << " " << enc(cal.edge(e).cxError)
           << "\n";
    os << "spec " << enc(spec.coherentScale) << " "
       << enc(spec.overRotationSigma) << " "
       << enc(spec.zzCrosstalkSigma) << " "
       << enc(spec.overRotation1qSigma) << " "
       << enc(spec.correlatedReadoutScale) << " "
       << enc(spec.correlatedReadoutMax) << " "
       << enc(spec.stochasticScale) << " "
       << (spec.enableDecoherence ? 1 : 0) << " "
       << (spec.idleDecoherence ? 1 : 0) << " " << enc(spec.gate1qNs)
       << " " << enc(spec.gate2qNs) << " " << enc(spec.measureNs)
       << "\n";
    for (int q = 0; q < topo.numQubits(); ++q)
        os << "rot1q " << q << " " << enc(noise.overRotation1q(q))
           << "\n";
    for (std::size_t e = 0; e < topo.numEdges(); ++e) {
        os << "rotedge " << e << " " << enc(noise.overRotation(e))
           << " " << enc(noise.controlPhase(e)) << "\n";
        for (const auto &xt : noise.crosstalk(e)) {
            os << "crosstalk " << e << " " << xt.spectator << " "
               << enc(xt.angleRad) << "\n";
        }
    }
    for (const auto &cr : noise.correlatedReadout()) {
        os << "corrread " << cr.qubitA << " " << cr.qubitB << " "
           << enc(cr.jointFlipProb) << "\n";
    }
    return os.str();
}

Device
parseDevice(const std::string &text)
{
    std::istringstream in(text);
    std::string line;
    QEDM_REQUIRE(std::getline(in, line) && line == "qedm-device v1",
                 "device parse error: missing `qedm-device v1` header");

    std::string name = "unnamed";
    int num_qubits = -1;
    std::vector<std::pair<int, int>> edges;
    struct QubitRow { double e1q, p01, p10, t1, t2; };
    std::vector<std::pair<int, QubitRow>> qubit_rows;
    std::vector<std::pair<std::size_t, double>> edge_rows;
    NoiseSpec spec;
    bool have_spec = false;
    std::vector<std::pair<int, double>> rot1q;
    struct EdgeRot { std::size_t e; double rot, phase; };
    std::vector<EdgeRot> rotedges;
    struct XtRow { std::size_t e; CrosstalkTerm term; };
    std::vector<XtRow> xts;
    std::vector<CorrelatedReadout> corr;

    while (std::getline(in, line)) {
        if (line.empty())
            continue;
        const auto t = tokens(line);
        const std::string &kind = t.front();
        auto need = [&](std::size_t n) {
            QEDM_REQUIRE(t.size() == n,
                         "device parse error: wrong field count in "
                         "line: " + line);
        };
        if (kind == "name") {
            need(2);
            name = t[1];
        } else if (kind == "qubits") {
            need(2);
            num_qubits = static_cast<int>(dec(t[1], line));
        } else if (kind == "edge") {
            need(3);
            edges.emplace_back(static_cast<int>(dec(t[1], line)),
                               static_cast<int>(dec(t[2], line)));
        } else if (kind == "qubitcal") {
            need(7);
            qubit_rows.push_back(
                {static_cast<int>(dec(t[1], line)),
                 QubitRow{dec(t[2], line), dec(t[3], line),
                          dec(t[4], line), dec(t[5], line),
                          dec(t[6], line)}});
        } else if (kind == "edgecal") {
            need(3);
            edge_rows.emplace_back(
                static_cast<std::size_t>(dec(t[1], line)),
                dec(t[2], line));
        } else if (kind == "spec") {
            need(13);
            spec.coherentScale = dec(t[1], line);
            spec.overRotationSigma = dec(t[2], line);
            spec.zzCrosstalkSigma = dec(t[3], line);
            spec.overRotation1qSigma = dec(t[4], line);
            spec.correlatedReadoutScale = dec(t[5], line);
            spec.correlatedReadoutMax = dec(t[6], line);
            spec.stochasticScale = dec(t[7], line);
            spec.enableDecoherence = dec(t[8], line) != 0.0;
            spec.idleDecoherence = dec(t[9], line) != 0.0;
            spec.gate1qNs = dec(t[10], line);
            spec.gate2qNs = dec(t[11], line);
            spec.measureNs = dec(t[12], line);
            have_spec = true;
        } else if (kind == "rot1q") {
            need(3);
            rot1q.emplace_back(static_cast<int>(dec(t[1], line)),
                               dec(t[2], line));
        } else if (kind == "rotedge") {
            need(4);
            rotedges.push_back(
                EdgeRot{static_cast<std::size_t>(dec(t[1], line)),
                        dec(t[2], line), dec(t[3], line)});
        } else if (kind == "crosstalk") {
            need(4);
            xts.push_back(
                XtRow{static_cast<std::size_t>(dec(t[1], line)),
                      CrosstalkTerm{static_cast<int>(dec(t[2], line)),
                                    dec(t[3], line)}});
        } else if (kind == "corrread") {
            need(4);
            corr.push_back(CorrelatedReadout{
                static_cast<int>(dec(t[1], line)),
                static_cast<int>(dec(t[2], line)), dec(t[3], line)});
        } else {
            throw UserError("device parse error: unknown record `" +
                            kind + "`");
        }
    }
    QEDM_REQUIRE(num_qubits > 0,
                 "device parse error: missing qubits record");
    QEDM_REQUIRE(have_spec, "device parse error: missing spec record");

    Topology topo(num_qubits, edges);
    Calibration cal(topo);
    QEDM_REQUIRE(qubit_rows.size() ==
                     static_cast<std::size_t>(num_qubits),
                 "device parse error: qubitcal rows must cover every "
                 "qubit");
    for (const auto &[q, row] : qubit_rows) {
        auto &qc = cal.qubit(q);
        qc.error1q = row.e1q;
        qc.readoutP01 = row.p01;
        qc.readoutP10 = row.p10;
        qc.t1Us = row.t1;
        qc.t2Us = row.t2;
    }
    QEDM_REQUIRE(edge_rows.size() == topo.numEdges(),
                 "device parse error: edgecal rows must cover every "
                 "edge");
    for (const auto &[e, err] : edge_rows)
        cal.edge(e).cxError = err;

    std::vector<double> over1q(static_cast<std::size_t>(num_qubits),
                               0.0);
    for (const auto &[q, angle] : rot1q) {
        QEDM_REQUIRE(q >= 0 && q < num_qubits,
                     "device parse error: rot1q index out of range");
        over1q[static_cast<std::size_t>(q)] = angle;
    }
    std::vector<double> overedge(topo.numEdges(), 0.0);
    std::vector<double> phase(topo.numEdges(), 0.0);
    std::vector<std::vector<CrosstalkTerm>> crosstalk(topo.numEdges());
    for (const auto &er : rotedges) {
        QEDM_REQUIRE(er.e < topo.numEdges(),
                     "device parse error: rotedge index out of range");
        overedge[er.e] = er.rot;
        phase[er.e] = er.phase;
    }
    for (const auto &xt : xts) {
        QEDM_REQUIRE(xt.e < topo.numEdges(),
                     "device parse error: crosstalk index out of "
                     "range");
        crosstalk[xt.e].push_back(xt.term);
    }
    NoiseModel noise = NoiseModel::fromParts(
        spec, std::move(over1q), std::move(overedge), std::move(phase),
        std::move(crosstalk), std::move(corr));
    return Device(name, std::move(topo), std::move(cal),
                  std::move(noise));
}

void
saveDevice(const Device &device, const std::string &path)
{
    std::ofstream out(path);
    QEDM_REQUIRE(out.good(), "cannot open device file: " + path);
    out << serializeDevice(device);
    QEDM_REQUIRE(out.good(), "write failed for device file: " + path);
}

Device
loadDevice(const std::string &path)
{
    std::ifstream in(path);
    QEDM_REQUIRE(in.good(), "cannot read device file: " + path);
    std::stringstream buffer;
    buffer << in.rdbuf();
    return parseDevice(buffer.str());
}

} // namespace qedm::hw
