/**
 * @file
 * Region-scoped view of a device.
 *
 * A DeviceView pairs a Device with an allowed-qubit mask, letting the
 * whole compile path (placement, routing, ESP scoring, checking) run
 * against an induced subgraph of the chip — the substrate for
 * multi-programming disjoint regions and for restricting work to the
 * reliable part of a large topology. A full view (all qubits allowed)
 * is behaviorally identical to the raw device and shares its
 * fingerprint, so caches keyed on the view fingerprint keep hitting
 * the same entries as before the refactor.
 */

#pragma once

#include <cstdint>
#include <vector>

#include "hw/device.hpp"

namespace qedm::hw {

/** A (device, allowed-qubit-mask) pair with its own fingerprint. */
class DeviceView
{
  public:
    /** Full view: every physical qubit allowed. */
    explicit DeviceView(const Device &device);

    /**
     * Restricted view. @p allowed lists the physical qubits the
     * compile path may use (non-empty, in range; duplicates ignored).
     */
    DeviceView(const Device &device, const std::vector<int> &allowed);

    const Device &device() const { return *device_; }
    const Topology &topology() const { return device_->topology(); }

    /** Device qubit count (NOT the allowed count). */
    int numQubits() const { return device_->numQubits(); }

    /** True when every qubit is allowed. */
    bool isFull() const { return full_; }

    /** True when physical qubit @p q may be used. */
    bool allowed(int q) const
    {
        return mask_[static_cast<std::size_t>(q)];
    }

    /** Number of allowed qubits. */
    int numAllowed() const { return numAllowed_; }

    /** Allowed physical qubits, ascending. */
    std::vector<int> allowedQubits() const;

    /** Allowed mask, one flag per physical qubit. */
    const std::vector<bool> &mask() const { return mask_; }

    /**
     * Mask pointer for search kernels: nullptr for a full view (the
     * unmasked code path is byte-for-byte the pre-view one), the mask
     * otherwise.
     */
    const std::vector<bool> *maskPtr() const
    {
        return full_ ? nullptr : &mask_;
    }

    /**
     * Content hash. Equals the device fingerprint for a full view;
     * mixes the mask under a distinct salt otherwise. Compile-path
     * caches must key on this, never on the raw device fingerprint,
     * or a masked compile would poison full-device entries.
     */
    std::uint64_t fingerprint() const { return fingerprint_; }

  private:
    const Device *device_;
    std::vector<bool> mask_;
    bool full_;
    int numAllowed_;
    std::uint64_t fingerprint_;
};

} // namespace qedm::hw
