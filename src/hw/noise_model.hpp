/**
 * @file
 * Device noise model, including the correlated-error mechanisms that
 * motivate EDM.
 *
 * The paper shows (Section 3) that real machines repeat the *same*
 * wrong answer across trials because error sources are pinned to
 * physical qubits and links. We reproduce that mechanistically with
 * *systematic* (coherent) error terms that are sampled once per device
 * instance and then applied identically on every shot:
 *
 *  - per-edge CX over-rotation: each CX on edge e is followed by a
 *    fixed partial rotation of the target, so repeated use of the same
 *    link biases the state toward the same wrong basis states;
 *  - ZZ crosstalk: a CX on edge e kicks the phase of spectator
 *    neighbors by a fixed per-(edge, spectator) angle;
 *  - per-qubit 1q over-rotation;
 *  - state-dependent readout bias (p10 > p01) and pairwise-correlated
 *    readout flips on coupled pairs.
 *
 * Stochastic (IID) channels — depolarizing noise scaled by calibration
 * error rates and T1/T2 damping over gate durations — are layered on
 * top. Setting coherentScale = 0 and correlatedReadoutScale = 0 yields
 * the IID-only simulator the paper criticizes in Section 4.4.
 */

#pragma once

#include <vector>

#include "common/rng.hpp"
#include "hw/calibration.hpp"
#include "hw/topology.hpp"

namespace qedm::hw {

/** Knobs controlling how a NoiseModel is synthesized. */
struct NoiseSpec
{
    /**
     * Global multiplier on every systematic (coherent) angle. The
     * defaults below were calibrated so the melbourne model lands in
     * the paper's observed regime on BV-6: single-mapping PST in the
     * few-percent-to-tens-of-percent band with IST frequently below 1
     * (Section 3.1), which an IID-only model never reaches (set
     * coherentScale = 0 to get that IID model).
     */
    double coherentScale = 1.0;
    /** Per-edge CX over-rotation angle scale: the per-edge angle is
     *  drawn once as N(0, sigma) * sqrt(cxError / meanCxError). */
    double overRotationSigma = 0.90;
    /** Per-(edge, spectator) ZZ crosstalk angle sigma (radians). */
    double zzCrosstalkSigma = 0.30;
    /** Per-qubit single-qubit over-rotation angle sigma (radians). */
    double overRotation1qSigma = 0.12;
    /** Scale on pairwise-correlated readout flip probabilities. */
    double correlatedReadoutScale = 1.0;
    /** Max joint-flip probability for one coupled pair. */
    double correlatedReadoutMax = 0.015;
    /** Global multiplier on stochastic (depolarizing/damping) rates;
     *  > 1 because published calibration understates in-circuit error
     *  (no crosstalk or drift terms in randomized benchmarking). */
    double stochasticScale = 1.5;
    /** Apply T1/T2 damping over gate durations. */
    bool enableDecoherence = true;
    /** Also damp qubits across their scheduled *idle* windows (gaps
     *  between consecutive gates under an ASAP schedule). */
    bool idleDecoherence = true;
    /** Gate durations (ns) used for decoherence accounting. */
    double gate1qNs = 100.0;
    double gate2qNs = 350.0;
    double measureNs = 1000.0;
};

/** Fixed systematic kick applied to a spectator when an edge fires. */
struct CrosstalkTerm
{
    int spectator;  ///< physical qubit receiving the phase kick
    double angleRad; ///< RZ angle applied per CX on the edge
};

/** Pairwise-correlated readout flip channel. */
struct CorrelatedReadout
{
    int qubitA;
    int qubitB;
    double jointFlipProb; ///< probability both readout bits flip together
};

/**
 * A sampled noise model instance for one device.
 *
 * All systematic terms are fixed at construction (that is the point:
 * they are what correlate errors across shots). The stochastic channel
 * strengths are derived from the Calibration each time the simulator
 * asks, so a drifted Calibration automatically drifts the IID noise.
 */
class NoiseModel
{
  public:
    /** Sample a model for @p topology / @p cal with knobs @p spec. */
    static NoiseModel sample(const Topology &topology,
                             const Calibration &cal, const NoiseSpec &spec,
                             Rng &rng);

    /** An exactly-zero noise model (ideal machine) for @p topology. */
    static NoiseModel ideal(const Topology &topology);

    /**
     * Reassemble a model from explicit components (deserialization;
     * sizes must match the topology the model will be used with).
     */
    static NoiseModel
    fromParts(NoiseSpec spec, std::vector<double> over_rotation_1q,
              std::vector<double> over_rotation_edge,
              std::vector<double> control_phase_edge,
              std::vector<std::vector<CrosstalkTerm>> crosstalk,
              std::vector<CorrelatedReadout> correlated_readout);

    const NoiseSpec &spec() const { return spec_; }

    /** Fixed CX over-rotation angle on edge @p edge_idx (radians),
     *  applied as an Rx on the target qubit. */
    double overRotation(std::size_t edge_idx) const;

    /** Fixed CX control-phase error on edge @p edge_idx (radians),
     *  applied as an Rz on the control qubit. */
    double controlPhase(std::size_t edge_idx) const;

    /** Fixed 1q over-rotation angle on qubit @p q (radians). */
    double overRotation1q(int q) const;

    /** Crosstalk terms fired by a CX on @p edge_idx. */
    const std::vector<CrosstalkTerm> &
    crosstalk(std::size_t edge_idx) const;

    /** Content hash over the spec and all systematic terms. */
    std::uint64_t fingerprint() const;

    /** All pairwise-correlated readout channels. */
    const std::vector<CorrelatedReadout> &correlatedReadout() const
    {
        return correlatedReadout_;
    }

  private:
    NoiseSpec spec_;
    std::vector<double> overRotation1q_;
    std::vector<double> overRotationEdge_;
    std::vector<double> controlPhaseEdge_;
    std::vector<std::vector<CrosstalkTerm>> crosstalk_;
    std::vector<CorrelatedReadout> correlatedReadout_;
};

} // namespace qedm::hw
