#include "hw/calibration.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/hash.hpp"

namespace qedm::hw {
namespace {

double
clampProb(double p)
{
    return std::min(std::max(p, 1e-6), 0.45);
}

} // namespace

Calibration::Calibration(const Topology &topology)
    : qubits_(topology.numQubits()), edges_(topology.numEdges())
{
}

Calibration
Calibration::sample(const Topology &topology, const CalibrationSpec &spec,
                    Rng &rng)
{
    Calibration cal(topology);
    for (auto &q : cal.qubits_) {
        q.error1q =
            clampProb(spec.meanError1q * std::exp(spec.spread *
                                                  rng.normal()));
        const double base = spec.meanReadoutError /
                            (0.5 * (1.0 + spec.readoutBias));
        q.readoutP01 =
            clampProb(base * std::exp(spec.spread * rng.normal()));
        q.readoutP10 = clampProb(base * spec.readoutBias *
                                 std::exp(spec.spread * rng.normal()));
        q.t1Us = spec.meanT1Us * std::exp(0.3 * rng.normal());
        q.t2Us = std::min(spec.meanT2Us * std::exp(0.3 * rng.normal()),
                          2.0 * q.t1Us);
    }
    for (auto &e : cal.edges_) {
        e.cxError =
            clampProb(spec.meanCxError * std::exp(spec.spread *
                                                  rng.normal()));
    }
    return cal;
}

Calibration
Calibration::melbourne()
{
    const Topology topo = Topology::melbourne();
    Calibration cal(topo);

    // Per-qubit tables modeled on typical ibmq-16-melbourne postings:
    // 1q error ~1e-3 with ~3x variation, readout 1.5%..10% for healthy
    // qubits, and the two pathological readout qubits Q11/Q12 (~20-30%)
    // called out in the paper's footnote 3.
    struct Row { double e1q, p01, p10, t1, t2; };
    const Row rows[14] = {
        // e1q      p01     p10     T1    T2
        {0.6e-3, 0.020, 0.036, 58.0, 24.0},  // Q0
        {1.6e-3, 0.028, 0.062, 46.0, 21.0},  // Q1
        {0.9e-3, 0.016, 0.030, 62.0, 40.0},  // Q2
        {0.7e-3, 0.032, 0.075, 71.0, 35.0},  // Q3
        {1.2e-3, 0.022, 0.048, 54.0, 28.0},  // Q4
        {2.3e-3, 0.040, 0.090, 38.0, 19.0},  // Q5
        {1.0e-3, 0.018, 0.034, 66.0, 33.0},  // Q6
        {1.4e-3, 0.026, 0.055, 43.0, 25.0},  // Q7
        {0.8e-3, 0.014, 0.026, 74.0, 42.0},  // Q8
        {1.1e-3, 0.024, 0.050, 51.0, 30.0},  // Q9
        {1.8e-3, 0.034, 0.080, 40.0, 22.0},  // Q10
        {2.8e-3, 0.110, 0.290, 31.0, 16.0},  // Q11 (bad readout)
        {2.5e-3, 0.090, 0.210, 34.0, 18.0},  // Q12 (bad readout)
        {1.3e-3, 0.021, 0.044, 57.0, 27.0},  // Q13
    };
    for (int q = 0; q < 14; ++q) {
        cal.qubits_[q].error1q = rows[q].e1q;
        cal.qubits_[q].readoutP01 = rows[q].p01;
        cal.qubits_[q].readoutP10 = rows[q].p10;
        cal.qubits_[q].t1Us = rows[q].t1;
        cal.qubits_[q].t2Us = rows[q].t2;
    }

    // Per-edge CX error; the paper reports SWAP (3 CX) error 8-11% on
    // average with up to 20x link-to-link variation.
    struct EdgeRow { int a, b; double cx; };
    const EdgeRow edge_rows[18] = {
        {0, 1, 0.019},  {1, 2, 0.032},  {2, 3, 0.024},  {3, 4, 0.017},
        {4, 5, 0.041},  {5, 6, 0.055},  {7, 8, 0.028},  {8, 9, 0.021},
        {9, 10, 0.035}, {10, 11, 0.068},{11, 12, 0.090},{12, 13, 0.074},
        {1, 13, 0.026}, {2, 12, 0.049}, {3, 11, 0.062}, {4, 10, 0.030},
        {5, 9, 0.038},  {6, 8, 0.023},
    };
    for (const auto &er : edge_rows) {
        const int idx = topo.edgeIndex(er.a, er.b);
        QEDM_ASSERT(idx >= 0, "melbourne edge table mismatch");
        cal.edges_[idx].cxError = er.cx;
    }
    return cal;
}

const QubitCalibration &
Calibration::qubit(int q) const
{
    QEDM_REQUIRE(q >= 0 && q < static_cast<int>(qubits_.size()),
                 "qubit index out of range");
    return qubits_[q];
}

QubitCalibration &
Calibration::qubit(int q)
{
    QEDM_REQUIRE(q >= 0 && q < static_cast<int>(qubits_.size()),
                 "qubit index out of range");
    return qubits_[q];
}

const EdgeCalibration &
Calibration::edge(std::size_t idx) const
{
    QEDM_REQUIRE(idx < edges_.size(), "edge index out of range");
    return edges_[idx];
}

EdgeCalibration &
Calibration::edge(std::size_t idx)
{
    QEDM_REQUIRE(idx < edges_.size(), "edge index out of range");
    return edges_[idx];
}

Calibration
Calibration::drifted(Rng &rng, double drift) const
{
    QEDM_REQUIRE(drift >= 0.0, "drift must be non-negative");
    Calibration out = *this;
    auto jitter = [&]() { return std::exp(drift * rng.normal()); };
    for (auto &q : out.qubits_) {
        q.error1q = clampProb(q.error1q * jitter());
        q.readoutP01 = clampProb(q.readoutP01 * jitter());
        q.readoutP10 = clampProb(q.readoutP10 * jitter());
        q.t1Us /= jitter();
        q.t2Us = std::min(q.t2Us / jitter(), 2.0 * q.t1Us);
    }
    for (auto &e : out.edges_)
        e.cxError = clampProb(e.cxError * jitter());
    return out;
}

Calibration
Calibration::staleJump(Rng &rng, double severity) const
{
    QEDM_REQUIRE(severity >= 0.0, "severity must be non-negative");
    Calibration out = *this;
    // One-sided jitter: rates only worsen, coherence only shrinks.
    auto worsen = [&]() {
        return std::exp(std::abs(severity * rng.normal()));
    };
    for (auto &q : out.qubits_) {
        q.error1q = clampProb(q.error1q * worsen());
        q.readoutP01 = clampProb(q.readoutP01 * worsen());
        q.readoutP10 = clampProb(q.readoutP10 * worsen());
        q.t1Us /= worsen();
        q.t2Us = std::min(q.t2Us / worsen(), 2.0 * q.t1Us);
    }
    for (auto &e : out.edges_)
        e.cxError = clampProb(e.cxError * worsen());
    return out;
}

double
Calibration::meanCxError() const
{
    if (edges_.empty())
        return 0.0;
    double sum = 0.0;
    for (const auto &e : edges_)
        sum += e.cxError;
    return sum / static_cast<double>(edges_.size());
}

double
Calibration::meanReadoutError() const
{
    double sum = 0.0;
    for (const auto &q : qubits_)
        sum += q.readoutError();
    return sum / static_cast<double>(qubits_.size());
}

std::uint64_t
Calibration::fingerprint() const
{
    Fingerprint fp(0xCA1Bull);
    fp.add(std::uint64_t(qubits_.size()));
    for (const QubitCalibration &q : qubits_) {
        fp.add(q.error1q).add(q.readoutP01).add(q.readoutP10);
        fp.add(q.t1Us).add(q.t2Us);
    }
    fp.add(std::uint64_t(edges_.size()));
    for (const EdgeCalibration &e : edges_)
        fp.add(e.cxError);
    return fp.value();
}

} // namespace qedm::hw
