/**
 * @file
 * Text serialization of complete device models.
 *
 * A Device (topology + calibration + sampled noise model) is the unit
 * of reproducibility for every experiment in this repo; serializing
 * it lets a characterized "machine" be stored, shared, and reloaded
 * exactly. The format is a line-oriented plain-text document
 * (`qedm-device v1`), stable across platforms (hex-float encoding for
 * exact round trips).
 */

#pragma once

#include <string>

#include "hw/device.hpp"

namespace qedm::hw {

/** Serialize @p device into the qedm-device v1 text format. */
std::string serializeDevice(const Device &device);

/**
 * Parse a qedm-device v1 document.
 * @throws qedm::UserError on malformed input.
 */
Device parseDevice(const std::string &text);

/** Convenience: serializeDevice to a file. */
void saveDevice(const Device &device, const std::string &path);

/** Convenience: parseDevice from a file. */
Device loadDevice(const std::string &path);

} // namespace qedm::hw
