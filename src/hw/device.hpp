/**
 * @file
 * A complete NISQ device model: topology + calibration + noise model.
 *
 * The Device is what the transpiler plans against and what the
 * simulator executes on. Presets provide the paper's IBMQ-14
 * (melbourne) target and generic research topologies.
 */

#pragma once

#include <string>

#include "common/rng.hpp"
#include "hw/calibration.hpp"
#include "hw/noise_model.hpp"
#include "hw/topology.hpp"

namespace qedm::hw {

/** Bundled device model. */
class Device
{
  public:
    Device(std::string name, Topology topology, Calibration calibration,
           NoiseModel noise);

    const std::string &name() const { return name_; }
    const Topology &topology() const { return topology_; }
    const Calibration &calibration() const { return calibration_; }
    const NoiseModel &noise() const { return noise_; }

    int numQubits() const { return topology_.numQubits(); }

    /**
     * Content hash over topology + calibration + noise model. Two
     * devices with equal fingerprints execute circuits identically, so
     * this is the device half of every runtime cache key. Drifted
     * calibration (a new "epoch") changes the fingerprint.
     */
    std::uint64_t fingerprint() const;

    /**
     * A copy of this device with drifted calibration, modeling the
     * machine on a different experimental round. The systematic noise
     * terms stay fixed (they are device physics, not calibration), so
     * correlated errors persist across rounds as on the real machine.
     */
    Device driftedRound(Rng &rng, double drift = 0.15) const;

    /**
     * A copy of this device whose calibration took a one-sided stale
     * jump (Calibration::staleJump): the machine got worse after the
     * calibration was published. Used by the resilience layer to
     * model members executing against stale calibration data; the
     * fingerprint changes, so caches never serve the fresh tables.
     */
    Device withStaleCalibration(Rng &rng, double severity = 0.5) const;

    /** Replace the noise model (used by ablation studies). */
    Device withNoise(NoiseModel noise) const;

    /** Replace the calibration (keeping topology and noise). */
    Device withCalibration(Calibration cal) const;

    /**
     * The paper's evaluation platform: melbourne topology and
     * calibration with a correlated noise model sampled from
     * @p noise_seed. Identical seeds give identical device physics.
     */
    static Device melbourne(std::uint64_t noise_seed = 7,
                            const NoiseSpec &spec = NoiseSpec{});

    /** Ideal (noiseless) device on the melbourne topology. */
    static Device idealMelbourne();

    /** Ideal (noiseless) device on an arbitrary topology. */
    static Device ideal(std::string name, Topology topology);

    /** Generic noisy device on any topology. */
    static Device synthetic(std::string name, Topology topology,
                            const CalibrationSpec &cal_spec,
                            const NoiseSpec &noise_spec,
                            std::uint64_t seed);

  private:
    std::string name_;
    Topology topology_;
    Calibration calibration_;
    NoiseModel noise_;
};

} // namespace qedm::hw
