#include "hw/topology.hpp"

#include <algorithm>
#include <queue>
#include <set>

#include "common/error.hpp"
#include "common/hash.hpp"

namespace qedm::hw {

Topology::Topology(int num_qubits,
                   const std::vector<std::pair<int, int>> &edges)
    : numQubits_(num_qubits)
{
    QEDM_REQUIRE(num_qubits >= 1 && num_qubits <= kMaxQubits,
                 "topology qubit count must be in [1, 1024]");
    adj_.assign(num_qubits, {});
    std::set<std::pair<int, int>> seen;
    for (auto [a, b] : edges) {
        QEDM_REQUIRE(a >= 0 && a < num_qubits && b >= 0 &&
                         b < num_qubits && a != b,
                     "invalid coupling edge");
        if (a > b)
            std::swap(a, b);
        if (!seen.insert({a, b}).second)
            continue;
        edges_.push_back(Edge{a, b});
        adj_[a].push_back(b);
        adj_[b].push_back(a);
    }
    for (auto &nbrs : adj_)
        std::sort(nbrs.begin(), nbrs.end());
    std::sort(edges_.begin(), edges_.end(), [](const Edge &x,
                                               const Edge &y) {
        return std::pair(x.a, x.b) < std::pair(y.a, y.b);
    });
    adjEdge_.assign(static_cast<std::size_t>(num_qubits), {});
    for (std::size_t i = 0; i < edges_.size(); ++i) {
        adjEdge_[static_cast<std::size_t>(edges_[i].a)]
            .emplace_back(edges_[i].b, static_cast<int>(i));
        adjEdge_[static_cast<std::size_t>(edges_[i].b)]
            .emplace_back(edges_[i].a, static_cast<int>(i));
    }
    for (auto &entries : adjEdge_)
        std::sort(entries.begin(), entries.end());
    adjWords_ = (static_cast<std::size_t>(numQubits_) + 63) / 64;
    adjBits_.assign(static_cast<std::size_t>(numQubits_) * adjWords_,
                    0);
    for (const Edge &e : edges_) {
        adjBits_[static_cast<std::size_t>(e.a) * adjWords_ +
                 (static_cast<std::size_t>(e.b) >> 6)] |=
            std::uint64_t{1} << (static_cast<std::size_t>(e.b) & 63);
        adjBits_[static_cast<std::size_t>(e.b) * adjWords_ +
                 (static_cast<std::size_t>(e.a) >> 6)] |=
            std::uint64_t{1} << (static_cast<std::size_t>(e.a) & 63);
    }
    if (numQubits_ <= kEagerDistanceMaxQubits)
        computeDistances();
}

std::vector<int>
Topology::bfsFrom(int src) const
{
    std::vector<int> dist(static_cast<std::size_t>(numQubits_), -1);
    std::queue<int> q;
    dist[static_cast<std::size_t>(src)] = 0;
    q.push(src);
    while (!q.empty()) {
        const int u = q.front();
        q.pop();
        for (int v : adj_[static_cast<std::size_t>(u)]) {
            if (dist[static_cast<std::size_t>(v)] < 0) {
                dist[static_cast<std::size_t>(v)] =
                    dist[static_cast<std::size_t>(u)] + 1;
                q.push(v);
            }
        }
    }
    return dist;
}

void
Topology::computeDistances()
{
    dist_.reserve(static_cast<std::size_t>(numQubits_));
    for (int src = 0; src < numQubits_; ++src)
        dist_.push_back(bfsFrom(src));
}

bool
Topology::adjacent(int a, int b) const
{
    return edgeIndex(a, b) >= 0;
}

const std::vector<int> &
Topology::neighbors(int q) const
{
    QEDM_REQUIRE(q >= 0 && q < numQubits_, "qubit index out of range");
    return adj_[q];
}

const std::vector<std::pair<int, int>> &
Topology::neighborEdges(int q) const
{
    QEDM_REQUIRE(q >= 0 && q < numQubits_, "qubit index out of range");
    return adjEdge_[static_cast<std::size_t>(q)];
}

int
Topology::degree(int q) const
{
    return static_cast<int>(neighbors(q).size());
}

int
Topology::distance(int a, int b) const
{
    QEDM_REQUIRE(a >= 0 && a < numQubits_ && b >= 0 && b < numQubits_,
                 "qubit index out of range");
    if (!dist_.empty())
        return dist_[a][b];
    return bfsFrom(a)[static_cast<std::size_t>(b)];
}

std::vector<int>
Topology::shortestPath(int a, int b) const
{
    QEDM_REQUIRE(a >= 0 && a < numQubits_ && b >= 0 && b < numQubits_,
                 "qubit index out of range");
    // One BFS row from b serves every step of the walk; on small
    // devices the eager matrix already holds it.
    const std::vector<int> to_b = dist_.empty() ? bfsFrom(b) : dist_[b];
    if (to_b[static_cast<std::size_t>(a)] < 0)
        return {};
    std::vector<int> path{a};
    int cur = a;
    while (cur != b) {
        for (int v : adj_[cur]) {
            if (to_b[static_cast<std::size_t>(v)] ==
                to_b[static_cast<std::size_t>(cur)] - 1) {
                cur = v;
                path.push_back(v);
                break;
            }
        }
    }
    return path;
}

bool
Topology::isConnected() const
{
    const std::vector<int> from_zero =
        dist_.empty() ? bfsFrom(0) : dist_[0];
    for (int q = 1; q < numQubits_; ++q) {
        if (from_zero[static_cast<std::size_t>(q)] < 0)
            return false;
    }
    return true;
}

bool
Topology::isConnectedSubset(const std::vector<int> &qubits) const
{
    if (qubits.empty())
        return true;
    const std::set<int> subset(qubits.begin(), qubits.end());
    for (int q : subset)
        QEDM_REQUIRE(q >= 0 && q < numQubits_, "qubit index out of range");
    std::set<int> visited;
    std::queue<int> bfs;
    bfs.push(*subset.begin());
    visited.insert(*subset.begin());
    while (!bfs.empty()) {
        const int u = bfs.front();
        bfs.pop();
        for (int v : adj_[u]) {
            if (subset.count(v) && !visited.count(v)) {
                visited.insert(v);
                bfs.push(v);
            }
        }
    }
    return visited.size() == subset.size();
}

int
Topology::edgeIndex(int a, int b) const
{
    QEDM_REQUIRE(a >= 0 && a < numQubits_ && b >= 0 && b < numQubits_,
                 "qubit index out of range");
    // Binary search the per-vertex (neighbor, edge) table: O(log deg)
    // against the old O(E) scan, which dominated Dijkstra inner loops
    // on 127-qubit devices.
    const auto &entries = adjEdge_[static_cast<std::size_t>(a)];
    const auto it = std::lower_bound(
        entries.begin(), entries.end(), std::pair<int, int>{b, -1});
    if (it != entries.end() && it->first == b)
        return it->second;
    return -1;
}

Topology
Topology::linear(int n)
{
    std::vector<std::pair<int, int>> edges;
    for (int i = 0; i + 1 < n; ++i)
        edges.emplace_back(i, i + 1);
    return Topology(n, edges);
}

Topology
Topology::ring(int n)
{
    QEDM_REQUIRE(n >= 3, "a ring needs at least 3 qubits");
    std::vector<std::pair<int, int>> edges;
    for (int i = 0; i < n; ++i)
        edges.emplace_back(i, (i + 1) % n);
    return Topology(n, edges);
}

Topology
Topology::grid(int rows, int cols)
{
    QEDM_REQUIRE(rows >= 1 && cols >= 1, "grid dimensions must be >= 1");
    std::vector<std::pair<int, int>> edges;
    auto id = [cols](int r, int c) { return r * cols + c; };
    for (int r = 0; r < rows; ++r) {
        for (int c = 0; c < cols; ++c) {
            if (c + 1 < cols)
                edges.emplace_back(id(r, c), id(r, c + 1));
            if (r + 1 < rows)
                edges.emplace_back(id(r, c), id(r + 1, c));
        }
    }
    return Topology(rows * cols, edges);
}

Topology
Topology::fullyConnected(int n)
{
    std::vector<std::pair<int, int>> edges;
    for (int i = 0; i < n; ++i) {
        for (int j = i + 1; j < n; ++j)
            edges.emplace_back(i, j);
    }
    return Topology(n, edges);
}

Topology
Topology::melbourne()
{
    // ibmq-16-melbourne: top row 0..6, bottom row 13..7, six rungs.
    //
    //   0 - 1 - 2 - 3 - 4 - 5 - 6
    //       |   |   |   |   |   |
    //  13 -12 -11 -10 - 9 - 8 - 7   (bottom row runs 13..7)
    return Topology(14, {
        {0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 6},   // top row
        {13, 12}, {12, 11}, {11, 10}, {10, 9}, {9, 8}, {8, 7}, // bottom
        {1, 13}, {2, 12}, {3, 11}, {4, 10}, {5, 9}, {6, 8},    // rungs
    });
}

Topology
Topology::tokyo()
{
    // IBM Q20 Tokyo: a 4x5 grid with diagonal couplers inside most
    // plaquettes (the machine used by several mapping papers).
    return Topology(20, {
        {0, 1},   {1, 2},   {2, 3},   {3, 4},               // row 0
        {5, 6},   {6, 7},   {7, 8},   {8, 9},               // row 1
        {10, 11}, {11, 12}, {12, 13}, {13, 14},             // row 2
        {15, 16}, {16, 17}, {17, 18}, {18, 19},             // row 3
        {0, 5},   {1, 6},   {2, 7},   {3, 8},   {4, 9},     // verticals
        {5, 10},  {6, 11},  {7, 12},  {8, 13},  {9, 14},
        {10, 15}, {11, 16}, {12, 17}, {13, 18}, {14, 19},
        {1, 7},   {2, 6},   {3, 9},   {4, 8},               // diagonals
        {5, 11},  {6, 10},  {7, 13},  {8, 12},
        {11, 17}, {12, 16}, {13, 19}, {14, 18},
    });
}

Topology
Topology::heavyHex27()
{
    // 27-qubit IBM Falcon (ibmq-montreal) heavy-hex coupling map.
    return Topology(27, {
        {0, 1},   {1, 2},   {1, 4},   {2, 3},   {3, 5},
        {4, 7},   {5, 8},   {6, 7},   {7, 10},  {8, 9},
        {8, 11},  {10, 12}, {11, 14}, {12, 13}, {12, 15},
        {13, 14}, {14, 16}, {15, 18}, {16, 19}, {17, 18},
        {18, 21}, {19, 20}, {19, 22}, {21, 23}, {22, 25},
        {23, 24}, {24, 25}, {25, 26},
    });
}

Topology
Topology::heavyHex(int rows, int cols)
{
    QEDM_REQUIRE(rows >= 3 && rows % 2 == 1,
                 "heavy-hex rows must be odd and >= 3");
    QEDM_REQUIRE(cols >= 3 && cols % 4 == 3,
                 "heavy-hex cols must be congruent to 3 mod 4");
    auto colRange = [&](int r) -> std::pair<int, int> {
        if (r == 0)
            return {0, cols - 2};
        if (r == rows - 1)
            return {1, cols - 1};
        return {0, cols - 1};
    };
    // Assign ids row by row, each gap's bridge qubits right after the
    // row above it — the numbering IBM publishes for Eagle/Osprey.
    std::vector<std::vector<int>> row_id(
        static_cast<std::size_t>(rows),
        std::vector<int>(static_cast<std::size_t>(cols), -1));
    std::vector<std::vector<int>> bridge_id(
        static_cast<std::size_t>(rows - 1),
        std::vector<int>(static_cast<std::size_t>(cols), -1));
    int next = 0;
    for (int r = 0; r < rows; ++r) {
        const auto [lo, hi] = colRange(r);
        for (int c = lo; c <= hi; ++c)
            row_id[r][c] = next++;
        if (r + 1 < rows) {
            const auto [nlo, nhi] = colRange(r + 1);
            const int offset = (r % 2 == 0) ? 0 : 2;
            for (int c = offset; c < cols; c += 4) {
                if (c >= lo && c <= hi && c >= nlo && c <= nhi)
                    bridge_id[r][c] = next++;
            }
        }
    }
    std::vector<std::pair<int, int>> edges;
    for (int r = 0; r < rows; ++r) {
        const auto [lo, hi] = colRange(r);
        for (int c = lo; c < hi; ++c)
            edges.emplace_back(row_id[r][c], row_id[r][c + 1]);
    }
    for (int r = 0; r + 1 < rows; ++r) {
        for (int c = 0; c < cols; ++c) {
            if (bridge_id[r][c] >= 0) {
                edges.emplace_back(row_id[r][c], bridge_id[r][c]);
                edges.emplace_back(bridge_id[r][c], row_id[r + 1][c]);
            }
        }
    }
    return Topology(next, edges);
}

Topology
Topology::heavyHex127()
{
    return heavyHex(7, 15);
}

Topology
Topology::heavyHex433()
{
    return heavyHex(13, 27);
}

std::uint64_t
Topology::fingerprint() const
{
    Fingerprint fp(0x7090ull);
    fp.add(numQubits_).add(std::uint64_t(edges_.size()));
    for (const Edge &e : edges_)
        fp.add(e.a).add(e.b);
    return fp.value();
}

} // namespace qedm::hw
