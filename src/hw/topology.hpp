/**
 * @file
 * Device coupling graphs.
 *
 * A Topology is the undirected coupling graph of a superconducting
 * device: vertices are physical qubits, edges are coupling resonators
 * over which a CX can be executed directly. Includes the
 * ibmq-16-melbourne (14-qubit) graph used throughout the paper.
 */

#pragma once

#include <cstddef>
#include <string>
#include <cstdint>
#include <utility>
#include <vector>

namespace qedm::hw {

/** Undirected edge between two physical qubits (normalized a < b). */
struct Edge
{
    int a;
    int b;

    bool operator==(const Edge &other) const = default;
};

/** Undirected coupling graph of a quantum device. */
class Topology
{
  public:
    /** Maximum supported device size. */
    static constexpr int kMaxQubits = 1024;

    /**
     * Largest device for which the all-pairs hop-distance matrix is
     * materialized eagerly at construction. Above this, distance(),
     * shortestPath(), and isConnected() run a per-call BFS instead —
     * O(V + E) per query, no O(V^2) memory — which is what makes
     * 127/433-qubit heavy-hex topologies constructible. Hot-path
     * consumers (placement, routing) should not query per-pair hop
     * distances on large devices; they go through the
     * transpile::DistanceProvider layer instead.
     */
    static constexpr int kEagerDistanceMaxQubits = 64;

    /**
     * @param num_qubits number of physical qubits (1..kMaxQubits)
     * @param edges undirected couplings (validated, deduplicated)
     */
    Topology(int num_qubits, const std::vector<std::pair<int, int>> &edges);

    int numQubits() const { return numQubits_; }
    const std::vector<Edge> &edges() const { return edges_; }
    std::size_t numEdges() const { return edges_.size(); }

    /** True when (a, b) is a coupled pair. */
    bool adjacent(int a, int b) const;

    /** Neighbors of qubit @p q, ascending. */
    const std::vector<int> &neighbors(int q) const;

    /**
     * (neighbor, edge index) pairs of qubit @p q, sorted by neighbor —
     * the same vertices neighbors(q) yields, in the same order, with
     * the incident edge index attached. Hot loops that need both (the
     * placement search charges an edge factor per coupling it uses)
     * iterate this instead of calling edgeIndex() per neighbor.
     */
    const std::vector<std::pair<int, int>> &neighborEdges(int q) const;

    /** Structural content hash (vertex count + edge list). */
    std::uint64_t fingerprint() const;

    /** Vertex degree. */
    int degree(int q) const;

    /** Hop distance between qubits (BFS); -1 if disconnected. */
    int distance(int a, int b) const;

    /** One shortest path from @p a to @p b inclusive; empty if none. */
    std::vector<int> shortestPath(int a, int b) const;

    /** True when the whole graph is connected. */
    bool isConnected() const;

    /** True when the induced subgraph on @p qubits is connected. */
    bool isConnectedSubset(const std::vector<int> &qubits) const;

    /** Canonical index of edge (a, b); -1 when not an edge. */
    int edgeIndex(int a, int b) const;

    /** @name Adjacency bitset rows
     * One bit per (vertex, vertex) pair, packed 64 per word and built
     * at construction (O(V*V/64) memory — 24 KiB at 433 qubits). Hot
     * search loops (VF2 enumeration, placement branch-and-bound) probe
     * these instead of the O(log deg) edgeIndex() binary search. */
    /** @{ */
    /** Words per adjacency row: (numQubits() + 63) / 64. */
    std::size_t adjacencyWords() const { return adjWords_; }
    /** Bitset over the neighbors of @p q (adjacencyWords() words). */
    const std::uint64_t *adjacencyRow(int q) const
    {
        return adjBits_.data() +
               static_cast<std::size_t>(q) * adjWords_;
    }
    /** Branch-free coupling probe; same answer as adjacent(a, b). */
    bool adjacentBit(int a, int b) const
    {
        return (adjacencyRow(a)[static_cast<std::size_t>(b) >> 6] >>
                (static_cast<std::size_t>(b) & 63)) &
               1U;
    }
    /** @} */

    /** @name Standard graph factories */
    /** @{ */
    static Topology linear(int n);
    static Topology ring(int n);
    static Topology grid(int rows, int cols);
    static Topology fullyConnected(int n);
    /** The 14-qubit ibmq-16-melbourne ladder (2x7 with rungs). */
    static Topology melbourne();
    /** The 20-qubit IBM Q20 Tokyo graph (4x5 grid with diagonals). */
    static Topology tokyo();
    /** The 27-qubit IBM Falcon heavy-hex graph (ibmq-montreal). */
    static Topology heavyHex27();
    /**
     * Generic heavy-hex lattice: @p rows rows of qubits (the first row
     * drops its last column, the last row drops its first), joined by
     * bridge qubits every 4 columns with the per-gap offset
     * alternating 0/2 — the structure of IBM's Falcon/Eagle/Osprey
     * family. rows must be odd and >= 3, cols ≡ 3 (mod 4).
     */
    static Topology heavyHex(int rows, int cols);
    /** The 127-qubit IBM Eagle-class heavy-hex graph (7 x 15). */
    static Topology heavyHex127();
    /** The 433-qubit IBM Osprey-class heavy-hex graph (13 x 27). */
    static Topology heavyHex433();
    /** @} */

  private:
    void computeDistances();
    std::vector<int> bfsFrom(int src) const;

    int numQubits_;
    std::vector<Edge> edges_;
    std::vector<std::vector<int>> adj_;
    /** Per-vertex (neighbor, edge index) pairs, sorted by neighbor. */
    std::vector<std::vector<std::pair<int, int>>> adjEdge_;
    /** Flat adjacency bitset: numQubits rows of adjWords_ words. */
    std::vector<std::uint64_t> adjBits_;
    std::size_t adjWords_ = 0;
    /** All-pairs hop distances; empty above kEagerDistanceMaxQubits. */
    std::vector<std::vector<int>> dist_;
};

} // namespace qedm::hw
