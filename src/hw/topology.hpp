/**
 * @file
 * Device coupling graphs.
 *
 * A Topology is the undirected coupling graph of a superconducting
 * device: vertices are physical qubits, edges are coupling resonators
 * over which a CX can be executed directly. Includes the
 * ibmq-16-melbourne (14-qubit) graph used throughout the paper.
 */

#pragma once

#include <cstddef>
#include <string>
#include <cstdint>
#include <utility>
#include <vector>

namespace qedm::hw {

/** Undirected edge between two physical qubits (normalized a < b). */
struct Edge
{
    int a;
    int b;

    bool operator==(const Edge &other) const = default;
};

/** Undirected coupling graph of a quantum device. */
class Topology
{
  public:
    /**
     * @param num_qubits number of physical qubits (1..64)
     * @param edges undirected couplings (validated, deduplicated)
     */
    Topology(int num_qubits, const std::vector<std::pair<int, int>> &edges);

    int numQubits() const { return numQubits_; }
    const std::vector<Edge> &edges() const { return edges_; }
    std::size_t numEdges() const { return edges_.size(); }

    /** True when (a, b) is a coupled pair. */
    bool adjacent(int a, int b) const;

    /** Neighbors of qubit @p q, ascending. */
    const std::vector<int> &neighbors(int q) const;

    /** Structural content hash (vertex count + edge list). */
    std::uint64_t fingerprint() const;

    /** Vertex degree. */
    int degree(int q) const;

    /** Hop distance between qubits (BFS); -1 if disconnected. */
    int distance(int a, int b) const;

    /** One shortest path from @p a to @p b inclusive; empty if none. */
    std::vector<int> shortestPath(int a, int b) const;

    /** True when the whole graph is connected. */
    bool isConnected() const;

    /** True when the induced subgraph on @p qubits is connected. */
    bool isConnectedSubset(const std::vector<int> &qubits) const;

    /** Canonical index of edge (a, b); -1 when not an edge. */
    int edgeIndex(int a, int b) const;

    /** @name Standard graph factories */
    /** @{ */
    static Topology linear(int n);
    static Topology ring(int n);
    static Topology grid(int rows, int cols);
    static Topology fullyConnected(int n);
    /** The 14-qubit ibmq-16-melbourne ladder (2x7 with rungs). */
    static Topology melbourne();
    /** The 20-qubit IBM Q20 Tokyo graph (4x5 grid with diagonals). */
    static Topology tokyo();
    /** The 27-qubit IBM Falcon heavy-hex graph (ibmq-montreal). */
    static Topology heavyHex27();
    /** @} */

  private:
    void computeDistances();

    int numQubits_;
    std::vector<Edge> edges_;
    std::vector<std::vector<int>> adj_;
    std::vector<std::vector<int>> dist_;
};

} // namespace qedm::hw
