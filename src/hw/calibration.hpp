/**
 * @file
 * Per-device error characterization data.
 *
 * Mirrors the data IBM publishes after every calibration cycle and
 * that variation-aware mappers consume (Section 2.4): per-qubit
 * single-qubit gate error, readout error (with state-dependent bias),
 * T1/T2 times, and per-edge CX error. Includes a drift model so
 * successive experimental "rounds" see slightly different rates, as on
 * the real machine (Section 4.2).
 */

#pragma once

#include <vector>

#include "common/rng.hpp"
#include "hw/topology.hpp"

namespace qedm::hw {

/** Calibration record for one physical qubit. */
struct QubitCalibration
{
    double error1q = 1e-3;    ///< single-qubit gate error probability
    double readoutP01 = 0.02; ///< P(read 1 | prepared 0)
    double readoutP10 = 0.05; ///< P(read 0 | prepared 1), biased higher
    double t1Us = 50.0;       ///< relaxation time, microseconds
    double t2Us = 30.0;       ///< dephasing time, microseconds

    /** Symmetrized average readout error. */
    double readoutError() const { return 0.5 * (readoutP01 + readoutP10); }
};

/** Calibration record for one coupled pair. */
struct EdgeCalibration
{
    double cxError = 0.03; ///< two-qubit gate error probability
};

/** Random-spread parameters used to synthesize a calibration. */
struct CalibrationSpec
{
    double meanError1q = 1.0e-3;
    double meanCxError = 0.03;
    double meanReadoutError = 0.06;
    /** Multiplicative log-normal spread (sigma of ln rate). */
    double spread = 0.5;
    /** Readout bias factor: p10 = bias * p01 on average. */
    double readoutBias = 2.0;
    double meanT1Us = 50.0;
    double meanT2Us = 30.0;
};

/** Full calibration table for a device. */
class Calibration
{
  public:
    /** All-default (uniform) calibration for @p topology. */
    explicit Calibration(const Topology &topology);

    /** Synthesize a spread calibration from @p spec. */
    static Calibration sample(const Topology &topology,
                              const CalibrationSpec &spec, Rng &rng);

    /**
     * The hand-tuned IBMQ-14 melbourne-like table used by the paper
     * reproduction: realistic variation (CX 1.5%..9%, readout 1.5%..30%)
     * with two very noisy readout qubits (Q11, Q12; footnote 3).
     */
    static Calibration melbourne();

    std::size_t numQubits() const { return qubits_.size(); }
    std::size_t numEdges() const { return edges_.size(); }

    const QubitCalibration &qubit(int q) const;
    QubitCalibration &qubit(int q);

    /** Edge record by canonical edge index (Topology::edgeIndex). */
    const EdgeCalibration &edge(std::size_t idx) const;
    EdgeCalibration &edge(std::size_t idx);

    /**
     * A drifted copy: every rate is multiplied by an independent
     * log-normal factor exp(drift * N(0,1)); T1/T2 get the inverse
     * treatment. Models calibration change between rounds.
     */
    Calibration drifted(Rng &rng, double drift = 0.15) const;

    /**
     * A stale-jump copy: the machine degraded *after* the published
     * calibration, so every rate is multiplied by a one-sided
     * log-normal factor exp(|severity * N(0,1)|) >= 1 and T1/T2 only
     * shrink. Unlike drifted(), the perturbation is strictly
     * pessimistic — this models running against stale calibration
     * data between cycles (the resilience layer's staleness fault),
     * layered on top of the per-round drift model.
     */
    Calibration staleJump(Rng &rng, double severity = 0.5) const;

    /**
     * Content hash over every calibration value. Drift produces a new
     * fingerprint, which is exactly what invalidates runtime cache
     * entries keyed on calibration identity ("epoch").
     */
    std::uint64_t fingerprint() const;

    /** Mean CX error over all edges. */
    double meanCxError() const;

    /** Mean (symmetrized) readout error over all qubits. */
    double meanReadoutError() const;

  private:
    std::vector<QubitCalibration> qubits_;
    std::vector<EdgeCalibration> edges_;
};

} // namespace qedm::hw
