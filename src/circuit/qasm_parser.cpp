#include "circuit/qasm_parser.hpp"

#include <cctype>
#include <map>
#include <optional>
#include <sstream>
#include <vector>

#include "common/error.hpp"

namespace qedm::circuit {
namespace {

/** Throw a UserError pointing at the offending line. */
[[noreturn]] void
fail(const std::string &line, const std::string &why)
{
    throw UserError("QASM parse error: " + why + " in line: `" + line +
                    "`");
}

std::string
strip(const std::string &s)
{
    std::size_t b = 0, e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b])))
        ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])))
        --e;
    return s.substr(b, e - b);
}

/** Parse "q[<idx>]" and return idx. */
int
parseIndexedRef(const std::string &line, const std::string &token,
                char reg)
{
    const std::string t = strip(token);
    if (t.size() < 4 || t[0] != reg || t[1] != '[' || t.back() != ']')
        fail(line, "expected " + std::string(1, reg) + "[<index>]");
    try {
        return std::stoi(t.substr(2, t.size() - 3));
    } catch (const std::exception &) {
        fail(line, "bad register index");
    }
}

std::vector<std::string>
splitOn(const std::string &s, char sep)
{
    std::vector<std::string> parts;
    std::string cur;
    for (char ch : s) {
        if (ch == sep) {
            parts.push_back(cur);
            cur.clear();
        } else {
            cur += ch;
        }
    }
    parts.push_back(cur);
    return parts;
}

const std::map<std::string, OpKind> &
mnemonics()
{
    static const std::map<std::string, OpKind> table{
        {"id", OpKind::I},    {"x", OpKind::X},
        {"y", OpKind::Y},     {"z", OpKind::Z},
        {"h", OpKind::H},     {"s", OpKind::S},
        {"sdg", OpKind::Sdg}, {"t", OpKind::T},
        {"tdg", OpKind::Tdg}, {"rx", OpKind::Rx},
        {"ry", OpKind::Ry},   {"rz", OpKind::Rz},
        {"cx", OpKind::Cx},   {"cz", OpKind::Cz},
        {"swap", OpKind::Swap}, {"ccx", OpKind::Ccx},
        {"cswap", OpKind::Cswap},
    };
    return table;
}

} // namespace

Circuit
parseQasm(const std::string &text)
{
    std::istringstream in(text);
    std::string raw;
    std::optional<Circuit> circuit;
    int num_qubits = -1;
    int num_clbits = 0;
    std::vector<Gate> pending;

    auto ensureRegisters = [&]() {
        if (!circuit) {
            QEDM_REQUIRE(num_qubits > 0,
                         "QASM parse error: qreg must precede gates");
            circuit.emplace(num_qubits, num_clbits);
        }
    };

    while (std::getline(in, raw)) {
        std::string line = raw;
        const auto comment = line.find("//");
        if (comment != std::string::npos)
            line = line.substr(0, comment);
        line = strip(line);
        if (line.empty())
            continue;
        if (line.rfind("OPENQASM", 0) == 0 ||
            line.rfind("include", 0) == 0) {
            continue;
        }
        if (line.back() != ';')
            fail(raw, "missing `;`");
        line.pop_back();
        line = strip(line);

        if (line.rfind("qreg", 0) == 0) {
            if (num_qubits >= 0)
                fail(raw, "duplicate qreg");
            num_qubits = parseIndexedRef(raw, strip(line.substr(4)),
                                         'q');
            continue;
        }
        if (line.rfind("creg", 0) == 0) {
            if (circuit)
                fail(raw, "creg must precede gates");
            num_clbits = parseIndexedRef(raw, strip(line.substr(4)),
                                         'c');
            continue;
        }
        if (line.rfind("barrier", 0) == 0) {
            ensureRegisters();
            circuit->barrier();
            continue;
        }
        if (line.rfind("measure", 0) == 0) {
            ensureRegisters();
            const auto arrow = line.find("->");
            if (arrow == std::string::npos)
                fail(raw, "measure needs `->`");
            const int q = parseIndexedRef(
                raw, strip(line.substr(7, arrow - 7)), 'q');
            const int c = parseIndexedRef(
                raw, strip(line.substr(arrow + 2)), 'c');
            circuit->measure(q, c);
            continue;
        }

        // Gate line: mnemonic[(params)] q[a][,q[b]...]
        std::size_t name_end = 0;
        while (name_end < line.size() &&
               (std::isalnum(static_cast<unsigned char>(
                    line[name_end])) ||
                line[name_end] == '_')) {
            ++name_end;
        }
        const std::string name = line.substr(0, name_end);
        const auto it = mnemonics().find(name);
        if (it == mnemonics().end())
            fail(raw, "unknown gate `" + name + "`");

        std::string rest = strip(line.substr(name_end));
        std::vector<double> params;
        if (!rest.empty() && rest.front() == '(') {
            const auto close = rest.find(')');
            if (close == std::string::npos)
                fail(raw, "unterminated parameter list");
            for (const std::string &p :
                 splitOn(rest.substr(1, close - 1), ',')) {
                try {
                    params.push_back(std::stod(strip(p)));
                } catch (const std::exception &) {
                    fail(raw, "bad gate parameter");
                }
            }
            rest = strip(rest.substr(close + 1));
        }
        std::vector<int> qubits;
        for (const std::string &operand : splitOn(rest, ','))
            qubits.push_back(parseIndexedRef(raw, operand, 'q'));

        ensureRegisters();
        Gate gate{it->second, std::move(qubits), std::move(params), -1};
        try {
            circuit->append(std::move(gate));
        } catch (const UserError &e) {
            fail(raw, e.what());
        }
    }
    QEDM_REQUIRE(circuit.has_value(),
                 "QASM parse error: no qreg declaration found");
    return *circuit;
}

} // namespace qedm::circuit
