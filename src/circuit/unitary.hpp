/**
 * @file
 * Dense unitary composition for small circuits.
 *
 * Used by tests and by the ideal-machine reference: composing a
 * circuit's unitary lets us check that decompositions (SWAP -> 3 CX,
 * Toffoli network) and the simulators preserve semantics exactly.
 */

#pragma once

#include <complex>
#include <vector>

#include "circuit/circuit.hpp"

namespace qedm::circuit {

/**
 * Dense 2^n x 2^n complex matrix, row-major, with qubit 0 as the least
 * significant bit of the basis index.
 */
class Unitary
{
  public:
    /** Identity on @p num_qubits qubits (1..10). */
    explicit Unitary(int num_qubits);

    int numQubits() const { return numQubits_; }
    std::size_t dim() const { return dim_; }

    Complex at(std::size_t row, std::size_t col) const;
    void set(std::size_t row, std::size_t col, Complex v);

    /** Left-multiply by the given 1-qubit gate on qubit @p q. */
    void applyGate1q(const std::array<Complex, 4> &m, int q);

    /** Left-multiply by the given 2-qubit gate on (q0, q1); q0 is the
     *  most-significant operand, matching gateMatrix2q(). */
    void applyGate2q(const std::array<Complex, 16> &m, int q0, int q1);

    /** Max |this[i][j] - other[i][j]| ignoring a global phase. */
    double distanceUpToGlobalPhase(const Unitary &other) const;

    /** True when this is unitary within @p tol (U U^dagger = I). */
    bool isUnitary(double tol = 1e-9) const;

  private:
    int numQubits_;
    std::size_t dim_;
    std::vector<Complex> m_;
};

/**
 * Compose the unitary of @p circuit. The circuit must contain only
 * unitary gates (no Measure); Barriers are skipped. Ccx/Cswap are
 * decomposed first.
 */
Unitary circuitUnitary(const Circuit &circuit);

} // namespace qedm::circuit
