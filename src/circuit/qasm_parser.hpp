/**
 * @file
 * Parser for the OpenQASM-2 subset emitted by Circuit::toQasm().
 *
 * Supports: the OPENQASM/include headers, one `qreg q[...]` and one
 * optional `creg c[...]`, all gate mnemonics of the qedm gate set
 * (with parenthesized parameters for rotations), `measure q[i] ->
 * c[j];`, and `barrier`. Whitespace-insensitive; `//` comments are
 * ignored. Circuit::toQasm() followed by parseQasm() is an exact
 * round trip.
 */

#pragma once

#include <string>

#include "circuit/circuit.hpp"

namespace qedm::circuit {

/**
 * Parse @p text into a Circuit.
 * @throws qedm::UserError on any syntax or semantic error, with the
 *         offending line in the message.
 */
Circuit parseQasm(const std::string &text);

} // namespace qedm::circuit
