#include "circuit/op.hpp"

#include <cmath>
#include <numbers>

#include "common/error.hpp"

namespace qedm::circuit {
namespace {

constexpr Complex kI(0.0, 1.0);

} // namespace

std::string
opName(OpKind kind)
{
    switch (kind) {
      case OpKind::I: return "id";
      case OpKind::X: return "x";
      case OpKind::Y: return "y";
      case OpKind::Z: return "z";
      case OpKind::H: return "h";
      case OpKind::S: return "s";
      case OpKind::Sdg: return "sdg";
      case OpKind::T: return "t";
      case OpKind::Tdg: return "tdg";
      case OpKind::Rx: return "rx";
      case OpKind::Ry: return "ry";
      case OpKind::Rz: return "rz";
      case OpKind::Cx: return "cx";
      case OpKind::Cz: return "cz";
      case OpKind::Swap: return "swap";
      case OpKind::Ccx: return "ccx";
      case OpKind::Cswap: return "cswap";
      case OpKind::Measure: return "measure";
      case OpKind::Barrier: return "barrier";
    }
    throw InternalError("opName: unknown OpKind");
}

int
opArity(OpKind kind)
{
    switch (kind) {
      case OpKind::I:
      case OpKind::X:
      case OpKind::Y:
      case OpKind::Z:
      case OpKind::H:
      case OpKind::S:
      case OpKind::Sdg:
      case OpKind::T:
      case OpKind::Tdg:
      case OpKind::Rx:
      case OpKind::Ry:
      case OpKind::Rz:
      case OpKind::Measure:
        return 1;
      case OpKind::Cx:
      case OpKind::Cz:
      case OpKind::Swap:
        return 2;
      case OpKind::Ccx:
      case OpKind::Cswap:
        return 3;
      case OpKind::Barrier:
        return 0;
    }
    throw InternalError("opArity: unknown OpKind");
}

int
opParamCount(OpKind kind)
{
    switch (kind) {
      case OpKind::Rx:
      case OpKind::Ry:
      case OpKind::Rz:
        return 1;
      default:
        return 0;
    }
}

bool
opIsUnitary(OpKind kind)
{
    return kind != OpKind::Measure && kind != OpKind::Barrier;
}

bool
opIsTwoQubit(OpKind kind)
{
    return opIsUnitary(kind) && opArity(kind) == 2;
}

std::array<Complex, 4>
gateMatrix1q(OpKind kind, const std::vector<double> &params)
{
    QEDM_REQUIRE(static_cast<int>(params.size()) == opParamCount(kind),
                 "wrong number of gate parameters");
    const double inv_sqrt2 = 1.0 / std::sqrt(2.0);
    switch (kind) {
      case OpKind::I:
        return {1, 0, 0, 1};
      case OpKind::X:
        return {0, 1, 1, 0};
      case OpKind::Y:
        return {0, -kI, kI, 0};
      case OpKind::Z:
        return {1, 0, 0, -1};
      case OpKind::H:
        return {inv_sqrt2, inv_sqrt2, inv_sqrt2, -inv_sqrt2};
      case OpKind::S:
        return {1, 0, 0, kI};
      case OpKind::Sdg:
        return {1, 0, 0, -kI};
      case OpKind::T:
        return {1, 0, 0, std::exp(kI * (std::numbers::pi / 4.0))};
      case OpKind::Tdg:
        return {1, 0, 0, std::exp(-kI * (std::numbers::pi / 4.0))};
      case OpKind::Rx: {
        const double t = params[0] / 2.0;
        return {std::cos(t), -kI * std::sin(t),
                -kI * std::sin(t), std::cos(t)};
      }
      case OpKind::Ry: {
        const double t = params[0] / 2.0;
        return {Complex(std::cos(t)), Complex(-std::sin(t)),
                Complex(std::sin(t)), Complex(std::cos(t))};
      }
      case OpKind::Rz: {
        const double t = params[0] / 2.0;
        return {std::exp(-kI * t), 0, 0, std::exp(kI * t)};
      }
      default:
        throw UserError("gateMatrix1q: `" + opName(kind) +
                        "` is not a single-qubit unitary");
    }
}

std::array<Complex, 16>
gateMatrix2q(OpKind kind)
{
    switch (kind) {
      case OpKind::Cx:
        // Operand 0 (control) is the most-significant factor.
        return {1, 0, 0, 0,
                0, 1, 0, 0,
                0, 0, 0, 1,
                0, 0, 1, 0};
      case OpKind::Cz:
        return {1, 0, 0, 0,
                0, 1, 0, 0,
                0, 0, 1, 0,
                0, 0, 0, -1};
      case OpKind::Swap:
        return {1, 0, 0, 0,
                0, 0, 1, 0,
                0, 1, 0, 0,
                0, 0, 0, 1};
      default:
        throw UserError("gateMatrix2q: `" + opName(kind) +
                        "` is not a two-qubit unitary");
    }
}

} // namespace qedm::circuit
