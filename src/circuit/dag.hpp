/**
 * @file
 * Dependency analysis over a Circuit's gate list.
 *
 * Two gates conflict when they share a qubit (or, for Measure, the same
 * classical bit). The DAG exposes ASAP layers, which back the depth
 * metric, scheduling visualizations, and transpiler look-ahead.
 */

#pragma once

#include <cstddef>
#include <vector>

#include "circuit/circuit.hpp"

namespace qedm::circuit {

/** Immutable dependency DAG built from a Circuit. */
class CircuitDag
{
  public:
    explicit CircuitDag(const Circuit &circuit);

    /** Number of non-barrier gates (DAG nodes). */
    std::size_t size() const { return nodeGateIndex_.size(); }

    /** Gate index (into circuit.gates()) of DAG node @p node. */
    std::size_t gateIndex(std::size_t node) const;

    /** Direct predecessors of @p node. */
    const std::vector<std::size_t> &predecessors(std::size_t node) const;

    /** Direct successors of @p node. */
    const std::vector<std::size_t> &successors(std::size_t node) const;

    /**
     * ASAP layers: layer L contains nodes whose predecessors are all in
     * layers < L. Layer count equals the circuit depth.
     */
    const std::vector<std::vector<std::size_t>> &layers() const
    {
        return layers_;
    }

    /** Nodes with no predecessors (the initial front layer). */
    std::vector<std::size_t> frontLayer() const;

    /** Length of the longest dependency chain (== circuit depth). */
    int criticalPathLength() const
    {
        return static_cast<int>(layers_.size());
    }

  private:
    std::vector<std::size_t> nodeGateIndex_;
    std::vector<std::vector<std::size_t>> preds_;
    std::vector<std::vector<std::size_t>> succs_;
    std::vector<std::vector<std::size_t>> layers_;
};

} // namespace qedm::circuit
