/**
 * @file
 * Gate vocabulary: operation kinds, their metadata, and their matrices.
 *
 * The gate set covers what the paper's benchmarks need (Clifford+T
 * single-qubit gates, rotations for QAOA, CX/CZ/SWAP two-qubit gates)
 * plus measurement and barriers.
 */

#pragma once

#include <array>
#include <complex>
#include <string>
#include <vector>

namespace qedm::circuit {

using Complex = std::complex<double>;

/** Operation kinds supported by the IR. */
enum class OpKind
{
    // Single-qubit unitaries.
    I,
    X,
    Y,
    Z,
    H,
    S,
    Sdg,
    T,
    Tdg,
    Rx,
    Ry,
    Rz,
    // Two-qubit unitaries.
    Cx,
    Cz,
    Swap,
    // Three-qubit unitaries (decomposable; kept for benchmark sources).
    Ccx,
    Cswap,
    // Non-unitary / structural.
    Measure,
    Barrier,
};

/** Short mnemonic ("cx", "rz", ...). */
std::string opName(OpKind kind);

/** Number of qubit operands (0 for Barrier). */
int opArity(OpKind kind);

/** Number of rotation-angle parameters. */
int opParamCount(OpKind kind);

/** True for unitary gates (everything except Measure/Barrier). */
bool opIsUnitary(OpKind kind);

/** True for unitary gates on exactly two qubits. */
bool opIsTwoQubit(OpKind kind);

/**
 * 2x2 matrix of a single-qubit gate, row-major.
 * @param params rotation angles when the gate is parametric.
 */
std::array<Complex, 4> gateMatrix1q(OpKind kind,
                                    const std::vector<double> &params);

/**
 * 4x4 matrix of a two-qubit gate, row-major, with operand 0 as the
 * most-significant (leftmost) tensor factor: basis order
 * |q0 q1> = |00>, |01>, |10>, |11>.
 */
std::array<Complex, 16> gateMatrix2q(OpKind kind);

} // namespace qedm::circuit
