#include "circuit/circuit.hpp"

#include <algorithm>
#include <set>
#include <sstream>

#include "common/error.hpp"
#include "common/hash.hpp"

namespace qedm::circuit {

Circuit::Circuit(int num_qubits, int num_clbits)
    : numQubits_(num_qubits),
      numClbits_(num_clbits < 0 ? num_qubits : num_clbits)
{
    QEDM_REQUIRE(num_qubits >= 1 && num_qubits <= 64,
                 "circuit qubit count must be in [1, 64]");
    QEDM_REQUIRE(numClbits_ >= 0 && numClbits_ <= 20,
                 "circuit clbit count must be in [0, 20]");
}

void
Circuit::checkQubit(int q) const
{
    QEDM_REQUIRE(q >= 0 && q < numQubits_, "qubit index out of range");
}

void
Circuit::checkClbit(int c) const
{
    QEDM_REQUIRE(c >= 0 && c < numClbits_, "clbit index out of range");
}

Circuit &
Circuit::append(Gate gate)
{
    if (gate.kind != OpKind::Barrier) {
        QEDM_REQUIRE(static_cast<int>(gate.qubits.size()) ==
                         opArity(gate.kind),
                     "wrong operand count for " + opName(gate.kind));
    }
    QEDM_REQUIRE(static_cast<int>(gate.params.size()) ==
                     opParamCount(gate.kind),
                 "wrong parameter count for " + opName(gate.kind));
    std::set<int> seen;
    for (int q : gate.qubits) {
        checkQubit(q);
        QEDM_REQUIRE(seen.insert(q).second,
                     "gate operands must be distinct qubits");
    }
    if (gate.kind == OpKind::Measure) {
        checkClbit(gate.clbit);
    } else {
        QEDM_REQUIRE(gate.clbit == -1,
                     "only Measure writes a classical bit");
    }
    gates_.push_back(std::move(gate));
    return *this;
}

Circuit &
Circuit::add1q(OpKind kind, int q)
{
    return append(Gate{kind, {q}, {}, -1});
}

Circuit &
Circuit::rx(double theta, int q)
{
    return append(Gate{OpKind::Rx, {q}, {theta}, -1});
}

Circuit &
Circuit::ry(double theta, int q)
{
    return append(Gate{OpKind::Ry, {q}, {theta}, -1});
}

Circuit &
Circuit::rz(double theta, int q)
{
    return append(Gate{OpKind::Rz, {q}, {theta}, -1});
}

Circuit &
Circuit::cx(int control, int target)
{
    return append(Gate{OpKind::Cx, {control, target}, {}, -1});
}

Circuit &
Circuit::cz(int a, int b)
{
    return append(Gate{OpKind::Cz, {a, b}, {}, -1});
}

Circuit &
Circuit::swap(int a, int b)
{
    return append(Gate{OpKind::Swap, {a, b}, {}, -1});
}

Circuit &
Circuit::ccx(int c0, int c1, int target)
{
    return append(Gate{OpKind::Ccx, {c0, c1, target}, {}, -1});
}

Circuit &
Circuit::cswap(int control, int a, int b)
{
    return append(Gate{OpKind::Cswap, {control, a, b}, {}, -1});
}

Circuit &
Circuit::measure(int q, int c)
{
    Gate g{OpKind::Measure, {q}, {}, c};
    return append(std::move(g));
}

Circuit &
Circuit::measureAll()
{
    QEDM_REQUIRE(numClbits_ <= numQubits_,
                 "measureAll needs clbits <= qubits");
    for (int i = 0; i < numClbits_; ++i)
        measure(i, i);
    return *this;
}

Circuit &
Circuit::barrier()
{
    return append(Gate{OpKind::Barrier, {}, {}, -1});
}

GateCounts
Circuit::countGates() const
{
    GateCounts c;
    for (const auto &g : gates_) {
        switch (g.kind) {
          case OpKind::Measure:
            c.measure += 1;
            break;
          case OpKind::Barrier:
            break;
          case OpKind::Swap:
            c.twoQubit += 3; // decomposes to 3 CX on hardware
            break;
          case OpKind::Ccx:
            // Standard decomposition: 6 CX + 9 single-qubit gates.
            c.twoQubit += 6;
            c.singleQubit += 9;
            break;
          case OpKind::Cswap:
            // cswap = cx + ccx + cx.
            c.twoQubit += 8;
            c.singleQubit += 9;
            break;
          default:
            if (opArity(g.kind) == 1)
                c.singleQubit += 1;
            else
                c.twoQubit += 1;
        }
    }
    return c;
}

int
Circuit::depth() const
{
    std::vector<int> busy_until(numQubits_, 0);
    int depth = 0;
    for (const auto &g : gates_) {
        if (g.kind == OpKind::Barrier)
            continue;
        int start = 0;
        for (int q : g.qubits)
            start = std::max(start, busy_until[q]);
        const int end = start + 1;
        for (int q : g.qubits)
            busy_until[q] = end;
        depth = std::max(depth, end);
    }
    return depth;
}

int
Circuit::activeQubitCount() const
{
    std::set<int> used;
    for (const auto &g : gates_)
        used.insert(g.qubits.begin(), g.qubits.end());
    return static_cast<int>(used.size());
}

Circuit
Circuit::remapQubits(const std::vector<int> &qubit_map,
                     int new_num_qubits) const
{
    QEDM_REQUIRE(static_cast<int>(qubit_map.size()) == numQubits_,
                 "qubit map must cover every register qubit");
    std::set<int> targets;
    for (int t : qubit_map) {
        QEDM_REQUIRE(t >= 0 && t < new_num_qubits,
                     "qubit map target out of range");
        QEDM_REQUIRE(targets.insert(t).second,
                     "qubit map targets must be distinct");
    }
    Circuit out(new_num_qubits, numClbits_);
    for (Gate g : gates_) {
        for (int &q : g.qubits)
            q = qubit_map[q];
        out.append(std::move(g));
    }
    return out;
}

Circuit
Circuit::decomposed() const
{
    Circuit out(numQubits_, numClbits_);
    for (const Gate &g : gates_) {
        switch (g.kind) {
          case OpKind::Swap: {
            const int a = g.qubits[0], b = g.qubits[1];
            out.cx(a, b).cx(b, a).cx(a, b);
            break;
          }
          case OpKind::Ccx: {
            const int a = g.qubits[0], b = g.qubits[1], c = g.qubits[2];
            out.h(c)
                .cx(b, c).tdg(c).cx(a, c).t(c)
                .cx(b, c).tdg(c).cx(a, c).t(b).t(c)
                .h(c).cx(a, b).t(a).tdg(b).cx(a, b);
            break;
          }
          case OpKind::Cswap: {
            const int c = g.qubits[0], a = g.qubits[1], b = g.qubits[2];
            // cswap(c; a, b) = cx(b, a) . ccx(c, a, b) . cx(b, a)
            out.cx(b, a);
            Circuit inner(numQubits_, numClbits_);
            inner.ccx(c, a, b);
            const Circuit inner_flat = inner.decomposed();
            for (const Gate &ig : inner_flat.gates())
                out.append(ig);
            out.cx(b, a);
            break;
          }
          default:
            out.append(g);
        }
    }
    return out;
}

std::string
Circuit::toQasm() const
{
    std::ostringstream os;
    os << "OPENQASM 2.0;\n"
       << "include \"qelib1.inc\";\n"
       << "qreg q[" << numQubits_ << "];\n";
    if (numClbits_ > 0)
        os << "creg c[" << numClbits_ << "];\n";
    for (const auto &g : gates_) {
        if (g.kind == OpKind::Barrier) {
            os << "barrier q;\n";
            continue;
        }
        if (g.kind == OpKind::Measure) {
            os << "measure q[" << g.qubits[0] << "] -> c[" << g.clbit
               << "];\n";
            continue;
        }
        os << opName(g.kind);
        if (!g.params.empty()) {
            os << "(";
            for (std::size_t i = 0; i < g.params.size(); ++i) {
                if (i)
                    os << ",";
                os << g.params[i];
            }
            os << ")";
        }
        os << " ";
        for (std::size_t i = 0; i < g.qubits.size(); ++i) {
            if (i)
                os << ",";
            os << "q[" << g.qubits[i] << "]";
        }
        os << ";\n";
    }
    return os.str();
}

std::uint64_t
Circuit::fingerprint() const
{
    Fingerprint fp(0xC19C517ull);
    fp.add(numQubits_).add(numClbits_).add(std::uint64_t(gates_.size()));
    for (const Gate &g : gates_) {
        fp.add(static_cast<int>(g.kind));
        fp.addRange(g.qubits);
        fp.addRange(g.params);
        fp.add(g.clbit);
    }
    return fp.value();
}

} // namespace qedm::circuit
