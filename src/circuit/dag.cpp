#include "circuit/dag.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace qedm::circuit {

CircuitDag::CircuitDag(const Circuit &circuit)
{
    const auto &gates = circuit.gates();
    for (std::size_t gi = 0; gi < gates.size(); ++gi) {
        if (gates[gi].kind != OpKind::Barrier)
            nodeGateIndex_.push_back(gi);
    }
    const std::size_t n = nodeGateIndex_.size();
    preds_.assign(n, {});
    succs_.assign(n, {});

    // last_writer[q] = most recent node touching qubit q;
    // last_measure[c] = most recent node writing clbit c.
    std::vector<int> last_qubit(circuit.numQubits(), -1);
    std::vector<int> last_clbit(std::max(circuit.numClbits(), 1), -1);

    for (std::size_t node = 0; node < n; ++node) {
        const Gate &g = gates[nodeGateIndex_[node]];
        auto link = [&](int prev) {
            if (prev >= 0) {
                auto &s = succs_[prev];
                if (std::find(s.begin(), s.end(), node) == s.end()) {
                    s.push_back(node);
                    preds_[node].push_back(
                        static_cast<std::size_t>(prev));
                }
            }
        };
        for (int q : g.qubits) {
            link(last_qubit[q]);
            last_qubit[q] = static_cast<int>(node);
        }
        if (g.kind == OpKind::Measure) {
            link(last_clbit[g.clbit]);
            last_clbit[g.clbit] = static_cast<int>(node);
        }
    }

    // ASAP layering.
    std::vector<int> layer_of(n, 0);
    int max_layer = -1;
    for (std::size_t node = 0; node < n; ++node) {
        int layer = 0;
        for (std::size_t p : preds_[node])
            layer = std::max(layer, layer_of[p] + 1);
        layer_of[node] = layer;
        max_layer = std::max(max_layer, layer);
    }
    layers_.assign(static_cast<std::size_t>(max_layer + 1), {});
    for (std::size_t node = 0; node < n; ++node)
        layers_[layer_of[node]].push_back(node);
}

std::size_t
CircuitDag::gateIndex(std::size_t node) const
{
    QEDM_REQUIRE(node < nodeGateIndex_.size(), "DAG node out of range");
    return nodeGateIndex_[node];
}

const std::vector<std::size_t> &
CircuitDag::predecessors(std::size_t node) const
{
    QEDM_REQUIRE(node < preds_.size(), "DAG node out of range");
    return preds_[node];
}

const std::vector<std::size_t> &
CircuitDag::successors(std::size_t node) const
{
    QEDM_REQUIRE(node < succs_.size(), "DAG node out of range");
    return succs_[node];
}

std::vector<std::size_t>
CircuitDag::frontLayer() const
{
    return layers_.empty() ? std::vector<std::size_t>{} : layers_.front();
}

} // namespace qedm::circuit
