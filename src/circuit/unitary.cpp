#include "circuit/unitary.hpp"

#include <cmath>

#include "common/error.hpp"

namespace qedm::circuit {

Unitary::Unitary(int num_qubits)
    : numQubits_(num_qubits), dim_(std::size_t(1) << num_qubits)
{
    QEDM_REQUIRE(num_qubits >= 1 && num_qubits <= 10,
                 "dense unitaries are limited to 10 qubits");
    m_.assign(dim_ * dim_, Complex(0.0));
    for (std::size_t i = 0; i < dim_; ++i)
        m_[i * dim_ + i] = Complex(1.0);
}

Complex
Unitary::at(std::size_t row, std::size_t col) const
{
    QEDM_REQUIRE(row < dim_ && col < dim_, "unitary index out of range");
    return m_[row * dim_ + col];
}

void
Unitary::set(std::size_t row, std::size_t col, Complex v)
{
    QEDM_REQUIRE(row < dim_ && col < dim_, "unitary index out of range");
    m_[row * dim_ + col] = v;
}

void
Unitary::applyGate1q(const std::array<Complex, 4> &g, int q)
{
    QEDM_REQUIRE(q >= 0 && q < numQubits_, "qubit index out of range");
    const std::size_t mask = std::size_t(1) << q;
    for (std::size_t col = 0; col < dim_; ++col) {
        for (std::size_t row = 0; row < dim_; ++row) {
            if (row & mask)
                continue;
            const std::size_t r0 = row;
            const std::size_t r1 = row | mask;
            const Complex a = m_[r0 * dim_ + col];
            const Complex b = m_[r1 * dim_ + col];
            m_[r0 * dim_ + col] = g[0] * a + g[1] * b;
            m_[r1 * dim_ + col] = g[2] * a + g[3] * b;
        }
    }
}

void
Unitary::applyGate2q(const std::array<Complex, 16> &g, int q0, int q1)
{
    QEDM_REQUIRE(q0 >= 0 && q0 < numQubits_ && q1 >= 0 &&
                     q1 < numQubits_ && q0 != q1,
                 "invalid two-qubit operands");
    const std::size_t m0 = std::size_t(1) << q0;
    const std::size_t m1 = std::size_t(1) << q1;
    for (std::size_t col = 0; col < dim_; ++col) {
        for (std::size_t row = 0; row < dim_; ++row) {
            if (row & (m0 | m1))
                continue;
            // rows of the 4-dim subspace, indexed |q0 q1>.
            const std::size_t r[4] = {row, row | m1, row | m0,
                                      row | m0 | m1};
            Complex v[4];
            for (int i = 0; i < 4; ++i)
                v[i] = m_[r[i] * dim_ + col];
            for (int i = 0; i < 4; ++i) {
                Complex acc(0.0);
                for (int j = 0; j < 4; ++j)
                    acc += g[i * 4 + j] * v[j];
                m_[r[i] * dim_ + col] = acc;
            }
        }
    }
}

double
Unitary::distanceUpToGlobalPhase(const Unitary &other) const
{
    QEDM_REQUIRE(other.dim_ == dim_, "unitary dimensions differ");
    // Find the phase that aligns the largest-magnitude entry.
    std::size_t best = 0;
    double best_mag = 0.0;
    for (std::size_t i = 0; i < m_.size(); ++i) {
        const double mag = std::abs(m_[i]);
        if (mag > best_mag) {
            best_mag = mag;
            best = i;
        }
    }
    Complex phase(1.0);
    if (best_mag > 1e-12 && std::abs(other.m_[best]) > 1e-12)
        phase = (m_[best] / std::abs(m_[best])) /
                (other.m_[best] / std::abs(other.m_[best]));
    double dist = 0.0;
    for (std::size_t i = 0; i < m_.size(); ++i)
        dist = std::max(dist, std::abs(m_[i] - phase * other.m_[i]));
    return dist;
}

bool
Unitary::isUnitary(double tol) const
{
    for (std::size_t i = 0; i < dim_; ++i) {
        for (std::size_t j = 0; j < dim_; ++j) {
            Complex acc(0.0);
            for (std::size_t k = 0; k < dim_; ++k)
                acc += m_[k * dim_ + i] * std::conj(m_[k * dim_ + j]);
            const Complex expect = i == j ? Complex(1.0) : Complex(0.0);
            if (std::abs(acc - expect) > tol)
                return false;
        }
    }
    return true;
}

Unitary
circuitUnitary(const Circuit &circuit)
{
    const Circuit flat = circuit.decomposed();
    Unitary u(flat.numQubits());
    for (const auto &g : flat.gates()) {
        if (g.kind == OpKind::Barrier)
            continue;
        QEDM_REQUIRE(g.kind != OpKind::Measure,
                     "circuitUnitary requires a measurement-free circuit");
        if (opArity(g.kind) == 1) {
            u.applyGate1q(gateMatrix1q(g.kind, g.params), g.qubits[0]);
        } else {
            u.applyGate2q(gateMatrix2q(g.kind), g.qubits[0],
                          g.qubits[1]);
        }
    }
    return u;
}

} // namespace qedm::circuit
