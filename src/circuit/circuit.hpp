/**
 * @file
 * Quantum circuit intermediate representation.
 *
 * A Circuit is an ordered list of Gate records over a qubit register and
 * a classical register. Benchmarks build *logical* circuits; the
 * transpiler rewrites them into *physical* circuits whose qubit indices
 * refer to device qubits and whose two-qubit gates respect the coupling
 * graph.
 */

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "circuit/op.hpp"

namespace qedm::circuit {

/** One operation instance in a circuit. */
struct Gate
{
    OpKind kind;
    /** Qubit operands; size must equal opArity(kind) (Barrier: any). */
    std::vector<int> qubits;
    /** Rotation parameters; size must equal opParamCount(kind). */
    std::vector<double> params;
    /** Destination classical bit for Measure; -1 otherwise. */
    int clbit = -1;
};

/** SG / CX / M totals in the style of the paper's Table 1. */
struct GateCounts
{
    int singleQubit = 0; ///< 1-qubit unitaries ("SG")
    int twoQubit = 0;    ///< 2-qubit unitaries ("CX"); SWAP counts as 3
    int measure = 0;     ///< measurement operations ("M")
};

/**
 * An ordered quantum circuit with builder-style mutators.
 *
 * All mutators validate operand indices and return *this so circuits
 * can be built fluently.
 */
class Circuit
{
  public:
    /**
     * @param num_qubits size of the quantum register (1..64)
     * @param num_clbits size of the classical register (0..20);
     *        defaults to num_qubits when negative
     */
    explicit Circuit(int num_qubits, int num_clbits = -1);

    int numQubits() const { return numQubits_; }
    int numClbits() const { return numClbits_; }
    const std::vector<Gate> &gates() const { return gates_; }
    std::size_t size() const { return gates_.size(); }

    /** Append a fully-specified gate (validated). */
    Circuit &append(Gate gate);

    /** @name Single-qubit builders */
    /** @{ */
    Circuit &i(int q) { return add1q(OpKind::I, q); }
    Circuit &x(int q) { return add1q(OpKind::X, q); }
    Circuit &y(int q) { return add1q(OpKind::Y, q); }
    Circuit &z(int q) { return add1q(OpKind::Z, q); }
    Circuit &h(int q) { return add1q(OpKind::H, q); }
    Circuit &s(int q) { return add1q(OpKind::S, q); }
    Circuit &sdg(int q) { return add1q(OpKind::Sdg, q); }
    Circuit &t(int q) { return add1q(OpKind::T, q); }
    Circuit &tdg(int q) { return add1q(OpKind::Tdg, q); }
    Circuit &rx(double theta, int q);
    Circuit &ry(double theta, int q);
    Circuit &rz(double theta, int q);
    /** @} */

    /** @name Multi-qubit builders */
    /** @{ */
    Circuit &cx(int control, int target);
    Circuit &cz(int a, int b);
    Circuit &swap(int a, int b);
    Circuit &ccx(int c0, int c1, int target);
    Circuit &cswap(int control, int a, int b);
    /** @} */

    /** Measure qubit @p q into classical bit @p c. */
    Circuit &measure(int q, int c);

    /** Measure qubit i into clbit i for all i < numClbits(). */
    Circuit &measureAll();

    /** Insert a barrier (scheduling fence; a no-op for simulation). */
    Circuit &barrier();

    /** Gate totals in Table-1 style. SWAP contributes 3 to twoQubit. */
    GateCounts countGates() const;

    /** Circuit depth counting every non-barrier gate as one time step. */
    int depth() const;

    /** Number of distinct qubits referenced by any gate. */
    int activeQubitCount() const;

    /** True if every 2-qubit unitary's operands are adjacent per
     *  @p adjacent (used to validate physical circuits). */
    template <typename AdjacencyFn>
    bool
    respectsCoupling(AdjacencyFn &&adjacent) const
    {
        for (const auto &g : gates_) {
            if (opIsTwoQubit(g.kind) &&
                !adjacent(g.qubits[0], g.qubits[1])) {
                return false;
            }
        }
        return true;
    }

    /**
     * Relabel qubits through @p qubit_map (logical index -> new index).
     * @param new_num_qubits register size of the result.
     * Classical bits are unchanged. Every referenced qubit must map to
     * a distinct index inside the new register.
     */
    Circuit remapQubits(const std::vector<int> &qubit_map,
                        int new_num_qubits) const;

    /**
     * Rewrite Ccx/Cswap into the standard {H, T, Tdg, Cx} network and
     * Swap into 3 Cx. Other gates pass through.
     */
    Circuit decomposed() const;

    /** OpenQASM-2-style textual form. */
    std::string toQasm() const;

    /**
     * 64-bit structural content hash over registers and the exact gate
     * list (kinds, operands, parameters, classical targets). Equal
     * circuits fingerprint equally; used with the device fingerprint
     * to key the runtime compile/tape caches.
     */
    std::uint64_t fingerprint() const;

  private:
    Circuit &add1q(OpKind kind, int q);
    void checkQubit(int q) const;
    void checkClbit(int c) const;

    int numQubits_;
    int numClbits_;
    std::vector<Gate> gates_;
};

} // namespace qedm::circuit
