/**
 * @file
 * Additional NISQ workloads beyond the paper's Table 1.
 *
 * These cover the circuit families the paper's introduction and
 * future-work sections motivate: entanglement witnesses (GHZ, W),
 * Fourier-basis programs (QFT round-trip), oracle problems
 * (hidden shift), and deeper arithmetic (ripple-carry adder). Each
 * has a deterministic ideal output so PST/IST are well defined.
 */

#pragma once

#include <string>
#include <vector>

#include "benchmarks/benchmarks.hpp"

namespace qedm::benchmarks {

/**
 * GHZ state preparation and parity check on n qubits (3..8): prepares
 * (|0..0> + |1..1>)/sqrt(2), then uncomputes the entanglement with a
 * mirrored CX ladder and measures. Expected output: all zeros.
 */
Benchmark ghzRoundTrip(int n);

/**
 * QFT round-trip on n qubits (2..6): prepares a computational basis
 * state, applies QFT then inverse QFT, and measures. Expected output:
 * the prepared state. Exercises fine-grained Rz phases.
 */
Benchmark qftRoundTrip(int n, const std::string &input);

/**
 * Boolean hidden-shift for a bent-function oracle on n qubits (even n,
 * 2..8): single-query algorithm whose output is the hidden shift
 * string. Structure resembles BV but with a different oracle family.
 */
Benchmark hiddenShift(const std::string &shift);

/**
 * Two-bit ripple-carry adder computing a + b for 2-bit operands.
 * Output: 3-bit sum (MSB first). Deeper than the paper's 1-bit adder.
 */
Benchmark rippleAdder2(int a, int b);

/**
 * W-state preparation on 3 qubits followed by a permutation-invariance
 * check. Measures in the computational basis; the ideal distribution
 * is uniform over {001, 010, 100}. The *expected* outcome is defined
 * as 001 for PST purposes; the ideal machine gives IST = 1 (three-way
 * tie), so this workload probes how noise breaks symmetric outputs.
 */
Benchmark wState();

/**
 * Peres gate on |abc>: computes (a, a XOR b, c XOR ab) — a common
 * RevLib primitive (Toffoli followed by CNOT). With inputs a = 1,
 * b = 1, c = 0 the output string (c', b', a') is "101".
 */
Benchmark peres();

/**
 * 3-voter majority: an ancilla accumulates MAJ(a, b, c) via three
 * Toffolis. Output string is (maj, c, b, a), MSB first.
 */
Benchmark majority3(int a, int b, int c);

/**
 * Toffoli chain of depth @p n (2..4): n CCX gates cascading through
 * n+2 qubits with all controls set; a deep non-Clifford stressor.
 */
Benchmark toffoliChain(int n);

/** All extra benchmarks with default parameters. */
std::vector<Benchmark> extraSuite();

} // namespace qedm::benchmarks
