#include "benchmarks/extra.hpp"

#include <cmath>
#include <numbers>

#include "common/error.hpp"

namespace qedm::benchmarks {

using circuit::Circuit;

namespace {

/** Controlled-phase CP(lambda) via the standard Rz/CX identity. */
void
addControlledPhase(Circuit &c, double lambda, int control, int target)
{
    c.rz(lambda / 2.0, control);
    c.cx(control, target);
    c.rz(-lambda / 2.0, target);
    c.cx(control, target);
    c.rz(lambda / 2.0, target);
}

/** Controlled-H up to a branch phase: Ry(-pi/4) . CX . Ry(pi/4). */
void
addControlledH(Circuit &c, int control, int target)
{
    const double q = std::numbers::pi / 4.0;
    c.ry(q, target);
    c.cx(control, target);
    c.ry(-q, target);
}

/** Forward QFT (no terminal qubit reversal). */
void
addQft(Circuit &c, int n, bool inverse)
{
    if (!inverse) {
        for (int i = n - 1; i >= 0; --i) {
            c.h(i);
            for (int j = i - 1; j >= 0; --j) {
                addControlledPhase(
                    c, std::numbers::pi / double(1 << (i - j)), j, i);
            }
        }
    } else {
        for (int i = 0; i < n; ++i) {
            for (int j = 0; j < i; ++j) {
                addControlledPhase(
                    c, -std::numbers::pi / double(1 << (i - j)), j, i);
            }
            c.h(i);
        }
    }
}

} // namespace

Benchmark
ghzRoundTrip(int n)
{
    QEDM_REQUIRE(n >= 3 && n <= 8, "GHZ size must be in [3, 8]");
    Circuit c(n, n);
    c.h(0);
    for (int q = 0; q + 1 < n; ++q)
        c.cx(q, q + 1);
    for (int q = n - 2; q >= 0; --q)
        c.cx(q, q + 1);
    c.h(0);
    c.measureAll();
    return Benchmark{"ghz-" + std::to_string(n),
                     "GHZ entangle/disentangle round trip",
                     std::move(c), 0, n, PaperCounts{}};
}

Benchmark
qftRoundTrip(int n, const std::string &input)
{
    QEDM_REQUIRE(n >= 2 && n <= 6, "QFT size must be in [2, 6]");
    QEDM_REQUIRE(static_cast<int>(input.size()) == n,
                 "input width must match the register");
    const Outcome prepared = parseBitstring(input);
    Circuit c(n, n);
    for (int q = 0; q < n; ++q) {
        if (getBit(prepared, q))
            c.x(q);
    }
    addQft(c, n, false);
    addQft(c, n, true);
    c.measureAll();
    return Benchmark{"qft-" + std::to_string(n),
                     "QFT + inverse QFT round trip on |" + input + ">",
                     std::move(c), prepared, n, PaperCounts{}};
}

Benchmark
hiddenShift(const std::string &shift)
{
    const int n = static_cast<int>(shift.size());
    QEDM_REQUIRE(n >= 2 && n <= 8 && n % 2 == 0,
                 "hidden shift needs an even width in [2, 8]");
    const Outcome s = parseBitstring(shift);

    // Bent function f(x) = XOR of x_{2i} x_{2i+1}; its phase oracle is
    // a CZ on each pair, and f is its own dual, so the single-query
    // hidden-shift circuit is H / shifted-oracle / H / oracle / H.
    Circuit c(n, n);
    for (int q = 0; q < n; ++q)
        c.h(q);
    for (int q = 0; q < n; ++q) {
        if (getBit(s, q))
            c.x(q);
    }
    for (int q = 0; q + 1 < n; q += 2)
        c.cz(q, q + 1);
    for (int q = 0; q < n; ++q) {
        if (getBit(s, q))
            c.x(q);
    }
    for (int q = 0; q < n; ++q)
        c.h(q);
    for (int q = 0; q + 1 < n; q += 2)
        c.cz(q, q + 1);
    for (int q = 0; q < n; ++q)
        c.h(q);
    c.measureAll();
    return Benchmark{"hs-" + std::to_string(n),
                     "hidden shift, bent-function oracle, shift " +
                         shift,
                     std::move(c), s, n, PaperCounts{}};
}

Benchmark
rippleAdder2(int a, int b)
{
    QEDM_REQUIRE(a >= 0 && a <= 3 && b >= 0 && b <= 3,
                 "operands must be 2-bit values");
    // Cuccaro ripple-carry adder: qubits c0, b0, a0, b1, a1, cout.
    const int c0 = 0, b0 = 1, a0 = 2, b1 = 3, a1 = 4, cout = 5;
    Circuit c(6, 3);
    if (a & 1)
        c.x(a0);
    if (a & 2)
        c.x(a1);
    if (b & 1)
        c.x(b0);
    if (b & 2)
        c.x(b1);
    auto maj = [&](int x, int y, int z) {
        c.cx(z, y);
        c.cx(z, x);
        c.ccx(x, y, z);
    };
    auto uma = [&](int x, int y, int z) {
        c.ccx(x, y, z);
        c.cx(z, x);
        c.cx(x, y);
    };
    maj(c0, b0, a0);
    maj(a0, b1, a1);
    c.cx(a1, cout);
    uma(a0, b1, a1);
    uma(c0, b0, a0);
    // Sum lands in (b0, b1, cout).
    c.measure(b0, 0);
    c.measure(b1, 1);
    c.measure(cout, 2);
    return Benchmark{"radd2",
                     "2-bit ripple-carry adder, " + std::to_string(a) +
                         "+" + std::to_string(b),
                     std::move(c), static_cast<Outcome>(a + b), 3,
                     PaperCounts{}};
}

Benchmark
wState()
{
    const double theta = 2.0 * std::acos(1.0 / std::sqrt(3.0));
    Circuit c(3, 3);
    c.ry(theta, 0);
    addControlledH(c, 0, 1);
    c.cx(1, 2);
    c.cx(0, 1);
    c.x(0);
    c.measureAll();
    return Benchmark{"w-state", "3-qubit W state (3-way tied output)",
                     std::move(c), parseBitstring("001"), 3,
                     PaperCounts{}};
}

Benchmark
peres()
{
    // a = 1, b = 1, c = 0.
    Circuit c(3, 3);
    c.x(0).x(1);
    c.ccx(0, 1, 2);
    c.cx(0, 1);
    c.measure(0, 0).measure(1, 1).measure(2, 2);
    // Output (c', b', a') = (c^ab, a^b, a) = (1, 0, 1).
    return Benchmark{"peres", "Peres gate on |110>", std::move(c),
                     parseBitstring("101"), 3, PaperCounts{}};
}

Benchmark
majority3(int a, int b, int c)
{
    QEDM_REQUIRE((a == 0 || a == 1) && (b == 0 || b == 1) &&
                     (c == 0 || c == 1),
                 "majority inputs must be bits");
    Circuit circ(4, 4);
    if (a)
        circ.x(0);
    if (b)
        circ.x(1);
    if (c)
        circ.x(2);
    circ.ccx(0, 1, 3);
    circ.ccx(0, 2, 3);
    circ.ccx(1, 2, 3);
    circ.measureAll();
    const int maj = (a + b + c) >= 2 ? 1 : 0;
    const Outcome expected = static_cast<Outcome>(
        (maj << 3) | (c << 2) | (b << 1) | a);
    return Benchmark{"maj3",
                     "3-voter majority of (" + std::to_string(a) +
                         ", " + std::to_string(b) + ", " +
                         std::to_string(c) + ")",
                     std::move(circ), expected, 4, PaperCounts{}};
}

Benchmark
toffoliChain(int n)
{
    QEDM_REQUIRE(n >= 2 && n <= 4, "chain depth must be in [2, 4]");
    Circuit c(n + 2, n + 2);
    c.x(0).x(1);
    for (int i = 0; i < n; ++i)
        c.ccx(i, i + 1, i + 2);
    c.measureAll();
    const Outcome expected = (Outcome(1) << (n + 2)) - 1;
    return Benchmark{"tof-" + std::to_string(n),
                     "Toffoli cascade of depth " + std::to_string(n),
                     std::move(c), expected, n + 2, PaperCounts{}};
}

std::vector<Benchmark>
extraSuite()
{
    std::vector<Benchmark> suite;
    suite.push_back(ghzRoundTrip(5));
    suite.push_back(qftRoundTrip(4, "1011"));
    suite.push_back(hiddenShift("101101"));
    suite.push_back(rippleAdder2(2, 3));
    suite.push_back(wState());
    suite.push_back(peres());
    suite.push_back(majority3(1, 0, 1));
    suite.push_back(toffoliChain(3));
    return suite;
}

} // namespace qedm::benchmarks
