#include "benchmarks/benchmarks.hpp"

#include <cmath>

#include "common/error.hpp"
#include "sim/executor.hpp"

namespace qedm::benchmarks {

using circuit::Circuit;

Benchmark
bernsteinVazirani(const std::string &key)
{
    const int n = static_cast<int>(key.size());
    QEDM_REQUIRE(n >= 1 && n <= 10, "BV key must have 1..10 bits");
    const Outcome secret = parseBitstring(key);

    // Qubits 0..n-1 hold the query register, qubit n is the oracle
    // ancilla prepared in |->.
    Circuit c(n + 1, n);
    for (int q = 0; q < n; ++q)
        c.h(q);
    c.x(n).h(n);
    for (int q = 0; q < n; ++q) {
        if (getBit(secret, q))
            c.cx(q, n);
    }
    for (int q = 0; q < n; ++q)
        c.h(q);
    for (int q = 0; q < n; ++q)
        c.measure(q, q);

    Benchmark b{"bv-" + std::to_string(n),
                "Bernstein-Vazirani, key " + key, std::move(c), secret,
                n, PaperCounts{}};
    return b;
}

Benchmark
bv6()
{
    Benchmark b = bernsteinVazirani("110011");
    b.paperCounts = PaperCounts{13, 7, 5};
    return b;
}

Benchmark
bv7()
{
    Benchmark b = bernsteinVazirani("1101011");
    b.paperCounts = PaperCounts{13, 11, 6};
    return b;
}

Benchmark
greycode()
{
    const int n = 6;
    const Outcome expected = parseBitstring("001000");
    const Outcome gray = expected ^ (expected >> 1);

    Circuit c(n, n);
    for (int q = 0; q < n; ++q) {
        if (getBit(gray, q))
            c.x(q);
    }
    // Gray-to-binary cascade: b[i] = b[i+1] ^ g[i], MSB down.
    for (int i = n - 2; i >= 0; --i)
        c.cx(i + 1, i);
    c.measureAll();

    return Benchmark{"greycode", "6-bit Gray-code decoder", std::move(c),
                     expected, n, PaperCounts{13, 5, 6}};
}

namespace {

/** Alternating cut string with qubit (n-1) in partition '1'. */
Outcome
alternatingCut(int n)
{
    Outcome cut = 0;
    for (int q = n - 1; q >= 0; q -= 2)
        cut = setBit(cut, q, 1);
    return cut;
}

/** Build one QAOA max-cut circuit for an n-node path. */
Circuit
qaoaCircuit(int n, double gamma, double beta, double field)
{
    Circuit c(n, n);
    for (int q = 0; q < n; ++q)
        c.h(q);
    for (int i = 0; i + 1 < n; ++i) {
        c.cx(i, i + 1);
        c.rz(2.0 * gamma, i + 1);
        c.cx(i, i + 1);
    }
    // Symmetry-breaking field on the top node (see header).
    c.rz(field, n - 1);
    for (int q = 0; q < n; ++q)
        c.rx(2.0 * beta, q);
    c.measureAll();
    return c;
}

} // namespace

Benchmark
qaoaMaxcutPath(int n)
{
    QEDM_REQUIRE(n >= 3 && n <= 8, "qaoa path size must be in [3, 8]");
    const Outcome expected = alternatingCut(n);

    // Coarse grid search for angles that make `expected` the unique
    // mode of the ideal output distribution.
    double best_p = -1.0;
    double best_gamma = 0.0, best_beta = 0.0, best_field = 0.0;
    for (int gi = 1; gi <= 15; ++gi) {
        const double gamma = 0.1 * gi;
        for (int bi = 1; bi <= 15; ++bi) {
            const double beta = 0.1 * bi;
            for (const double field : {-gamma, gamma}) {
                const Circuit c = qaoaCircuit(n, gamma, beta, field);
                const auto dist = sim::idealDistribution(c);
                if (dist.mode() != expected)
                    continue;
                const double p = dist.prob(expected);
                if (p > best_p) {
                    best_p = p;
                    best_gamma = gamma;
                    best_beta = beta;
                    best_field = field;
                }
            }
        }
    }
    QEDM_ASSERT(best_p > 0.0, "QAOA angle search failed");

    Benchmark b{"qaoa-" + std::to_string(n),
                "QAOA max-cut, " + std::to_string(n) + "-node path",
                qaoaCircuit(n, best_gamma, best_beta, best_field),
                expected, n, PaperCounts{}};
    return b;
}

Benchmark
qaoa5()
{
    Benchmark b = qaoaMaxcutPath(5);
    b.paperCounts = PaperCounts{24, 8, 5};
    return b;
}

Benchmark
qaoa6()
{
    Benchmark b = qaoaMaxcutPath(6);
    b.paperCounts = PaperCounts{30, 10, 6};
    return b;
}

Benchmark
qaoa7()
{
    Benchmark b = qaoaMaxcutPath(7);
    b.paperCounts = PaperCounts{36, 12, 7};
    return b;
}

Benchmark
fredkin()
{
    Circuit c(3, 3);
    c.x(0).x(2);
    c.cswap(2, 1, 0);
    c.measureAll();
    return Benchmark{"fredkin", "Fredkin gate on |101>", std::move(c),
                     parseBitstring("110"), 3, PaperCounts{26, 13, 3}};
}

Benchmark
adder()
{
    // q0 = a = 1, q1 = b = 1, q2 = cin = 0, q3 = cout.
    Circuit c(4, 3);
    c.x(0).x(1);
    c.ccx(0, 1, 3);
    c.cx(0, 1);
    c.ccx(1, 2, 3);
    c.cx(1, 2);
    c.cx(0, 1);
    // Read (a, carry, sum) as bits (0, 1, 2): "011".
    c.measure(0, 0);
    c.measure(3, 1);
    c.measure(2, 2);
    return Benchmark{"adder", "reversible 1-bit full adder (1+1+0)",
                     std::move(c), parseBitstring("011"), 3,
                     PaperCounts{12, 15, 3}};
}

Benchmark
decoder24()
{
    // q0 = a = 0, q1 = b = 0; q2..q5 = one-hot outputs o0..o3.
    Circuit c(6, 6);
    c.x(0).x(1);
    c.ccx(0, 1, 2); // o0 = !a & !b
    c.x(1);
    c.ccx(0, 1, 3); // o1 = !a & b
    c.x(0).x(1);
    c.ccx(0, 1, 4); // o2 = a & !b
    c.x(1);
    c.ccx(0, 1, 5); // o3 = a & b
    c.measure(2, 5); // o0 is the leftmost printed bit
    c.measure(3, 4);
    c.measure(4, 3);
    c.measure(5, 2);
    c.measure(0, 1);
    c.measure(1, 0);
    return Benchmark{"decode-24", "reversible 2:4 decoder, select 00",
                     std::move(c), parseBitstring("100000"), 6,
                     PaperCounts{119, 71, 6}};
}

std::vector<Benchmark>
paperSuite()
{
    std::vector<Benchmark> suite;
    suite.push_back(greycode());
    suite.push_back(bv6());
    suite.push_back(bv7());
    suite.push_back(qaoa5());
    suite.push_back(qaoa6());
    suite.push_back(qaoa7());
    suite.push_back(fredkin());
    suite.push_back(adder());
    suite.push_back(decoder24());
    return suite;
}

Benchmark
byName(const std::string &name)
{
    if (name == "greycode")
        return greycode();
    if (name == "bv-6")
        return bv6();
    if (name == "bv-7")
        return bv7();
    if (name == "qaoa-5")
        return qaoa5();
    if (name == "qaoa-6")
        return qaoa6();
    if (name == "qaoa-7")
        return qaoa7();
    if (name == "fredkin")
        return fredkin();
    if (name == "adder")
        return adder();
    if (name == "decode-24")
        return decoder24();
    throw UserError("unknown benchmark: " + name);
}

} // namespace qedm::benchmarks
