/**
 * @file
 * The paper's benchmark suite (Table 1).
 *
 * Every generator returns a logical circuit plus the known-correct
 * output, which is what PST/IST are measured against. Where the
 * paper's RevLib-derived gate counts differ from our synthesis, the
 * paper's counts are carried alongside so the Table-1 bench can print
 * both.
 */

#pragma once

#include <string>
#include <vector>

#include "circuit/circuit.hpp"
#include "common/bits.hpp"

namespace qedm::benchmarks {

/** Gate totals as printed in the paper's Table 1. */
struct PaperCounts
{
    int sg = 0;
    int cx = 0;
    int m = 0;
};

/** A benchmark instance: circuit + ground truth. */
struct Benchmark
{
    std::string name;
    std::string description;
    circuit::Circuit circuit;
    /** The unique correct output (paper "Output" column). */
    Outcome expected = 0;
    /** Classical output width in bits. */
    int outputWidth = 0;
    /** Gate totals the paper reports for this workload. */
    PaperCounts paperCounts;
};

/**
 * Bernstein-Vazirani with the given MSB-first key string.
 * Output: the key. bv-6 = "110011", bv-7 = "1101011" (Table 1).
 */
Benchmark bernsteinVazirani(const std::string &key);

/** The paper's bv-6 instance (key 110011). */
Benchmark bv6();

/** The paper's bv-7 instance (key 1101011). */
Benchmark bv7();

/**
 * 6-bit Gray-code decoder: prepares the Gray encoding of the expected
 * output and decodes it with a CX cascade. Output: "001000".
 */
Benchmark greycode();

/**
 * Single-layer QAOA for max-cut on an n-node path graph (the paper's
 * SWAP-free QAOA instances), with a small symmetry-breaking field on
 * node 0 so the alternating cut starting with '1' is the unique
 * most-likely output. Angles are tuned by a coarse grid search at
 * construction. @p n in [3, 8].
 */
Benchmark qaoaMaxcutPath(int n);

/** The paper's qaoa-5 / qaoa-6 / qaoa-7 instances. */
Benchmark qaoa5();
Benchmark qaoa6();
Benchmark qaoa7();

/** Fredkin gate on |101>: output "110". */
Benchmark fredkin();

/** Reversible 1-bit full adder with a=1, b=1, cin=0: output "011". */
Benchmark adder();

/** Reversible 2:4 decoder (four-Toffoli synthesis) with select 00:
 *  output "100000". */
Benchmark decoder24();

/** All nine paper benchmarks in Table-1 order. */
std::vector<Benchmark> paperSuite();

/** Look up a paper benchmark by Table-1 name (e.g. "bv-6"). */
Benchmark byName(const std::string &name);

} // namespace qedm::benchmarks
