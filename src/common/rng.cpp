#include "common/rng.hpp"

#include <cmath>
#include <numbers>

#include "common/error.hpp"

namespace qedm {
namespace {

/** splitmix64 step, used to expand the seed into xoshiro state. */
std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t x = seed;
    for (auto &s : s_)
        s = splitmix64(x);
}

Rng::result_type
Rng::operator()()
{
    const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

double
Rng::uniform()
{
    // 53 random mantissa bits -> double in [0, 1).
    return ((*this)() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

std::uint64_t
Rng::uniformInt(std::uint64_t n)
{
    QEDM_ASSERT(n > 0, "uniformInt(0) is undefined");
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t limit = max() - max() % n;
    std::uint64_t v;
    do {
        v = (*this)();
    } while (v >= limit);
    return v % n;
}

double
Rng::normal()
{
    if (hasCachedNormal_) {
        hasCachedNormal_ = false;
        return cachedNormal_;
    }
    double u1, u2;
    do {
        u1 = uniform();
    } while (u1 <= 0.0);
    u2 = uniform();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * std::numbers::pi * u2;
    cachedNormal_ = r * std::sin(theta);
    hasCachedNormal_ = true;
    return r * std::cos(theta);
}

double
Rng::normal(double mean, double stddev)
{
    return mean + stddev * normal();
}

bool
Rng::bernoulli(double p)
{
    return uniform() < p;
}

std::size_t
Rng::discrete(const std::vector<double> &weights)
{
    double total = 0.0;
    for (double w : weights) {
        QEDM_REQUIRE(w >= 0.0, "discrete() weights must be non-negative");
        total += w;
    }
    QEDM_REQUIRE(total > 0.0, "discrete() needs a positive total weight");
    double r = uniform() * total;
    for (std::size_t i = 0; i < weights.size(); ++i) {
        r -= weights[i];
        if (r < 0.0)
            return i;
    }
    // Floating-point slack: fall back to the last positive weight.
    for (std::size_t i = weights.size(); i-- > 0;) {
        if (weights[i] > 0.0)
            return i;
    }
    return weights.size() - 1;
}

Rng
Rng::split()
{
    return Rng((*this)());
}

SeedSequence::SeedSequence(std::uint64_t seed)
{
    // One avalanche round decorrelates small root seeds (0, 1, 2, ...).
    std::uint64_t x = seed;
    state_ = splitmix64(x);
}

SeedSequence
SeedSequence::child(std::uint64_t key) const
{
    // Mix the key through its own avalanche before combining so that
    // child(0), child(1), ... differ in every state bit, then re-mix
    // the combination so grandchildren of different parents never
    // collide by key arithmetic.
    std::uint64_t k = key ^ 0xa5a5a5a5a5a5a5a5ull;
    const std::uint64_t mixed_key = splitmix64(k);
    std::uint64_t combined = state_ ^ mixed_key;
    SeedSequence out(splitmix64(combined));
    return out;
}

Rng
SeedSequence::rng() const
{
    return Rng(state_);
}

} // namespace qedm
