/**
 * @file
 * Bitstring helpers shared across qedm.
 *
 * Measurement outcomes of an m-bit program are encoded as the integer
 * value of the bitstring, with classical bit 0 as the least significant
 * bit. String renderings put bit (m-1) first, matching the paper's
 * "key: 110011" notation.
 */

#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace qedm {

/** Measurement outcome, encoded LSB-first (bit 0 = clbit 0). */
using Outcome = std::uint64_t;

/** Get bit @p i of @p v. */
constexpr int
getBit(Outcome v, int i)
{
    return static_cast<int>((v >> i) & 1u);
}

/** Return @p v with bit @p i set to @p b. */
constexpr Outcome
setBit(Outcome v, int i, int b)
{
    return b ? (v | (Outcome(1) << i)) : (v & ~(Outcome(1) << i));
}

/** Return @p v with bit @p i flipped. */
constexpr Outcome
flipBit(Outcome v, int i)
{
    return v ^ (Outcome(1) << i);
}

/** Number of set bits (Hamming weight). */
int popcount(Outcome v);

/** Hamming distance between two outcomes. */
int hammingDistance(Outcome a, Outcome b);

/** Render @p v as an @p width-character binary string, MSB first. */
std::string toBitstring(Outcome v, int width);

/**
 * Parse an MSB-first binary string ("110011") into an Outcome.
 * Throws qedm::UserError on characters other than '0'/'1' or on
 * strings longer than 64 bits.
 */
Outcome parseBitstring(const std::string &s);

/** All outcomes of a given width, in numeric order (width <= 20). */
std::vector<Outcome> allOutcomes(int width);

} // namespace qedm
