/**
 * @file
 * Structural fingerprinting for cache keys.
 *
 * The runtime layer caches compiled programs and execution tapes keyed
 * on *content identity*: a circuit fingerprint combined with a device /
 * calibration fingerprint. Fingerprints are 64-bit FNV-1a-style hashes
 * strengthened with a splitmix64 avalanche per word, which is plenty
 * for cache keying (collisions only cost a wrong cache hit across
 * *different* experiments in the same process; the avalanche makes
 * that probability ~2^-64 per pair).
 */

#pragma once

#include <bit>
#include <cstdint>
#include <string_view>

namespace qedm {

/** Incremental 64-bit content hash (order-sensitive). */
class Fingerprint
{
  public:
    /** @param domain distinguishes hashes of different object kinds. */
    explicit Fingerprint(std::uint64_t domain = 0xcbf29ce484222325ull)
        : state_(mix(domain ^ 0x9e3779b97f4a7c15ull))
    {
    }

    Fingerprint &add(std::uint64_t v)
    {
        state_ = mix(state_ ^ mix(v));
        return *this;
    }

    Fingerprint &add(std::int64_t v)
    {
        return add(static_cast<std::uint64_t>(v));
    }

    Fingerprint &add(int v) { return add(static_cast<std::uint64_t>(
        static_cast<std::int64_t>(v))); }

    /** Hash the exact bit pattern (so +0.0 / -0.0 differ; fine). */
    Fingerprint &add(double v)
    {
        return add(std::bit_cast<std::uint64_t>(v));
    }

    Fingerprint &add(bool v) { return add(std::uint64_t(v ? 1 : 2)); }

    Fingerprint &add(std::string_view s)
    {
        add(std::uint64_t(s.size()));
        std::uint64_t word = 0;
        int n = 0;
        for (unsigned char c : s) {
            word = (word << 8) | c;
            if (++n == 8) {
                add(word);
                word = 0;
                n = 0;
            }
        }
        if (n > 0)
            add(word);
        return *this;
    }

    template <typename Range> Fingerprint &addRange(const Range &r)
    {
        add(std::uint64_t(r.size()));
        for (const auto &v : r)
            add(v);
        return *this;
    }

    std::uint64_t value() const { return state_; }

  private:
    static std::uint64_t mix(std::uint64_t z)
    {
        // splitmix64 finalizer.
        z += 0x9e3779b97f4a7c15ull;
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        return z ^ (z >> 31);
    }

    std::uint64_t state_;
};

} // namespace qedm
