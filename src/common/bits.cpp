#include "common/bits.hpp"

#include <bit>

#include "common/error.hpp"

namespace qedm {

int
popcount(Outcome v)
{
    return std::popcount(v);
}

int
hammingDistance(Outcome a, Outcome b)
{
    return std::popcount(a ^ b);
}

std::string
toBitstring(Outcome v, int width)
{
    QEDM_REQUIRE(width > 0 && width <= 64, "bitstring width out of range");
    std::string s(width, '0');
    for (int i = 0; i < width; ++i) {
        if (getBit(v, i))
            s[width - 1 - i] = '1';
    }
    return s;
}

Outcome
parseBitstring(const std::string &s)
{
    QEDM_REQUIRE(!s.empty() && s.size() <= 64,
                 "bitstring must have 1..64 characters");
    Outcome v = 0;
    const int width = static_cast<int>(s.size());
    for (int i = 0; i < width; ++i) {
        const char c = s[width - 1 - i];
        QEDM_REQUIRE(c == '0' || c == '1',
                     "bitstring may only contain '0' and '1'");
        if (c == '1')
            v = setBit(v, i, 1);
    }
    return v;
}

std::vector<Outcome>
allOutcomes(int width)
{
    QEDM_REQUIRE(width > 0 && width <= 20,
                 "enumerating outcomes is limited to 20 bits");
    std::vector<Outcome> all(std::size_t(1) << width);
    for (std::size_t i = 0; i < all.size(); ++i)
        all[i] = i;
    return all;
}

} // namespace qedm
