/**
 * @file
 * Error handling primitives for qedm.
 *
 * Two categories, following the gem5 fatal/panic convention:
 *   - QEDM_REQUIRE: user-facing precondition (bad configuration or
 *     arguments). Throws qedm::UserError.
 *   - QEDM_ASSERT: internal invariant that should never fail regardless
 *     of input. Throws qedm::InternalError.
 */

#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace qedm {

/** Base class for all qedm exceptions. */
class Error : public std::runtime_error
{
  public:
    explicit Error(const std::string &msg) : std::runtime_error(msg) {}
};

/** Raised when the caller supplied invalid configuration or arguments. */
class UserError : public Error
{
  public:
    explicit UserError(const std::string &msg) : Error(msg) {}
};

/** Raised when an internal invariant is violated (a qedm bug). */
class InternalError : public Error
{
  public:
    explicit InternalError(const std::string &msg) : Error(msg) {}
};

namespace detail {

/** Builds the "file:line: condition: message" diagnostic string. */
inline std::string
formatDiag(const char *file, int line, const char *cond,
           const std::string &msg)
{
    std::ostringstream os;
    os << file << ":" << line << ": `" << cond << "` failed";
    if (!msg.empty())
        os << ": " << msg;
    return os.str();
}

} // namespace detail
} // namespace qedm

/** Validate a user-controllable precondition; throws qedm::UserError. */
#define QEDM_REQUIRE(cond, msg)                                             \
    do {                                                                    \
        if (!(cond)) {                                                      \
            throw ::qedm::UserError(                                        \
                ::qedm::detail::formatDiag(__FILE__, __LINE__, #cond,       \
                                           (msg)));                         \
        }                                                                   \
    } while (0)

/** Validate an internal invariant; throws qedm::InternalError. */
#define QEDM_ASSERT(cond, msg)                                              \
    do {                                                                    \
        if (!(cond)) {                                                      \
            throw ::qedm::InternalError(                                    \
                ::qedm::detail::formatDiag(__FILE__, __LINE__, #cond,       \
                                           (msg)));                         \
        }                                                                   \
    } while (0)
