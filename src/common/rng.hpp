/**
 * @file
 * Deterministic pseudo-random number generation for qedm.
 *
 * All stochastic components (trajectory sampling, measurement noise,
 * calibration drift, Monte-Carlo analysis) draw from qedm::Rng so every
 * experiment is reproducible from a single 64-bit seed. The generator is
 * xoshiro256++ seeded through splitmix64, which gives high-quality streams
 * even from small or correlated seeds.
 */

#pragma once

#include <cstdint>
#include <vector>

namespace qedm {

/**
 * xoshiro256++ pseudo-random generator with convenience distributions.
 *
 * Satisfies the UniformRandomBitGenerator concept so it can also be used
 * with <random> distributions when needed.
 */
class Rng
{
  public:
    using result_type = std::uint64_t;

    /** Construct from a 64-bit seed (expanded via splitmix64). */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

    static constexpr result_type min() { return 0; }
    static constexpr result_type max() { return ~result_type(0); }

    /** Next raw 64-bit value. */
    result_type operator()();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Uniform integer in [0, n). Requires n > 0. */
    std::uint64_t uniformInt(std::uint64_t n);

    /** Standard normal via Box-Muller. */
    double normal();

    /** Normal with given mean and standard deviation. */
    double normal(double mean, double stddev);

    /** Bernoulli trial with success probability p. */
    bool bernoulli(double p);

    /**
     * Sample an index from an unnormalized non-negative weight vector.
     * Requires at least one strictly positive weight.
     */
    std::size_t discrete(const std::vector<double> &weights);

    /** Derive an independent child generator (for parallel streams). */
    Rng split();

  private:
    std::uint64_t s_[4];
    double cachedNormal_ = 0.0;
    bool hasCachedNormal_ = false;
};

/**
 * Hierarchical, order-independent seed derivation for parallel work.
 *
 * A SeedSequence is a node in a key tree rooted at one 64-bit seed.
 * child(k) is a pure function of (state, k): deriving children in any
 * order — or concurrently from different threads — yields identical
 * streams, which is what makes parallel execution bit-identical to
 * sequential execution. The runtime layer keys one node per
 * (round, member, shot-batch) unit of work.
 *
 * Derivation chains splitmix64-style avalanche mixes, so sibling and
 * cousin streams are statistically independent even for small keys.
 */
class SeedSequence
{
  public:
    /** Root sequence for a 64-bit experiment seed. */
    explicit SeedSequence(std::uint64_t seed);

    /** Child node for subdomain @p key. Pure; order-independent. */
    SeedSequence child(std::uint64_t key) const;

    /** Materialize the generator for this node. Pure. */
    Rng rng() const;

    /** Mixed state (useful as a derived seed or cache key). */
    std::uint64_t state() const { return state_; }

  private:
    std::uint64_t state_;
};

} // namespace qedm
