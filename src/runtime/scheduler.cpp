#include "runtime/scheduler.hpp"

#include "common/error.hpp"

namespace qedm::runtime {

JobScheduler::JobScheduler(int jobs)
{
    QEDM_REQUIRE(jobs >= 0, "jobs must be >= 0 (0 = hardware)");
    jobs_ = jobs == 0 ? ThreadPool::hardwareConcurrency() : jobs;
    if (jobs_ > 1)
        pool_ = std::make_shared<ThreadPool>(jobs_ - 1);
}

void
JobScheduler::parallelFor(
    std::size_t n, const std::function<void(std::size_t)> &body) const
{
    if (!pool_ || n <= 1) {
        for (std::size_t i = 0; i < n; ++i)
            body(i);
        return;
    }
    pool_->parallelFor(n, body);
}

} // namespace qedm::runtime
