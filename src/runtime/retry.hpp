/**
 * @file
 * Bounded retry-with-backoff for transient work-unit failures.
 *
 * A production EDM service cannot let one flaky trial batch take down
 * an ensemble run: transient failures (queue hiccups, job rejections)
 * are retried a bounded number of times with exponential backoff, and
 * only then surfaced as a permanent loss for the degradation policy to
 * absorb. The primitive is deliberately deterministic: backoff delays
 * are a pure function of the attempt index plus — when a jitter
 * fraction is configured — a SeedSequence child stream keyed by the
 * attempt, never of shared mutable state, so a faulted run's retry
 * schedule replays bit-identically at any --jobs value. Sleeping goes
 * through an injectable runtime::Clock, so tests observe exact backoff
 * schedules on a ManualClock without real sleeps.
 *
 * A body signals "retry me" by throwing TransientError; any other
 * exception is considered permanent and propagates immediately.
 */

#pragma once

#include <functional>
#include <string>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "runtime/clock.hpp"

namespace qedm::runtime {

/** A retriable failure of one work unit (fault-injected or real). */
class TransientError : public Error
{
  public:
    explicit TransientError(const std::string &msg) : Error(msg) {}
};

/** Retry policy for one class of work units. */
struct RetryPolicy
{
    /** Total attempts per unit (first try + retries). Must be >= 1. */
    int maxAttempts = 3;
    /**
     * Backoff before retry k (1-based) is
     * backoffBaseMs * backoffFactor^(k-1). 0 disables sleeping; the
     * schedule is still computed and reported either way, so tests
     * and simulations stay wall-clock free.
     */
    double backoffBaseMs = 0.0;
    double backoffFactor = 2.0;
    /**
     * Symmetric jitter fraction in [0, 1]: retry k's delay is scaled
     * by a factor drawn uniformly from [1 - jitter, 1 + jitter] off
     * the jitter stream's child(k). 0 = no jitter (and no stream
     * draws, so legacy schedules are unchanged bit-for-bit).
     */
    double jitterFraction = 0.0;
};

/** What happened across the attempts of one unit. */
struct RetryOutcome
{
    /** Attempts actually made (1 = first try succeeded). */
    int attempts = 0;
    /** Total backoff scheduled between attempts, in milliseconds. */
    double totalBackoffMs = 0.0;
    /** True when some attempt completed without throwing. */
    bool succeeded = false;
    /** what() of the last TransientError when exhausted. */
    std::string lastError;

    /** Retries consumed beyond the first attempt. */
    int retries() const { return attempts > 0 ? attempts - 1 : 0; }
};

/**
 * Run body(attempt) until it completes or the policy is exhausted,
 * sleeping the scheduled backoff on @p clock between attempts. Jitter
 * (when the policy enables it) is drawn from @p jitter's child(k)
 * stream for retry k — a pure function of the caller-chosen stream
 * node, so schedules are reproducible and independent across units.
 * TransientError triggers a retry; every other exception propagates.
 * Never throws on exhaustion — the caller decides how to degrade
 * (see resilience/degradation.hpp).
 */
RetryOutcome retryWithBackoff(const RetryPolicy &policy,
                              const std::function<void(int)> &body,
                              const Clock &clock,
                              const SeedSequence &jitter);

/** Legacy entry point: real clock, no jitter. */
RetryOutcome retryWithBackoff(const RetryPolicy &policy,
                              const std::function<void(int)> &body);

} // namespace qedm::runtime
