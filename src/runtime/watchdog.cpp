#include "runtime/watchdog.hpp"

#include "common/error.hpp"

namespace qedm::runtime {

Watchdog::Watchdog(const Clock &clock, double budget_ms,
                   std::size_t members)
    : clock_(clock), budget_(budget_ms), spent_(members, 0.0)
{
    QEDM_REQUIRE(budget_ms > 0.0,
                 "watchdog budget must be positive; use no watchdog "
                 "for an unlimited member");
}

bool
Watchdog::expired(std::size_t member) const
{
    const std::lock_guard<std::mutex> lock(mutex_);
    QEDM_ASSERT(member < spent_.size(),
                "watchdog query outside the monitored member range");
    return spent_[member] > budget_;
}

void
Watchdog::charge(std::size_t member, double elapsed_ms) const
{
    const std::lock_guard<std::mutex> lock(mutex_);
    QEDM_ASSERT(member < spent_.size(),
                "watchdog charge outside the monitored member range");
    if (elapsed_ms > 0.0)
        spent_[member] += elapsed_ms;
}

double
Watchdog::spentMs(std::size_t member) const
{
    const std::lock_guard<std::mutex> lock(mutex_);
    QEDM_ASSERT(member < spent_.size(),
                "watchdog query outside the monitored member range");
    return spent_[member];
}

} // namespace qedm::runtime
