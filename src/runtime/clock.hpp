/**
 * @file
 * The injectable wall-clock boundary of the runtime layer.
 *
 * Everything in qedm that must be reproducible runs on virtual time
 * (resilience deadlines, fault schedules); real wall time is still
 * needed by the watchdog, the retry sleeper, and pass timing. All of
 * it enters through this one interface: production code takes a
 * `const Clock &` and the process-wide SteadyClock singleton, tests
 * substitute a ManualClock and never sleep for real. This file is the
 * sanctioned home of std::chrono::steady_clock — the qedm_analyze
 * `wall-clock` rule rejects steady_clock::now anywhere else in src/.
 */

#pragma once

#include <mutex>

namespace qedm::runtime {

/** Monotonic millisecond clock plus a sleeper, injectable for tests. */
class Clock
{
  public:
    virtual ~Clock() = default;

    /** Monotonic milliseconds since an arbitrary fixed origin. */
    virtual double nowMs() const = 0;

    /** Block (or pretend to) for @p ms milliseconds. */
    virtual void sleepMs(double ms) const = 0;
};

/** The real monotonic clock (std::chrono::steady_clock). */
class SteadyClock final : public Clock
{
  public:
    double nowMs() const override;
    void sleepMs(double ms) const override;
};

/** Process-wide SteadyClock instance (stateless; safe to share). */
const Clock &steadyClock();

/**
 * Deterministic fake clock for tests: time only moves when the test
 * advances it, sleepMs advances it instead of blocking, and an
 * optional auto-advance step makes every nowMs() read tick forward by
 * a fixed amount (so "each batch took exactly step ms" scenarios need
 * no instrumentation). Thread-safe; reads under contention are
 * ordered by the internal mutex, so fully deterministic scenarios
 * should drive it from one thread (--jobs 1).
 */
class ManualClock final : public Clock
{
  public:
    explicit ManualClock(double start_ms = 0.0,
                         double advance_per_read_ms = 0.0)
        : now_(start_ms), step_(advance_per_read_ms)
    {
    }

    double nowMs() const override
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        const double t = now_;
        now_ += step_;
        return t;
    }

    /** Sleeping on a fake clock advances it; no real time passes. */
    void sleepMs(double ms) const override { advance(ms); }

    void advance(double ms) const
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        now_ += ms;
    }

    void set(double ms) const
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        now_ = ms;
    }

  private:
    mutable std::mutex mutex_;
    mutable double now_;
    double step_;
};

} // namespace qedm::runtime
