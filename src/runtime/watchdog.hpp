/**
 * @file
 * Wall-clock watchdog for member-batch execution.
 *
 * The resilience layer's per-member deadlines run on deterministic
 * virtual time, which is what makes them replayable — but a production
 * runner also needs protection against *real* hangs: a member whose
 * batches burn wall time far past their budget must be abandoned
 * instead of stalling the ensemble barrier. The Watchdog arms per
 * member-batch: before a batch executes, the caller asks whether the
 * member's cumulative wall spend has blown its budget; after the batch
 * it charges the elapsed time back. When the watchdog fires, the
 * caller abandons the member from that batch on through the existing
 * degradation path and *records* the abandonment (journal +
 * DegradationReport), so the inherently nondeterministic wall-clock
 * decision becomes a durable fact that `--replay-faults` re-applies as
 * a forced fault — the replayed run is then bit-identical at any
 * --jobs value despite wall time never repeating.
 *
 * The clock is injectable (runtime::Clock) so tests drive the watchdog
 * on a ManualClock and never wait for real time.
 */

#pragma once

#include <cstddef>
#include <mutex>
#include <vector>

#include "runtime/clock.hpp"

namespace qedm::runtime {

/** Per-member wall-clock budget monitor. Thread-safe. */
class Watchdog
{
  public:
    /**
     * @param clock     time source (not owned; must outlive this)
     * @param budget_ms wall-clock budget per member; must be > 0
     * @param members   number of members monitored
     */
    Watchdog(const Clock &clock, double budget_ms, std::size_t members);

    const Clock &timeSource() const { return clock_; }
    double budgetMs() const { return budget_; }

    /**
     * Arm for one batch of @p member: true when the member's budget is
     * already exhausted and the batch must be abandoned instead of
     * executed (the caller records the abandonment).
     */
    bool expired(std::size_t member) const;

    /** Charge @p elapsed_ms of wall time to @p member. */
    void charge(std::size_t member, double elapsed_ms) const;

    /** Wall time charged to @p member so far. */
    double spentMs(std::size_t member) const;

  private:
    const Clock &clock_;
    double budget_;
    mutable std::mutex mutex_;
    mutable std::vector<double> spent_;
};

} // namespace qedm::runtime
