#include "runtime/retry.hpp"

#include <chrono>
#include <thread>

namespace qedm::runtime {

RetryOutcome
retryWithBackoff(const RetryPolicy &policy,
                 const std::function<void(int)> &body)
{
    QEDM_REQUIRE(policy.maxAttempts >= 1,
                 "retry policy needs at least one attempt");
    QEDM_REQUIRE(policy.backoffBaseMs >= 0.0,
                 "backoff base must be non-negative");
    RetryOutcome outcome;
    double next_backoff = policy.backoffBaseMs;
    for (int attempt = 0; attempt < policy.maxAttempts; ++attempt) {
        if (attempt > 0) {
            outcome.totalBackoffMs += next_backoff;
            if (next_backoff > 0.0) {
                std::this_thread::sleep_for(
                    std::chrono::duration<double, std::milli>(
                        next_backoff));
            }
            next_backoff *= policy.backoffFactor;
        }
        ++outcome.attempts;
        try {
            body(attempt);
            outcome.succeeded = true;
            return outcome;
        } catch (const TransientError &e) {
            outcome.lastError = e.what();
        }
    }
    return outcome;
}

} // namespace qedm::runtime
