#include "runtime/retry.hpp"

namespace qedm::runtime {

RetryOutcome
retryWithBackoff(const RetryPolicy &policy,
                 const std::function<void(int)> &body, const Clock &clock,
                 const SeedSequence &jitter)
{
    QEDM_REQUIRE(policy.maxAttempts >= 1,
                 "retry policy needs at least one attempt");
    QEDM_REQUIRE(policy.backoffBaseMs >= 0.0,
                 "backoff base must be non-negative");
    QEDM_REQUIRE(policy.jitterFraction >= 0.0 &&
                     policy.jitterFraction <= 1.0,
                 "jitter fraction must be in [0, 1]");
    RetryOutcome outcome;
    double next_backoff = policy.backoffBaseMs;
    for (int attempt = 0; attempt < policy.maxAttempts; ++attempt) {
        if (attempt > 0) {
            double delay = next_backoff;
            if (policy.jitterFraction > 0.0) {
                // One child stream per retry index: the scale factor
                // is a pure function of (jitter stream, attempt), so
                // identical units replay identical schedules and
                // distinct units stay decorrelated.
                Rng rng =
                    jitter.child(static_cast<std::uint64_t>(attempt))
                        .rng();
                delay *= rng.uniform(1.0 - policy.jitterFraction,
                                     1.0 + policy.jitterFraction);
            }
            outcome.totalBackoffMs += delay;
            if (delay > 0.0)
                clock.sleepMs(delay);
            next_backoff *= policy.backoffFactor;
        }
        ++outcome.attempts;
        try {
            body(attempt);
            outcome.succeeded = true;
            return outcome;
        } catch (const TransientError &e) {
            outcome.lastError = e.what();
        }
    }
    return outcome;
}

RetryOutcome
retryWithBackoff(const RetryPolicy &policy,
                 const std::function<void(int)> &body)
{
    return retryWithBackoff(policy, body, steadyClock(), SeedSequence(0));
}

} // namespace qedm::runtime
