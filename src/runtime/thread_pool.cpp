#include "runtime/thread_pool.hpp"

#include <atomic>
#include <memory>

#include "common/error.hpp"

namespace qedm::runtime {

ThreadPool::ThreadPool(int threads)
{
    QEDM_REQUIRE(threads >= 1, "thread pool needs at least one worker");
    workers_.reserve(static_cast<std::size_t>(threads));
    for (int i = 0; i < threads; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    cv_.notify_all();
    for (auto &w : workers_)
        w.join();
}

void
ThreadPool::enqueue(std::function<void()> task)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        queue_.push_back(std::move(task));
    }
    cv_.notify_one();
}

std::future<void>
ThreadPool::submit(std::function<void()> task)
{
    auto packaged = std::make_shared<std::packaged_task<void()>>(
        std::move(task));
    std::future<void> future = packaged->get_future();
    enqueue([packaged] { (*packaged)(); });
    return future;
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            cv_.wait(lock,
                     [this] { return stopping_ || !queue_.empty(); });
            if (queue_.empty())
                return; // stopping and drained
            task = std::move(queue_.front());
            queue_.pop_front();
        }
        task();
    }
}

void
ThreadPool::parallelFor(std::size_t n,
                        const std::function<void(std::size_t)> &body)
{
    if (n == 0)
        return;
    if (n == 1) {
        body(0);
        return;
    }

    // Shared loop state. Helpers may be dequeued after this call
    // returns (when the caller drained everything first), so the state
    // — including a copy of the body — lives behind a shared_ptr.
    struct State
    {
        std::atomic<std::size_t> next{0};
        std::atomic<std::size_t> done{0};
        std::atomic<bool> failed{false};
        std::size_t total = 0;
        std::function<void(std::size_t)> body;
        std::mutex mutex;
        std::condition_variable cv;
        std::exception_ptr error;
    };
    auto st = std::make_shared<State>();
    st->total = n;
    st->body = body;

    auto drain = [st] {
        for (;;) {
            const std::size_t i = st->next.fetch_add(1);
            if (i >= st->total)
                return;
            if (!st->failed.load(std::memory_order_relaxed)) {
                try {
                    st->body(i);
                } catch (...) {
                    std::lock_guard<std::mutex> lock(st->mutex);
                    if (!st->error)
                        st->error = std::current_exception();
                    st->failed.store(true, std::memory_order_relaxed);
                }
            }
            if (st->done.fetch_add(1) + 1 == st->total) {
                std::lock_guard<std::mutex> lock(st->mutex);
                st->cv.notify_all();
            }
        }
    };

    const std::size_t helpers = std::min(workers_.size(), n - 1);
    for (std::size_t h = 0; h < helpers; ++h)
        enqueue(drain);
    drain(); // the caller participates: nested loops cannot deadlock

    std::unique_lock<std::mutex> lock(st->mutex);
    st->cv.wait(lock,
                [&] { return st->done.load() >= st->total; });
    if (st->error)
        std::rethrow_exception(st->error);
}

int
ThreadPool::hardwareConcurrency()
{
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<int>(hw);
}

} // namespace qedm::runtime
