#include "runtime/clock.hpp"

#include <chrono>
#include <thread>

namespace qedm::runtime {

double
SteadyClock::nowMs() const
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

void
SteadyClock::sleepMs(double ms) const
{
    if (ms <= 0.0)
        return;
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(ms));
}

const Clock &
steadyClock()
{
    static const SteadyClock clock_registry;
    return clock_registry;
}

} // namespace qedm::runtime
