/**
 * @file
 * Job scheduling front-end for the qedm runtime layer.
 *
 * A JobScheduler is a cheap, copyable handle on a shared ThreadPool
 * plus the policy of *how many* jobs the user asked for (the `--jobs`
 * knob). jobs == 1 means strictly sequential execution with no pool at
 * all; jobs == 0 resolves to the hardware thread count. Copies share
 * the same pool, so `runExperiment` can fan rounds out and hand the
 * *same* scheduler to each round's EdmPipeline for the nested
 * member/shot-batch fan-out without oversubscribing.
 *
 * Determinism contract: parallelFor assigns work by index, and every
 * qedm work unit derives its RNG stream from a SeedSequence key and
 * writes into a pre-assigned result slot, so results are identical for
 * any jobs value — scheduling order never leaks into outputs.
 */

#pragma once

#include <cstddef>
#include <functional>
#include <memory>

#include "runtime/thread_pool.hpp"

namespace qedm::runtime {

/** Shared-pool scheduler implementing the `--jobs N` policy. */
class JobScheduler
{
  public:
    /**
     * @param jobs worker count: 1 = sequential (no threads spawned),
     *        0 = hardware concurrency, N > 1 = fixed pool of N.
     */
    explicit JobScheduler(int jobs = 1);

    /** Resolved job count (>= 1). */
    int jobs() const { return jobs_; }

    /** True when a pool exists (jobs > 1). */
    bool parallel() const { return pool_ != nullptr; }

    /**
     * Run body(i) for i in [0, n), in parallel when a pool exists,
     * inline otherwise. Blocks; rethrows the first exception. Safe to
     * nest (see ThreadPool::parallelFor).
     */
    void parallelFor(std::size_t n,
                     const std::function<void(std::size_t)> &body) const;

  private:
    std::shared_ptr<ThreadPool> pool_; // null when jobs == 1
    int jobs_ = 1;
};

} // namespace qedm::runtime
