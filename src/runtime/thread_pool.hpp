/**
 * @file
 * Fixed-size worker pool for the qedm runtime layer.
 *
 * Deliberately simple — no work stealing, no priorities: a locked
 * FIFO feeds N workers. The ensemble/round workloads this serves are
 * coarse-grained (thousands of simulated shots per task), so queue
 * contention is irrelevant; what matters is that `parallelFor` is
 * safely *nestable*. The calling thread always participates in
 * draining its own loop, so a worker that issues a nested parallelFor
 * makes progress even when every pool thread is busy — no deadlock,
 * at worst the nested loop runs inline.
 */

#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace qedm::runtime {

/** Fixed-size thread pool with nestable parallel loops. */
class ThreadPool
{
  public:
    /** Spawn @p threads workers. Requires threads >= 1. */
    explicit ThreadPool(int threads);

    /** Drains every queued task, then joins the workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Number of worker threads (excluding participating callers). */
    std::size_t size() const { return workers_.size(); }

    /** Queue a task; the returned future carries any exception. */
    std::future<void> submit(std::function<void()> task);

    /**
     * Run body(i) for every i in [0, n). Blocks until all iterations
     * finish. Iterations run on the workers *and* the calling thread;
     * the first exception is rethrown after the loop completes (the
     * remaining iterations are skipped, not torn down mid-flight).
     * Safe to call from inside another parallelFor on the same pool.
     */
    void parallelFor(std::size_t n,
                     const std::function<void(std::size_t)> &body);

    /** std::thread::hardware_concurrency with a sane floor of 1. */
    static int hardwareConcurrency();

  private:
    void enqueue(std::function<void()> task);
    void workerLoop();

    std::vector<std::thread> workers_;
    std::deque<std::function<void()>> queue_;
    std::mutex mutex_;
    std::condition_variable cv_;
    bool stopping_ = false;
};

} // namespace qedm::runtime
