#include "analysis/buckets_balls.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.hpp"

namespace qedm::analysis {
namespace {

void
validate(const BucketsModel &model)
{
    QEDM_REQUIRE(model.numBuckets >= 2, "need at least two buckets");
    QEDM_REQUIRE(model.ps >= 0.0 && model.ps <= 1.0,
                 "ps must be a probability");
    QEDM_REQUIRE(model.qcor >= 0.0 && model.qcor <= 1.0,
                 "qcor must be a probability");
    QEDM_REQUIRE(model.numFavored >= 1 &&
                     model.numFavored <= model.numBuckets - 1,
                 "numFavored must be in [1, M-1]");
}

} // namespace

double
analyticalIstUncorrelated(double ps, int num_buckets,
                          std::uint64_t num_balls)
{
    QEDM_REQUIRE(num_buckets >= 2, "need at least two buckets");
    QEDM_REQUIRE(ps >= 0.0 && ps <= 1.0, "ps must be a probability");
    QEDM_REQUIRE(num_balls > 0, "need at least one ball");
    const double n = static_cast<double>(num_balls);
    const double pe = (1.0 - ps) / static_cast<double>(num_buckets - 1);
    const double green = n * ps;
    const double red_max =
        n * pe + 2.0 * std::sqrt(n * pe * (1.0 - pe));
    if (red_max <= 0.0)
        return green > 0.0 ? std::numeric_limits<double>::infinity()
                           : 0.0;
    return green / red_max;
}

double
monteCarloIst(const BucketsModel &model, std::uint64_t num_balls,
              Rng &rng)
{
    validate(model);
    QEDM_REQUIRE(num_balls > 0, "need at least one ball");
    const int m = model.numBuckets;
    const int k = model.numFavored;
    std::vector<std::uint64_t> buckets(static_cast<std::size_t>(m), 0);

    // Bucket 0 is green; buckets 1..k are purple; the rest are red.
    for (std::uint64_t ball = 0; ball < num_balls; ++ball) {
        const double r = rng.uniform();
        if (r < model.ps) {
            buckets[0] += 1;
        } else if (rng.uniform() < model.qcor) {
            // Demon intercept: uniform over the k purple buckets.
            buckets[1 + rng.uniformInt(static_cast<std::uint64_t>(k))] +=
                1;
        } else {
            // Uniform over all M - 1 incorrect buckets (the purple
            // buckets receive the Demon's share *on top of* their
            // uniform share; this is what reproduces the paper's
            // frontier values of 1.8% / 3.6% / 8%).
            buckets[1 + rng.uniformInt(
                            static_cast<std::uint64_t>(m - 1))] += 1;
        }
    }
    const std::uint64_t green = buckets[0];
    std::uint64_t worst = 0;
    for (std::size_t i = 1; i < buckets.size(); ++i)
        worst = std::max(worst, buckets[i]);
    if (worst == 0)
        return green > 0 ? std::numeric_limits<double>::infinity() : 0.0;
    return static_cast<double>(green) / static_cast<double>(worst);
}

double
meanMonteCarloIst(const BucketsModel &model, std::uint64_t num_balls,
                  int reps, Rng &rng)
{
    QEDM_REQUIRE(reps >= 1, "need at least one repetition");
    double sum = 0.0;
    for (int i = 0; i < reps; ++i)
        sum += monteCarloIst(model, num_balls, rng);
    return sum / static_cast<double>(reps);
}

std::vector<CurvePoint>
istVsPstCurve(BucketsModel model, double ps_min, double ps_max,
              int points, std::uint64_t num_balls, int reps, Rng &rng)
{
    QEDM_REQUIRE(points >= 2, "need at least two curve points");
    QEDM_REQUIRE(ps_min >= 0.0 && ps_max <= 1.0 && ps_min < ps_max,
                 "invalid ps range");
    std::vector<CurvePoint> curve;
    curve.reserve(static_cast<std::size_t>(points));
    for (int i = 0; i < points; ++i) {
        const double ps =
            ps_min + (ps_max - ps_min) * i /
                         static_cast<double>(points - 1);
        model.ps = ps;
        curve.push_back(
            CurvePoint{ps, meanMonteCarloIst(model, num_balls, reps,
                                             rng)});
    }
    return curve;
}

double
pstFrontier(BucketsModel model, std::uint64_t num_balls, int reps,
            Rng &rng)
{
    double lo = 0.0, hi = 1.0;
    for (int iter = 0; iter < 24; ++iter) {
        const double mid = 0.5 * (lo + hi);
        model.ps = mid;
        if (meanMonteCarloIst(model, num_balls, reps, rng) >= 1.0)
            hi = mid;
        else
            lo = mid;
    }
    return 0.5 * (lo + hi);
}

} // namespace qedm::analysis
