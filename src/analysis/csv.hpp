/**
 * @file
 * Minimal CSV export for bench series, so figure data can be plotted
 * outside the terminal (gnuplot/matplotlib).
 */

#pragma once

#include <string>
#include <vector>

namespace qedm::analysis {

/** Accumulates rows and writes an RFC-4180-ish CSV file. */
class CsvWriter
{
  public:
    /** @param header column names (quoted/escaped as needed). */
    explicit CsvWriter(std::vector<std::string> header);

    /** Append a row; must match the header width. */
    void addRow(std::vector<std::string> cells);

    /** Render the full document (header + rows). */
    std::string toString() const;

    /** Write to @p path; throws qedm::UserError on I/O failure. */
    void writeFile(const std::string &path) const;

    std::size_t rowCount() const { return rows_.size(); }

  private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace qedm::analysis
