#include "analysis/csv.hpp"

#include <fstream>
#include <sstream>

#include "common/error.hpp"

namespace qedm::analysis {
namespace {

/** Quote a cell when it contains separators, quotes, or newlines. */
std::string
escape(const std::string &cell)
{
    if (cell.find_first_of(",\"\n") == std::string::npos)
        return cell;
    std::string out = "\"";
    for (char c : cell) {
        if (c == '"')
            out += '"';
        out += c;
    }
    out += '"';
    return out;
}

} // namespace

CsvWriter::CsvWriter(std::vector<std::string> header)
    : header_(std::move(header))
{
    QEDM_REQUIRE(!header_.empty(), "CSV needs at least one column");
}

void
CsvWriter::addRow(std::vector<std::string> cells)
{
    QEDM_REQUIRE(cells.size() == header_.size(),
                 "CSV row width must match the header");
    rows_.push_back(std::move(cells));
}

std::string
CsvWriter::toString() const
{
    std::ostringstream os;
    auto emit = [&](const std::vector<std::string> &cells) {
        for (std::size_t i = 0; i < cells.size(); ++i) {
            if (i)
                os << ",";
            os << escape(cells[i]);
        }
        os << "\n";
    };
    emit(header_);
    for (const auto &row : rows_)
        emit(row);
    return os.str();
}

void
CsvWriter::writeFile(const std::string &path) const
{
    std::ofstream out(path);
    QEDM_REQUIRE(out.good(), "cannot open CSV file: " + path);
    out << toString();
    QEDM_REQUIRE(out.good(), "write failed for CSV file: " + path);
}

} // namespace qedm::analysis
