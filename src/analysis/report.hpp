/**
 * @file
 * Plain-text reporting helpers shared by the bench binaries: aligned
 * tables, ASCII bar series, and shaded heat maps (the textual analogue
 * of the paper's figures).
 */

#pragma once

#include <string>
#include <vector>

#include "stats/distribution.hpp"

namespace qedm::analysis {

/** Column-aligned plain-text table. */
class Table
{
  public:
    explicit Table(std::vector<std::string> headers);

    /** Add one row; must match the header count. */
    void addRow(std::vector<std::string> cells);

    /** Render with aligned columns. */
    std::string toString() const;

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/** Fixed-precision number formatting. */
std::string fmt(double value, int precision = 3);

/** A horizontal ASCII bar: value / scale of @p width characters. */
std::string bar(double value, double scale, int width = 40);

/**
 * Render a matrix as a shaded ASCII heat map; darker glyphs mean
 * *smaller* values, matching the paper's Fig. 4 convention where dark
 * cells are near-zero divergence.
 */
std::string heatmap(const std::vector<std::vector<double>> &matrix,
                    const std::vector<std::string> &labels);

/**
 * Sorted output-distribution dump (paper Fig. 3 style): top @p top_k
 * outcomes by probability with bars; the correct outcome is marked.
 */
std::string distributionReport(const stats::Distribution &dist,
                               Outcome correct, std::size_t top_k = 16);

} // namespace qedm::analysis
