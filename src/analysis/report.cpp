#include "analysis/report.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <sstream>

#include "common/error.hpp"
#include "stats/metrics.hpp"

namespace qedm::analysis {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
    QEDM_REQUIRE(!headers_.empty(), "table needs at least one column");
}

void
Table::addRow(std::vector<std::string> cells)
{
    QEDM_REQUIRE(cells.size() == headers_.size(),
                 "row width must match the header");
    rows_.push_back(std::move(cells));
}

std::string
Table::toString() const
{
    std::vector<std::size_t> width(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        width[c] = headers_[c].size();
    for (const auto &row : rows_) {
        for (std::size_t c = 0; c < row.size(); ++c)
            width[c] = std::max(width[c], row[c].size());
    }
    std::ostringstream os;
    auto emit = [&](const std::vector<std::string> &cells) {
        for (std::size_t c = 0; c < cells.size(); ++c) {
            os << std::left << std::setw(static_cast<int>(width[c]) + 2)
               << cells[c];
        }
        os << "\n";
    };
    emit(headers_);
    std::size_t total = 0;
    for (std::size_t w : width)
        total += w + 2;
    os << std::string(total, '-') << "\n";
    for (const auto &row : rows_)
        emit(row);
    return os.str();
}

std::string
fmt(double value, int precision)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << value;
    return os.str();
}

std::string
bar(double value, double scale, int width)
{
    QEDM_REQUIRE(scale > 0.0 && width > 0, "invalid bar scale/width");
    const int filled = static_cast<int>(
        std::round(std::clamp(value / scale, 0.0, 1.0) * width));
    return std::string(static_cast<std::size_t>(filled), '#') +
           std::string(static_cast<std::size_t>(width - filled), '.');
}

std::string
heatmap(const std::vector<std::vector<double>> &matrix,
        const std::vector<std::string> &labels)
{
    const std::size_t n = matrix.size();
    QEDM_REQUIRE(labels.size() == n, "one label per matrix row");
    double max_v = 0.0;
    for (const auto &row : matrix) {
        QEDM_REQUIRE(row.size() == n, "heatmap matrix must be square");
        for (double v : row)
            max_v = std::max(max_v, v);
    }
    // Dark-to-light shades: small divergence renders dark.
    static const char shades[] = {'@', '#', '+', ':', '.', ' '};
    constexpr int levels = 6;

    std::ostringstream os;
    os << "    ";
    for (const auto &label : labels)
        os << std::setw(3) << label.substr(0, 2);
    os << "\n";
    for (std::size_t i = 0; i < n; ++i) {
        os << std::left << std::setw(4) << labels[i].substr(0, 3);
        for (std::size_t j = 0; j < n; ++j) {
            int level = 0;
            if (max_v > 0.0) {
                level = static_cast<int>(matrix[i][j] / max_v *
                                         (levels - 1));
                level = std::clamp(level, 0, levels - 1);
            }
            os << "  " << shades[level];
        }
        os << "\n";
    }
    os << "(dark '@' = similar distributions, light ' ' = divergent;"
          " max SKL = "
       << fmt(max_v) << ")\n";
    return os.str();
}

std::string
distributionReport(const stats::Distribution &dist, Outcome correct,
                   std::size_t top_k)
{
    const auto top = dist.topK(top_k);
    double scale = top.empty() ? 1.0 : std::max(top.front().second, 1e-9);
    std::ostringstream os;
    for (const auto &[outcome, p] : top) {
        os << toBitstring(outcome, dist.width()) << "  "
           << std::setw(7) << fmt(p, 4) << "  " << bar(p, scale, 32)
           << (outcome == correct ? "  <= correct" : "") << "\n";
    }
    os << "PST = " << fmt(stats::pst(dist, correct), 4)
       << ", IST = " << fmt(stats::ist(dist, correct), 3) << "\n";
    return os.str();
}

} // namespace qedm::analysis
