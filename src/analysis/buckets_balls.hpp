/**
 * @file
 * The paper's Appendix-A buckets-and-balls analysis.
 *
 * Running an m-bit NISQ program for N trials is modeled as throwing N
 * balls at M = 2^m buckets: one green bucket (correct answer), and —
 * under correlated errors — a "Demon" that steers a fraction Qcor of
 * the erroneous balls into k favored (purple) buckets. The model
 * yields IST-vs-PST curves and the PST frontier (minimum PST at which
 * the correct answer can still be inferred, IST = 1).
 */

#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"

namespace qedm::analysis {

/** Demon-biased buckets-and-balls model parameters. */
struct BucketsModel
{
    /** Number of buckets M = 2^m (e.g. 64 for 6-bit programs). */
    int numBuckets = 64;
    /** Probability a ball lands in the green bucket (PST). */
    double ps = 0.05;
    /** Correlation factor: fraction of erroneous balls the Demon
     *  steers into the purple buckets (0 = uncorrelated). */
    double qcor = 0.0;
    /** Number of purple buckets; the paper uses k = log2(M). */
    int numFavored = 6;
};

/**
 * Closed-form IST estimate for the *uncorrelated* model: expected
 * green occupancy over the 95%-confidence maximum red occupancy
 * (Appendix A.2).
 */
double analyticalIstUncorrelated(double ps, int num_buckets,
                                 std::uint64_t num_balls);

/**
 * One Monte-Carlo experiment: throw @p num_balls balls per the model
 * and return the observed IST (green count / max other count).
 */
double monteCarloIst(const BucketsModel &model, std::uint64_t num_balls,
                     Rng &rng);

/** Mean IST over @p reps Monte-Carlo experiments. */
double meanMonteCarloIst(const BucketsModel &model,
                         std::uint64_t num_balls, int reps, Rng &rng);

/** One (ps, ist) sample point of the model curve. */
struct CurvePoint
{
    double ps;
    double ist;
};

/**
 * IST-vs-PST curve: sweep ps over [ps_min, ps_max] with @p points
 * samples, averaging @p reps Monte-Carlo runs per point.
 */
std::vector<CurvePoint>
istVsPstCurve(BucketsModel model, double ps_min, double ps_max,
              int points, std::uint64_t num_balls, int reps, Rng &rng);

/**
 * PST frontier: the smallest ps at which the model's mean IST reaches
 * 1 (bisection over ps; Appendix A.3).
 */
double pstFrontier(BucketsModel model, std::uint64_t num_balls, int reps,
                   Rng &rng);

} // namespace qedm::analysis
