/**
 * @file
 * Cross-round compiled-program cache.
 *
 * Variation-aware compilation depends on the calibration snapshot (the
 * placer and router read error rates), so a compiled program is only
 * valid for the calibration it was compiled against — exactly like
 * noise-adaptive compilers that recompile per calibration epoch
 * (Murali et al., ASPLOS'19). The cache therefore keys entries on
 * (device-view fingerprint, circuit fingerprint, route cost): a full
 * view's fingerprint is the device fingerprint, a masked region gets
 * its own key, and calibration drift yields a new fingerprint either
 * way, so stale programs are unreachable by construction and
 * eventually evicted by LRU. Repeated
 * compiles against an *unchanged* calibration — the four baselines of
 * one round, frozen-drift experiments, benches looping one workload —
 * hit.
 *
 * Thread-safe; shared by parallel rounds in runExperiment.
 */

#pragma once

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <tuple>

#include "transpile/transpiler.hpp"

namespace qedm::transpile {

/** Thread-safe LRU cache of compiled programs. */
class CompileCache
{
  public:
    /** @param capacity maximum resident programs (>= 1). */
    explicit CompileCache(std::size_t capacity = 256);

    /**
     * The compiled program for @p logical under @p compiler's device
     * and route cost; compiles on miss. The returned program is
     * immutable and shareable across threads.
     */
    std::shared_ptr<const CompiledProgram>
    getOrCompile(const Transpiler &compiler,
                 const circuit::Circuit &logical);

    std::size_t size() const;
    std::uint64_t hits() const;
    std::uint64_t misses() const;
    void clear();

  private:
    using Key = std::tuple<std::uint64_t, std::uint64_t, int>;

    std::size_t capacity_;
    mutable std::mutex mutex_;
    /** LRU order: front = most recent. */
    std::list<Key> order_;
    std::map<Key, std::pair<std::shared_ptr<const CompiledProgram>,
                            std::list<Key>::iterator>>
        entries_;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
};

} // namespace qedm::transpile
