#include "transpile/placer.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <optional>
#include <queue>
#include <utility>

#include "common/error.hpp"
#include "transpile/distances.hpp"
#include "transpile/esp_model.hpp"
#include "transpile/interaction_graph.hpp"
#include "transpile/placement_search.hpp"
#include "transpile/vf2.hpp"

namespace qedm::transpile {
namespace {

/** Readout success probability of a physical qubit. */
double
readoutSuccess(const hw::Device &device, int q)
{
    return 1.0 - device.calibration().qubit(q).readoutError();
}

/** Assign isolated logical qubits to the best remaining readout
 *  qubits, completing @p map in place. */
void
placeIsolated(const hw::Device &device, const std::vector<int> &isolated,
              std::vector<int> &map)
{
    std::vector<bool> used(device.numQubits(), false);
    for (int p : map) {
        if (p >= 0)
            used[p] = true;
    }
    for (int l : isolated) {
        int best = -1;
        double best_score = -1.0;
        for (int p = 0; p < device.numQubits(); ++p) {
            if (used[p])
                continue;
            const double score = readoutSuccess(device, p);
            if (score > best_score) {
                best_score = score;
                best = p;
            }
        }
        QEDM_REQUIRE(best >= 0,
                     "device has fewer qubits than the program needs");
        map[l] = best;
        used[best] = true;
    }
}

/**
 * Everything placement scoring needs, built once per circuit: the
 * interaction pattern over active qubits, the decomposed gate trace,
 * and the shared calibration tables.
 */
struct PlacementProblem
{
    std::vector<int> active;       ///< pattern vertex -> logical qubit
    std::vector<int> patternIndex; ///< logical qubit -> pattern vertex
    std::vector<int> isolated;
    hw::Topology pattern{1, {}}; ///< placeholder; always rebuilt
    GateTrace trace;
    std::shared_ptr<const EspModel> model;
    int numQubits = 0;
};

/** Empty optional when the circuit has no interacting qubits. */
std::optional<PlacementProblem>
buildProblem(const hw::Device &device, const circuit::Circuit &logical)
{
    const InteractionGraph ig = interactionGraph(logical);
    QEDM_REQUIRE(ig.numQubits <= device.numQubits(),
                 "program needs more qubits than the device has");

    PlacementProblem problem;
    problem.numQubits = ig.numQubits;
    problem.patternIndex.assign(ig.numQubits, -1);
    for (int q = 0; q < ig.numQubits; ++q) {
        if (ig.degree(q) > 0) {
            problem.patternIndex[q] =
                static_cast<int>(problem.active.size());
            problem.active.push_back(q);
        }
    }
    if (problem.active.empty())
        return std::nullopt;

    std::vector<std::pair<int, int>> pattern_edges;
    pattern_edges.reserve(ig.edges.size());
    for (const auto &[a, b] : ig.edges)
        pattern_edges.emplace_back(problem.patternIndex[a],
                                   problem.patternIndex[b]);
    problem.pattern = hw::Topology(
        static_cast<int>(problem.active.size()), pattern_edges);
    problem.isolated = ig.isolatedQubits();
    problem.trace = EspModel::trace(logical.decomposed());
    problem.model = sharedEspModel(device);
    return problem;
}

/** Full logical-to-physical map for one pattern embedding. */
std::vector<int>
completeMap(const hw::Device &device, const PlacementProblem &problem,
            const std::vector<int> &embedding)
{
    std::vector<int> map(problem.numQubits, -1);
    for (std::size_t i = 0; i < problem.active.size(); ++i)
        map[problem.active[i]] = embedding[i];
    placeIsolated(device, problem.isolated, map);
    return map;
}

} // namespace

Placer::Placer(const hw::Device &device) : device_(device) {}

std::vector<ScoredPlacement>
Placer::topPlacements(const circuit::Circuit &logical, std::size_t k,
                      std::size_t limit) const
{
    const auto problem = buildProblem(device_, logical);
    std::vector<ScoredPlacement> out;
    if (!problem)
        return out;

    const PlacementCostModel cost(problem->model, problem->pattern,
                                  problem->patternIndex,
                                  problem->trace);
    const EmbeddingScorer scorer =
        [&](const std::vector<int> &embedding, std::vector<int> &map,
            double &esp) {
            map = completeMap(device_, *problem, embedding);
            esp = problem->model->espOfTrace(problem->trace, map);
        };
    auto best =
        topKPlacements(problem->pattern, cost, scorer, k, limit);
    out.reserve(best.size());
    for (auto &scored : best)
        out.push_back(
            ScoredPlacement{std::move(scored.map), scored.esp});
    return out;
}

std::vector<ScoredPlacement>
Placer::rankedEmbeddings(const circuit::Circuit &logical,
                         std::size_t limit) const
{
    const auto problem = buildProblem(device_, logical);
    std::vector<ScoredPlacement> out;
    if (!problem)
        return out;

    const auto embeddings =
        vf2AllEmbeddings(problem->pattern, device_.topology(), limit);
    out.reserve(embeddings.size());
    for (const auto &embedding : embeddings) {
        std::vector<int> map = completeMap(device_, *problem, embedding);
        const double score =
            problem->model->espOfTrace(problem->trace, map);
        out.push_back(ScoredPlacement{std::move(map), score});
    }
    std::sort(out.begin(), out.end(),
              [](const ScoredPlacement &a, const ScoredPlacement &b) {
                  return placementBefore(a.esp, a.map, b.esp, b.map);
              });
    return out;
}

std::vector<int>
Placer::greedyPlace(const circuit::Circuit &logical) const
{
    const InteractionGraph ig = interactionGraph(logical);
    QEDM_REQUIRE(ig.numQubits <= device_.numQubits(),
                 "program needs more qubits than the device has");
    const auto dist =
        sharedDistanceMatrix(device_, RouteCost::Reliability);
    const auto &topo = device_.topology();

    // Interacting qubits in order of decreasing degree.
    std::vector<int> order;
    for (int q = 0; q < ig.numQubits; ++q) {
        if (ig.degree(q) > 0)
            order.push_back(q);
    }
    std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
        return ig.degree(a) > ig.degree(b);
    });

    std::vector<int> map(ig.numQubits, -1);
    std::vector<bool> used(device_.numQubits(), false);

    for (int l : order) {
        // Placed interaction partners of l, with weights.
        std::vector<std::pair<int, int>> partners; // (physical, weight)
        for (std::size_t e = 0; e < ig.edges.size(); ++e) {
            const auto &[a, b] = ig.edges[e];
            const int other = a == l ? b : (b == l ? a : -1);
            if (other >= 0 && map[other] >= 0)
                partners.emplace_back(map[other], ig.weights[e]);
        }
        int best = -1;
        double best_cost = std::numeric_limits<double>::max();
        for (int p = 0; p < device_.numQubits(); ++p) {
            if (used[p])
                continue;
            double cost = 0.0;
            if (partners.empty()) {
                // Seed vertex: prefer well-connected, reliable regions.
                double link_quality = 0.0;
                for (int nbr : topo.neighbors(p)) {
                    const int e = topo.edgeIndex(p, nbr);
                    link_quality += 1.0 - device_.calibration()
                                              .edge(std::size_t(e))
                                              .cxError;
                }
                cost = -(link_quality + readoutSuccess(device_, p));
            } else {
                for (const auto &[phys, w] : partners)
                    cost += w * (*dist)[p][phys];
                cost -= 0.01 * readoutSuccess(device_, p);
            }
            if (cost < best_cost) {
                best_cost = cost;
                best = p;
            }
        }
        QEDM_REQUIRE(best >= 0,
                     "device has fewer qubits than the program needs");
        map[l] = best;
        used[best] = true;
    }
    placeIsolated(device_, ig.isolatedQubits(), map);
    return map;
}

std::vector<int>
Placer::place(const circuit::Circuit &logical) const
{
    const auto top = topPlacements(logical, 1);
    if (!top.empty())
        return top.front().map;
    return greedyPlace(logical);
}

} // namespace qedm::transpile
