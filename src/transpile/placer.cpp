#include "transpile/placer.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <mutex>
#include <optional>
#include <queue>
#include <utility>

#include "common/error.hpp"
#include "transpile/distances.hpp"
#include "transpile/esp_model.hpp"
#include "transpile/interaction_graph.hpp"
#include "transpile/placement_search.hpp"
#include "transpile/vf2.hpp"

namespace qedm::transpile {
namespace {

/** Readout success probability of a physical qubit. */
double
readoutSuccess(const hw::Device &device, int q)
{
    return 1.0 - device.calibration().qubit(q).readoutError();
}

/** Assign isolated logical qubits to the best remaining readout
 *  qubits inside the view, completing @p map in place. */
void
placeIsolated(const hw::DeviceView &view, const std::vector<int> &isolated,
              std::vector<int> &map)
{
    const hw::Device &device = view.device();
    std::vector<bool> used(device.numQubits(), false);
    for (int p : map) {
        if (p >= 0)
            used[p] = true;
    }
    for (int l : isolated) {
        int best = -1;
        double best_score = -1.0;
        for (int p = 0; p < device.numQubits(); ++p) {
            if (used[p] || !view.allowed(p))
                continue;
            const double score = readoutSuccess(device, p);
            if (score > best_score) {
                best_score = score;
                best = p;
            }
        }
        QEDM_REQUIRE(best >= 0,
                     "device has fewer qubits than the program needs");
        map[l] = best;
        used[best] = true;
    }
}

/**
 * Everything placement scoring needs, built once per circuit: the
 * interaction pattern over active qubits, the decomposed gate trace,
 * and the shared calibration tables.
 */
struct PlacementProblem
{
    std::vector<int> active;       ///< pattern vertex -> logical qubit
    std::vector<int> patternIndex; ///< logical qubit -> pattern vertex
    std::vector<int> isolated;
    hw::Topology pattern{1, {}}; ///< placeholder; always rebuilt
    GateTrace trace;
    std::shared_ptr<const EspModel> model;
    int numQubits = 0;
};

/** Empty optional when the circuit has no interacting qubits. */
std::optional<PlacementProblem>
buildProblem(const hw::DeviceView &view, const circuit::Circuit &logical)
{
    const InteractionGraph ig = interactionGraph(logical);
    QEDM_REQUIRE(ig.numQubits <= view.device().numQubits(),
                 "program needs more qubits than the device has");
    QEDM_REQUIRE(ig.numQubits <= view.numAllowed(),
                 "program needs more qubits than the region allows");

    PlacementProblem problem;
    problem.numQubits = ig.numQubits;
    problem.patternIndex.assign(ig.numQubits, -1);
    for (int q = 0; q < ig.numQubits; ++q) {
        if (ig.degree(q) > 0) {
            problem.patternIndex[q] =
                static_cast<int>(problem.active.size());
            problem.active.push_back(q);
        }
    }
    if (problem.active.empty())
        return std::nullopt;

    std::vector<std::pair<int, int>> pattern_edges;
    pattern_edges.reserve(ig.edges.size());
    for (const auto &[a, b] : ig.edges)
        pattern_edges.emplace_back(problem.patternIndex[a],
                                   problem.patternIndex[b]);
    problem.pattern = hw::Topology(
        static_cast<int>(problem.active.size()), pattern_edges);
    problem.isolated = ig.isolatedQubits();
    problem.trace = EspModel::trace(logical.decomposed());
    problem.model = sharedEspModel(view);
    return problem;
}

/** Full logical-to-physical map for one pattern embedding. */
std::vector<int>
completeMap(const hw::DeviceView &view, const PlacementProblem &problem,
            const std::vector<int> &embedding)
{
    std::vector<int> map(problem.numQubits, -1);
    for (std::size_t i = 0; i < problem.active.size(); ++i)
        map[problem.active[i]] = embedding[i];
    if (!problem.isolated.empty())
        placeIsolated(view, problem.isolated, map);
    return map;
}

/**
 * One memoized placement problem: the circuit-derived pieces plus the
 * cost model and precompiled search plan built over them. The members
 * reference each other (cost reads problem, plan reads both), so they
 * live and die together; once constructed the whole bundle is
 * immutable and safe to share across threads.
 */
struct CachedSearch
{
    PlacementProblem problem;
    PlacementCostModel cost;
    PlacementSearchPlan plan;

    CachedSearch(PlacementProblem prob, const std::vector<bool> *mask)
        : problem(std::move(prob)),
          cost(problem.model, problem.pattern, problem.patternIndex,
               problem.trace, mask),
          plan(problem.pattern, cost, mask)
    {
    }
};

} // namespace

struct Placer::Cache
{
    std::mutex mutex;
    std::uint64_t fingerprint = 0;
    std::shared_ptr<const CachedSearch> entry;
};

Placer::Placer(const hw::Device &device)
    : view_(device), cache_(std::make_shared<Cache>())
{
}

Placer::Placer(hw::DeviceView view)
    : view_(std::move(view)), cache_(std::make_shared<Cache>())
{
}

std::vector<ScoredPlacement>
Placer::topPlacements(const circuit::Circuit &logical, std::size_t k,
                      std::size_t limit) const
{
    const std::uint64_t fp = logical.fingerprint();
    std::shared_ptr<const CachedSearch> search;
    {
        std::lock_guard<std::mutex> lock(cache_->mutex);
        if (cache_->entry && cache_->fingerprint == fp)
            search = cache_->entry;
    }
    if (!search) {
        auto problem = buildProblem(view_, logical);
        if (!problem)
            return {};
        search = std::make_shared<const CachedSearch>(
            std::move(*problem), view_.maskPtr());
        std::lock_guard<std::mutex> lock(cache_->mutex);
        cache_->fingerprint = fp;
        cache_->entry = search;
    }

    const PlacementProblem &problem = search->problem;
    const EmbeddingScorer scorer =
        [&](const std::vector<int> &embedding, std::vector<int> &map,
            double &esp) {
            map = completeMap(view_, problem, embedding);
            esp = problem.model->espOfTrace(problem.trace, map);
        };
    auto best = topKPlacements(search->plan, scorer, k, limit, nullptr,
                               scheduler_);
    std::vector<ScoredPlacement> out;
    out.reserve(best.size());
    for (auto &scored : best)
        out.push_back(
            ScoredPlacement{std::move(scored.map), scored.esp});
    return out;
}

std::vector<ScoredPlacement>
Placer::rankedEmbeddings(const circuit::Circuit &logical,
                         std::size_t limit) const
{
    const auto problem = buildProblem(view_, logical);
    std::vector<ScoredPlacement> out;
    if (!problem)
        return out;

    const auto embeddings = vf2AllEmbeddings(
        problem->pattern, view_.topology(), limit, view_.maskPtr());
    out.reserve(embeddings.size());
    for (const auto &embedding : embeddings) {
        std::vector<int> map = completeMap(view_, *problem, embedding);
        const double score =
            problem->model->espOfTrace(problem->trace, map);
        out.push_back(ScoredPlacement{std::move(map), score});
    }
    std::sort(out.begin(), out.end(),
              [](const ScoredPlacement &a, const ScoredPlacement &b) {
                  return placementBefore(a.esp, a.map, b.esp, b.map);
              });
    return out;
}

std::vector<int>
Placer::greedyPlace(const circuit::Circuit &logical) const
{
    const hw::Device &device = view_.device();
    const InteractionGraph ig = interactionGraph(logical);
    QEDM_REQUIRE(ig.numQubits <= device.numQubits(),
                 "program needs more qubits than the device has");
    QEDM_REQUIRE(ig.numQubits <= view_.numAllowed(),
                 "program needs more qubits than the region allows");
    const auto dist =
        sharedDistanceProvider(view_, RouteCost::Reliability);
    const auto &topo = view_.topology();

    // Interacting qubits in order of decreasing degree.
    std::vector<int> order;
    for (int q = 0; q < ig.numQubits; ++q) {
        if (ig.degree(q) > 0)
            order.push_back(q);
    }
    std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
        return ig.degree(a) > ig.degree(b);
    });

    std::vector<int> map(ig.numQubits, -1);
    std::vector<bool> used(device.numQubits(), false);

    for (int l : order) {
        // Placed interaction partners of l, with weights.
        std::vector<std::pair<int, int>> partners; // (physical, weight)
        for (std::size_t e = 0; e < ig.edges.size(); ++e) {
            const auto &[a, b] = ig.edges[e];
            const int other = a == l ? b : (b == l ? a : -1);
            if (other >= 0 && map[other] >= 0)
                partners.emplace_back(map[other], ig.weights[e]);
        }
        int best = -1;
        double best_cost = std::numeric_limits<double>::max();
        for (int p = 0; p < device.numQubits(); ++p) {
            if (used[p] || !view_.allowed(p))
                continue;
            double cost = 0.0;
            if (partners.empty()) {
                // Seed vertex: prefer well-connected, reliable regions.
                double link_quality = 0.0;
                for (int nbr : topo.neighbors(p)) {
                    const int e = topo.edgeIndex(p, nbr);
                    link_quality += 1.0 - device.calibration()
                                              .edge(std::size_t(e))
                                              .cxError;
                }
                cost = -(link_quality + readoutSuccess(device, p));
            } else {
                for (const auto &[phys, w] : partners)
                    cost += w * dist->distance(p, phys);
                cost -= 0.01 * readoutSuccess(device, p);
            }
            if (cost < best_cost) {
                best_cost = cost;
                best = p;
            }
        }
        QEDM_REQUIRE(best >= 0,
                     "device has fewer qubits than the program needs");
        map[l] = best;
        used[best] = true;
    }
    placeIsolated(view_, ig.isolatedQubits(), map);
    return map;
}

std::vector<int>
Placer::place(const circuit::Circuit &logical) const
{
    const auto top = topPlacements(logical, 1);
    if (!top.empty())
        return top.front().map;
    return greedyPlace(logical);
}

} // namespace qedm::transpile
