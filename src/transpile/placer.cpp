#include "transpile/placer.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>

#include "common/error.hpp"
#include "transpile/distances.hpp"
#include "transpile/esp.hpp"
#include "transpile/interaction_graph.hpp"
#include "transpile/vf2.hpp"

namespace qedm::transpile {
namespace {

/** Readout success probability of a physical qubit. */
double
readoutSuccess(const hw::Device &device, int q)
{
    return 1.0 - device.calibration().qubit(q).readoutError();
}

/** Assign isolated logical qubits to the best remaining readout
 *  qubits, completing @p map in place. */
void
placeIsolated(const hw::Device &device, const std::vector<int> &isolated,
              std::vector<int> &map)
{
    std::vector<bool> used(device.numQubits(), false);
    for (int p : map) {
        if (p >= 0)
            used[p] = true;
    }
    for (int l : isolated) {
        int best = -1;
        double best_score = -1.0;
        for (int p = 0; p < device.numQubits(); ++p) {
            if (used[p])
                continue;
            const double score = readoutSuccess(device, p);
            if (score > best_score) {
                best_score = score;
                best = p;
            }
        }
        QEDM_REQUIRE(best >= 0,
                     "device has fewer qubits than the program needs");
        map[l] = best;
        used[best] = true;
    }
}

} // namespace

Placer::Placer(const hw::Device &device) : device_(device) {}

std::vector<ScoredPlacement>
Placer::rankedEmbeddings(const circuit::Circuit &logical,
                         std::size_t limit) const
{
    const InteractionGraph ig = interactionGraph(logical);
    QEDM_REQUIRE(ig.numQubits <= device_.numQubits(),
                 "program needs more qubits than the device has");

    // Pattern graph over the interacting (non-isolated) qubits only.
    std::vector<int> active; // pattern index -> logical qubit
    std::vector<int> patternIndex(ig.numQubits, -1);
    for (int q = 0; q < ig.numQubits; ++q) {
        if (ig.degree(q) > 0) {
            patternIndex[q] = static_cast<int>(active.size());
            active.push_back(q);
        }
    }
    std::vector<ScoredPlacement> out;
    if (active.empty())
        return out;

    std::vector<std::pair<int, int>> pattern_edges;
    for (const auto &[a, b] : ig.edges)
        pattern_edges.emplace_back(patternIndex[a], patternIndex[b]);
    const hw::Topology pattern(static_cast<int>(active.size()),
                               pattern_edges);

    const auto embeddings =
        vf2AllEmbeddings(pattern, device_.topology(), limit);
    out.reserve(embeddings.size());
    for (const auto &embedding : embeddings) {
        std::vector<int> map(ig.numQubits, -1);
        for (std::size_t i = 0; i < active.size(); ++i)
            map[active[i]] = embedding[i];
        placeIsolated(device_, ig.isolatedQubits(), map);
        const circuit::Circuit physical =
            logical.remapQubits(map, device_.numQubits());
        out.push_back(ScoredPlacement{map, esp(physical, device_)});
    }
    std::stable_sort(out.begin(), out.end(),
                     [](const ScoredPlacement &a,
                        const ScoredPlacement &b) {
                         return a.esp > b.esp;
                     });
    return out;
}

std::vector<int>
Placer::greedyPlace(const circuit::Circuit &logical) const
{
    const InteractionGraph ig = interactionGraph(logical);
    QEDM_REQUIRE(ig.numQubits <= device_.numQubits(),
                 "program needs more qubits than the device has");
    const auto dist = distanceMatrix(device_, RouteCost::Reliability);
    const auto &topo = device_.topology();

    // Interacting qubits in order of decreasing degree.
    std::vector<int> order;
    for (int q = 0; q < ig.numQubits; ++q) {
        if (ig.degree(q) > 0)
            order.push_back(q);
    }
    std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
        return ig.degree(a) > ig.degree(b);
    });

    std::vector<int> map(ig.numQubits, -1);
    std::vector<bool> used(device_.numQubits(), false);

    for (int l : order) {
        // Placed interaction partners of l, with weights.
        std::vector<std::pair<int, int>> partners; // (physical, weight)
        for (std::size_t e = 0; e < ig.edges.size(); ++e) {
            const auto &[a, b] = ig.edges[e];
            const int other = a == l ? b : (b == l ? a : -1);
            if (other >= 0 && map[other] >= 0)
                partners.emplace_back(map[other], ig.weights[e]);
        }
        int best = -1;
        double best_cost = std::numeric_limits<double>::max();
        for (int p = 0; p < device_.numQubits(); ++p) {
            if (used[p])
                continue;
            double cost = 0.0;
            if (partners.empty()) {
                // Seed vertex: prefer well-connected, reliable regions.
                double link_quality = 0.0;
                for (int nbr : topo.neighbors(p)) {
                    const int e = topo.edgeIndex(p, nbr);
                    link_quality += 1.0 - device_.calibration()
                                              .edge(std::size_t(e))
                                              .cxError;
                }
                cost = -(link_quality + readoutSuccess(device_, p));
            } else {
                for (const auto &[phys, w] : partners)
                    cost += w * dist[p][phys];
                cost -= 0.01 * readoutSuccess(device_, p);
            }
            if (cost < best_cost) {
                best_cost = cost;
                best = p;
            }
        }
        QEDM_REQUIRE(best >= 0,
                     "device has fewer qubits than the program needs");
        map[l] = best;
        used[best] = true;
    }
    placeIsolated(device_, ig.isolatedQubits(), map);
    return map;
}

std::vector<int>
Placer::place(const circuit::Circuit &logical) const
{
    const auto ranked = rankedEmbeddings(logical);
    if (!ranked.empty())
        return ranked.front().map;
    return greedyPlace(logical);
}

} // namespace qedm::transpile
