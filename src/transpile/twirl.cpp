#include "transpile/twirl.hpp"

#include "common/error.hpp"

namespace qedm::transpile {

using circuit::Circuit;
using circuit::Gate;
using circuit::OpKind;

namespace {

/** Single-qubit Pauli in symplectic (x, z) form. */
struct PauliBits
{
    int x = 0;
    int z = 0;
};

/** Emit the Pauli (if non-identity) on @p q. */
void
emitPauli(Circuit &out, PauliBits p, int q)
{
    if (p.x && p.z)
        out.y(q);
    else if (p.x)
        out.x(q);
    else if (p.z)
        out.z(q);
}

} // namespace

Circuit
pauliTwirl(const Circuit &circuit, Rng &rng)
{
    const Circuit flat = circuit.decomposed();
    Circuit out(flat.numQubits(), flat.numClbits());
    for (const Gate &g : flat.gates()) {
        if (g.kind != OpKind::Cx && g.kind != OpKind::Cz) {
            out.append(g);
            continue;
        }
        const int a = g.qubits[0];
        const int b = g.qubits[1];
        // Random input frame.
        PauliBits pa{static_cast<int>(rng.uniformInt(2)),
                     static_cast<int>(rng.uniformInt(2))};
        PauliBits pb{static_cast<int>(rng.uniformInt(2)),
                     static_cast<int>(rng.uniformInt(2))};
        // Conjugate through the gate (symplectic action, so that
        // after . gate . before == gate up to global phase).
        PauliBits qa = pa, qb = pb;
        if (g.kind == OpKind::Cx) {
            // CX(c=a, t=b): Xc -> Xc Xt, Zt -> Zc Zt.
            qa.z = pa.z ^ pb.z;
            qb.x = pb.x ^ pa.x;
        } else {
            // CZ: Xa -> Xa Zb, Xb -> Za Xb.
            qa.z = pa.z ^ pb.x;
            qb.z = pb.z ^ pa.x;
        }
        emitPauli(out, pa, a);
        emitPauli(out, pb, b);
        out.append(g);
        emitPauli(out, qa, a);
        emitPauli(out, qb, b);
    }
    return out;
}

} // namespace qedm::transpile
