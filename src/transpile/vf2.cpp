#include "transpile/vf2.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace qedm::transpile {
namespace {

/** Descending degrees of a vertex's neighbors. */
std::vector<int>
neighborSignature(const hw::Topology &graph, int v)
{
    std::vector<int> sig;
    sig.reserve(graph.neighbors(v).size());
    for (int u : graph.neighbors(v))
        sig.push_back(graph.degree(u));
    std::sort(sig.begin(), sig.end(), std::greater<>());
    return sig;
}

/**
 * Necessary condition for mapping a pattern vertex onto a target
 * vertex: the target's i-th largest neighbor degree must cover the
 * pattern's. Any embedding pairs each pattern neighbor with a distinct
 * target neighbor of at least its degree, so by a greedy/Hall argument
 * the sorted lists must dominate — the test never rejects a viable
 * host and the enumeration's output set and order are unchanged.
 */
bool
signatureDominates(const std::vector<int> &target_sig,
                   const std::vector<int> &pattern_sig)
{
    if (target_sig.size() < pattern_sig.size())
        return false;
    for (std::size_t i = 0; i < pattern_sig.size(); ++i) {
        if (target_sig[i] < pattern_sig[i])
            return false;
    }
    return true;
}

/** Recursive VF2-style state. */
class Matcher
{
  public:
    Matcher(const hw::Topology &pattern, const hw::Topology &target,
            std::size_t limit, const std::vector<bool> *allowed)
        : pattern_(pattern), target_(target), limit_(limit),
          allowed_(allowed)
    {
        targetSig_.reserve(target_.numQubits());
        for (int t = 0; t < target_.numQubits(); ++t)
            targetSig_.push_back(neighborSignature(target_, t));
        patternSig_.reserve(pattern_.numQubits());
        for (int v = 0; v < pattern_.numQubits(); ++v)
            patternSig_.push_back(neighborSignature(pattern_, v));
        // Match high-degree pattern vertices first, preferring vertices
        // connected to already-matched ones (VF2 candidate ordering).
        order_.reserve(pattern_.numQubits());
        std::vector<bool> placed(pattern_.numQubits(), false);
        for (int step = 0; step < pattern_.numQubits(); ++step) {
            int best = -1;
            int best_connected = -1;
            int best_degree = -1;
            for (int v = 0; v < pattern_.numQubits(); ++v) {
                if (placed[v])
                    continue;
                int connected = 0;
                for (int u : pattern_.neighbors(v)) {
                    if (placed[u])
                        ++connected;
                }
                const int degree = pattern_.degree(v);
                if (connected > best_connected ||
                    (connected == best_connected &&
                     degree > best_degree)) {
                    best = v;
                    best_connected = connected;
                    best_degree = degree;
                }
            }
            placed[best] = true;
            order_.push_back(best);
        }
        map_.assign(pattern_.numQubits(), -1);
        used_.assign(target_.numQubits(), false);
    }

    std::vector<std::vector<int>>
    run()
    {
        recurse(0);
        return std::move(results_);
    }

  private:
    void
    recurse(std::size_t depth)
    {
        if (results_.size() >= limit_)
            return;
        if (depth == order_.size()) {
            results_.push_back(map_);
            return;
        }
        const int v = order_[depth];
        // Candidates: neighbors of already-mapped pattern neighbors,
        // or any unused target vertex when v has none mapped yet.
        std::vector<int> candidates;
        int mapped_neighbor = -1;
        for (int u : pattern_.neighbors(v)) {
            if (map_[u] >= 0) {
                mapped_neighbor = u;
                break;
            }
        }
        if (mapped_neighbor >= 0) {
            candidates = target_.neighbors(map_[mapped_neighbor]);
        } else {
            candidates.resize(target_.numQubits());
            for (int t = 0; t < target_.numQubits(); ++t)
                candidates[t] = t;
        }
        for (int t : candidates) {
            if (used_[t])
                continue;
            // Mask filter. Degree/signature tests below keep using
            // full-graph degrees: a host viable in the induced
            // subgraph has at least its induced degree in the full
            // graph, so they stay admissible under the mask.
            if (allowed_ && !(*allowed_)[static_cast<std::size_t>(t)])
                continue;
            if (target_.degree(t) < pattern_.degree(v))
                continue;
            if (!signatureDominates(targetSig_[t], patternSig_[v]))
                continue;
            bool feasible = true;
            for (int u : pattern_.neighbors(v)) {
                if (map_[u] >= 0 && !target_.adjacent(map_[u], t)) {
                    feasible = false;
                    break;
                }
            }
            if (!feasible)
                continue;
            map_[v] = t;
            used_[t] = true;
            recurse(depth + 1);
            map_[v] = -1;
            used_[t] = false;
            if (results_.size() >= limit_)
                return;
        }
    }

    const hw::Topology &pattern_;
    const hw::Topology &target_;
    std::size_t limit_;
    const std::vector<bool> *allowed_;
    std::vector<std::vector<int>> targetSig_;
    std::vector<std::vector<int>> patternSig_;
    std::vector<int> order_;
    std::vector<int> map_;
    std::vector<bool> used_;
    std::vector<std::vector<int>> results_;
};

} // namespace

std::vector<std::vector<int>>
vf2AllEmbeddings(const hw::Topology &pattern, const hw::Topology &target,
                 std::size_t limit, const std::vector<bool> *allowed)
{
    QEDM_REQUIRE(pattern.numQubits() <= target.numQubits(),
                 "pattern is larger than the target graph");
    QEDM_REQUIRE(limit > 0, "limit must be positive");
    QEDM_REQUIRE(!allowed ||
                     allowed->size() ==
                         static_cast<std::size_t>(target.numQubits()),
                 "allowed mask size must match the target graph");
    Matcher matcher(pattern, target, limit, allowed);
    return matcher.run();
}

bool
vf2Embeds(const hw::Topology &pattern, const hw::Topology &target)
{
    if (pattern.numQubits() > target.numQubits())
        return false;
    return !vf2AllEmbeddings(pattern, target, 1).empty();
}

} // namespace qedm::transpile
