#include "transpile/vf2.hpp"

#include <algorithm>
#include <bit>
#include <cstdint>

#include "common/error.hpp"

namespace qedm::transpile {
namespace {

/** Descending degrees of a vertex's neighbors. */
std::vector<int>
neighborSignature(const hw::Topology &graph, int v)
{
    std::vector<int> sig;
    sig.reserve(graph.neighbors(v).size());
    for (int u : graph.neighbors(v))
        sig.push_back(graph.degree(u));
    std::sort(sig.begin(), sig.end(), std::greater<>());
    return sig;
}

/**
 * Necessary condition for mapping a pattern vertex onto a target
 * vertex: the target's i-th largest neighbor degree must cover the
 * pattern's. Any embedding pairs each pattern neighbor with a distinct
 * target neighbor of at least its degree, so by a greedy/Hall argument
 * the sorted lists must dominate — the test never rejects a viable
 * host and the enumeration's output set and order are unchanged.
 */
bool
signatureDominates(const std::vector<int> &target_sig,
                   const std::vector<int> &pattern_sig)
{
    if (target_sig.size() < pattern_sig.size())
        return false;
    for (std::size_t i = 0; i < pattern_sig.size(); ++i) {
        if (target_sig[i] < pattern_sig[i])
            return false;
    }
    return true;
}

/**
 * Recursive VF2-style state. The degree/signature/mask host filters
 * are folded into one feasibility bitset per pattern vertex at
 * construction, and coupling checks probe the target's adjacency
 * bitset rows — the per-node work is bit probes, no allocation, and
 * the candidate enumeration order (hence the result order) is exactly
 * the pre-bitset code's.
 */
class Matcher
{
  public:
    Matcher(const hw::Topology &pattern, const hw::Topology &target,
            std::size_t limit, const std::vector<bool> *allowed)
        : pattern_(pattern), target_(target), limit_(limit),
          words_((static_cast<std::size_t>(target.numQubits()) + 63) /
                 64)
    {
        // Per-vertex feasibility: allowed-mask, degree, and signature
        // dominance combined into one bitset row. Degree/signature
        // tests use full-graph degrees even under the mask: a host
        // viable in the induced subgraph has at least its induced
        // degree in the full graph, so the filter stays admissible.
        std::vector<std::vector<int>> target_sig;
        target_sig.reserve(
            static_cast<std::size_t>(target_.numQubits()));
        for (int t = 0; t < target_.numQubits(); ++t)
            target_sig.push_back(neighborSignature(target_, t));
        feasible_.assign(static_cast<std::size_t>(
                             pattern_.numQubits()) *
                             words_,
                         0);
        for (int v = 0; v < pattern_.numQubits(); ++v) {
            const std::vector<int> psig =
                neighborSignature(pattern_, v);
            std::uint64_t *row =
                feasible_.data() +
                static_cast<std::size_t>(v) * words_;
            for (int t = 0; t < target_.numQubits(); ++t) {
                if (allowed &&
                    !(*allowed)[static_cast<std::size_t>(t)])
                    continue;
                if (target_.degree(t) < pattern_.degree(v))
                    continue;
                if (!signatureDominates(
                        target_sig[static_cast<std::size_t>(t)],
                        psig))
                    continue;
                row[static_cast<std::size_t>(t) >> 6] |=
                    std::uint64_t{1}
                    << (static_cast<std::size_t>(t) & 63);
            }
        }
        // Match high-degree pattern vertices first, preferring vertices
        // connected to already-matched ones (VF2 candidate ordering).
        order_.reserve(pattern_.numQubits());
        std::vector<bool> placed(pattern_.numQubits(), false);
        for (int step = 0; step < pattern_.numQubits(); ++step) {
            int best = -1;
            int best_connected = -1;
            int best_degree = -1;
            for (int v = 0; v < pattern_.numQubits(); ++v) {
                if (placed[v])
                    continue;
                int connected = 0;
                for (int u : pattern_.neighbors(v)) {
                    if (placed[u])
                        ++connected;
                }
                const int degree = pattern_.degree(v);
                if (connected > best_connected ||
                    (connected == best_connected &&
                     degree > best_degree)) {
                    best = v;
                    best_connected = connected;
                    best_degree = degree;
                }
            }
            placed[best] = true;
            order_.push_back(best);
        }
        map_.assign(pattern_.numQubits(), -1);
        used_.assign(static_cast<std::size_t>(target_.numQubits()),
                     0);
    }

    std::vector<std::vector<int>>
    run()
    {
        recurse(0);
        return std::move(results_);
    }

  private:
    bool
    feasibleBit(int v, int t) const
    {
        return (feasible_[static_cast<std::size_t>(v) * words_ +
                          (static_cast<std::size_t>(t) >> 6)] >>
                (static_cast<std::size_t>(t) & 63)) &
               1U;
    }

    /** Try target @p t as the host of pattern vertex @p v. */
    // qedm:hot
    void
    tryHost(std::size_t depth, int v, int t)
    {
        if (used_[static_cast<std::size_t>(t)] != 0)
            return;
        if (!feasibleBit(v, t))
            return;
        for (int u : pattern_.neighbors(v)) {
            if (map_[u] >= 0 && !target_.adjacentBit(map_[u], t))
                return;
        }
        map_[v] = t;
        used_[static_cast<std::size_t>(t)] = 1;
        recurse(depth + 1);
        map_[v] = -1;
        used_[static_cast<std::size_t>(t)] = 0;
    }

    void
    recurse(std::size_t depth)
    {
        if (results_.size() >= limit_)
            return;
        if (depth == order_.size()) {
            results_.push_back(map_);
            return;
        }
        const int v = order_[depth];
        // Candidates: neighbors of the first already-mapped pattern
        // neighbor, or every feasible target vertex (ascending, the
        // order the dense scan used) when v has none mapped yet.
        int mapped_neighbor = -1;
        for (int u : pattern_.neighbors(v)) {
            if (map_[u] >= 0) {
                mapped_neighbor = u;
                break;
            }
        }
        if (mapped_neighbor >= 0) {
            for (int t : target_.neighbors(map_[mapped_neighbor])) {
                tryHost(depth, v, t);
                if (results_.size() >= limit_)
                    return;
            }
        } else {
            const std::uint64_t *row =
                feasible_.data() +
                static_cast<std::size_t>(v) * words_;
            for (std::size_t w = 0; w < words_; ++w) {
                std::uint64_t bits = row[w];
                while (bits != 0) {
                    const int t = static_cast<int>(
                        (w << 6) + static_cast<std::size_t>(
                                       std::countr_zero(bits)));
                    bits &= bits - 1;
                    tryHost(depth, v, t);
                    if (results_.size() >= limit_)
                        return;
                }
            }
        }
    }

    const hw::Topology &pattern_;
    const hw::Topology &target_;
    std::size_t limit_;
    std::size_t words_;
    std::vector<std::uint64_t> feasible_;
    std::vector<int> order_;
    std::vector<int> map_;
    std::vector<std::uint8_t> used_;
    std::vector<std::vector<int>> results_;
};

} // namespace

std::vector<std::vector<int>>
vf2AllEmbeddings(const hw::Topology &pattern, const hw::Topology &target,
                 std::size_t limit, const std::vector<bool> *allowed)
{
    QEDM_REQUIRE(pattern.numQubits() <= target.numQubits(),
                 "pattern is larger than the target graph");
    QEDM_REQUIRE(limit > 0, "limit must be positive");
    QEDM_REQUIRE(!allowed ||
                     allowed->size() ==
                         static_cast<std::size_t>(target.numQubits()),
                 "allowed mask size must match the target graph");
    Matcher matcher(pattern, target, limit, allowed);
    return matcher.run();
}

bool
vf2Embeds(const hw::Topology &pattern, const hw::Topology &target)
{
    if (pattern.numQubits() > target.numQubits())
        return false;
    return !vf2AllEmbeddings(pattern, target, 1).empty();
}

} // namespace qedm::transpile
