#include "transpile/invert_measure.hpp"

#include "common/error.hpp"

namespace qedm::transpile {

InvertedProgram
invertMeasurements(const circuit::Circuit &program)
{
    InvertedProgram out;
    out.circuit =
        circuit::Circuit(program.numQubits(), program.numClbits());
    bool has_measure = false;
    for (const auto &g : program.gates()) {
        if (g.kind == circuit::OpKind::Measure) {
            has_measure = true;
            out.circuit.x(g.qubits[0]);
            out.circuit.append(g);
            out.flipMask = setBit(out.flipMask, g.clbit, 1);
        } else {
            out.circuit.append(g);
        }
    }
    QEDM_REQUIRE(has_measure,
                 "invert-and-measure needs at least one measurement");
    return out;
}

} // namespace qedm::transpile
