#include "transpile/esp_model.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <list>
#include <map>
#include <mutex>
#include <utility>

#include "common/error.hpp"

namespace qedm::transpile {
namespace {

/** Log of a success factor; zero-probability factors map to a huge
 *  finite penalty so bound arithmetic never produces NaN. */
double
safeLog(double ok)
{
    constexpr double kFloor = 1e-300;
    return std::log(std::max(ok, kFloor));
}

} // namespace

EspModel::EspModel(const hw::Device &device)
    : topology_(device.topology()), fingerprint_(device.fingerprint()),
      bestLog2_(-std::numeric_limits<double>::infinity())
{
    const auto &cal = device.calibration();
    const int n = topology_.numQubits();
    ok1_.reserve(static_cast<std::size_t>(n));
    okMeasure_.reserve(static_cast<std::size_t>(n));
    log1_.reserve(static_cast<std::size_t>(n));
    logMeasure_.reserve(static_cast<std::size_t>(n));
    for (int q = 0; q < n; ++q) {
        const auto &qc = cal.qubit(q);
        ok1_.push_back(1.0 - qc.error1q);
        okMeasure_.push_back(1.0 - qc.readoutError());
        log1_.push_back(safeLog(ok1_.back()));
        logMeasure_.push_back(safeLog(okMeasure_.back()));
    }
    ok2_.reserve(topology_.numEdges());
    log2_.reserve(topology_.numEdges());
    for (std::size_t e = 0; e < topology_.numEdges(); ++e) {
        ok2_.push_back(1.0 - cal.edge(e).cxError);
        log2_.push_back(safeLog(ok2_.back()));
        bestLog2_ = std::max(bestLog2_, log2_.back());
    }
    if (ok2_.empty())
        bestLog2_ = 0.0;
}

GateTrace
EspModel::trace(const circuit::Circuit &flat)
{
    GateTrace out;
    out.reserve(flat.gates().size());
    for (const auto &g : flat.gates()) {
        switch (g.kind) {
          case circuit::OpKind::Barrier:
            break;
          case circuit::OpKind::Measure:
            out.push_back({GateTerm::Kind::Measure, g.qubits[0], -1});
            break;
          default:
            if (circuit::opArity(g.kind) == 1) {
                out.push_back(
                    {GateTerm::Kind::OneQubit, g.qubits[0], -1});
            } else {
                out.push_back({GateTerm::Kind::TwoQubit, g.qubits[0],
                               g.qubits[1]});
            }
        }
    }
    return out;
}

double
EspModel::espOfTrace(const GateTrace &trace,
                     const std::vector<int> &map) const
{
    double p = 1.0;
    for (const GateTerm &term : trace) {
        switch (term.kind) {
          case GateTerm::Kind::OneQubit:
            p *= ok1(map[static_cast<std::size_t>(term.a)]);
            break;
          case GateTerm::Kind::Measure:
            p *= okMeasure(map[static_cast<std::size_t>(term.a)]);
            break;
          case GateTerm::Kind::TwoQubit: {
            const int e = topology_.edgeIndex(
                map[static_cast<std::size_t>(term.a)],
                map[static_cast<std::size_t>(term.b)]);
            QEDM_REQUIRE(e >= 0, "two-qubit gate on uncoupled qubits");
            p *= ok2(e);
            break;
          }
        }
    }
    return p;
}

namespace {

/** Bounded FIFO registry of models, one per calibration epoch. */
class EspModelRegistry
{
  public:
    std::shared_ptr<const EspModel>
    get(const hw::Device &device, std::uint64_t key)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto it = models_.find(key);
        if (it != models_.end())
            return it->second;
        auto model = std::make_shared<const EspModel>(device);
        models_.emplace(key, model);
        order_.push_back(key);
        while (models_.size() > kCapacity) {
            models_.erase(order_.front());
            order_.pop_front();
        }
        return model;
    }

  private:
    static constexpr std::size_t kCapacity = 64;

    std::mutex mutex_;
    std::map<std::uint64_t, std::shared_ptr<const EspModel>> models_;
    std::list<std::uint64_t> order_;
};

} // namespace

namespace {

EspModelRegistry &
espModelRegistry()
{
    static EspModelRegistry registry;
    return registry;
}

} // namespace

std::shared_ptr<const EspModel>
sharedEspModel(const hw::Device &device)
{
    return espModelRegistry().get(device, device.fingerprint());
}

std::shared_ptr<const EspModel>
sharedEspModel(const hw::DeviceView &view)
{
    // A full view's fingerprint IS the device fingerprint, so it
    // shares the entry sharedEspModel(device) would populate.
    return espModelRegistry().get(view.device(), view.fingerprint());
}

} // namespace qedm::transpile
