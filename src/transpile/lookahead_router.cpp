#include "transpile/lookahead_router.hpp"

#include <algorithm>
#include <limits>
#include <set>

#include "circuit/dag.hpp"
#include "common/error.hpp"
#include "transpile/distances.hpp"

namespace qedm::transpile {

using circuit::Circuit;
using circuit::CircuitDag;
using circuit::Gate;
using circuit::OpKind;

LookaheadRouter::LookaheadRouter(const hw::Device &device,
                                 LookaheadConfig config)
    : view_(device), config_(config)
{
    QEDM_REQUIRE(config_.window >= 1, "lookahead window must be >= 1");
    QEDM_REQUIRE(config_.windowWeight >= 0.0,
                 "lookahead weight must be non-negative");
}

LookaheadRouter::LookaheadRouter(hw::DeviceView view,
                                 LookaheadConfig config)
    : view_(std::move(view)), config_(config)
{
    QEDM_REQUIRE(config_.window >= 1, "lookahead window must be >= 1");
    QEDM_REQUIRE(config_.windowWeight >= 0.0,
                 "lookahead weight must be non-negative");
}

RouteResult
LookaheadRouter::route(const Circuit &logical,
                       const std::vector<int> &initial_map) const
{
    const auto &topo = view_.topology();
    QEDM_REQUIRE(static_cast<int>(initial_map.size()) ==
                     logical.numQubits(),
                 "initial map must cover every logical qubit");
    std::set<int> distinct;
    for (int p : initial_map) {
        QEDM_REQUIRE(p >= 0 && p < topo.numQubits(),
                     "initial map target out of range");
        QEDM_REQUIRE(view_.allowed(p),
                     "initial map target outside the region");
        QEDM_REQUIRE(distinct.insert(p).second,
                     "initial map targets must be distinct");
    }

    const Circuit flat = logical.decomposed();
    const CircuitDag dag(flat);
    const auto dist = sharedDistanceProvider(view_, config_.cost);

    std::vector<int> map = initial_map;
    std::vector<int> occupant(topo.numQubits(), -1);
    for (int l = 0; l < static_cast<int>(map.size()); ++l)
        occupant[map[l]] = l;

    RouteResult result{Circuit(topo.numQubits(), flat.numClbits()),
                       {}, 0};

    // Dependency state.
    std::vector<std::size_t> unresolved(dag.size(), 0);
    for (std::size_t node = 0; node < dag.size(); ++node)
        unresolved[node] = dag.predecessors(node).size();
    std::set<std::size_t> front;
    for (std::size_t node = 0; node < dag.size(); ++node) {
        if (unresolved[node] == 0)
            front.insert(node);
    }
    std::size_t remaining = dag.size();

    auto gateOf = [&](std::size_t node) -> const Gate & {
        return flat.gates()[dag.gateIndex(node)];
    };
    auto executable = [&](std::size_t node) {
        const Gate &g = gateOf(node);
        if (!circuit::opIsTwoQubit(g.kind))
            return true;
        return topo.adjacent(map[g.qubits[0]], map[g.qubits[1]]);
    };
    // Measures are deferred to the end of routing: they are terminal
    // per qubit (the executor enforces this), and emitting them early
    // would forbid later SWAPs from relocating state across their
    // physical qubits.
    std::vector<std::pair<int, int>> deferred_measures; // (logical, cl)
    auto emit = [&](std::size_t node) {
        Gate g = gateOf(node);
        if (g.kind == OpKind::Measure) {
            deferred_measures.emplace_back(g.qubits[0], g.clbit);
            return;
        }
        for (int &q : g.qubits)
            q = map[q];
        result.physical.append(std::move(g));
    };
    auto retire = [&](std::size_t node) {
        front.erase(node);
        --remaining;
        for (std::size_t succ : dag.successors(node)) {
            if (--unresolved[succ] == 0)
                front.insert(succ);
        }
    };

    // The two-qubit gates awaiting execution, in program order, for
    // the lookahead window.
    auto lookaheadNodes = [&]() {
        std::vector<std::size_t> ahead;
        for (std::size_t node = 0;
             node < dag.size() && ahead.size() < config_.window;
             ++node) {
            if (unresolved[node] > 0 || front.count(node)) {
                const Gate &g = gateOf(node);
                if (circuit::opIsTwoQubit(g.kind) &&
                    !front.count(node)) {
                    ahead.push_back(node);
                }
            }
        }
        return ahead;
    };

    int last_swap_a = -1, last_swap_b = -1;
    const int swap_limit = 50 * static_cast<int>(dag.size()) + 100;
    while (remaining > 0) {
        QEDM_ASSERT(result.swapCount < swap_limit,
                    "lookahead router failed to converge");
        // Execute everything currently satisfiable.
        bool progressed = true;
        while (progressed) {
            progressed = false;
            for (auto it = front.begin(); it != front.end();) {
                const std::size_t node = *it;
                ++it;
                if (executable(node)) {
                    emit(node);
                    retire(node);
                    progressed = true;
                    last_swap_a = last_swap_b = -1;
                }
            }
        }
        if (remaining == 0)
            break;

        // Blocked: score candidate SWAPs on edges touching the front's
        // two-qubit operands.
        std::vector<std::size_t> front_2q;
        for (std::size_t node : front) {
            if (circuit::opIsTwoQubit(gateOf(node).kind))
                front_2q.push_back(node);
        }
        QEDM_ASSERT(!front_2q.empty(),
                    "blocked front must contain a two-qubit gate");

        std::set<std::pair<int, int>> candidates;
        for (std::size_t node : front_2q) {
            for (int lq : gateOf(node).qubits) {
                const int pq = map[lq];
                for (int nbr : topo.neighbors(pq)) {
                    if (!view_.allowed(nbr))
                        continue; // SWAPs stay inside the region
                    candidates.insert(
                        {std::min(pq, nbr), std::max(pq, nbr)});
                }
            }
        }

        const auto ahead = lookaheadNodes();
        auto scoreWith = [&](const std::vector<int> &trial_map) {
            double score = 0.0;
            for (std::size_t node : front_2q) {
                const Gate &g = gateOf(node);
                score += dist->distance(trial_map[g.qubits[0]],
                                        trial_map[g.qubits[1]]);
            }
            if (!ahead.empty()) {
                double ahead_score = 0.0;
                for (std::size_t node : ahead) {
                    const Gate &g = gateOf(node);
                    ahead_score +=
                        dist->distance(trial_map[g.qubits[0]],
                                       trial_map[g.qubits[1]]);
                }
                score += config_.windowWeight * ahead_score /
                         static_cast<double>(ahead.size());
            }
            return score;
        };

        double best_score = std::numeric_limits<double>::max();
        std::pair<int, int> best_swap{-1, -1};
        for (const auto &[pa, pb] : candidates) {
            if (pa == last_swap_a && pb == last_swap_b)
                continue; // never undo the previous swap immediately
            std::vector<int> trial = map;
            const int la = occupant[pa];
            const int lb = occupant[pb];
            if (la >= 0)
                trial[la] = pb;
            if (lb >= 0)
                trial[lb] = pa;
            const double s = scoreWith(trial);
            if (s < best_score) {
                best_score = s;
                best_swap = {pa, pb};
            }
        }
        QEDM_ASSERT(best_swap.first >= 0, "no candidate SWAP found");

        const auto [pa, pb] = best_swap;
        result.physical.swap(pa, pb);
        result.swapCount += 1;
        const int la = occupant[pa];
        const int lb = occupant[pb];
        occupant[pa] = lb;
        occupant[pb] = la;
        if (la >= 0)
            map[la] = pb;
        if (lb >= 0)
            map[lb] = pa;
        last_swap_a = pa;
        last_swap_b = pb;
    }
    for (const auto &[logical_q, clbit] : deferred_measures)
        result.physical.measure(map[logical_q], clbit);
    result.finalMap = map;
    return result;
}

} // namespace qedm::transpile
