/**
 * @file
 * Unitary gate folding for zero-noise extrapolation (Temme et al.
 * [43] family of error-mitigation techniques).
 *
 * Folding replaces a gate G by G (G^-1 G)^k, which is logically the
 * identity transformation but multiplies the gate's noise exposure by
 * scale = 2k + 1. Two-qubit gates dominate NISQ error budgets, so
 * this module folds exactly those.
 */

#pragma once

#include "circuit/circuit.hpp"

namespace qedm::transpile {

/** The exact inverse of a single gate (parametric gates negate their
 *  angles; Measure/Barrier are rejected). */
circuit::Gate inverseGate(const circuit::Gate &gate);

/**
 * Fold every two-qubit unitary of @p circuit by odd @p scale: each
 * such gate G becomes G (G^-1 G)^((scale-1)/2). Other operations pass
 * through. scale = 1 returns the circuit unchanged (modulo Ccx/Swap
 * decomposition).
 */
circuit::Circuit foldTwoQubitGates(const circuit::Circuit &circuit,
                                   int scale);

} // namespace qedm::transpile
