#include "transpile/transpiler.hpp"

#include <set>

#include "transpile/esp.hpp"
#include "transpile/placer.hpp"

namespace qedm::transpile {

std::vector<int>
CompiledProgram::usedQubits() const
{
    std::set<int> used;
    for (const auto &g : physical.gates())
        used.insert(g.qubits.begin(), g.qubits.end());
    return {used.begin(), used.end()};
}

Transpiler::Transpiler(const hw::Device &device, RouteCost cost)
    : device_(device), cost_(cost)
{
}

CompiledProgram
Transpiler::compile(const circuit::Circuit &logical) const
{
    Placer placer(device_);
    return compileWithPlacement(logical, placer.place(logical));
}

CompiledProgram
Transpiler::compileWithPlacement(
    const circuit::Circuit &logical,
    const std::vector<int> &initial_map) const
{
    Router router(device_, cost_);
    RouteResult routed = router.route(logical, initial_map);
    CompiledProgram out;
    out.initialMap = initial_map;
    out.finalMap = std::move(routed.finalMap);
    out.swapCount = routed.swapCount;
    out.esp = esp(routed.physical, device_);
    out.physical = std::move(routed.physical);
    return out;
}

} // namespace qedm::transpile
