#include "transpile/transpiler.hpp"

#include <functional>
#include <optional>
#include <set>
#include <utility>

#include "runtime/clock.hpp"
#include "transpile/esp.hpp"
#include "transpile/placer.hpp"

namespace qedm::transpile {

std::vector<int>
CompiledProgram::usedQubits() const
{
    std::set<int> used;
    for (const auto &g : physical.gates())
        used.insert(g.qubits.begin(), g.qubits.end());
    return {used.begin(), used.end()};
}

Transpiler::Transpiler(const hw::Device &device, RouteCost cost,
                       bool verify)
    : view_(device), cost_(cost), verify_(verify)
{
}

Transpiler::Transpiler(hw::DeviceView view, RouteCost cost, bool verify)
    : view_(std::move(view)), cost_(cost), verify_(verify)
{
}

namespace {

/** Mutable state threaded through the pass list. */
struct CompileContext
{
    const circuit::Circuit *logical = nullptr;
    std::vector<int> initialMap;
    std::optional<RouteResult> routed;
    CompiledProgram out;
};

using PassFn = std::function<void(CompileContext &, PassMetadata &)>;

} // namespace

CompileTrace
Transpiler::runPasses(const circuit::Circuit &logical,
                      const std::vector<int> *initial_map) const
{
    std::vector<std::pair<std::string, PassFn>> passes;

    if (initial_map == nullptr) {
        passes.emplace_back(
            "place", [this](CompileContext &ctx, PassMetadata &meta) {
                Placer placer(view_);
                placer.setScheduler(scheduler_);
                ctx.initialMap = placer.place(*ctx.logical);
                meta.metrics["placedQubits"] =
                    static_cast<double>(ctx.initialMap.size());
            });
    }
    passes.emplace_back(
        "route", [this](CompileContext &ctx, PassMetadata &meta) {
            Router router(view_, cost_);
            ctx.routed = router.route(*ctx.logical, ctx.initialMap);
            meta.metrics["swaps"] =
                static_cast<double>(ctx.routed->swapCount);
        });
    passes.emplace_back(
        "score", [this](CompileContext &ctx, PassMetadata &meta) {
            ctx.out.initialMap = ctx.initialMap;
            ctx.out.finalMap = std::move(ctx.routed->finalMap);
            ctx.out.swapCount = ctx.routed->swapCount;
            ctx.out.esp = esp(ctx.routed->physical, view_.device());
            ctx.out.physical = std::move(ctx.routed->physical);
            meta.metrics["esp"] = ctx.out.esp;
        });
    if (verify_) {
        passes.emplace_back(
            "check", [this](CompileContext &ctx, PassMetadata &meta) {
                check::ProgramView view;
                view.physical = &ctx.out.physical;
                view.initialMap = &ctx.out.initialMap;
                view.finalMap = &ctx.out.finalMap;
                view.swapCount = ctx.out.swapCount;
                view.esp = ctx.out.esp;
                view.device = &view_.device();
                view.logical = ctx.logical;
                view.region = &view_;
                meta.metrics["passesRun"] = static_cast<double>(
                    check::verifyProgram(view));
            });
    }

    CompileContext ctx;
    ctx.logical = &logical;
    if (initial_map != nullptr)
        ctx.initialMap = *initial_map;

    CompileTrace trace;
    trace.passes.reserve(passes.size());
    for (auto &[name, pass] : passes) {
        PassMetadata meta;
        meta.name = name;
        const runtime::Clock &clock_src = runtime::steadyClock();
        const double start_ms = clock_src.nowMs();
        pass(ctx, meta);
        meta.milliseconds = clock_src.nowMs() - start_ms;
        trace.passes.push_back(std::move(meta));
    }
    trace.program = std::move(ctx.out);
    return trace;
}

CompiledProgram
Transpiler::compile(const circuit::Circuit &logical) const
{
    return runPasses(logical, nullptr).program;
}

CompileTrace
Transpiler::compileWithTrace(const circuit::Circuit &logical) const
{
    return runPasses(logical, nullptr);
}

CompiledProgram
Transpiler::compileWithPlacement(
    const circuit::Circuit &logical,
    const std::vector<int> &initial_map) const
{
    return runPasses(logical, &initial_map).program;
}

} // namespace qedm::transpile
