#include "transpile/esp.hpp"

#include <cmath>

#include "common/error.hpp"

namespace qedm::transpile {

double
esp(const circuit::Circuit &physical, const hw::Device &device)
{
    const auto &topo = device.topology();
    const auto &cal = device.calibration();
    QEDM_REQUIRE(physical.numQubits() == topo.numQubits(),
                 "physical circuit register must match the device");

    const circuit::Circuit flat = physical.decomposed();
    double p = 1.0;
    for (const auto &g : flat.gates()) {
        switch (g.kind) {
          case circuit::OpKind::Barrier:
            break;
          case circuit::OpKind::Measure: {
            const auto &qc = cal.qubit(g.qubits[0]);
            p *= 1.0 - qc.readoutError();
            break;
          }
          default: {
            if (circuit::opArity(g.kind) == 1) {
                p *= 1.0 - cal.qubit(g.qubits[0]).error1q;
            } else {
                const int e = topo.edgeIndex(g.qubits[0], g.qubits[1]);
                QEDM_REQUIRE(e >= 0,
                             "two-qubit gate on uncoupled qubits");
                p *= 1.0 - cal.edge(static_cast<std::size_t>(e)).cxError;
            }
          }
        }
    }
    return p;
}

double
espCost(const circuit::Circuit &physical, const hw::Device &device)
{
    const double p = esp(physical, device);
    QEDM_REQUIRE(p > 0.0, "ESP is zero; cost is unbounded");
    return -std::log(p);
}

double
espWithDecoherence(const circuit::Circuit &physical,
                   const hw::Device &device)
{
    const auto &spec = device.noise().spec();
    const circuit::Circuit flat = physical.decomposed();

    // ASAP schedule: per-qubit busy time in nanoseconds.
    std::vector<double> busy_until(flat.numQubits(), 0.0);
    for (const auto &g : flat.gates()) {
        if (g.kind == circuit::OpKind::Barrier)
            continue;
        double duration = spec.gate1qNs;
        if (g.kind == circuit::OpKind::Measure)
            duration = spec.measureNs;
        else if (circuit::opArity(g.kind) == 2)
            duration = spec.gate2qNs;
        double start = 0.0;
        for (int q : g.qubits)
            start = std::max(start, busy_until[q]);
        for (int q : g.qubits)
            busy_until[q] = start + duration;
    }

    double survival = 1.0;
    for (int q = 0; q < flat.numQubits(); ++q) {
        if (busy_until[q] <= 0.0)
            continue;
        const auto &qc = device.calibration().qubit(q);
        const double t_us = busy_until[q] * 1e-3;
        survival *= std::exp(-t_us / qc.t1Us - t_us / qc.t2Us);
    }
    return esp(flat, device) * survival;
}

} // namespace qedm::transpile
