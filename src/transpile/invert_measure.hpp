/**
 * @file
 * Invert-and-Measure program transform (Tannu & Qureshi [41],
 * discussed in the paper's Section 7).
 *
 * Readout errors are state-dependent: reading a |1> is far more
 * error-prone than reading a |0| on IBM machines. Invert-and-Measure
 * transforms a program so weak states are measured as strong ones: an
 * X is inserted before every measurement, and the classical outcome
 * bits are flipped back in post-processing. Like EDM, splitting the
 * trials between the original and inverted executables diversifies
 * the (readout) mistakes.
 */

#pragma once

#include "circuit/circuit.hpp"
#include "common/bits.hpp"

namespace qedm::transpile {

/** An inverted executable plus its post-processing mask. */
struct InvertedProgram
{
    /** The transformed circuit (X before every Measure). */
    circuit::Circuit circuit{1};
    /** Clbits to flip back after measurement (always all of them). */
    Outcome flipMask = 0;
};

/**
 * Insert an X immediately before every Measure of @p program and
 * report the clbit flip mask to undo the inversion classically.
 */
InvertedProgram invertMeasurements(const circuit::Circuit &program);

} // namespace qedm::transpile
