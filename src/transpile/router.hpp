/**
 * @file
 * SWAP-inserting qubit router.
 *
 * Rewrites a logical circuit into a physical one given an initial
 * placement: two-qubit gates between non-adjacent qubits trigger SWAP
 * chains along the most reliable path (Dijkstra search over link
 * unreliability, the reliability-aware heuristic of [40, 48]); a
 * hop-count mode provides the SWAP-minimizing baseline for ablations.
 */

#pragma once

#include <vector>

#include "circuit/circuit.hpp"
#include "hw/device.hpp"
#include "hw/device_view.hpp"

namespace qedm::transpile {

/** Path-cost metric used when choosing SWAP routes. */
enum class RouteCost
{
    Reliability, ///< minimize accumulated link error (variation-aware)
    HopCount,    ///< minimize SWAP count only
};

/** Output of routing one circuit. */
struct RouteResult
{
    /** Physical circuit over the full device register. */
    circuit::Circuit physical;
    /** Final logical-to-physical map after all inserted SWAPs. */
    std::vector<int> finalMap;
    /** Number of SWAP gates inserted. */
    int swapCount = 0;
};

/** Router for one device view. */
class Router
{
  public:
    /** Full-device routing (a full view; pre-view behavior). */
    explicit Router(const hw::Device &device,
                    RouteCost cost = RouteCost::Reliability);

    /**
     * Region-scoped routing: SWAP chains never leave the view's
     * allowed subgraph. The caller keeps the viewed Device alive for
     * the router's lifetime.
     */
    explicit Router(hw::DeviceView view,
                    RouteCost cost = RouteCost::Reliability);

    /**
     * Route @p logical starting from @p initial_map (logical ->
     * physical, all distinct and inside the view). Measures and
     * 1-qubit gates follow the mapping current at their position in
     * the gate list.
     */
    RouteResult route(const circuit::Circuit &logical,
                      const std::vector<int> &initial_map) const;

  private:
    hw::DeviceView view_;
    RouteCost cost_;
};

} // namespace qedm::transpile
