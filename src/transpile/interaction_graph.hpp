/**
 * @file
 * Logical interaction graphs.
 *
 * The interaction graph of a circuit has one vertex per logical qubit
 * and an edge between every pair that shares at least one two-qubit
 * gate. Placement tries to embed this graph into the device topology;
 * when it embeds, no SWAPs are needed.
 */

#pragma once

#include <vector>

#include "circuit/circuit.hpp"
#include "hw/topology.hpp"

namespace qedm::transpile {

/** Weighted interaction summary of a logical circuit. */
struct InteractionGraph
{
    int numQubits = 0;
    /** Distinct interacting pairs (a < b). */
    std::vector<std::pair<int, int>> edges;
    /** Two-qubit gate count per edge (parallel to edges). */
    std::vector<int> weights;

    /** The interaction graph as a Topology (general graph container). */
    hw::Topology asTopology() const;

    /** Interaction degree of a logical qubit. */
    int degree(int q) const;

    /** Logical qubits that participate in no two-qubit gate. */
    std::vector<int> isolatedQubits() const;
};

/** Build the interaction graph of @p logical (SWAP/Ccx decomposed). */
InteractionGraph interactionGraph(const circuit::Circuit &logical);

} // namespace qedm::transpile
