/**
 * @file
 * Variation-aware initial qubit placement.
 *
 * Implements the paper's baseline policy (Sections 2.4, 5.2): find an
 * initial logical-to-physical assignment that maximizes the Estimated
 * Success Probability. When the circuit's interaction graph embeds
 * into the coupling graph (true for the paper's BV/QAOA after their
 * heuristics), the placer enumerates embeddings with VF2 and ranks
 * them by ESP, so the produced mapping needs no SWAPs and is optimal
 * under the ESP model. Otherwise a greedy reliability-aware placement
 * seeds the router.
 */

#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "circuit/circuit.hpp"
#include "hw/device.hpp"
#include "hw/device_view.hpp"

namespace qedm::runtime {
class JobScheduler;
}

namespace qedm::transpile {

/** A logical-to-physical assignment with its compile-time score. */
struct ScoredPlacement
{
    /** Entry l is the physical qubit hosting logical qubit l. */
    std::vector<int> map;
    /** ESP estimate for the circuit under this placement. */
    double esp = 0.0;
};

/** Variation-aware placement engine for one device view. */
class Placer
{
  public:
    /** Full-device placement (a full view; pre-view behavior). */
    explicit Placer(const hw::Device &device);

    /**
     * Region-scoped placement: every produced map uses only the
     * view's allowed qubits. The caller keeps the viewed Device alive
     * for the placer's lifetime.
     */
    explicit Placer(hw::DeviceView view);

    /**
     * Best initial placement for @p logical: the highest-ESP VF2
     * embedding when one exists, else a greedy reliability-aware
     * assignment.
     */
    std::vector<int> place(const circuit::Circuit &logical) const;

    /**
     * The K best placements of @p logical under the ESP model, best
     * first. Same maps and scores as the head of rankedEmbeddings()
     * but found with branch-and-bound: the VF2 recursion carries an
     * incremental log-ESP bound and abandons any branch that cannot
     * beat the current K-th best, so the full embedding list is never
     * materialized. Empty when the interaction graph does not embed.
     *
     * When a scheduler is attached (setScheduler) the root frontier
     * fans out over it; results are bit-identical at every --jobs.
     * @p limit caps completions per root branch (see topKPlacements).
     *
     * Ties in ESP order lexicographically on the mapping vector.
     */
    std::vector<ScoredPlacement>
    topPlacements(const circuit::Circuit &logical, std::size_t k,
                  std::size_t limit = 20000) const;

    /**
     * Attach a job scheduler for parallel placement search. The
     * caller keeps @p scheduler alive for the placer's lifetime;
     * nullptr (the default state) searches sequentially.
     */
    void setScheduler(const runtime::JobScheduler *scheduler)
    {
        scheduler_ = scheduler;
    }

    /**
     * All VF2 embeddings of the circuit's interaction graph, scored
     * and sorted by descending ESP (ties lexicographic on the map).
     * Empty when the interaction graph does not embed (the router
     * must then insert SWAPs).
     *
     * Isolated logical qubits (no 2-qubit gate) are assigned greedily
     * to the best remaining readout qubits in every returned map.
     */
    std::vector<ScoredPlacement>
    rankedEmbeddings(const circuit::Circuit &logical,
                     std::size_t limit = 20000) const;

    /** Greedy reliability-aware placement (always succeeds). */
    std::vector<int>
    greedyPlace(const circuit::Circuit &logical) const;

    /** The view placements are scoped to. */
    const hw::DeviceView &view() const { return view_; }

  private:
    /**
     * Per-circuit memo (keyed on the circuit fingerprint) of the
     * placement problem — interaction pattern, gate trace, cost
     * model, precompiled search plan. Re-placing the same circuit
     * every calibration cycle is the dominant call shape, and problem
     * construction would otherwise cost more than the pruned search
     * itself. Mutex-guarded (topPlacements stays safe to call
     * concurrently); shared across Placer copies, which is sound
     * because entries are immutable once published.
     */
    struct Cache;

    hw::DeviceView view_;
    const runtime::JobScheduler *scheduler_ = nullptr;
    std::shared_ptr<Cache> cache_;
};

} // namespace qedm::transpile
