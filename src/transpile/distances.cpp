#include "transpile/distances.hpp"

#include <array>
#include <cmath>
#include <cstdint>
#include <list>
#include <map>
#include <mutex>
#include <queue>
#include <utility>

#include "common/error.hpp"

namespace qedm::transpile {

namespace {

std::vector<double>
edgeCosts(const hw::Device &device, RouteCost cost)
{
    const auto &topo = device.topology();
    std::vector<double> edge_cost(topo.numEdges());
    for (std::size_t e = 0; e < topo.numEdges(); ++e) {
        if (cost == RouteCost::HopCount) {
            edge_cost[e] = 1.0;
        } else {
            const double err = device.calibration().edge(e).cxError;
            edge_cost[e] = -std::log(std::max(1.0 - err, 1e-12));
        }
    }
    return edge_cost;
}

/**
 * One Dijkstra row over the allowed subgraph. With a null mask this
 * follows the exact traversal of distanceMatrix(), so full-view
 * providers reproduce its doubles bit-for-bit.
 */
std::vector<double>
dijkstraRow(const hw::Topology &topo, const std::vector<double> &edge_cost,
            const std::vector<bool> *allowed, int src)
{
    const int n = topo.numQubits();
    std::vector<double> dist(static_cast<std::size_t>(n),
                             kUnreachableDistance);
    if (allowed && !(*allowed)[static_cast<std::size_t>(src)])
        return dist;
    using Item = std::pair<double, int>;
    std::priority_queue<Item, std::vector<Item>, std::greater<>> pq;
    dist[static_cast<std::size_t>(src)] = 0.0;
    pq.emplace(0.0, src);
    while (!pq.empty()) {
        const auto [d, u] = pq.top();
        pq.pop();
        if (d > dist[static_cast<std::size_t>(u)])
            continue;
        for (int v : topo.neighbors(u)) {
            if (allowed && !(*allowed)[static_cast<std::size_t>(v)])
                continue;
            const int e = topo.edgeIndex(u, v);
            const double nd = d + edge_cost[static_cast<std::size_t>(e)];
            if (nd < dist[static_cast<std::size_t>(v)]) {
                dist[static_cast<std::size_t>(v)] = nd;
                pq.emplace(nd, v);
            }
        }
    }
    return dist;
}

} // namespace

DistanceMatrix
distanceMatrix(const hw::Device &device, RouteCost cost)
{
    const auto &topo = device.topology();
    const int n = topo.numQubits();
    const std::vector<double> edge_cost = edgeCosts(device, cost);
    std::vector<std::vector<double>> dist;
    dist.reserve(static_cast<std::size_t>(n));
    for (int src = 0; src < n; ++src)
        dist.push_back(dijkstraRow(topo, edge_cost, nullptr, src));
    return dist;
}

DenseDistanceProvider::DenseDistanceProvider(const hw::DeviceView &view,
                                             RouteCost cost)
{
    if (view.isFull()) {
        matrix_ = distanceMatrix(view.device(), cost);
        return;
    }
    const auto &topo = view.topology();
    const std::vector<double> edge_cost = edgeCosts(view.device(), cost);
    matrix_.reserve(static_cast<std::size_t>(topo.numQubits()));
    for (int src = 0; src < topo.numQubits(); ++src)
        matrix_.push_back(
            dijkstraRow(topo, edge_cost, view.maskPtr(), src));
}

double
DenseDistanceProvider::distance(int a, int b) const
{
    const int n = static_cast<int>(matrix_.size());
    QEDM_REQUIRE(a >= 0 && a < n && b >= 0 && b < n,
                 "qubit index out of range");
    return matrix_[static_cast<std::size_t>(a)][static_cast<std::size_t>(b)];
}

struct OnDemandDistanceProvider::Impl
{
    /**
     * Row fills are guarded by source-sharded locks (src mod
     * kLockShards), not one global mutex: concurrent workers filling
     * different rows — the common shape once placement search and
     * ensemble materialization fan out over the scheduler — only
     * contend when they hash to the same shard, and a worker holding
     * one shard never blocks Dijkstra work under another. Each row is
     * computed exactly once (the shard lock covers its slot's
     * check-and-fill), so results are independent of fill order.
     */
    static constexpr std::size_t kLockShards = 16;

    hw::Topology topo;
    std::vector<double> edgeCost;
    std::vector<bool> mask; ///< empty for a full view
    mutable std::array<std::mutex, kLockShards> shards;
    mutable std::vector<std::shared_ptr<const std::vector<double>>> rows;

    Impl(const hw::DeviceView &view, RouteCost cost)
        : topo(view.topology()),
          edgeCost(edgeCosts(view.device(), cost)),
          rows(static_cast<std::size_t>(view.numQubits()))
    {
        if (!view.isFull())
            mask = view.mask();
    }

    std::shared_ptr<const std::vector<double>> row(int src) const
    {
        std::lock_guard<std::mutex> lock(
            shards[static_cast<std::size_t>(src) % kLockShards]);
        auto &slot = rows[static_cast<std::size_t>(src)];
        if (!slot) {
            slot = std::make_shared<const std::vector<double>>(
                dijkstraRow(topo, edgeCost,
                            mask.empty() ? nullptr : &mask, src));
        }
        return slot;
    }
};

OnDemandDistanceProvider::OnDemandDistanceProvider(
    const hw::DeviceView &view, RouteCost cost)
    : impl_(std::make_shared<Impl>(view, cost))
{
}

double
OnDemandDistanceProvider::distance(int a, int b) const
{
    const int n = impl_->topo.numQubits();
    QEDM_REQUIRE(a >= 0 && a < n && b >= 0 && b < n,
                 "qubit index out of range");
    return (*impl_->row(a))[static_cast<std::size_t>(b)];
}

std::size_t
OnDemandDistanceProvider::rowsComputed() const
{
    // Take every shard (ascending, deadlock-free) so the count is a
    // consistent snapshot across concurrent row fills.
    std::array<std::unique_lock<std::mutex>, Impl::kLockShards> locks;
    for (std::size_t s = 0; s < Impl::kLockShards; ++s)
        locks[s] = std::unique_lock<std::mutex>(impl_->shards[s]);
    std::size_t count = 0;
    for (const auto &slot : impl_->rows) {
        if (slot)
            ++count;
    }
    return count;
}

namespace {

/** Bounded FIFO cache of distance matrices per calibration epoch. */
class DistanceRegistry
{
  public:
    std::shared_ptr<const DistanceMatrix>
    get(const hw::Device &device, RouteCost cost)
    {
        const Key key{device.fingerprint(), cost};
        std::lock_guard<std::mutex> lock(mutex_);
        auto it = matrices_.find(key);
        if (it != matrices_.end())
            return it->second;
        auto matrix = std::make_shared<const DistanceMatrix>(
            distanceMatrix(device, cost));
        matrices_.emplace(key, matrix);
        order_.push_back(key);
        while (matrices_.size() > kCapacity) {
            matrices_.erase(order_.front());
            order_.pop_front();
        }
        return matrix;
    }

  private:
    using Key = std::pair<std::uint64_t, RouteCost>;

    static constexpr std::size_t kCapacity = 64;

    std::mutex mutex_;
    std::map<Key, std::shared_ptr<const DistanceMatrix>> matrices_;
    std::list<Key> order_;
};

/**
 * Bounded FIFO cache of distance providers, keyed on the VIEW
 * fingerprint so restricted regions and the full device never share
 * an entry.
 */
class ProviderRegistry
{
  public:
    std::shared_ptr<const DistanceProvider>
    get(const hw::DeviceView &view, RouteCost cost)
    {
        const Key key{view.fingerprint(), cost};
        std::lock_guard<std::mutex> lock(mutex_);
        auto it = providers_.find(key);
        if (it != providers_.end())
            return it->second;
        std::shared_ptr<const DistanceProvider> provider;
        if (view.numQubits() <= kDenseDistanceMaxQubits) {
            provider =
                std::make_shared<const DenseDistanceProvider>(view, cost);
        } else {
            provider = std::make_shared<const OnDemandDistanceProvider>(
                view, cost);
        }
        providers_.emplace(key, provider);
        order_.push_back(key);
        while (providers_.size() > kCapacity) {
            providers_.erase(order_.front());
            order_.pop_front();
        }
        return provider;
    }

  private:
    using Key = std::pair<std::uint64_t, RouteCost>;

    static constexpr std::size_t kCapacity = 64;

    std::mutex mutex_;
    std::map<Key, std::shared_ptr<const DistanceProvider>> providers_;
    std::list<Key> order_;
};

} // namespace

std::shared_ptr<const DistanceMatrix>
sharedDistanceMatrix(const hw::Device &device, RouteCost cost)
{
    static DistanceRegistry registry;
    return registry.get(device, cost);
}

std::shared_ptr<const DistanceProvider>
sharedDistanceProvider(const hw::DeviceView &view, RouteCost cost)
{
    static ProviderRegistry registry;
    return registry.get(view, cost);
}

} // namespace qedm::transpile
