#include "transpile/distances.hpp"

#include <cmath>
#include <limits>
#include <queue>

namespace qedm::transpile {

std::vector<std::vector<double>>
distanceMatrix(const hw::Device &device, RouteCost cost)
{
    const auto &topo = device.topology();
    const int n = topo.numQubits();
    constexpr double kUnreachable = 1e18;

    std::vector<double> edge_cost(topo.numEdges());
    for (std::size_t e = 0; e < topo.numEdges(); ++e) {
        if (cost == RouteCost::HopCount) {
            edge_cost[e] = 1.0;
        } else {
            const double err = device.calibration().edge(e).cxError;
            edge_cost[e] = -std::log(std::max(1.0 - err, 1e-12));
        }
    }

    std::vector<std::vector<double>> dist(
        n, std::vector<double>(n, kUnreachable));
    for (int src = 0; src < n; ++src) {
        using Item = std::pair<double, int>;
        std::priority_queue<Item, std::vector<Item>, std::greater<>> pq;
        dist[src][src] = 0.0;
        pq.emplace(0.0, src);
        while (!pq.empty()) {
            const auto [d, u] = pq.top();
            pq.pop();
            if (d > dist[src][u])
                continue;
            for (int v : topo.neighbors(u)) {
                const int e = topo.edgeIndex(u, v);
                const double nd =
                    d + edge_cost[static_cast<std::size_t>(e)];
                if (nd < dist[src][v]) {
                    dist[src][v] = nd;
                    pq.emplace(nd, v);
                }
            }
        }
    }
    return dist;
}

} // namespace qedm::transpile
