#include "transpile/distances.hpp"

#include <cmath>
#include <cstdint>
#include <limits>
#include <list>
#include <map>
#include <mutex>
#include <queue>
#include <utility>

namespace qedm::transpile {

DistanceMatrix
distanceMatrix(const hw::Device &device, RouteCost cost)
{
    const auto &topo = device.topology();
    const int n = topo.numQubits();
    constexpr double kUnreachable = 1e18;

    std::vector<double> edge_cost(topo.numEdges());
    for (std::size_t e = 0; e < topo.numEdges(); ++e) {
        if (cost == RouteCost::HopCount) {
            edge_cost[e] = 1.0;
        } else {
            const double err = device.calibration().edge(e).cxError;
            edge_cost[e] = -std::log(std::max(1.0 - err, 1e-12));
        }
    }

    std::vector<std::vector<double>> dist(
        n, std::vector<double>(n, kUnreachable));
    for (int src = 0; src < n; ++src) {
        using Item = std::pair<double, int>;
        std::priority_queue<Item, std::vector<Item>, std::greater<>> pq;
        dist[src][src] = 0.0;
        pq.emplace(0.0, src);
        while (!pq.empty()) {
            const auto [d, u] = pq.top();
            pq.pop();
            if (d > dist[src][u])
                continue;
            for (int v : topo.neighbors(u)) {
                const int e = topo.edgeIndex(u, v);
                const double nd =
                    d + edge_cost[static_cast<std::size_t>(e)];
                if (nd < dist[src][v]) {
                    dist[src][v] = nd;
                    pq.emplace(nd, v);
                }
            }
        }
    }
    return dist;
}

namespace {

/** Bounded FIFO cache of distance matrices per calibration epoch. */
class DistanceRegistry
{
  public:
    std::shared_ptr<const DistanceMatrix>
    get(const hw::Device &device, RouteCost cost)
    {
        const Key key{device.fingerprint(), cost};
        std::lock_guard<std::mutex> lock(mutex_);
        auto it = matrices_.find(key);
        if (it != matrices_.end())
            return it->second;
        auto matrix = std::make_shared<const DistanceMatrix>(
            distanceMatrix(device, cost));
        matrices_.emplace(key, matrix);
        order_.push_back(key);
        while (matrices_.size() > kCapacity) {
            matrices_.erase(order_.front());
            order_.pop_front();
        }
        return matrix;
    }

  private:
    using Key = std::pair<std::uint64_t, RouteCost>;

    static constexpr std::size_t kCapacity = 64;

    std::mutex mutex_;
    std::map<Key, std::shared_ptr<const DistanceMatrix>> matrices_;
    std::list<Key> order_;
};

} // namespace

std::shared_ptr<const DistanceMatrix>
sharedDistanceMatrix(const hw::Device &device, RouteCost cost)
{
    static DistanceRegistry registry;
    return registry.get(device, cost);
}

} // namespace qedm::transpile
