/**
 * @file
 * SABRE-style lookahead router (Li, Ding & Xie [22]).
 *
 * Unlike the path Router, which resolves each two-qubit gate in
 * program order along one best path, the lookahead router works on
 * the dependency front: it executes every currently-satisfiable gate,
 * and when the front is blocked it scores all candidate SWAPs by how
 * much they shorten the (reliability-weighted) distance of the front
 * layer plus a discounted extended lookahead window, picking the best.
 * Typically saves SWAPs on circuits with interleaved dependencies.
 */

#pragma once

#include "circuit/circuit.hpp"
#include "hw/device.hpp"
#include "hw/device_view.hpp"
#include "transpile/router.hpp"

namespace qedm::transpile {

/** Lookahead routing parameters. */
struct LookaheadConfig
{
    /** Path metric used in the score. */
    RouteCost cost = RouteCost::Reliability;
    /** Gates of lookahead beyond the front layer. */
    std::size_t window = 20;
    /** Discount applied to the lookahead term. */
    double windowWeight = 0.5;
};

/** Front-layer router with lookahead scoring. */
class LookaheadRouter
{
  public:
    /** Full-device routing (a full view; pre-view behavior). */
    explicit LookaheadRouter(const hw::Device &device,
                             LookaheadConfig config = LookaheadConfig{});

    /**
     * Region-scoped routing: candidate SWAPs never touch a qubit
     * outside the view. The caller keeps the viewed Device alive for
     * the router's lifetime.
     */
    explicit LookaheadRouter(hw::DeviceView view,
                             LookaheadConfig config = LookaheadConfig{});

    /** Route @p logical from @p initial_map (same contract as
     *  Router::route). */
    RouteResult route(const circuit::Circuit &logical,
                      const std::vector<int> &initial_map) const;

  private:
    hw::DeviceView view_;
    LookaheadConfig config_;
};

} // namespace qedm::transpile
