#include "transpile/placement_search.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>

#include "common/error.hpp"

namespace qedm::transpile {
namespace {

/**
 * Slack subtracted from the prune threshold: the incremental bound is
 * an additive log sum while exact scores are multiplicative products,
 * so the two can disagree by a few ulps. The slack makes the bound
 * strictly conservative — a placement that would exactly tie the
 * K-th best is never pruned.
 */
constexpr double kBoundSlack = 1e-9;

/** Descending degrees of a vertex's neighbors (its "signature"). */
std::vector<int>
neighborSignature(const hw::Topology &graph, int v)
{
    std::vector<int> sig;
    sig.reserve(graph.neighbors(v).size());
    for (int u : graph.neighbors(v))
        sig.push_back(graph.degree(u));
    std::sort(sig.begin(), sig.end(), std::greater<>());
    return sig;
}

/**
 * Necessary condition for hosting a pattern vertex with signature
 * @p pattern_sig on a target vertex with signature @p target_sig: the
 * target's i-th best neighbor degree must cover the pattern's (Hall
 * condition on the sorted lists). Never rejects a viable host.
 */
bool
signatureDominates(const std::vector<int> &target_sig,
                   const std::vector<int> &pattern_sig)
{
    if (target_sig.size() < pattern_sig.size())
        return false;
    for (std::size_t i = 0; i < pattern_sig.size(); ++i) {
        if (target_sig[i] < pattern_sig[i])
            return false;
    }
    return true;
}

/** Heap entry: a completed, exactly-scored placement. */
struct HeapEntry
{
    double esp;
    std::vector<int> map;
    std::vector<int> embedding;
};

/** Orders the bounded heap so the *worst* kept placement is on top. */
struct BetterFirst
{
    bool operator()(const HeapEntry &a, const HeapEntry &b) const
    {
        return placementBefore(a.esp, a.map, b.esp, b.map);
    }
};

/** Branch-and-bound VF2 state for one search. */
class TopKSearcher
{
  public:
    TopKSearcher(const hw::Topology &pattern,
                 const PlacementCostModel &cost, const EmbeddingScorer &scorer,
                 std::size_t k, std::size_t limit,
                 PlacementSearchStats *stats,
                 const std::vector<bool> *allowed)
        : pattern_(pattern), target_(cost.espModel().topology()),
          cost_(cost), scorer_(scorer), k_(k), limit_(limit),
          stats_(stats), allowed_(allowed)
    {
        buildFeasibility();
        buildOrder();
        buildBounds();
        map_.assign(static_cast<std::size_t>(pattern_.numQubits()), -1);
        used_.assign(static_cast<std::size_t>(target_.numQubits()),
                     false);
    }

    std::vector<ScoredEmbedding>
    run()
    {
        if (pattern_.numQubits() > 0)
            recurse(0, 0.0);
        std::vector<ScoredEmbedding> out;
        out.reserve(heap_.size());
        while (!heap_.empty()) {
            HeapEntry entry = heap_.top();
            heap_.pop();
            out.push_back(ScoredEmbedding{std::move(entry.embedding),
                                          std::move(entry.map),
                                          entry.esp});
        }
        std::reverse(out.begin(), out.end()); // heap pops worst-first
        return out;
    }

  private:
    /** Per-target signatures and per-pattern-vertex feasible hosts. */
    void
    buildFeasibility()
    {
        targetSig_.reserve(
            static_cast<std::size_t>(target_.numQubits()));
        for (int t = 0; t < target_.numQubits(); ++t)
            targetSig_.push_back(neighborSignature(target_, t));
        patternSig_.reserve(
            static_cast<std::size_t>(pattern_.numQubits()));
        feasibleCount_.assign(
            static_cast<std::size_t>(pattern_.numQubits()), 0);
        for (int v = 0; v < pattern_.numQubits(); ++v) {
            patternSig_.push_back(neighborSignature(pattern_, v));
            int count = 0;
            for (int t = 0; t < target_.numQubits(); ++t) {
                if (hostFeasible(v, t))
                    ++count;
            }
            feasibleCount_[static_cast<std::size_t>(v)] = count;
        }
    }

    bool
    hostFeasible(int v, int t) const
    {
        // Full-graph degree/signature tests stay admissible under the
        // mask: a host viable in the induced subgraph has at least
        // its induced degree in the full graph.
        if (allowed_ && !(*allowed_)[static_cast<std::size_t>(t)])
            return false;
        if (target_.degree(t) < pattern_.degree(v))
            return false;
        return signatureDominates(
            targetSig_[static_cast<std::size_t>(t)],
            patternSig_[static_cast<std::size_t>(v)]);
    }

    /**
     * Matching order: rarest-degree-first (fewest feasible hosts)
     * roots, then connected expansion preferring vertices with the
     * most placed neighbors, ties again rarest-first, then highest
     * degree, then lowest index — all deterministic.
     */
    void
    buildOrder()
    {
        const auto n = static_cast<std::size_t>(pattern_.numQubits());
        order_.reserve(n);
        posOf_.assign(n, -1);
        std::vector<bool> placed(n, false);
        for (std::size_t step = 0; step < n; ++step) {
            int best = -1;
            int best_connected = -1;
            int best_feasible = std::numeric_limits<int>::max();
            int best_degree = -1;
            for (int v = 0; v < pattern_.numQubits(); ++v) {
                const auto vi = static_cast<std::size_t>(v);
                if (placed[vi])
                    continue;
                int connected = 0;
                for (int u : pattern_.neighbors(v)) {
                    if (placed[static_cast<std::size_t>(u)])
                        ++connected;
                }
                const int feasible = feasibleCount_[vi];
                const int degree = pattern_.degree(v);
                const bool better =
                    connected > best_connected ||
                    (connected == best_connected &&
                     (feasible < best_feasible ||
                      (feasible == best_feasible &&
                       degree > best_degree)));
                if (better) {
                    best = v;
                    best_connected = connected;
                    best_feasible = feasible;
                    best_degree = degree;
                }
            }
            placed[static_cast<std::size_t>(best)] = true;
            posOf_[static_cast<std::size_t>(best)] =
                static_cast<int>(step);
            order_.push_back(best);
        }

        // Edges to already-placed neighbors, charged when the later
        // endpoint is placed.
        backEdges_.assign(n, {});
        for (const auto &edge : pattern_.edges()) {
            const int pa = posOf_[static_cast<std::size_t>(edge.a)];
            const int pb = posOf_[static_cast<std::size_t>(edge.b)];
            const int later = std::max(pa, pb);
            const int earlier_vertex = pa < pb ? edge.a : edge.b;
            const int e = pattern_.edgeIndex(edge.a, edge.b);
            backEdges_[static_cast<std::size_t>(later)].push_back(
                {earlier_vertex, e});
        }
    }

    /** Optimistic log-ESP still claimable from depth d onward. */
    void
    buildBounds()
    {
        const std::size_t n = order_.size();
        suffixBound_.assign(n + 1, 0.0);
        std::vector<double> at_depth(n, 0.0);
        for (std::size_t d = 0; d < n; ++d) {
            at_depth[d] = cost_.bestVertexLog(order_[d]);
            for (const auto &[vertex, edge] : backEdges_[d]) {
                (void)vertex;
                at_depth[d] += cost_.bestEdgeLog(edge);
            }
        }
        for (std::size_t d = n; d-- > 0;)
            suffixBound_[d] = suffixBound_[d + 1] + at_depth[d];
    }

    /** Log of the K-th best exact ESP (the prune threshold). */
    double
    threshold() const
    {
        if (heap_.size() < k_)
            return -std::numeric_limits<double>::infinity();
        constexpr double kFloor = 1e-300;
        return std::log(std::max(heap_.top().esp, kFloor));
    }

    void
    complete()
    {
        if (stats_ != nullptr)
            ++stats_->completions;
        ++completions_;
        std::vector<int> canonical_map;
        double esp = 0.0;
        scorer_(map_, canonical_map, esp);
        if (heap_.size() == k_ &&
            !placementBefore(esp, canonical_map, heap_.top().esp,
                             heap_.top().map))
            return;
        heap_.push(HeapEntry{esp, std::move(canonical_map), map_});
        if (heap_.size() > k_)
            heap_.pop();
    }

    void
    recurse(std::size_t depth, double partial)
    {
        if (completions_ >= limit_)
            return;
        if (depth == order_.size()) {
            complete();
            return;
        }
        if (stats_ != nullptr)
            ++stats_->nodesVisited;
        if (partial + suffixBound_[depth] <
            threshold() - kBoundSlack) {
            if (stats_ != nullptr)
                ++stats_->prunedBound;
            return;
        }
        const int v = order_[depth];
        const auto vi = static_cast<std::size_t>(v);

        // Candidates: neighbors of an already-mapped pattern neighbor
        // when one exists, else every target vertex.
        const std::vector<int> *candidates = nullptr;
        std::vector<int> all;
        if (!backEdges_[depth].empty()) {
            const int anchor = backEdges_[depth].front().first;
            candidates =
                &target_.neighbors(map_[static_cast<std::size_t>(
                    anchor)]);
        } else {
            all.resize(static_cast<std::size_t>(target_.numQubits()));
            for (int t = 0; t < target_.numQubits(); ++t)
                all[static_cast<std::size_t>(t)] = t;
            candidates = &all;
        }

        for (int t : *candidates) {
            if (used_[static_cast<std::size_t>(t)])
                continue;
            if (allowed_ && !(*allowed_)[static_cast<std::size_t>(t)])
                continue;
            if (target_.degree(t) < pattern_.degree(v))
                continue;
            if (!signatureDominates(
                    targetSig_[static_cast<std::size_t>(t)],
                    patternSig_[vi])) {
                if (stats_ != nullptr)
                    ++stats_->prunedSignature;
                continue;
            }
            bool feasible = true;
            double delta = cost_.vertexLog(v, t);
            for (const auto &[vertex, edge] : backEdges_[depth]) {
                const int mapped =
                    map_[static_cast<std::size_t>(vertex)];
                const int device_edge = target_.edgeIndex(mapped, t);
                if (device_edge < 0) {
                    feasible = false;
                    break;
                }
                delta += cost_.edgeLog(edge, device_edge);
            }
            if (!feasible)
                continue;
            map_[vi] = t;
            used_[static_cast<std::size_t>(t)] = true;
            recurse(depth + 1, partial + delta);
            map_[vi] = -1;
            used_[static_cast<std::size_t>(t)] = false;
            if (completions_ >= limit_)
                return;
        }
    }

    const hw::Topology &pattern_;
    const hw::Topology &target_;
    const PlacementCostModel &cost_;
    const EmbeddingScorer &scorer_;
    std::size_t k_;
    std::size_t limit_;
    PlacementSearchStats *stats_;
    const std::vector<bool> *allowed_;

    std::vector<std::vector<int>> targetSig_;
    std::vector<std::vector<int>> patternSig_;
    std::vector<int> feasibleCount_;
    std::vector<int> order_;
    std::vector<int> posOf_;
    /** Per depth: (earlier pattern vertex, pattern edge index). */
    std::vector<std::vector<std::pair<int, int>>> backEdges_;
    std::vector<double> suffixBound_;

    std::vector<int> map_;
    std::vector<bool> used_;
    std::uint64_t completions_ = 0;
    std::priority_queue<HeapEntry, std::vector<HeapEntry>, BetterFirst>
        heap_;
};

} // namespace

bool
placementBefore(double esp_a, const std::vector<int> &map_a,
                double esp_b, const std::vector<int> &map_b)
{
    if (esp_a != esp_b)
        return esp_a > esp_b;
    return map_a < map_b;
}

PlacementCostModel::PlacementCostModel(
    std::shared_ptr<const EspModel> model, const hw::Topology &pattern,
    const std::vector<int> &pattern_index, const GateTrace &trace,
    const std::vector<bool> *allowed)
    : model_(std::move(model))
{
    const auto n = static_cast<std::size_t>(pattern.numQubits());
    oneQubitCount_.assign(n, 0.0);
    measureCount_.assign(n, 0.0);
    twoQubitCount_.assign(pattern.numEdges(), 0.0);
    for (const GateTerm &term : trace) {
        switch (term.kind) {
          case GateTerm::Kind::OneQubit:
          case GateTerm::Kind::Measure: {
            const int v = pattern_index[static_cast<std::size_t>(
                term.a)];
            if (v < 0)
                break; // outside the pattern (isolated qubit)
            auto &counts = term.kind == GateTerm::Kind::OneQubit
                               ? oneQubitCount_
                               : measureCount_;
            counts[static_cast<std::size_t>(v)] += 1.0;
            break;
          }
          case GateTerm::Kind::TwoQubit: {
            const int va = pattern_index[static_cast<std::size_t>(
                term.a)];
            const int vb = pattern_index[static_cast<std::size_t>(
                term.b)];
            QEDM_ASSERT(va >= 0 && vb >= 0,
                        "two-qubit term off the pattern graph");
            const int e = pattern.edgeIndex(va, vb);
            QEDM_ASSERT(e >= 0,
                        "two-qubit term on a non-pattern edge");
            twoQubitCount_[static_cast<std::size_t>(e)] += 1.0;
            break;
          }
        }
    }
    bestVertexLog_.assign(n, 0.0);
    for (int v = 0; v < pattern.numQubits(); ++v) {
        double best = -std::numeric_limits<double>::infinity();
        for (int t = 0; t < model_->numQubits(); ++t) {
            if (allowed && !(*allowed)[static_cast<std::size_t>(t)])
                continue;
            best = std::max(best, vertexLog(v, t));
        }
        bestVertexLog_[static_cast<std::size_t>(v)] = best;
    }
}

std::vector<ScoredEmbedding>
topKPlacements(const hw::Topology &pattern,
               const PlacementCostModel &cost_model,
               const EmbeddingScorer &scorer, std::size_t k,
               std::size_t limit, PlacementSearchStats *stats,
               const std::vector<bool> *allowed)
{
    QEDM_REQUIRE(k > 0, "top-K placement search needs k >= 1");
    QEDM_REQUIRE(limit > 0, "enumeration limit must be positive");
    QEDM_REQUIRE(pattern.numQubits() <=
                     cost_model.espModel().numQubits(),
                 "pattern is larger than the target graph");
    QEDM_REQUIRE(!allowed ||
                     allowed->size() ==
                         static_cast<std::size_t>(
                             cost_model.espModel().numQubits()),
                 "allowed mask size must match the target graph");
    TopKSearcher searcher(pattern, cost_model, scorer, k, limit, stats,
                          allowed);
    return searcher.run();
}

} // namespace qedm::transpile
