#include "transpile/placement_search.hpp"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cmath>
#include <limits>
#include <utility>

#include "common/error.hpp"
#include "runtime/scheduler.hpp"

namespace qedm::transpile {
namespace {

/**
 * Slack subtracted from the prune threshold: the incremental bound is
 * an additive log sum while exact scores are multiplicative products,
 * so the two can disagree by a few ulps. The slack makes the bound
 * strictly conservative — a placement that would exactly tie the
 * K-th best is never pruned.
 */
constexpr double kBoundSlack = 1e-9;

/** Floor under exact scores before taking the threshold log. */
constexpr double kEspLogFloor = 1e-300;

constexpr double kNegInf = -std::numeric_limits<double>::infinity();

/**
 * Flattened per-vertex neighbor-degree signatures (descending): one
 * shared data array plus offsets, instead of one heap vector per
 * vertex — a 127-qubit target used to cost 127 allocations per
 * search construction.
 */
struct SignatureTable
{
    std::vector<int> data;
    std::vector<int> off; ///< size numQubits + 1

    explicit SignatureTable(const hw::Topology &graph)
    {
        const int n = graph.numQubits();
        off.resize(static_cast<std::size_t>(n) + 1, 0);
        for (int v = 0; v < n; ++v)
            off[static_cast<std::size_t>(v) + 1] =
                off[static_cast<std::size_t>(v)] + graph.degree(v);
        data.resize(
            static_cast<std::size_t>(off[static_cast<std::size_t>(n)]));
        for (int v = 0; v < n; ++v) {
            int *out = data.data() + off[static_cast<std::size_t>(v)];
            const auto &nbrs = graph.neighbors(v);
            for (std::size_t i = 0; i < nbrs.size(); ++i)
                out[i] = graph.degree(nbrs[i]);
            std::sort(out, out + nbrs.size(), std::greater<>());
        }
    }

    const int *begin(int v) const
    {
        return data.data() + off[static_cast<std::size_t>(v)];
    }
    int size(int v) const
    {
        return off[static_cast<std::size_t>(v) + 1] -
               off[static_cast<std::size_t>(v)];
    }
};

/**
 * Necessary condition for hosting a pattern vertex with signature
 * @p pattern_sig on a target vertex with signature @p target_sig: the
 * target's i-th best neighbor degree must cover the pattern's (Hall
 * condition on the sorted lists). Never rejects a viable host.
 */
bool
signatureDominates(const int *target_sig, int target_n,
                   const int *pattern_sig, int pattern_n)
{
    if (target_n < pattern_n)
        return false;
    for (int i = 0; i < pattern_n; ++i) {
        if (target_sig[i] < pattern_sig[i])
            return false;
    }
    return true;
}

/** A completed, exactly-scored placement kept by a worker heap. */
struct HeapEntry
{
    double esp;
    std::vector<int> map;
    std::vector<int> embedding;
};

/** The canonical strict total order: placementBefore extended with an
 *  embedding tie-break, so merges never depend on insertion order. */
bool
entryBefore(double esp_a, const std::vector<int> &map_a,
            const std::vector<int> &emb_a, double esp_b,
            const std::vector<int> &map_b,
            const std::vector<int> &emb_b)
{
    if (esp_a != esp_b)
        return esp_a > esp_b;
    if (map_a != map_b)
        return map_a < map_b;
    return emb_a < emb_b;
}

} // namespace

/**
 * Everything shared and immutable across workers of one search:
 * feasibility bitsets, the matching order with its flattened back
 * edges, suffix bounds, and dense log-score lookup tables. Built once
 * per plan (typically once per circuit) and only read afterwards.
 */
struct PlacementSearchPlan::Impl
{
    const hw::Topology &pattern;
    const hw::Topology &target;

    int numPattern;
    int numTarget;
    std::size_t words; ///< 64-bit words per target bitset row
    std::size_t targetEdges;

    /** Per pattern vertex: hosts passing allowed+degree+signature. */
    std::vector<std::uint64_t> feasible;
    /** Per pattern vertex: hosts passing allowed+degree only (tells
     *  the prunedSignature counter apart from plain misfits). */
    std::vector<std::uint64_t> degreeOk;
    std::vector<int> feasibleCount;

    std::vector<int> order;
    std::vector<int> posOf;
    /** Flattened back edges: for depth d, entries [backOff[d],
     *  backOff[d+1]) of backVertex/backEdge. */
    std::vector<int> backOff;
    std::vector<int> backVertex;
    std::vector<int> backEdge;
    std::vector<double> suffixBound;
    /** Best claimable at each depth alone (the suffix summand). */
    std::vector<double> depthBest;
    /**
     * Anchor-conditioned refinement of depthBest: entry
     * [d * numTarget + h] bounds what depth d can claim when its
     * anchor vertex is hosted on h — the vertex must then land on a
     * neighbor of h, so the max ranges over feasible neighbors of h
     * (charging the anchor edge exactly) instead of the whole device.
     * Only anchored depths have meaningful rows.
     */
    std::vector<double> anchorBound;

    /** vertexLogTab[v * numTarget + t] = cost.vertexLog(v, t). */
    std::vector<double> vertexLogTab;
    /** edgeLogTab[e * numEdges(target) + de] = cost.edgeLog(e, de). */
    std::vector<double> edgeLogTab;

    /** Root work items: feasible hosts of order[0], best optimistic
     *  vertex score first (warms the bound early), ties ascending. */
    std::vector<int> rootCandidates;

    Impl(const hw::Topology &pattern_graph,
         const PlacementCostModel &cost,
         const std::vector<bool> *allowed)
        : pattern(pattern_graph), target(cost.espModel().topology()),
          numPattern(pattern_graph.numQubits()),
          numTarget(target.numQubits()),
          words((static_cast<std::size_t>(target.numQubits()) + 63) /
                64),
          targetEdges(target.numEdges())
    {
        buildFeasibility(allowed);
        buildOrder();
        buildTables(cost);
        buildBounds();
        buildRoots();
    }

    bool feasibleBit(int v, int t) const
    {
        return (feasible[static_cast<std::size_t>(v) * words +
                         (static_cast<std::size_t>(t) >> 6)] >>
                (static_cast<std::size_t>(t) & 63)) &
               1U;
    }

    bool degreeOkBit(int v, int t) const
    {
        return (degreeOk[static_cast<std::size_t>(v) * words +
                         (static_cast<std::size_t>(t) >> 6)] >>
                (static_cast<std::size_t>(t) & 63)) &
               1U;
    }

  private:
    void
    buildFeasibility(const std::vector<bool> *allowed)
    {
        const SignatureTable tsig(target);
        const SignatureTable psig(pattern);
        const auto np = static_cast<std::size_t>(numPattern);
        feasible.assign(np * words, 0);
        degreeOk.assign(np * words, 0);
        feasibleCount.assign(np, 0);
        for (int v = 0; v < numPattern; ++v) {
            std::uint64_t *feas =
                feasible.data() + static_cast<std::size_t>(v) * words;
            std::uint64_t *deg =
                degreeOk.data() + static_cast<std::size_t>(v) * words;
            int count = 0;
            for (int t = 0; t < numTarget; ++t) {
                // Full-graph degree/signature tests stay admissible
                // under the mask: a host viable in the induced
                // subgraph has at least its induced degree in the
                // full graph.
                if (allowed &&
                    !(*allowed)[static_cast<std::size_t>(t)])
                    continue;
                if (target.degree(t) < pattern.degree(v))
                    continue;
                const std::uint64_t bit =
                    std::uint64_t{1}
                    << (static_cast<std::size_t>(t) & 63);
                deg[static_cast<std::size_t>(t) >> 6] |= bit;
                if (!signatureDominates(tsig.begin(t), tsig.size(t),
                                        psig.begin(v), psig.size(v)))
                    continue;
                feas[static_cast<std::size_t>(t) >> 6] |= bit;
                ++count;
            }
            feasibleCount[static_cast<std::size_t>(v)] = count;
        }
    }

    /**
     * Matching order: rarest-degree-first (fewest feasible hosts)
     * roots, then connected expansion preferring vertices with the
     * most placed neighbors, ties again rarest-first, then highest
     * degree, then lowest index — all deterministic.
     */
    void
    buildOrder()
    {
        const auto n = static_cast<std::size_t>(numPattern);
        order.reserve(n);
        posOf.assign(n, -1);
        std::vector<bool> placed(n, false);
        for (std::size_t step = 0; step < n; ++step) {
            int best = -1;
            int best_connected = -1;
            int best_feasible = std::numeric_limits<int>::max();
            int best_degree = -1;
            for (int v = 0; v < numPattern; ++v) {
                const auto vi = static_cast<std::size_t>(v);
                if (placed[vi])
                    continue;
                int connected = 0;
                for (int u : pattern.neighbors(v)) {
                    if (placed[static_cast<std::size_t>(u)])
                        ++connected;
                }
                const int feasible_hosts = feasibleCount[vi];
                const int degree = pattern.degree(v);
                const bool better =
                    connected > best_connected ||
                    (connected == best_connected &&
                     (feasible_hosts < best_feasible ||
                      (feasible_hosts == best_feasible &&
                       degree > best_degree)));
                if (better) {
                    best = v;
                    best_connected = connected;
                    best_feasible = feasible_hosts;
                    best_degree = degree;
                }
            }
            placed[static_cast<std::size_t>(best)] = true;
            posOf[static_cast<std::size_t>(best)] =
                static_cast<int>(step);
            order.push_back(best);
        }

        // Edges to already-placed neighbors, charged when the later
        // endpoint is placed; flattened depth-major.
        std::vector<std::vector<std::pair<int, int>>> back(n);
        for (const auto &edge : pattern.edges()) {
            const int pa = posOf[static_cast<std::size_t>(edge.a)];
            const int pb = posOf[static_cast<std::size_t>(edge.b)];
            const int later = std::max(pa, pb);
            const int earlier_vertex = pa < pb ? edge.a : edge.b;
            const int e = pattern.edgeIndex(edge.a, edge.b);
            back[static_cast<std::size_t>(later)].emplace_back(
                earlier_vertex, e);
        }
        backOff.assign(n + 1, 0);
        for (std::size_t d = 0; d < n; ++d)
            backOff[d + 1] =
                backOff[d] + static_cast<int>(back[d].size());
        backVertex.resize(static_cast<std::size_t>(backOff[n]));
        backEdge.resize(static_cast<std::size_t>(backOff[n]));
        for (std::size_t d = 0; d < n; ++d) {
            int at = backOff[d];
            for (const auto &[vertex, edge] : back[d]) {
                backVertex[static_cast<std::size_t>(at)] = vertex;
                backEdge[static_cast<std::size_t>(at)] = edge;
                ++at;
            }
        }
    }

    /**
     * Optimistic log-ESP still claimable from depth d onward,
     * tightened to the feasible subgraph: the per-vertex optimistic
     * term maximizes over that vertex's *feasible* hosts only, and
     * the per-edge term over device edges whose endpoints can host
     * the pattern edge's endpoints. Still admissible — every
     * completion maps vertices to feasible hosts and charges edges
     * between them — but far tighter than the whole-device best
     * factors on a spread calibration, so the bound fires earlier.
     * An infeasible vertex (no hosts) yields -inf and prunes the
     * whole search, which is exact: no completion exists.
     */
    void
    buildBounds()
    {
        const std::size_t n = order.size();
        const auto nt = static_cast<std::size_t>(numTarget);
        std::vector<double> best_vlog(n, kNegInf);
        for (int v = 0; v < numPattern; ++v) {
            double best = kNegInf;
            for (int t = 0; t < numTarget; ++t) {
                if (feasibleBit(v, t))
                    best = std::max(
                        best,
                        vertexLogTab[static_cast<std::size_t>(v) * nt +
                                     static_cast<std::size_t>(t)]);
            }
            best_vlog[static_cast<std::size_t>(v)] = best;
        }
        const std::size_t ne = target.numEdges();
        std::vector<double> best_elog(pattern.numEdges(), kNegInf);
        for (std::size_t e = 0; e < pattern.numEdges(); ++e) {
            const int va = pattern.edges()[e].a;
            const int vb = pattern.edges()[e].b;
            double best = kNegInf;
            for (std::size_t de = 0; de < ne; ++de) {
                const int a = target.edges()[de].a;
                const int b = target.edges()[de].b;
                if ((feasibleBit(va, a) && feasibleBit(vb, b)) ||
                    (feasibleBit(va, b) && feasibleBit(vb, a)))
                    best = std::max(best, edgeLogTab[e * ne + de]);
            }
            best_elog[e] = best;
        }
        suffixBound.assign(n + 1, 0.0);
        depthBest.assign(n, 0.0);
        for (std::size_t d = 0; d < n; ++d) {
            depthBest[d] =
                best_vlog[static_cast<std::size_t>(order[d])];
            for (int i = backOff[d]; i < backOff[d + 1]; ++i)
                depthBest[d] += best_elog[static_cast<std::size_t>(
                    backEdge[static_cast<std::size_t>(i)])];
        }
        for (std::size_t d = n; d-- > 0;)
            suffixBound[d] = suffixBound[d + 1] + depthBest[d];

        // Anchor-conditioned per-depth bounds: for each anchored
        // depth and each possible anchor host h, the vertex lands on
        // a feasible neighbor of h over the incident device edge, so
        // maximize vertexLog + first-back-edge log over exactly those
        // pairs; remaining back edges keep their static best. -inf
        // when h has no feasible neighbor — the branch is hopeless.
        anchorBound.assign(n * nt, kNegInf);
        for (std::size_t d = 1; d < n; ++d) {
            if (backOff[d] == backOff[d + 1])
                continue;
            const int v = order[d];
            const std::size_t e0 = static_cast<std::size_t>(
                backEdge[static_cast<std::size_t>(backOff[d])]);
            double static_rest = 0.0;
            for (int i = backOff[d] + 1; i < backOff[d + 1]; ++i)
                static_rest += best_elog[static_cast<std::size_t>(
                    backEdge[static_cast<std::size_t>(i)])];
            double *row = anchorBound.data() + d * nt;
            for (int h = 0; h < numTarget; ++h) {
                double best = kNegInf;
                for (const auto &[u, de] : target.neighborEdges(h)) {
                    if (!feasibleBit(v, u))
                        continue;
                    best = std::max(
                        best,
                        vertexLogTab[static_cast<std::size_t>(v) * nt +
                                     static_cast<std::size_t>(u)] +
                            edgeLogTab[e0 * ne +
                                       static_cast<std::size_t>(de)]);
                }
                row[static_cast<std::size_t>(h)] = best + static_rest;
            }
        }
    }

    /** Dense (v, t) and (pattern edge, device edge) log tables, so
     *  the inner loop is two array reads instead of recomputing the
     *  count-weighted sums per node. Same doubles: each entry is the
     *  exact expression vertexLog/edgeLog evaluates. */
    void
    buildTables(const PlacementCostModel &cost)
    {
        const auto nt = static_cast<std::size_t>(numTarget);
        vertexLogTab.resize(static_cast<std::size_t>(numPattern) * nt);
        for (int v = 0; v < numPattern; ++v) {
            for (int t = 0; t < numTarget; ++t)
                vertexLogTab[static_cast<std::size_t>(v) * nt +
                             static_cast<std::size_t>(t)] =
                    cost.vertexLog(v, t);
        }
        const std::size_t ne = target.numEdges();
        edgeLogTab.resize(pattern.numEdges() * ne);
        for (std::size_t e = 0; e < pattern.numEdges(); ++e) {
            for (std::size_t de = 0; de < ne; ++de)
                edgeLogTab[e * ne + de] =
                    cost.edgeLog(static_cast<int>(e),
                                 static_cast<int>(de));
        }
    }

    void
    buildRoots()
    {
        if (order.empty())
            return;
        const int v0 = order.front();
        rootCandidates.reserve(
            static_cast<std::size_t>(feasibleCount[static_cast<
                std::size_t>(v0)]));
        for (int t = 0; t < numTarget; ++t) {
            if (feasibleBit(v0, t))
                rootCandidates.push_back(t);
        }
        const double *vlog =
            vertexLogTab.data() +
            static_cast<std::size_t>(v0) *
                static_cast<std::size_t>(numTarget);
        std::sort(rootCandidates.begin(), rootCandidates.end(),
                  [vlog](int a, int b) {
                      const double la =
                          vlog[static_cast<std::size_t>(a)];
                      const double lb =
                          vlog[static_cast<std::size_t>(b)];
                      if (la != lb)
                          return la > lb;
                      return a < b;
                  });
    }
};

namespace {

using PlanImpl = PlacementSearchPlan::Impl;

/**
 * The bound every worker prunes against: an atomic-max over the log of
 * each worker's local K-th best score. Any worker's local K-th best is
 * a lower bound on the global K-th best (the union holds at least K
 * placements at least that good), so pruning against a published value
 * — however stale — never drops a true top-K member. Only ever rises.
 */
class MonotonicBound
{
  public:
    double get() const { return log_.load(std::memory_order_relaxed); }

    void
    raise(double value)
    {
        double cur = log_.load(std::memory_order_relaxed);
        while (cur < value &&
               !log_.compare_exchange_weak(cur, value,
                                           std::memory_order_relaxed))
            ;
    }

  private:
    std::atomic<double> log_{kNegInf};
};

/** Bounded best-K list kept sorted under the canonical total order;
 *  the worst kept entry is back(). */
class BoundedBest
{
  public:
    explicit BoundedBest(std::size_t k) : k_(k)
    {
        entries_.reserve(k + 1);
    }

    bool full() const { return entries_.size() == k_; }
    double worstEsp() const { return entries_.back().esp; }

    /** True when a candidate with this score/map/embedding belongs in
     *  the list right now. */
    bool
    admits(double esp, const std::vector<int> &map,
           const std::vector<int> &embedding) const
    {
        if (!full())
            return true;
        const HeapEntry &w = entries_.back();
        return entryBefore(esp, map, embedding, w.esp, w.map,
                           w.embedding);
    }

    void
    insert(double esp, std::vector<int> map,
           std::vector<int> embedding)
    {
        std::size_t pos = entries_.size();
        while (pos > 0 &&
               entryBefore(esp, map, embedding, entries_[pos - 1].esp,
                           entries_[pos - 1].map,
                           entries_[pos - 1].embedding))
            --pos;
        entries_.insert(entries_.begin() + static_cast<std::ptrdiff_t>(
                                               pos),
                        HeapEntry{esp, std::move(map),
                                  std::move(embedding)});
        if (entries_.size() > k_)
            entries_.pop_back();
    }

    std::vector<HeapEntry> take() { return std::move(entries_); }

  private:
    std::size_t k_;
    std::vector<HeapEntry> entries_; ///< sorted best-first
};

/**
 * One search worker: private partial map, private best-K list, and a
 * cached prune threshold refreshed from the shared bound. The serial
 * driver runs every root through one worker (the classic DFS); the
 * parallel driver gives each root work item a fresh worker and merges.
 */
class Worker
{
  public:
    Worker(const PlanImpl &plan, const EmbeddingScorer &scorer,
           std::size_t k, std::size_t limit, MonotonicBound &bound,
           PlacementSearchStats *stats)
        : plan_(plan), scorer_(scorer), limit_(limit), bound_(bound),
          stats_(stats), best_(k),
          map_(static_cast<std::size_t>(plan.numPattern), -1),
          used_(static_cast<std::size_t>(plan.numTarget), 0),
          candDelta_(static_cast<std::size_t>(plan.numPattern) *
                     static_cast<std::size_t>(plan.numTarget)),
          candHost_(static_cast<std::size_t>(plan.numPattern) *
                    static_cast<std::size_t>(plan.numTarget))
    {
    }

    /** Explore the whole branch rooted at hosting order[0] on @p t.
     *  The completion budget (limit) is per root branch. */
    void
    searchRoot(int t)
    {
        completions_ = 0;
        if (stats_ != nullptr)
            ++stats_->nodesVisited;
        if (plan_.suffixBound[0] < threshold() - kBoundSlack) {
            if (stats_ != nullptr)
                ++stats_->prunedBound;
            return;
        }
        const int v = plan_.order.front();
        const auto vi = static_cast<std::size_t>(v);
        const double delta =
            plan_.vertexLogTab[vi * static_cast<std::size_t>(
                                        plan_.numTarget) +
                               static_cast<std::size_t>(t)];
        map_[vi] = t;
        used_[static_cast<std::size_t>(t)] = 1;
        recurse(1, delta);
        map_[vi] = -1;
        used_[static_cast<std::size_t>(t)] = 0;
    }

    std::vector<HeapEntry> take() { return best_.take(); }

  private:
    /** Current prune threshold: the worker's own K-th best and the
     *  shared bound, whichever is tighter. Cheap enough per node — a
     *  relaxed load and a max — that no log() is ever taken here. */
    double
    threshold() const
    {
        return std::max(localThr_, bound_.get());
    }

    void
    refreshThreshold()
    {
        if (!best_.full())
            return;
        localThr_ =
            std::log(std::max(best_.worstEsp(), kEspLogFloor));
        bound_.raise(localThr_);
    }

    void
    complete(double partial)
    {
        ++completions_;
        if (stats_ != nullptr)
            ++stats_->completions;
        // Leaf bound: partial (+ slack) upper-bounds the exact log
        // score — isolated-qubit factors only lower it — so a leaf
        // that cannot reach the K-th best skips the exact scorer.
        if (partial < threshold() - kBoundSlack)
            return;
        std::vector<int> canonical_map;
        double esp = 0.0;
        scorer_(map_, canonical_map, esp);
        if (!best_.admits(esp, canonical_map, map_))
            return;
        best_.insert(esp, std::move(canonical_map), map_);
        refreshThreshold();
    }

    /** Host pattern vertex @p v on target @p t and explore deeper. */
    // qedm:hot
    void
    descend(std::size_t depth, int v, int t, double next_partial)
    {
        map_[static_cast<std::size_t>(v)] = t;
        used_[static_cast<std::size_t>(t)] = 1;
        recurse(depth + 1, next_partial);
        map_[static_cast<std::size_t>(v)] = -1;
        used_[static_cast<std::size_t>(t)] = 0;
    }

    /**
     * Collect the viable hosts for the vertex at @p depth into this
     * depth's scratch slice, sorted by descending log-score delta
     * (ties: host ascending). Exploring locally-best children first
     * warms the prune threshold early; the final top-K is exact
     * either way, so the output does not depend on this order.
     */
    // qedm:hot
    int
    gatherChildren(std::size_t depth, int v, int anchor_host,
                   const double *vlog, double *cand_delta,
                   int *cand_host)
    {
        int nc = 0;
        const auto insert = [&](int t, double delta) {
            int pos = nc;
            while (pos > 0 && cand_delta[pos - 1] < delta) {
                cand_delta[pos] = cand_delta[pos - 1];
                cand_host[pos] = cand_host[pos - 1];
                --pos;
            }
            cand_delta[pos] = delta;
            cand_host[pos] = t;
            ++nc;
        };
        const std::size_t ne = plan_.targetEdges;
        if (anchor_host < 0) {
            // Start of a disconnected pattern component: every unused
            // feasible host, no back edges to charge.
            const std::uint64_t *row =
                plan_.feasible.data() +
                static_cast<std::size_t>(v) * plan_.words;
            for (std::size_t w = 0; w < plan_.words; ++w) {
                std::uint64_t bits = row[w];
                while (bits != 0) {
                    const int t = static_cast<int>(
                        (w << 6) + static_cast<std::size_t>(
                                       std::countr_zero(bits)));
                    bits &= bits - 1;
                    if (used_[static_cast<std::size_t>(t)] != 0)
                        continue;
                    insert(t, vlog[static_cast<std::size_t>(t)]);
                }
            }
            return nc;
        }
        // Connected expansion: candidates are the neighbors of the
        // first already-placed pattern neighbor, iterated with their
        // incident device edge so the first back edge charges its
        // factor without an edgeIndex lookup.
        for (const auto &[t, device_edge] :
             plan_.target.neighborEdges(anchor_host)) {
            if (used_[static_cast<std::size_t>(t)] != 0)
                continue;
            if (!plan_.feasibleBit(v, t)) {
                if (stats_ != nullptr && plan_.degreeOkBit(v, t))
                    ++stats_->prunedSignature;
                continue;
            }
            double delta = vlog[static_cast<std::size_t>(t)];
            int i = plan_.backOff[depth];
            delta += plan_.edgeLogTab[static_cast<std::size_t>(
                                          plan_.backEdge[static_cast<
                                              std::size_t>(i)]) *
                                          ne +
                                      static_cast<std::size_t>(
                                          device_edge)];
            bool viable = true;
            for (++i; i < plan_.backOff[depth + 1]; ++i) {
                const int mapped = map_[static_cast<std::size_t>(
                    plan_.backVertex[static_cast<std::size_t>(i)])];
                const int de = plan_.target.edgeIndex(mapped, t);
                if (de < 0) {
                    viable = false;
                    break;
                }
                delta += plan_.edgeLogTab[static_cast<std::size_t>(
                                              plan_.backEdge[
                                                  static_cast<
                                                      std::size_t>(
                                                      i)]) *
                                              ne +
                                          static_cast<std::size_t>(
                                              de)];
            }
            if (viable)
                insert(t, delta);
        }
        return nc;
    }

    // qedm:hot
    void
    recurse(std::size_t depth, double partial)
    {
        if (completions_ >= limit_)
            return;
        if (depth == plan_.order.size()) {
            complete(partial);
            return;
        }
        if (stats_ != nullptr)
            ++stats_->nodesVisited;
        // Prune against the anchor-conditioned bound when this depth
        // is anchored (its host must neighbor the anchor's), falling
        // back to the static per-depth best otherwise. Both are
        // admissible; the conditioned one is far tighter.
        const std::size_t nt =
            static_cast<std::size_t>(plan_.numTarget);
        int anchor_host = -1;
        double avail;
        if (plan_.backOff[depth] < plan_.backOff[depth + 1]) {
            const int anchor = plan_.backVertex[
                static_cast<std::size_t>(plan_.backOff[depth])];
            anchor_host = map_[static_cast<std::size_t>(anchor)];
            avail = plan_.anchorBound[depth * nt +
                                      static_cast<std::size_t>(
                                          anchor_host)];
        } else {
            avail = plan_.depthBest[depth];
        }
        if (partial + avail + plan_.suffixBound[depth + 1] <
            threshold() - kBoundSlack) {
            if (stats_ != nullptr)
                ++stats_->prunedBound;
            return;
        }
        const int v = plan_.order[depth];
        const double *vlog =
            plan_.vertexLogTab.data() +
            static_cast<std::size_t>(v) *
                static_cast<std::size_t>(plan_.numTarget);
        // Per-depth scratch slice — recursion below this depth uses
        // deeper slices, so the candidate list survives the loop.
        const std::size_t base = (depth - 1) * nt;
        double *cand_delta = candDelta_.data() + base;
        int *cand_host = candHost_.data() + base;
        const int nc = gatherChildren(depth, v, anchor_host, vlog,
                                      cand_delta, cand_host);
        for (int j = 0; j < nc; ++j) {
            descend(depth, v, cand_host[j], partial + cand_delta[j]);
            if (completions_ >= limit_)
                return;
        }
    }

    const PlanImpl &plan_;
    const EmbeddingScorer &scorer_;
    std::size_t limit_;
    MonotonicBound &bound_;
    PlacementSearchStats *stats_;
    BoundedBest best_;
    std::vector<int> map_;
    std::vector<std::uint8_t> used_;
    /** Depth-sliced candidate scratch (numPattern x numTarget). */
    std::vector<double> candDelta_;
    std::vector<int> candHost_;
    double localThr_ = kNegInf;
    std::uint64_t completions_ = 0;
};

std::vector<ScoredEmbedding>
toScored(std::vector<HeapEntry> entries)
{
    std::vector<ScoredEmbedding> out;
    out.reserve(entries.size());
    for (HeapEntry &entry : entries)
        out.push_back(ScoredEmbedding{std::move(entry.embedding),
                                      std::move(entry.map),
                                      entry.esp});
    return out;
}

} // namespace

bool
placementBefore(double esp_a, const std::vector<int> &map_a,
                double esp_b, const std::vector<int> &map_b)
{
    if (esp_a != esp_b)
        return esp_a > esp_b;
    return map_a < map_b;
}

PlacementCostModel::PlacementCostModel(
    std::shared_ptr<const EspModel> model, const hw::Topology &pattern,
    const std::vector<int> &pattern_index, const GateTrace &trace,
    const std::vector<bool> *allowed)
    : model_(std::move(model))
{
    const auto n = static_cast<std::size_t>(pattern.numQubits());
    oneQubitCount_.assign(n, 0.0);
    measureCount_.assign(n, 0.0);
    twoQubitCount_.assign(pattern.numEdges(), 0.0);
    for (const GateTerm &term : trace) {
        switch (term.kind) {
          case GateTerm::Kind::OneQubit:
          case GateTerm::Kind::Measure: {
            const int v = pattern_index[static_cast<std::size_t>(
                term.a)];
            if (v < 0)
                break; // outside the pattern (isolated qubit)
            auto &counts = term.kind == GateTerm::Kind::OneQubit
                               ? oneQubitCount_
                               : measureCount_;
            counts[static_cast<std::size_t>(v)] += 1.0;
            break;
          }
          case GateTerm::Kind::TwoQubit: {
            const int va = pattern_index[static_cast<std::size_t>(
                term.a)];
            const int vb = pattern_index[static_cast<std::size_t>(
                term.b)];
            QEDM_ASSERT(va >= 0 && vb >= 0,
                        "two-qubit term off the pattern graph");
            const int e = pattern.edgeIndex(va, vb);
            QEDM_ASSERT(e >= 0,
                        "two-qubit term on a non-pattern edge");
            twoQubitCount_[static_cast<std::size_t>(e)] += 1.0;
            break;
          }
        }
    }
    bestVertexLog_.assign(n, 0.0);
    for (int v = 0; v < pattern.numQubits(); ++v) {
        double best = -std::numeric_limits<double>::infinity();
        for (int t = 0; t < model_->numQubits(); ++t) {
            if (allowed && !(*allowed)[static_cast<std::size_t>(t)])
                continue;
            best = std::max(best, vertexLog(v, t));
        }
        bestVertexLog_[static_cast<std::size_t>(v)] = best;
    }
}

PlacementSearchPlan::PlacementSearchPlan(
    const hw::Topology &pattern, const PlacementCostModel &cost_model,
    const std::vector<bool> *allowed)
{
    QEDM_REQUIRE(pattern.numQubits() <=
                     cost_model.espModel().numQubits(),
                 "pattern is larger than the target graph");
    QEDM_REQUIRE(!allowed ||
                     allowed->size() ==
                         static_cast<std::size_t>(
                             cost_model.espModel().numQubits()),
                 "allowed mask size must match the target graph");
    impl_ = std::make_unique<Impl>(pattern, cost_model, allowed);
}

PlacementSearchPlan::~PlacementSearchPlan() = default;
PlacementSearchPlan::PlacementSearchPlan(
    PlacementSearchPlan &&) noexcept = default;
PlacementSearchPlan &
PlacementSearchPlan::operator=(PlacementSearchPlan &&) noexcept =
    default;

std::vector<ScoredEmbedding>
topKPlacements(const PlacementSearchPlan &plan,
               const EmbeddingScorer &scorer, std::size_t k,
               std::size_t limit, PlacementSearchStats *stats,
               const runtime::JobScheduler *scheduler)
{
    QEDM_REQUIRE(k > 0, "top-K placement search needs k >= 1");
    QEDM_REQUIRE(limit > 0, "enumeration limit must be positive");

    const PlanImpl &impl = *plan.impl_;
    MonotonicBound bound;
    const std::size_t roots = impl.rootCandidates.size();

    if (scheduler == nullptr || !scheduler->parallel() || roots <= 1) {
        // Sequential: one worker walks every root branch in order,
        // carrying its best-K list (the classic DFS shape).
        Worker worker(impl, scorer, k, limit, bound, stats);
        for (int t : impl.rootCandidates)
            worker.searchRoot(t);
        return toScored(worker.take());
    }

    // Parallel: one work item per root-frontier host. Workers write
    // pre-assigned slots; stats sum in item order after the fan-out.
    std::vector<std::vector<HeapEntry>> slots(roots);
    std::vector<PlacementSearchStats> item_stats(
        stats != nullptr ? roots : 0);
    scheduler->parallelFor(roots, [&](std::size_t i) {
        Worker worker(impl, scorer, k, limit, bound,
                      stats != nullptr ? &item_stats[i] : nullptr);
        worker.searchRoot(impl.rootCandidates[i]);
        slots[i] = worker.take();
    });
    if (stats != nullptr) {
        for (const PlacementSearchStats &s : item_stats) {
            stats->nodesVisited += s.nodesVisited;
            stats->completions += s.completions;
            stats->prunedBound += s.prunedBound;
            stats->prunedSignature += s.prunedSignature;
        }
    }

    // Deterministic merge: every surviving entry sorted under the
    // canonical total order, truncated to K — bit-identical to the
    // sequential worker's list regardless of bound-publication timing.
    std::vector<HeapEntry> merged;
    for (auto &slot : slots) {
        for (HeapEntry &entry : slot)
            merged.push_back(std::move(entry));
    }
    std::sort(merged.begin(), merged.end(),
              [](const HeapEntry &a, const HeapEntry &b) {
                  return entryBefore(a.esp, a.map, a.embedding, b.esp,
                                     b.map, b.embedding);
              });
    if (merged.size() > k)
        merged.resize(k);
    return toScored(std::move(merged));
}

std::vector<ScoredEmbedding>
topKPlacements(const hw::Topology &pattern,
               const PlacementCostModel &cost_model,
               const EmbeddingScorer &scorer, std::size_t k,
               std::size_t limit, PlacementSearchStats *stats,
               const std::vector<bool> *allowed,
               const runtime::JobScheduler *scheduler)
{
    const PlacementSearchPlan plan(pattern, cost_model, allowed);
    return topKPlacements(plan, scorer, k, limit, stats, scheduler);
}

} // namespace qedm::transpile
