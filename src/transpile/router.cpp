#include "transpile/router.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>
#include <set>

#include "common/error.hpp"

namespace qedm::transpile {
namespace {

/** Per-edge SWAP cost under the chosen metric. */
double
swapEdgeCost(const hw::Device &device, int edge_idx, RouteCost cost)
{
    if (cost == RouteCost::HopCount)
        return 1.0;
    const double err =
        device.calibration().edge(static_cast<std::size_t>(edge_idx))
            .cxError;
    // One SWAP decomposes into 3 CX on the link.
    return -3.0 * std::log(std::max(1.0 - err, 1e-12));
}

/** CX cost of executing the gate on the final edge. */
double
cxEdgeCost(const hw::Device &device, int edge_idx, RouteCost cost)
{
    if (cost == RouteCost::HopCount)
        return 0.0;
    const double err =
        device.calibration().edge(static_cast<std::size_t>(edge_idx))
            .cxError;
    return -std::log(std::max(1.0 - err, 1e-12));
}

} // namespace

Router::Router(const hw::Device &device, RouteCost cost)
    : view_(device), cost_(cost)
{
}

Router::Router(hw::DeviceView view, RouteCost cost)
    : view_(std::move(view)), cost_(cost)
{
}

RouteResult
Router::route(const circuit::Circuit &logical,
              const std::vector<int> &initial_map) const
{
    const hw::Device &device = view_.device();
    const auto &topo = view_.topology();
    QEDM_REQUIRE(static_cast<int>(initial_map.size()) ==
                     logical.numQubits(),
                 "initial map must cover every logical qubit");
    std::set<int> distinct;
    for (int p : initial_map) {
        QEDM_REQUIRE(p >= 0 && p < topo.numQubits(),
                     "initial map target out of range");
        QEDM_REQUIRE(view_.allowed(p),
                     "initial map target outside the region");
        QEDM_REQUIRE(distinct.insert(p).second,
                     "initial map targets must be distinct");
    }

    const circuit::Circuit flat = logical.decomposed();
    std::vector<int> map = initial_map; // logical -> physical
    std::vector<int> occupant(topo.numQubits(), -1); // physical->logical
    for (int l = 0; l < static_cast<int>(map.size()); ++l)
        occupant[map[l]] = l;

    RouteResult result{circuit::Circuit(topo.numQubits(),
                                        flat.numClbits()),
                       {}, 0};

    auto emitSwap = [&](int pa, int pb) {
        QEDM_ASSERT(topo.adjacent(pa, pb), "SWAP on uncoupled qubits");
        result.physical.swap(pa, pb);
        result.swapCount += 1;
        const int la = occupant[pa];
        const int lb = occupant[pb];
        occupant[pa] = lb;
        occupant[pb] = la;
        if (la >= 0)
            map[la] = pb;
        if (lb >= 0)
            map[lb] = pa;
    };

    // Measures are deferred to the end of routing: they are terminal
    // per qubit (the executor enforces this), and emitting them early
    // would forbid later SWAP chains from crossing their qubits.
    std::vector<std::pair<int, int>> deferred_measures; // (logical, cl)
    for (const auto &g : flat.gates()) {
        if (g.kind == circuit::OpKind::Barrier) {
            result.physical.barrier();
            continue;
        }
        if (g.kind == circuit::OpKind::Measure) {
            deferred_measures.emplace_back(g.qubits[0], g.clbit);
            continue;
        }
        if (circuit::opArity(g.kind) == 1) {
            circuit::Gate pg = g;
            pg.qubits[0] = map[g.qubits[0]];
            result.physical.append(std::move(pg));
            continue;
        }
        // Two-qubit gate.
        const int la = g.qubits[0], lb = g.qubits[1];
        if (!topo.adjacent(map[la], map[lb])) {
            // Dijkstra over SWAP costs from the current home of la.
            const int src = map[la];
            const int dst = map[lb];
            const int n = topo.numQubits();
            std::vector<double> dist(
                n, std::numeric_limits<double>::max());
            std::vector<int> prev(n, -1);
            using Item = std::pair<double, int>;
            std::priority_queue<Item, std::vector<Item>,
                                std::greater<>> pq;
            dist[src] = 0.0;
            pq.emplace(0.0, src);
            while (!pq.empty()) {
                const auto [d, u] = pq.top();
                pq.pop();
                if (d > dist[u])
                    continue;
                for (int v : topo.neighbors(u)) {
                    if (v == dst)
                        continue; // la never moves onto lb's qubit
                    if (!view_.allowed(v))
                        continue; // SWAP chains stay inside the region
                    const int e = topo.edgeIndex(u, v);
                    const double nd =
                        d + swapEdgeCost(device, e, cost_);
                    if (nd < dist[v]) {
                        dist[v] = nd;
                        prev[v] = u;
                        pq.emplace(nd, v);
                    }
                }
            }
            // Best neighbor of dst to finish on, including the CX cost
            // of the final link.
            int target = -1;
            double best = std::numeric_limits<double>::max();
            for (int u : topo.neighbors(dst)) {
                if (dist[u] == std::numeric_limits<double>::max())
                    continue;
                const int e = topo.edgeIndex(u, dst);
                const double total =
                    dist[u] + cxEdgeCost(device, e, cost_);
                if (total < best) {
                    best = total;
                    target = u;
                }
            }
            QEDM_REQUIRE(target >= 0,
                         "device coupling graph is disconnected");
            // Reconstruct src -> target and swap la along it.
            std::vector<int> path;
            for (int v = target; v != -1; v = prev[v])
                path.push_back(v);
            std::reverse(path.begin(), path.end());
            QEDM_ASSERT(!path.empty() && path.front() == src,
                        "router path reconstruction failed");
            for (std::size_t i = 0; i + 1 < path.size(); ++i)
                emitSwap(path[i], path[i + 1]);
        }
        circuit::Gate pg = g;
        pg.qubits[0] = map[la];
        pg.qubits[1] = map[lb];
        result.physical.append(std::move(pg));
    }
    for (const auto &[logical_q, clbit] : deferred_measures)
        result.physical.measure(map[logical_q], clbit);
    result.finalMap = map;
    return result;
}

} // namespace qedm::transpile
