/**
 * @file
 * Crosstalk-exposure analysis of physical circuits.
 *
 * ZZ crosstalk fires when a CX runs next to other active qubits; how
 * exposed a compiled program is depends on where it was placed. This
 * metric counts, per compiled circuit, the spectator kicks its CXs
 * will trigger (weighted by the device's sampled crosstalk angles),
 * letting mapping policies and ablations reason about crosstalk
 * without running the simulator.
 */

#pragma once

#include "circuit/circuit.hpp"
#include "hw/device.hpp"

namespace qedm::transpile {

/** Crosstalk exposure summary for one physical circuit. */
struct CrosstalkExposure
{
    /** Number of (CX, spectator-in-circuit) incidences. */
    int spectatorEvents = 0;
    /** Sum of |angle| over those incidences (radians). */
    double totalKickRad = 0.0;
};

/**
 * Analyze @p physical on @p device: for every two-qubit gate, count
 * the crosstalk terms whose spectator is a qubit the circuit actually
 * uses (kicks on idle, unused qubits cannot affect the output).
 */
CrosstalkExposure crosstalkExposure(const circuit::Circuit &physical,
                                    const hw::Device &device);

} // namespace qedm::transpile
