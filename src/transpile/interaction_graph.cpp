#include "transpile/interaction_graph.hpp"

#include <algorithm>
#include <map>

#include "common/error.hpp"

namespace qedm::transpile {

hw::Topology
InteractionGraph::asTopology() const
{
    return hw::Topology(std::max(numQubits, 1), edges);
}

int
InteractionGraph::degree(int q) const
{
    QEDM_REQUIRE(q >= 0 && q < numQubits, "qubit index out of range");
    int d = 0;
    for (const auto &[a, b] : edges) {
        if (a == q || b == q)
            ++d;
    }
    return d;
}

std::vector<int>
InteractionGraph::isolatedQubits() const
{
    std::vector<int> isolated;
    for (int q = 0; q < numQubits; ++q) {
        if (degree(q) == 0)
            isolated.push_back(q);
    }
    return isolated;
}

InteractionGraph
interactionGraph(const circuit::Circuit &logical)
{
    const circuit::Circuit flat = logical.decomposed();
    std::map<std::pair<int, int>, int> weight;
    for (const auto &g : flat.gates()) {
        if (!circuit::opIsTwoQubit(g.kind))
            continue;
        int a = g.qubits[0], b = g.qubits[1];
        if (a > b)
            std::swap(a, b);
        weight[{a, b}] += 1;
    }
    InteractionGraph ig;
    ig.numQubits = flat.numQubits();
    for (const auto &[pair, w] : weight) {
        ig.edges.push_back(pair);
        ig.weights.push_back(w);
    }
    return ig;
}

} // namespace qedm::transpile
