#include "transpile/folding.hpp"

#include "common/error.hpp"

namespace qedm::transpile {

using circuit::Gate;
using circuit::OpKind;

Gate
inverseGate(const Gate &gate)
{
    Gate inverse = gate;
    switch (gate.kind) {
      case OpKind::I:
      case OpKind::X:
      case OpKind::Y:
      case OpKind::Z:
      case OpKind::H:
      case OpKind::Cx:
      case OpKind::Cz:
      case OpKind::Swap:
        return inverse; // self-inverse
      case OpKind::S:
        inverse.kind = OpKind::Sdg;
        return inverse;
      case OpKind::Sdg:
        inverse.kind = OpKind::S;
        return inverse;
      case OpKind::T:
        inverse.kind = OpKind::Tdg;
        return inverse;
      case OpKind::Tdg:
        inverse.kind = OpKind::T;
        return inverse;
      case OpKind::Rx:
      case OpKind::Ry:
      case OpKind::Rz:
        inverse.params[0] = -gate.params[0];
        return inverse;
      case OpKind::Ccx:
      case OpKind::Cswap:
        return inverse; // self-inverse
      case OpKind::Measure:
      case OpKind::Barrier:
        break;
    }
    throw UserError("`" + circuit::opName(gate.kind) +
                    "` has no unitary inverse");
}

circuit::Circuit
foldTwoQubitGates(const circuit::Circuit &circuit, int scale)
{
    QEDM_REQUIRE(scale >= 1 && scale % 2 == 1,
                 "fold scale must be an odd positive integer");
    const circuit::Circuit flat = circuit.decomposed();
    circuit::Circuit out(flat.numQubits(), flat.numClbits());
    for (const auto &g : flat.gates()) {
        out.append(g);
        if (!circuit::opIsTwoQubit(g.kind))
            continue;
        for (int fold = 0; fold < (scale - 1) / 2; ++fold) {
            out.append(inverseGate(g));
            out.append(g);
        }
    }
    return out;
}

} // namespace qedm::transpile
