/**
 * @file
 * VF2-style subgraph monomorphism enumeration (Cordella et al. [5]).
 *
 * EDM uses this to transfer a good initial mapping to other regions of
 * the chip: every monomorphic embedding of the mapped subgraph is a
 * candidate ensemble member (Section 5.2).
 */

#pragma once

#include <cstddef>
#include <vector>

#include "hw/topology.hpp"

namespace qedm::transpile {

/**
 * Enumerate injective vertex maps f from @p pattern into @p target
 * such that every pattern edge (u, v) maps to a target edge
 * (f(u), f(v)). Non-edges of the pattern are unconstrained
 * (monomorphism, not induced isomorphism) — exactly what mapping
 * transfer needs.
 *
 * @param pattern the (small) graph to embed
 * @param target the host graph
 * @param limit stop after this many embeddings
 * @param allowed optional target-vertex mask; embeddings may only use
 *        vertices with a true flag. nullptr (the default) allows every
 *        vertex and follows the exact unmasked enumeration order.
 * @returns one vector per embedding; entry u is f(u)
 */
std::vector<std::vector<int>>
vf2AllEmbeddings(const hw::Topology &pattern, const hw::Topology &target,
                 std::size_t limit = 100000,
                 const std::vector<bool> *allowed = nullptr);

/** True when at least one embedding exists. */
bool vf2Embeds(const hw::Topology &pattern, const hw::Topology &target);

} // namespace qedm::transpile
