/**
 * @file
 * Bounded top-K placement search: pruned VF2 enumeration fused with
 * incremental log-ESP scoring.
 *
 * The pre-rewrite compile path materialized *every* isomorphic
 * placement, scored each from scratch, and sorted the lot to keep the
 * head — cost proportional to the full embedding count even when only
 * K placements survive. This engine keeps a bounded best-K heap and
 * carries a running log-ESP partial sum through the VF2 recursion, so
 * a branch is abandoned the moment an admissible optimistic bound
 * proves it cannot beat the current K-th best placement:
 *
 *  - candidate targets are filtered by degree and by a neighborhood
 *    degree-signature dominance test (a necessary condition for any
 *    completion, so no viable embedding is ever lost);
 *  - pattern vertices are matched rarest-degree-first (fewest feasible
 *    targets first) within connected expansion, shrinking the branch
 *    factor near the root;
 *  - per-vertex and per-edge optimistic suffix bounds (best factor on
 *    the device, counted per remaining gate) close the bound.
 *
 * Exact scores of surviving completions are recomputed with the
 * product-form EspModel trace walk — bit-identical to scoring the
 * materialized circuit — and the bound carries a small slack so
 * float drift between the additive bound and the exact product can
 * never prune a placement the exact ordering would keep.
 *
 * Parallel search (DESIGN.md §18): the root frontier — the feasible
 * hosts of the first pattern vertex in the matching order — is
 * partitioned into one work item per root host and fanned out over a
 * runtime::JobScheduler. Workers keep private top-K heaps and share
 * the pruning bound through a monotonic atomic: each worker publishes
 * the log of its own K-th best score, which is a lower bound on the
 * global K-th best, so a stale read only prunes less and admissibility
 * is schedule-independent. The per-worker heaps are merged under the
 * canonical total order, so the result is bit-identical at every
 * --jobs value (and to the sequential search).
 *
 * Determinism contract: results are ordered by descending ESP with
 * exact ties broken lexicographically on the mapping vector and then
 * on the embedding, a strict total order — the top-K set and its
 * order are independent of enumeration order, thread count, and
 * pruning strength.
 */

#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "hw/topology.hpp"
#include "transpile/esp_model.hpp"

namespace qedm::runtime {
class JobScheduler;
}

namespace qedm::transpile {

/**
 * Deterministic placement ordering: true when placement A ranks
 * strictly before placement B — higher ESP first, exact ESP ties
 * broken by lexicographically smaller mapping vector.
 */
bool placementBefore(double esp_a, const std::vector<int> &map_a,
                     double esp_b, const std::vector<int> &map_b);

/** A completed embedding with its caller-canonical map and score. */
struct ScoredEmbedding
{
    /** Pattern vertex -> target vertex. */
    std::vector<int> embedding;
    /** Caller-defined mapping vector (the tie-break key). */
    std::vector<int> map;
    /** Exact product-form ESP. */
    double esp = 0.0;
};

/**
 * Search effort counters (observability for benches and tests).
 *
 * Sequential searches count exactly and reproducibly. Parallel
 * searches sum per-worker counters in work-item order, so the totals
 * are well-defined but depend on bound-publication timing between
 * workers — effort counters may differ run to run at jobs > 1 even
 * though the returned placements never do.
 */
struct PlacementSearchStats
{
    std::uint64_t nodesVisited = 0;
    std::uint64_t completions = 0;
    std::uint64_t prunedBound = 0;
    std::uint64_t prunedSignature = 0;
};

/**
 * Gate-count cost model over one pattern graph: how many 1q / measure
 * terms each pattern vertex carries and how many 2q terms each pattern
 * edge carries, plus the optimistic per-vertex/per-edge bounds derived
 * from an EspModel. Built once per (circuit, calibration epoch) and
 * shared by every branch of the search.
 */
class PlacementCostModel
{
  public:
    /**
     * @param model calibration factor tables for the target device
     * @param pattern the pattern graph being embedded
     * @param pattern_index domain-qubit -> pattern vertex (-1 for
     *        qubits outside the pattern, e.g. isolated logicals; their
     *        terms are excluded from the bound, which stays admissible
     *        because every factor is <= 1)
     * @param trace ESP terms of the circuit over domain qubits
     * @param allowed optional target-qubit mask; the per-vertex
     *        optimistic bounds range over allowed targets only (a
     *        tighter, still admissible bound for masked searches).
     *        nullptr reproduces the unmasked bounds exactly.
     */
    PlacementCostModel(std::shared_ptr<const EspModel> model,
                       const hw::Topology &pattern,
                       const std::vector<int> &pattern_index,
                       const GateTrace &trace,
                       const std::vector<bool> *allowed = nullptr);

    const EspModel &espModel() const { return *model_; }

    /** Log contribution of hosting pattern vertex @p v on target
     *  qubit @p t (1q + measure terms). */
    double vertexLog(int v, int t) const
    {
        const auto vi = static_cast<std::size_t>(v);
        return oneQubitCount_[vi] * model_->log1(t) +
               measureCount_[vi] * model_->logMeasure(t);
    }

    /** Log contribution of routing pattern edge @p e over device edge
     *  @p device_edge. */
    double edgeLog(int e, int device_edge) const
    {
        return twoQubitCount_[static_cast<std::size_t>(e)] *
               model_->log2(device_edge);
    }

    /** Best possible vertexLog over all targets (admissible bound). */
    double bestVertexLog(int v) const
    {
        return bestVertexLog_[static_cast<std::size_t>(v)];
    }

    /** Best possible edgeLog over all device edges. */
    double bestEdgeLog(int e) const
    {
        return twoQubitCount_[static_cast<std::size_t>(e)] *
               model_->bestLog2();
    }

  private:
    std::shared_ptr<const EspModel> model_;
    std::vector<double> oneQubitCount_;
    std::vector<double> measureCount_;
    std::vector<double> twoQubitCount_; ///< indexed by pattern edge
    std::vector<double> bestVertexLog_;
};

/**
 * Exact scorer for one completed embedding: returns the canonical
 * mapping vector and the exact (product-form) ESP. Callers close over
 * whatever completion logic they need (isolated-qubit placement, full
 * physical relabeling, ...). Must be safe to call concurrently when a
 * parallel scheduler is passed to topKPlacements — pure functions of
 * the embedding and immutable captured state qualify.
 */
using EmbeddingScorer =
    std::function<void(const std::vector<int> &embedding,
                       std::vector<int> &map_out, double &esp_out)>;

class PlacementSearchPlan;

/**
 * The K best embeddings of @p pattern into the device graph of the
 * cost model, best first under placementBefore (ties beyond the map
 * broken on the embedding — a strict total order). Pruning never
 * drops a placement that belongs in the top K.
 *
 * @param limit blowup guard: at most @p limit completed embeddings
 *        are explored *per root branch* (per root-frontier host of
 *        the first pattern vertex). The per-branch scope makes the
 *        cap schedule-independent, so a binding limit prunes the same
 *        subtrees at every --jobs value.
 * @param stats optional search-effort counters (see
 *        PlacementSearchStats for parallel-run semantics)
 * @param allowed optional target-qubit mask; the search only maps
 *        pattern vertices onto allowed targets. nullptr (default)
 *        follows the exact unmasked enumeration and pruning order.
 * @param scheduler optional parallel fan-out; nullptr or jobs == 1
 *        searches sequentially. The returned placements are
 *        bit-identical either way.
 */
std::vector<ScoredEmbedding>
topKPlacements(const hw::Topology &pattern,
               const PlacementCostModel &cost_model,
               const EmbeddingScorer &scorer, std::size_t k,
               std::size_t limit = 100000,
               PlacementSearchStats *stats = nullptr,
               const std::vector<bool> *allowed = nullptr,
               const runtime::JobScheduler *scheduler = nullptr);

/**
 * Precompiled search state for one (pattern, cost model, mask)
 * triple: feasibility bitsets, the matching order with flattened back
 * edges, dense log tables, admissible suffix bounds, and the sorted
 * root frontier. Building this is a double-digit-microsecond pass on
 * a 127-qubit device — noticeable when the same circuit is re-placed
 * every calibration cycle — so callers that search repeatedly (the
 * Placer's per-circuit memo, benches) build the plan once and pass it
 * to the plan-taking topKPlacements overload below.
 *
 * The plan holds references into @p pattern and @p cost_model (and
 * the cost model's EspModel); both must outlive it. It is immutable
 * after construction and safe to share across threads.
 */
class PlacementSearchPlan
{
  public:
    /** Validates and precompiles; same requirements as
     *  topKPlacements (pattern fits the target, mask sized right). */
    PlacementSearchPlan(const hw::Topology &pattern,
                        const PlacementCostModel &cost_model,
                        const std::vector<bool> *allowed = nullptr);
    ~PlacementSearchPlan();

    PlacementSearchPlan(PlacementSearchPlan &&) noexcept;
    PlacementSearchPlan &operator=(PlacementSearchPlan &&) noexcept;
    PlacementSearchPlan(const PlacementSearchPlan &) = delete;
    PlacementSearchPlan &operator=(const PlacementSearchPlan &) =
        delete;

    struct Impl;

  private:
    std::unique_ptr<Impl> impl_;

    friend std::vector<ScoredEmbedding>
    topKPlacements(const PlacementSearchPlan &plan,
                   const EmbeddingScorer &scorer, std::size_t k,
                   std::size_t limit, PlacementSearchStats *stats,
                   const runtime::JobScheduler *scheduler);
};

/**
 * topKPlacements against a prebuilt plan: identical results to the
 * plan-free overload (same search, same doubles, same order), minus
 * the per-call plan construction.
 */
std::vector<ScoredEmbedding>
topKPlacements(const PlacementSearchPlan &plan,
               const EmbeddingScorer &scorer, std::size_t k,
               std::size_t limit = 100000,
               PlacementSearchStats *stats = nullptr,
               const runtime::JobScheduler *scheduler = nullptr);

} // namespace qedm::transpile
