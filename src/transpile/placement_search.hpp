/**
 * @file
 * Bounded top-K placement search: pruned VF2 enumeration fused with
 * incremental log-ESP scoring.
 *
 * The pre-rewrite compile path materialized *every* isomorphic
 * placement, scored each from scratch, and sorted the lot to keep the
 * head — cost proportional to the full embedding count even when only
 * K placements survive. This engine keeps a bounded best-K heap and
 * carries a running log-ESP partial sum through the VF2 recursion, so
 * a branch is abandoned the moment an admissible optimistic bound
 * proves it cannot beat the current K-th best placement:
 *
 *  - candidate targets are filtered by degree and by a neighborhood
 *    degree-signature dominance test (a necessary condition for any
 *    completion, so no viable embedding is ever lost);
 *  - pattern vertices are matched rarest-degree-first (fewest feasible
 *    targets first) within connected expansion, shrinking the branch
 *    factor near the root;
 *  - per-vertex and per-edge optimistic suffix bounds (best factor on
 *    the device, counted per remaining gate) close the bound.
 *
 * Exact scores of surviving completions are recomputed with the
 * product-form EspModel trace walk — bit-identical to scoring the
 * materialized circuit — and the bound carries a small slack so
 * float drift between the additive bound and the exact product can
 * never prune a placement the exact ordering would keep.
 *
 * Determinism contract: results are ordered by descending ESP with
 * exact ties broken lexicographically on the mapping vector, so the
 * top-K set and its order are independent of enumeration order,
 * thread count, and pruning strength.
 */

#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "hw/topology.hpp"
#include "transpile/esp_model.hpp"

namespace qedm::transpile {

/**
 * Deterministic placement ordering: true when placement A ranks
 * strictly before placement B — higher ESP first, exact ESP ties
 * broken by lexicographically smaller mapping vector.
 */
bool placementBefore(double esp_a, const std::vector<int> &map_a,
                     double esp_b, const std::vector<int> &map_b);

/** A completed embedding with its caller-canonical map and score. */
struct ScoredEmbedding
{
    /** Pattern vertex -> target vertex. */
    std::vector<int> embedding;
    /** Caller-defined mapping vector (the tie-break key). */
    std::vector<int> map;
    /** Exact product-form ESP. */
    double esp = 0.0;
};

/** Search effort counters (observability for benches and tests). */
struct PlacementSearchStats
{
    std::uint64_t nodesVisited = 0;
    std::uint64_t completions = 0;
    std::uint64_t prunedBound = 0;
    std::uint64_t prunedSignature = 0;
};

/**
 * Gate-count cost model over one pattern graph: how many 1q / measure
 * terms each pattern vertex carries and how many 2q terms each pattern
 * edge carries, plus the optimistic per-vertex/per-edge bounds derived
 * from an EspModel. Built once per (circuit, calibration epoch) and
 * shared by every branch of the search.
 */
class PlacementCostModel
{
  public:
    /**
     * @param model calibration factor tables for the target device
     * @param pattern the pattern graph being embedded
     * @param pattern_index domain-qubit -> pattern vertex (-1 for
     *        qubits outside the pattern, e.g. isolated logicals; their
     *        terms are excluded from the bound, which stays admissible
     *        because every factor is <= 1)
     * @param trace ESP terms of the circuit over domain qubits
     * @param allowed optional target-qubit mask; the per-vertex
     *        optimistic bounds range over allowed targets only (a
     *        tighter, still admissible bound for masked searches).
     *        nullptr reproduces the unmasked bounds exactly.
     */
    PlacementCostModel(std::shared_ptr<const EspModel> model,
                       const hw::Topology &pattern,
                       const std::vector<int> &pattern_index,
                       const GateTrace &trace,
                       const std::vector<bool> *allowed = nullptr);

    const EspModel &espModel() const { return *model_; }

    /** Log contribution of hosting pattern vertex @p v on target
     *  qubit @p t (1q + measure terms). */
    double vertexLog(int v, int t) const
    {
        const auto vi = static_cast<std::size_t>(v);
        return oneQubitCount_[vi] * model_->log1(t) +
               measureCount_[vi] * model_->logMeasure(t);
    }

    /** Log contribution of routing pattern edge @p e over device edge
     *  @p device_edge. */
    double edgeLog(int e, int device_edge) const
    {
        return twoQubitCount_[static_cast<std::size_t>(e)] *
               model_->log2(device_edge);
    }

    /** Best possible vertexLog over all targets (admissible bound). */
    double bestVertexLog(int v) const
    {
        return bestVertexLog_[static_cast<std::size_t>(v)];
    }

    /** Best possible edgeLog over all device edges. */
    double bestEdgeLog(int e) const
    {
        return twoQubitCount_[static_cast<std::size_t>(e)] *
               model_->bestLog2();
    }

  private:
    std::shared_ptr<const EspModel> model_;
    std::vector<double> oneQubitCount_;
    std::vector<double> measureCount_;
    std::vector<double> twoQubitCount_; ///< indexed by pattern edge
    std::vector<double> bestVertexLog_;
};

/**
 * Exact scorer for one completed embedding: returns the canonical
 * mapping vector and the exact (product-form) ESP. Callers close over
 * whatever completion logic they need (isolated-qubit placement, full
 * physical relabeling, ...).
 */
using EmbeddingScorer =
    std::function<void(const std::vector<int> &embedding,
                       std::vector<int> &map_out, double &esp_out)>;

/**
 * The K best embeddings of @p pattern into the device graph of the
 * cost model, best first under placementBefore. Explores at most
 * @p limit completed embeddings (the VF2 enumeration cap); pruning
 * never drops a placement that belongs in the top K.
 *
 * @param stats optional search-effort counters
 * @param allowed optional target-qubit mask; the search only maps
 *        pattern vertices onto allowed targets. nullptr (default)
 *        follows the exact unmasked enumeration and pruning order.
 */
std::vector<ScoredEmbedding>
topKPlacements(const hw::Topology &pattern,
               const PlacementCostModel &cost_model,
               const EmbeddingScorer &scorer, std::size_t k,
               std::size_t limit = 100000,
               PlacementSearchStats *stats = nullptr,
               const std::vector<bool> *allowed = nullptr);

} // namespace qedm::transpile
