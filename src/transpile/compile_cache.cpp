#include "transpile/compile_cache.hpp"

#include "common/error.hpp"

namespace qedm::transpile {

CompileCache::CompileCache(std::size_t capacity) : capacity_(capacity)
{
    QEDM_REQUIRE(capacity >= 1, "compile cache capacity must be >= 1");
}

std::shared_ptr<const CompiledProgram>
CompileCache::getOrCompile(const Transpiler &compiler,
                           const circuit::Circuit &logical)
{
    // Keyed on the VIEW fingerprint (== device fingerprint for a full
    // view) so region-scoped compiles never collide with full-device
    // entries of the same circuit.
    const Key key{compiler.view().fingerprint(), logical.fingerprint(),
                  static_cast<int>(compiler.routeCost())};
    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto it = entries_.find(key);
        if (it != entries_.end()) {
            ++hits_;
            order_.splice(order_.begin(), order_, it->second.second);
            return it->second.first;
        }
        ++misses_;
    }
    // Compile outside the lock; duplicate concurrent misses compile
    // the same program twice and the loser is dropped on insert.
    auto program = std::make_shared<const CompiledProgram>(
        compiler.compile(logical));
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = entries_.find(key);
    if (it != entries_.end())
        return it->second.first;
    order_.push_front(key);
    entries_.emplace(key, std::make_pair(program, order_.begin()));
    while (entries_.size() > capacity_) {
        entries_.erase(order_.back());
        order_.pop_back();
    }
    return program;
}

std::size_t
CompileCache::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return entries_.size();
}

std::uint64_t
CompileCache::hits() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return hits_;
}

std::uint64_t
CompileCache::misses() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return misses_;
}

void
CompileCache::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    entries_.clear();
    order_.clear();
}

} // namespace qedm::transpile
