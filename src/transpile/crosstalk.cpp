#include "transpile/crosstalk.hpp"

#include <cmath>
#include <set>

#include "common/error.hpp"

namespace qedm::transpile {

CrosstalkExposure
crosstalkExposure(const circuit::Circuit &physical,
                  const hw::Device &device)
{
    const auto &topo = device.topology();
    QEDM_REQUIRE(physical.numQubits() == topo.numQubits(),
                 "physical circuit register must match the device");
    const circuit::Circuit flat = physical.decomposed();

    std::set<int> active;
    for (const auto &g : flat.gates())
        active.insert(g.qubits.begin(), g.qubits.end());

    CrosstalkExposure exposure;
    for (const auto &g : flat.gates()) {
        if (!circuit::opIsTwoQubit(g.kind))
            continue;
        const int e = topo.edgeIndex(g.qubits[0], g.qubits[1]);
        QEDM_REQUIRE(e >= 0, "two-qubit gate on uncoupled qubits");
        for (const auto &xt :
             device.noise().crosstalk(static_cast<std::size_t>(e))) {
            if (active.count(xt.spectator)) {
                exposure.spectatorEvents += 1;
                exposure.totalKickRad += std::abs(xt.angleRad);
            }
        }
    }
    return exposure;
}

} // namespace qedm::transpile
