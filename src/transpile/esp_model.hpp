/**
 * @file
 * Precomputed ESP scoring tables (the incremental-ESP half of the
 * compile-path rewrite).
 *
 * ESP is a product of per-gate success factors read from the
 * calibration tables (Section 2.4). Candidate enumeration rescored
 * every placement by decomposing and walking a freshly materialized
 * physical circuit — O(gates) circuit construction per candidate. An
 * EspModel hoists everything calibration-dependent out of that loop:
 *
 *  - per-qubit 1q / readout success factors and their logs,
 *  - per-edge CX success factors and their logs,
 *  - the best (least lossy) factor of each class on the device, used
 *    by branch-and-bound placement search as an admissible optimistic
 *    bound.
 *
 * A model is immutable once built and valid for exactly one
 * calibration epoch; sharedEspModel() memoizes models per device
 * fingerprint (the same content hash CompileCache keys on), so
 * calibration drift yields a fresh model and an unchanged device hits
 * the cache across rounds, members, and threads.
 *
 * Scoring against a model walks a GateTrace — the decomposed gate
 * sequence reduced to (kind, operand) terms — under a relabeling map.
 * The product is accumulated in the same order with the same factors
 * as esp(), so trace scores are bit-identical to scoring the
 * materialized circuit.
 */

#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "circuit/circuit.hpp"
#include "hw/device.hpp"
#include "hw/device_view.hpp"

namespace qedm::transpile {

/** One multiplicative ESP term of a flattened circuit. */
struct GateTerm
{
    enum class Kind : std::uint8_t
    {
        OneQubit, ///< factor 1 - error1q(a)
        Measure,  ///< factor 1 - readoutError(a)
        TwoQubit, ///< factor 1 - cxError(edge(a, b))
    };

    Kind kind;
    int a;
    int b; ///< second operand; only meaningful for TwoQubit
};

/** The ESP-relevant terms of one circuit, in gate order. */
using GateTrace = std::vector<GateTerm>;

/** Immutable per-calibration-epoch ESP factor tables. */
class EspModel
{
  public:
    explicit EspModel(const hw::Device &device);

    /** Fingerprint of the device the tables were built from. */
    std::uint64_t deviceFingerprint() const { return fingerprint_; }

    int numQubits() const { return static_cast<int>(ok1_.size()); }

    /** @name Success factors (1 - error), as esp() multiplies them */
    /** @{ */
    double ok1(int q) const { return ok1_[static_cast<std::size_t>(q)]; }
    double okMeasure(int q) const
    {
        return okMeasure_[static_cast<std::size_t>(q)];
    }
    double ok2(int edge) const
    {
        return ok2_[static_cast<std::size_t>(edge)];
    }
    /** @} */

    /** @name Log success factors (all <= 0), for additive bounds */
    /** @{ */
    double log1(int q) const
    {
        return log1_[static_cast<std::size_t>(q)];
    }
    double logMeasure(int q) const
    {
        return logMeasure_[static_cast<std::size_t>(q)];
    }
    double log2(int edge) const
    {
        return log2_[static_cast<std::size_t>(edge)];
    }
    /** Best (largest) per-edge log factor on the device. */
    double bestLog2() const { return bestLog2_; }
    /** @} */

    /**
     * Reduce an already-decomposed circuit to its ESP terms. Barriers
     * drop out; everything else becomes one term in gate order.
     */
    static GateTrace trace(const circuit::Circuit &flat);

    /**
     * ESP of @p trace with every operand relabeled through @p map
     * (identity scoring passes the identity map). Multiplies the same
     * factors in the same order as esp() on the materialized circuit,
     * so the result is bit-identical. Throws when a two-qubit term
     * lands on a non-coupled pair.
     */
    double espOfTrace(const GateTrace &trace,
                      const std::vector<int> &map) const;

    /** Coupling graph the edge tables are indexed by. */
    const hw::Topology &topology() const { return topology_; }

  private:
    hw::Topology topology_;
    std::uint64_t fingerprint_;
    std::vector<double> ok1_;
    std::vector<double> okMeasure_;
    std::vector<double> ok2_;
    std::vector<double> log1_;
    std::vector<double> logMeasure_;
    std::vector<double> log2_;
    double bestLog2_;
};

/**
 * The memoized EspModel for @p device's current calibration epoch.
 * Keyed on Device::fingerprint() — the key CompileCache uses — so
 * drifted calibration builds a fresh model and stale tables are
 * unreachable. Thread-safe; the returned model is immutable and
 * shareable across threads.
 */
std::shared_ptr<const EspModel> sharedEspModel(const hw::Device &device);

/**
 * View-scoped registry lookup, keyed on DeviceView::fingerprint().
 * The factor tables themselves are mask-independent (whole-device
 * calibration), but keying on the view keeps the one cache-keying
 * rule uniform across the compile path; a full view shares the
 * device-keyed entry bit-for-bit.
 */
std::shared_ptr<const EspModel> sharedEspModel(const hw::DeviceView &view);

} // namespace qedm::transpile
