/**
 * @file
 * End-to-end compilation facade: placement + routing + scoring.
 *
 * This is the "variation-aware quantum compiler" of the EDM pipeline's
 * step 1 (Section 5.2): from a logical circuit it produces a physical
 * executable plus the compile-time ESP estimate.
 */

#pragma once

#include <vector>

#include "circuit/circuit.hpp"
#include "hw/device.hpp"
#include "transpile/router.hpp"

namespace qedm::transpile {

/** A compiled executable and its compile-time metadata. */
struct CompiledProgram
{
    /** Physical circuit over the device register. */
    circuit::Circuit physical{1};
    /** Initial logical-to-physical placement used. */
    std::vector<int> initialMap;
    /** Logical-to-physical map at circuit end (after SWAPs). */
    std::vector<int> finalMap;
    /** Number of inserted SWAP gates. */
    int swapCount = 0;
    /** Compile-time Estimated Success Probability. */
    double esp = 0.0;

    /** Physical qubits actually used (sorted). */
    std::vector<int> usedQubits() const;
};

/** Variation-aware compiler for one device. */
class Transpiler
{
  public:
    explicit Transpiler(const hw::Device &device,
                        RouteCost cost = RouteCost::Reliability);

    /** Compile with the variation-aware placer's best placement. */
    CompiledProgram compile(const circuit::Circuit &logical) const;

    /** Compile with a caller-supplied initial placement. */
    CompiledProgram
    compileWithPlacement(const circuit::Circuit &logical,
                         const std::vector<int> &initial_map) const;

    const hw::Device &device() const { return device_; }

  private:
    const hw::Device &device_;
    RouteCost cost_;
};

} // namespace qedm::transpile
