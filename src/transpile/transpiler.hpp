/**
 * @file
 * End-to-end compilation facade: an explicit pass pipeline.
 *
 * This is the "variation-aware quantum compiler" of the EDM pipeline's
 * step 1 (Section 5.2): from a logical circuit it produces a physical
 * executable plus the compile-time ESP estimate.
 *
 * Compilation runs as an ordered pass list — place -> route -> score —
 * over a shared CompileContext. Each pass reports per-pass metadata
 * (name, wall time, key metrics), which compile() discards and
 * compileWithTrace() returns, so callers and benches can attribute
 * compile cost to individual stages. The pass list is the seam later
 * passes (crosstalk-aware routing, twirling, scheduling) slot into.
 *
 * When verification is enabled (always in debug builds, opt-in via
 * the verify flag in release) a final "check" pass runs the
 * qedm::check static verifiers over the compiled program and throws
 * check::CheckError on any violation; when disabled the pass is never
 * added, so release compilation pays zero cost.
 */

#pragma once

#include <map>
#include <string>
#include <vector>

#include "check/check.hpp"
#include "circuit/circuit.hpp"
#include "hw/device.hpp"
#include "hw/device_view.hpp"
#include "transpile/router.hpp"

namespace qedm::runtime {
class JobScheduler;
}

namespace qedm::transpile {

/** A compiled executable and its compile-time metadata. */
struct CompiledProgram
{
    /** Physical circuit over the device register. */
    circuit::Circuit physical{1};
    /** Initial logical-to-physical placement used. */
    std::vector<int> initialMap;
    /** Logical-to-physical map at circuit end (after SWAPs). */
    std::vector<int> finalMap;
    /** Number of inserted SWAP gates. */
    int swapCount = 0;
    /** Compile-time Estimated Success Probability. */
    double esp = 0.0;

    /** Physical qubits actually used (sorted). */
    std::vector<int> usedQubits() const;
};

/** Metadata reported by one compilation pass. */
struct PassMetadata
{
    /** Pass name: "place", "route", "score", or "check" (the last
     *  only when verification is enabled). */
    std::string name;
    /** Wall-clock time spent in the pass. */
    double milliseconds = 0.0;
    /** Pass-specific scalar metrics (e.g. route: "swaps"; score:
     *  "esp"; place: "placedQubits"). */
    std::map<std::string, double> metrics;
};

/** A compiled program together with its per-pass trace. */
struct CompileTrace
{
    CompiledProgram program;
    std::vector<PassMetadata> passes;
};

/** Variation-aware compiler for one device view. */
class Transpiler
{
  public:
    /**
     * Full-device compiler (a full view; pre-view behavior).
     *
     * @param verify run the qedm::check verifier passes after every
     *        compile (defaults to always-on in debug builds, off in
     *        release).
     */
    explicit Transpiler(const hw::Device &device,
                        RouteCost cost = RouteCost::Reliability,
                        bool verify = check::kDefaultVerify);

    /**
     * Region-scoped compiler: placement, routing, and measurements
     * stay inside the view; the check pass rejects anything that
     * leaves it. The caller keeps the viewed Device alive for the
     * compiler's lifetime.
     */
    explicit Transpiler(hw::DeviceView view,
                        RouteCost cost = RouteCost::Reliability,
                        bool verify = check::kDefaultVerify);

    /** Compile with the variation-aware placer's best placement. */
    CompiledProgram compile(const circuit::Circuit &logical) const;

    /** Compile and report per-pass metadata. */
    CompileTrace compileWithTrace(const circuit::Circuit &logical) const;

    /** Compile with a caller-supplied initial placement (the place
     *  pass is skipped; the trace starts at "route"). */
    CompiledProgram
    compileWithPlacement(const circuit::Circuit &logical,
                         const std::vector<int> &initial_map) const;

    const hw::Device &device() const { return view_.device(); }
    /** The view compilation is scoped to (full for the Device ctor). */
    const hw::DeviceView &view() const { return view_; }
    RouteCost routeCost() const { return cost_; }

    /** True when the post-compile "check" pass is enabled. */
    bool verifyEnabled() const { return verify_; }

    /** Enable/disable the post-compile verifier pass. */
    void setVerify(bool verify) { verify_ = verify; }

    /**
     * Attach a job scheduler so the place pass fans its placement
     * search out in parallel (bit-identical results at every --jobs;
     * an operational knob, never part of compile fingerprints). The
     * caller keeps @p scheduler alive for the transpiler's lifetime;
     * nullptr (the default) compiles sequentially.
     */
    void setScheduler(const runtime::JobScheduler *scheduler)
    {
        scheduler_ = scheduler;
    }

  private:
    CompileTrace
    runPasses(const circuit::Circuit &logical,
              const std::vector<int> *initial_map) const;

    hw::DeviceView view_;
    RouteCost cost_;
    bool verify_;
    const runtime::JobScheduler *scheduler_ = nullptr;
};

} // namespace qedm::transpile
