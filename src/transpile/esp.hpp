/**
 * @file
 * Estimated Success Probability (ESP), the compile-time reliability
 * estimate used by variation-aware mapping (Section 2.4):
 *
 *   ESP = prod_i (1 - g_i^e) * prod_j (1 - m_j^e)
 *
 * over all gates i and measurements j of the physical circuit.
 */

#pragma once

#include "circuit/circuit.hpp"
#include "hw/device.hpp"

namespace qedm::transpile {

/**
 * ESP of a *physical* circuit on @p device. The circuit is decomposed
 * first (SWAP counts as 3 CX); every 2-qubit gate must sit on a
 * coupling edge.
 */
double esp(const circuit::Circuit &physical, const hw::Device &device);

/** -log(ESP); additive cost form used by search heuristics. */
double espCost(const circuit::Circuit &physical, const hw::Device &device);

/**
 * Decoherence-aware ESP extension: the plain ESP multiplied by each
 * active qubit's survival factor exp(-t_busy/T1 - t_busy/T2), where
 * t_busy is the qubit's scheduled busy time under an ASAP schedule
 * with the device's gate durations. Penalizes deep circuits on
 * short-lived qubits, which plain ESP ignores.
 */
double espWithDecoherence(const circuit::Circuit &physical,
                          const hw::Device &device);

} // namespace qedm::transpile
