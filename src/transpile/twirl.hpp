/**
 * @file
 * Pauli twirling (randomized compiling) of two-qubit gates.
 *
 * The paper's conclusion points at "other program transformations
 * that can provide diversity" beyond mapping. Twirling is the obvious
 * candidate: each CX/CZ is wrapped in a uniformly random two-qubit
 * Pauli frame that composes to the identity, so every twirled copy is
 * logically equivalent but experiences the device's *systematic*
 * errors in a different (Pauli-conjugated) direction. An ensemble of
 * twirled copies therefore diversifies mistakes on a *single*
 * mapping, and composes with EDM's mapping diversity.
 */

#pragma once

#include "circuit/circuit.hpp"
#include "common/rng.hpp"

namespace qedm::transpile {

/**
 * Return a logically-equivalent copy of @p circuit with every
 * two-qubit unitary (Cx/Cz) wrapped in a random Pauli frame.
 * Swap/Ccx/Cswap are decomposed first; 1-qubit gates, barriers and
 * measures pass through unchanged. The result is exactly equivalent
 * up to global phase.
 */
circuit::Circuit pauliTwirl(const circuit::Circuit &circuit, Rng &rng);

} // namespace qedm::transpile
