/**
 * @file
 * Shared distance matrices over the device coupling graph, used by
 * placement and routing heuristics.
 */

#pragma once

#include <vector>

#include "hw/device.hpp"
#include "transpile/router.hpp"

namespace qedm::transpile {

/**
 * All-pairs shortest-path distances where each edge costs
 * -log(1 - cxError) (reliability metric) or 1 (hop metric).
 * Disconnected pairs get a large finite sentinel.
 */
std::vector<std::vector<double>>
distanceMatrix(const hw::Device &device, RouteCost cost);

} // namespace qedm::transpile
