/**
 * @file
 * Shared distance matrices over the device coupling graph, used by
 * placement and routing heuristics.
 */

#pragma once

#include <memory>
#include <vector>

#include "hw/device.hpp"
#include "transpile/router.hpp"

namespace qedm::transpile {

/** All-pairs shortest-path distances, row-major by source qubit. */
using DistanceMatrix = std::vector<std::vector<double>>;

/**
 * All-pairs shortest-path distances where each edge costs
 * -log(1 - cxError) (reliability metric) or 1 (hop metric).
 * Disconnected pairs get a large finite sentinel.
 */
DistanceMatrix distanceMatrix(const hw::Device &device, RouteCost cost);

/**
 * Memoized distanceMatrix, keyed on (device fingerprint, cost metric).
 * Every route() call used to re-run all-pairs Dijkstra from scratch;
 * the matrix only depends on the coupling graph and the calibration
 * epoch, so ensemble members, rounds, and threads compiling against
 * the same device share one computation. Calibration drift changes the
 * fingerprint and misses the cache. Thread-safe; the returned matrix
 * is immutable and shareable across threads.
 */
std::shared_ptr<const DistanceMatrix>
sharedDistanceMatrix(const hw::Device &device, RouteCost cost);

} // namespace qedm::transpile
