/**
 * @file
 * Shared distance matrices over the device coupling graph, used by
 * placement and routing heuristics.
 *
 * Consumers go through the DistanceProvider interface: a dense
 * all-pairs matrix on small devices, an on-demand memoized
 * per-source Dijkstra on large ones (127/433-qubit heavy-hex), both
 * scoped to a DeviceView so masked regions never see distances
 * through disallowed qubits. The raw distanceMatrix entry points
 * remain for the dense implementation and equivalence tests; code
 * elsewhere in src/ must not call them (lint rule dense-distance).
 */

#pragma once

#include <memory>
#include <vector>

#include "hw/device.hpp"
#include "hw/device_view.hpp"
#include "transpile/router.hpp"

namespace qedm::transpile {

/** All-pairs shortest-path distances, row-major by source qubit. */
using DistanceMatrix = std::vector<std::vector<double>>;

/** Sentinel for disconnected (or mask-excluded) qubit pairs. */
inline constexpr double kUnreachableDistance = 1e18;

/**
 * Largest device for which sharedDistanceProvider materializes the
 * dense all-pairs matrix up front. Above this, rows are computed on
 * demand and memoized per view — O(V + E log V) per new source
 * instead of an eager O(V^2 log V) pass and O(V^2) memory.
 */
inline constexpr int kDenseDistanceMaxQubits = 64;

/**
 * All-pairs shortest-path distances where each edge costs
 * -log(1 - cxError) (reliability metric) or 1 (hop metric).
 * Disconnected pairs get a large finite sentinel.
 */
DistanceMatrix distanceMatrix(const hw::Device &device, RouteCost cost);

/**
 * Pairwise distance oracle over a device view. Distances respect the
 * view: paths may only traverse allowed qubits, and any pair touching
 * a disallowed qubit reports kUnreachableDistance.
 */
class DistanceProvider
{
  public:
    virtual ~DistanceProvider() = default;

    DistanceProvider() = default;
    DistanceProvider(const DistanceProvider &) = delete;
    DistanceProvider &operator=(const DistanceProvider &) = delete;

    /** Shortest-path cost from @p a to @p b under the view. */
    virtual double distance(int a, int b) const = 0;
};

/**
 * Eager dense implementation: the full all-pairs matrix, computed at
 * construction. On a full view this is bit-identical to
 * distanceMatrix() — same Dijkstra, same traversal order.
 */
class DenseDistanceProvider final : public DistanceProvider
{
  public:
    DenseDistanceProvider(const hw::DeviceView &view, RouteCost cost);

    double distance(int a, int b) const override;

  private:
    DistanceMatrix matrix_;
};

/**
 * Lazy implementation for large devices: per-source rows are computed
 * by a bounded Dijkstra over the allowed subgraph on first query and
 * memoized for the lifetime of the provider. Thread-safe; row fills
 * are guarded by source-sharded locks, so parallel workers querying
 * different sources fill their rows concurrently instead of
 * serializing on one global mutex.
 */
class OnDemandDistanceProvider final : public DistanceProvider
{
  public:
    OnDemandDistanceProvider(const hw::DeviceView &view, RouteCost cost);

    double distance(int a, int b) const override;

    /** Number of source rows materialized so far (for tests). */
    std::size_t rowsComputed() const;

  private:
    struct Impl;
    std::shared_ptr<Impl> impl_;
};

/**
 * Memoized provider, keyed on (view fingerprint, cost metric) — NOT
 * the device fingerprint, or a masked view would poison the
 * full-device entry. Selects the dense implementation when the device
 * has at most kDenseDistanceMaxQubits qubits and the on-demand one
 * above that. Thread-safe; the returned provider is immutable from
 * the caller's perspective and shareable across threads.
 */
std::shared_ptr<const DistanceProvider>
sharedDistanceProvider(const hw::DeviceView &view, RouteCost cost);

/**
 * Memoized distanceMatrix, keyed on (device fingerprint, cost metric).
 * Retained for the dense provider and direct matrix consumers in
 * tests; new code should take a DistanceProvider.
 */
std::shared_ptr<const DistanceMatrix>
sharedDistanceMatrix(const hw::Device &device, RouteCost cost);

} // namespace qedm::transpile
