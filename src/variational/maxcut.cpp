#include "variational/maxcut.hpp"

#include "common/error.hpp"

namespace qedm::variational {

int
cutValue(const hw::Topology &graph, Outcome assignment)
{
    QEDM_REQUIRE(assignment < (Outcome(1) << graph.numQubits()),
                 "assignment exceeds the vertex count");
    int cut = 0;
    for (const auto &edge : graph.edges()) {
        if (getBit(assignment, edge.a) != getBit(assignment, edge.b))
            ++cut;
    }
    return cut;
}

double
expectedCut(const hw::Topology &graph, const stats::Distribution &dist)
{
    QEDM_REQUIRE(dist.width() == graph.numQubits(),
                 "distribution width must match the vertex count");
    double expectation = 0.0;
    const auto &p = dist.probabilities();
    for (std::size_t o = 0; o < p.size(); ++o) {
        if (p[o] > 0.0)
            expectation += p[o] * cutValue(graph, o);
    }
    return expectation;
}

int
maxCutValue(const hw::Topology &graph)
{
    QEDM_REQUIRE(graph.numQubits() <= 20,
                 "brute-force max-cut is limited to 20 vertices");
    int best = 0;
    const Outcome limit = Outcome(1) << graph.numQubits();
    for (Outcome o = 0; o < limit; ++o)
        best = std::max(best, cutValue(graph, o));
    return best;
}

std::vector<Outcome>
optimalCuts(const hw::Topology &graph)
{
    const int best = maxCutValue(graph);
    std::vector<Outcome> cuts;
    const Outcome limit = Outcome(1) << graph.numQubits();
    for (Outcome o = 0; o < limit; ++o) {
        if (cutValue(graph, o) == best)
            cuts.push_back(o);
    }
    return cuts;
}

double
approximationRatio(const hw::Topology &graph,
                   const stats::Distribution &dist)
{
    const int best = maxCutValue(graph);
    QEDM_REQUIRE(best > 0, "graph has no edges to cut");
    return expectedCut(graph, dist) / static_cast<double>(best);
}

} // namespace qedm::variational
