/**
 * @file
 * Max-cut instances and cut-value accounting.
 *
 * QAOA (the paper's qaoa-5/6/7 workloads) optimizes max-cut; this
 * module supplies the classical side: cut values of assignments,
 * expected cut of a measured distribution, and brute-force optima for
 * verification on small graphs. Graphs reuse hw::Topology as a
 * general undirected-graph container.
 */

#pragma once

#include <vector>

#include "common/bits.hpp"
#include "hw/topology.hpp"
#include "stats/distribution.hpp"

namespace qedm::variational {

/** Number of edges cut by @p assignment (bit q = partition of q). */
int cutValue(const hw::Topology &graph, Outcome assignment);

/** Expectation of cutValue under @p dist (widths must match). */
double expectedCut(const hw::Topology &graph,
                   const stats::Distribution &dist);

/** Maximum cut value (brute force; graph must have <= 20 vertices). */
int maxCutValue(const hw::Topology &graph);

/** All assignments achieving the maximum cut. */
std::vector<Outcome> optimalCuts(const hw::Topology &graph);

/**
 * Approximation ratio of @p dist: expectedCut / maxCutValue.
 * The standard QAOA quality metric, in [0, 1] for non-trivial graphs.
 */
double approximationRatio(const hw::Topology &graph,
                          const stats::Distribution &dist);

} // namespace qedm::variational
