#include "variational/qaoa.hpp"

#include <cmath>
#include <numbers>

#include "common/error.hpp"

namespace qedm::variational {

circuit::Circuit
qaoaCircuit(const hw::Topology &graph, const QaoaAngles &angles,
            double symmetry_field)
{
    QEDM_REQUIRE(angles.gammas.size() == angles.betas.size(),
                 "QAOA needs one (gamma, beta) pair per layer");
    QEDM_REQUIRE(angles.layers() >= 1, "QAOA needs at least one layer");
    const int n = graph.numQubits();
    circuit::Circuit c(n, n);
    for (int q = 0; q < n; ++q)
        c.h(q);
    for (int layer = 0; layer < angles.layers(); ++layer) {
        const double gamma = angles.gammas[layer];
        const double beta = angles.betas[layer];
        for (const auto &edge : graph.edges()) {
            c.cx(edge.a, edge.b);
            c.rz(2.0 * gamma, edge.b);
            c.cx(edge.a, edge.b);
        }
        if (symmetry_field != 0.0)
            c.rz(symmetry_field * gamma, n - 1);
        for (int q = 0; q < n; ++q)
            c.rx(2.0 * beta, q);
    }
    c.measureAll();
    return c;
}

OptimizerResult
optimizeQaoa(const hw::Topology &graph, int layers,
             const QaoaObjective &objective,
             const OptimizerConfig &config, Rng &rng,
             double symmetry_field)
{
    QEDM_REQUIRE(layers >= 1 && layers <= 8,
                 "layer count must be in [1, 8]");
    QEDM_REQUIRE(config.maxEvaluations >= 1 &&
                     config.initialStep > 0.0 &&
                     config.minStep > 0.0 &&
                     config.minStep <= config.initialStep,
                 "invalid optimizer configuration");

    // Random starting point in the canonical angle ranges.
    QaoaAngles angles;
    for (int l = 0; l < layers; ++l) {
        angles.gammas.push_back(
            rng.uniform(0.1, std::numbers::pi - 0.1));
        angles.betas.push_back(
            rng.uniform(0.1, std::numbers::pi / 2.0 - 0.1));
    }

    OptimizerResult result;
    result.evaluations = 0;
    auto evaluate = [&](const QaoaAngles &a) {
        ++result.evaluations;
        return objective(qaoaCircuit(graph, a, symmetry_field));
    };
    double best = evaluate(angles);
    result.trace.push_back(best);

    double step = config.initialStep;
    while (step >= config.minStep &&
           result.evaluations < config.maxEvaluations) {
        bool improved = false;
        for (int param = 0; param < 2 * layers; ++param) {
            double &value = param < layers
                                ? angles.gammas[param]
                                : angles.betas[param - layers];
            for (double direction : {+1.0, -1.0}) {
                if (result.evaluations >= config.maxEvaluations)
                    break;
                const double saved = value;
                value = saved + direction * step;
                const double candidate = evaluate(angles);
                if (candidate > best) {
                    best = candidate;
                    result.trace.push_back(best);
                    improved = true;
                    break; // keep the move
                }
                value = saved;
            }
        }
        if (!improved)
            step *= 0.5;
    }
    result.angles = angles;
    result.bestObjective = best;
    return result;
}

} // namespace qedm::variational
