/**
 * @file
 * General p-layer QAOA circuit construction and a derivative-free
 * angle optimizer.
 *
 * The benchmark module ships fixed-angle path-graph instances; this
 * module provides the full variational loop for arbitrary graphs: the
 * circuit family, an objective evaluated through any executor (ideal,
 * noisy single-mapping, or EDM-merged), and a coordinate pattern
 * search over the 2p angles.
 */

#pragma once

#include <functional>
#include <vector>

#include "circuit/circuit.hpp"
#include "common/rng.hpp"
#include "hw/topology.hpp"

namespace qedm::variational {

/** QAOA angle set: one (gamma, beta) pair per layer. */
struct QaoaAngles
{
    std::vector<double> gammas;
    std::vector<double> betas;

    int layers() const { return static_cast<int>(gammas.size()); }
};

/**
 * Build the p-layer QAOA max-cut circuit for @p graph: H on all
 * vertices, then per layer the ZZ cost unitary (CX-RZ-CX per edge)
 * followed by the RX mixer; measures every vertex.
 * @param symmetry_field optional RZ field on the top vertex after
 *        each cost layer, breaking the Z2 cut symmetry.
 */
circuit::Circuit qaoaCircuit(const hw::Topology &graph,
                             const QaoaAngles &angles,
                             double symmetry_field = 0.0);

/** Pattern-search optimizer configuration. */
struct OptimizerConfig
{
    int maxEvaluations = 400;
    double initialStep = 0.4;
    double minStep = 0.01;
};

/** Optimization outcome. */
struct OptimizerResult
{
    QaoaAngles angles;
    double bestObjective = 0.0;
    int evaluations = 0;
    /** Best objective after each accepted improvement. */
    std::vector<double> trace;
};

/**
 * Objective callback: given the QAOA circuit for a candidate angle
 * set, return the quantity to MAXIMIZE (e.g. expected cut under some
 * execution backend).
 */
using QaoaObjective =
    std::function<double(const circuit::Circuit &)>;

/**
 * Maximize @p objective over 2 * layers angles by coordinate pattern
 * search with random restart-free multistart seeding from @p rng.
 * Deterministic given the rng state.
 */
OptimizerResult optimizeQaoa(const hw::Topology &graph, int layers,
                             const QaoaObjective &objective,
                             const OptimizerConfig &config, Rng &rng,
                             double symmetry_field = 0.0);

} // namespace qedm::variational
