#include "check/check.hpp"

#include <sstream>

#include "check/circuit_checker.hpp"
#include "check/esp_checker.hpp"
#include "check/mapping_checker.hpp"
#include "check/measure_checker.hpp"

namespace qedm::check {
namespace {

std::string
formatCheckMessage(const std::string &pass, const std::string &message,
                   int gate_index, const std::vector<int> &qubits)
{
    std::ostringstream os;
    os << "check[" << pass << "]: " << message;
    if (gate_index >= 0)
        os << " (gate " << gate_index << ")";
    if (!qubits.empty())
        os << " on physical qubits " << detail::formatQubits(qubits);
    return os.str();
}

} // namespace

namespace detail {

std::string
formatQubits(const std::vector<int> &qubits)
{
    std::ostringstream os;
    for (std::size_t i = 0; i < qubits.size(); ++i) {
        if (i)
            os << ",";
        os << "p" << qubits[i];
    }
    return os.str();
}

} // namespace detail

const char *
checkErrorKindName(CheckErrorKind kind)
{
    switch (kind) {
      case CheckErrorKind::Unspecified:
        return "unspecified";
      case CheckErrorKind::MissingArtifact:
        return "missing-artifact";
      case CheckErrorKind::ArityMismatch:
        return "arity-mismatch";
      case CheckErrorKind::ParamMismatch:
        return "param-mismatch";
      case CheckErrorKind::QubitOutOfRange:
        return "qubit-out-of-range";
      case CheckErrorKind::DuplicateOperand:
        return "duplicate-operand";
      case CheckErrorKind::UseAfterMeasure:
        return "use-after-measure";
      case CheckErrorKind::ClbitMisuse:
        return "clbit-misuse";
      case CheckErrorKind::RegisterMismatch:
        return "register-mismatch";
      case CheckErrorKind::LayoutOutOfRange:
        return "layout-out-of-range";
      case CheckErrorKind::LayoutNotBijective:
        return "layout-not-bijective";
      case CheckErrorKind::UndecomposedGate:
        return "undecomposed-gate";
      case CheckErrorKind::UncoupledGate:
        return "uncoupled-gate";
      case CheckErrorKind::SwapCountMismatch:
        return "swap-count-mismatch";
      case CheckErrorKind::SwapTrailMismatch:
        return "swap-trail-mismatch";
      case CheckErrorKind::EspMismatch:
        return "esp-mismatch";
      case CheckErrorKind::EspUndefined:
        return "esp-undefined";
      case CheckErrorKind::MeasureOffLayout:
        return "measure-off-layout";
      case CheckErrorKind::MeasureRemapMismatch:
        return "measure-remap-mismatch";
      case CheckErrorKind::QubitOutsideRegion:
        return "qubit-outside-region";
      case CheckErrorKind::JournalHeaderInvalid:
        return "journal-header-invalid";
      case CheckErrorKind::JournalCorruptRecord:
        return "journal-corrupt-record";
      case CheckErrorKind::JournalFingerprintMismatch:
        return "journal-fingerprint-mismatch";
    }
    return "unknown";
}

CheckError::CheckError(std::string pass, const std::string &message,
                       int gate_index, std::vector<int> qubits)
    : CheckError(std::move(pass), CheckErrorKind::Unspecified, message,
                 gate_index, std::move(qubits))
{
}

CheckError::CheckError(std::string pass, CheckErrorKind kind,
                       const std::string &message, int gate_index,
                       std::vector<int> qubits)
    : Error(formatCheckMessage(pass, message, gate_index, qubits)),
      pass_(std::move(pass)),
      kind_(kind),
      gateIndex_(gate_index),
      qubits_(std::move(qubits))
{
}

const std::vector<const CheckerPass *> &
standardPasses()
{
    static const CircuitChecker circuit_checker;
    static const MappingChecker mapping_checker;
    static const MeasureChecker measure_checker;
    static const EspChecker esp_checker;
    static const std::vector<const CheckerPass *> passes{
        &circuit_checker, &mapping_checker, &measure_checker,
        &esp_checker};
    return passes;
}

std::size_t
verifyProgram(const ProgramView &view)
{
    const auto &passes = standardPasses();
    for (const CheckerPass *pass : passes)
        pass->run(view);
    return passes.size();
}

} // namespace qedm::check
