#include "check/check.hpp"

#include <sstream>

#include "check/circuit_checker.hpp"
#include "check/esp_checker.hpp"
#include "check/mapping_checker.hpp"

namespace qedm::check {
namespace {

std::string
formatCheckMessage(const std::string &pass, const std::string &message,
                   int gate_index, const std::vector<int> &qubits)
{
    std::ostringstream os;
    os << "check[" << pass << "]: " << message;
    if (gate_index >= 0)
        os << " (gate " << gate_index << ")";
    if (!qubits.empty())
        os << " on physical qubits " << detail::formatQubits(qubits);
    return os.str();
}

} // namespace

namespace detail {

std::string
formatQubits(const std::vector<int> &qubits)
{
    std::ostringstream os;
    for (std::size_t i = 0; i < qubits.size(); ++i) {
        if (i)
            os << ",";
        os << "p" << qubits[i];
    }
    return os.str();
}

} // namespace detail

CheckError::CheckError(std::string pass, const std::string &message,
                       int gate_index, std::vector<int> qubits)
    : Error(formatCheckMessage(pass, message, gate_index, qubits)),
      pass_(std::move(pass)),
      gateIndex_(gate_index),
      qubits_(std::move(qubits))
{
}

const std::vector<const CheckerPass *> &
standardPasses()
{
    static const CircuitChecker circuit_checker;
    static const MappingChecker mapping_checker;
    static const EspChecker esp_checker;
    static const std::vector<const CheckerPass *> passes{
        &circuit_checker, &mapping_checker, &esp_checker};
    return passes;
}

std::size_t
verifyProgram(const ProgramView &view)
{
    const auto &passes = standardPasses();
    for (const CheckerPass *pass : passes)
        pass->run(view);
    return passes.size();
}

} // namespace qedm::check
