#include "check/measure_checker.hpp"

#include <functional>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace qedm::check {
namespace {

/** (clbit -> measured qubit) table of a circuit; duplicate clbit
 *  writes surface through @p on_duplicate. */
std::map<int, int>
measureTable(const circuit::Circuit &circuit,
             const std::function<void(int clbit, int qubit)>
                 &on_duplicate)
{
    std::map<int, int> table;
    for (const auto &g : circuit.gates()) {
        if (g.kind != circuit::OpKind::Measure)
            continue;
        const auto [it, inserted] =
            table.emplace(g.clbit, g.qubits[0]);
        if (!inserted)
            on_duplicate(g.clbit, g.qubits[0]);
    }
    return table;
}

} // namespace

void
MeasureChecker::run(const ProgramView &view) const
{
    if (view.physical == nullptr)
        throw CheckError(name(), CheckErrorKind::MissingArtifact,
                         "program view needs a physical circuit");
    if (view.finalMap == nullptr)
        return; // nothing to validate the measures against
    checkMeasureTargets(*view.physical, *view.finalMap);
    if (view.logical != nullptr)
        checkMeasureRemap(*view.logical, *view.physical,
                          *view.finalMap);
}

void
MeasureChecker::checkMeasureTargets(
    const circuit::Circuit &physical,
    const std::vector<int> &final_map) const
{
    const auto table = measureTable(physical, [&](int clbit,
                                                  int qubit) {
        throw CheckError(name(), CheckErrorKind::ClbitMisuse,
                         "clbit " + std::to_string(clbit) +
                             " is written by more than one measure",
                         -1, {qubit});
    });
    std::vector<bool> image(
        static_cast<std::size_t>(physical.numQubits()), false);
    for (int p : final_map) {
        if (p >= 0 && p < physical.numQubits())
            image[static_cast<std::size_t>(p)] = true;
    }
    for (const auto &[clbit, qubit] : table) {
        if (!image[static_cast<std::size_t>(qubit)]) {
            throw CheckError(
                name(), CheckErrorKind::MeasureOffLayout,
                "measure into clbit " + std::to_string(clbit) +
                    " reads a physical qubit outside the final "
                    "layout's image",
                -1, {qubit});
        }
    }
}

void
MeasureChecker::checkMeasureRemap(
    const circuit::Circuit &logical, const circuit::Circuit &physical,
    const std::vector<int> &final_map) const
{
    const auto rethrow_dup = [&](int clbit, int qubit) {
        throw CheckError(name(), CheckErrorKind::ClbitMisuse,
                         "clbit " + std::to_string(clbit) +
                             " is written by more than one measure",
                         -1, {qubit});
    };
    const auto logical_table = measureTable(logical, rethrow_dup);
    const auto physical_table = measureTable(physical, rethrow_dup);

    if (logical_table.size() != physical_table.size()) {
        throw CheckError(
            name(), CheckErrorKind::MeasureRemapMismatch,
            "logical program measures " +
                std::to_string(logical_table.size()) +
                " clbits, physical program measures " +
                std::to_string(physical_table.size()));
    }
    for (const auto &[clbit, logical_q] : logical_table) {
        const auto it = physical_table.find(clbit);
        if (it == physical_table.end()) {
            throw CheckError(
                name(), CheckErrorKind::MeasureRemapMismatch,
                "clbit " + std::to_string(clbit) +
                    " is measured logically but not physically");
        }
        if (logical_q < 0 ||
            logical_q >= static_cast<int>(final_map.size())) {
            throw CheckError(
                name(), CheckErrorKind::MeasureRemapMismatch,
                "logical measure into clbit " +
                    std::to_string(clbit) +
                    " reads a qubit the final map does not cover");
        }
        const int expected = final_map[static_cast<std::size_t>(
            logical_q)];
        if (it->second != expected) {
            throw CheckError(
                name(), CheckErrorKind::MeasureRemapMismatch,
                "clbit " + std::to_string(clbit) +
                    " reads physical qubit " +
                    std::to_string(it->second) +
                    " but the final map sends logical " +
                    std::to_string(logical_q) + " to physical " +
                    std::to_string(expected),
                -1, {it->second, expected});
        }
    }
}

} // namespace qedm::check
