#include "check/circuit_checker.hpp"

#include <set>
#include <string>

namespace qedm::check {

void
CircuitChecker::run(const ProgramView &view) const
{
    if (view.physical == nullptr)
        throw CheckError(name(), CheckErrorKind::MissingArtifact,
                         "program view has no physical circuit");
    check(*view.physical);
}

void
CircuitChecker::check(const circuit::Circuit &circuit) const
{
    checkGates(circuit.gates(), circuit.numQubits(),
               circuit.numClbits());
}

void
CircuitChecker::checkGates(const std::vector<circuit::Gate> &gates,
                           int num_qubits, int num_clbits) const
{
    std::vector<bool> measured(static_cast<std::size_t>(num_qubits),
                               false);
    for (std::size_t i = 0; i < gates.size(); ++i) {
        const circuit::Gate &g = gates[i];
        const int idx = static_cast<int>(i);
        const std::string op = circuit::opName(g.kind);

        if (g.kind != circuit::OpKind::Barrier &&
            static_cast<int>(g.qubits.size()) !=
                circuit::opArity(g.kind)) {
            throw CheckError(
                name(), CheckErrorKind::ArityMismatch,
                op + " has " + std::to_string(g.qubits.size()) +
                    " operands, arity is " +
                    std::to_string(circuit::opArity(g.kind)),
                idx, g.qubits);
        }
        if (static_cast<int>(g.params.size()) !=
            circuit::opParamCount(g.kind)) {
            throw CheckError(
                name(), CheckErrorKind::ParamMismatch,
                op + " has " + std::to_string(g.params.size()) +
                    " parameters, expected " +
                    std::to_string(circuit::opParamCount(g.kind)),
                idx, g.qubits);
        }

        std::set<int> seen;
        for (int q : g.qubits) {
            if (q < 0 || q >= num_qubits) {
                throw CheckError(name(),
                                 CheckErrorKind::QubitOutOfRange,
                                 op + " qubit index out of register [0, " +
                                     std::to_string(num_qubits) + ")",
                                 idx, g.qubits);
            }
            if (!seen.insert(q).second) {
                throw CheckError(name(),
                                 CheckErrorKind::DuplicateOperand,
                                 op + " repeats operand qubit",
                                 idx, g.qubits);
            }
            if (measured[static_cast<std::size_t>(q)] &&
                !options_.allowUseAfterMeasure) {
                throw CheckError(
                    name(), CheckErrorKind::UseAfterMeasure,
                    op + " acts on a qubit after its measurement "
                         "(measurement is terminal per qubit)",
                    idx, g.qubits);
            }
        }

        if (g.kind == circuit::OpKind::Measure) {
            if (g.clbit < 0 || g.clbit >= num_clbits) {
                throw CheckError(
                    name(), CheckErrorKind::ClbitMisuse,
                    "measure clbit " + std::to_string(g.clbit) +
                        " out of register [0, " +
                        std::to_string(num_clbits) + ")",
                    idx, g.qubits);
            }
            measured[static_cast<std::size_t>(g.qubits[0])] = true;
        } else if (g.clbit != -1) {
            throw CheckError(name(), CheckErrorKind::ClbitMisuse,
                             op + " carries a classical target but "
                                  "only measure writes a clbit",
                             idx, g.qubits);
        }
    }
}

} // namespace qedm::check
