/**
 * @file
 * Layout and routing verification.
 *
 * Validates the mapping contract between a compiled program and its
 * device: the initial layout is a bijection of the logical register
 * onto a subset of the physical qubits, every two-qubit gate of the
 * routed circuit acts on a coupled pair, and replaying the inserted
 * SWAP trail over the initial map reproduces exactly the final map
 * (and the reported SWAP count). This is the pass that catches the
 * silent mapping bugs that manifest as plausible-but-wrong
 * histograms rather than crashes.
 */

#pragma once

#include "check/check.hpp"

namespace qedm::check {

/** Verifier pass: layout bijection, coupling, SWAP bookkeeping. */
class MappingChecker final : public CheckerPass
{
  public:
    const char *name() const override { return "mapping"; }

    void run(const ProgramView &view) const override;

    /**
     * Check that @p layout maps each logical qubit to a distinct
     * physical qubit of @p device (a bijection onto a device
     * subgraph). @p label names the map in diagnostics.
     */
    void checkLayout(const std::vector<int> &layout,
                     const hw::Device &device,
                     const char *label) const;

    /**
     * Check that every two-qubit gate of @p physical acts on a
     * coupled pair of @p device and that no gate has three or more
     * operands (physical circuits are fully decomposed).
     */
    void checkCoupling(const circuit::Circuit &physical,
                       const hw::Device &device) const;

    /**
     * Replay the SWAP gates of @p physical over @p initial_map and
     * check that the result equals @p final_map and that the number
     * of SWAPs equals @p swap_count.
     */
    void checkSwapBookkeeping(const circuit::Circuit &physical,
                              const std::vector<int> &initial_map,
                              const std::vector<int> &final_map,
                              int swap_count) const;

    /**
     * Check that every layout entry and every gate operand of
     * @p physical — two-qubit gates, inserted SWAPs, and measures
     * alike — stays inside @p region's allowed mask. Run only when
     * the program view carries a non-full region.
     */
    void checkRegion(const ProgramView &view,
                     const hw::DeviceView &region) const;
};

} // namespace qedm::check
