/**
 * @file
 * ESP consistency verification.
 *
 * Recomputes the Estimated Success Probability of the routed circuit
 * directly from the calibration tables — an independent walk over the
 * decomposed gate list, not a call into the transpiler's scorer — and
 * rejects when the program's reported ESP differs by more than an
 * epsilon. Catches stale ESP: any transform that edits the circuit
 * after scoring without re-scoring it.
 */

#pragma once

#include "check/check.hpp"

namespace qedm::check {

/** Verifier pass: reported ESP matches a recomputation within tol. */
class EspChecker final : public CheckerPass
{
  public:
    /** @param tolerance max |reported - recomputed| accepted. */
    explicit EspChecker(double tolerance = 1e-9)
        : tolerance_(tolerance)
    {
    }

    const char *name() const override { return "esp"; }

    void run(const ProgramView &view) const override;

    /**
     * Independent ESP recomputation: product of per-gate and
     * per-measurement success rates over the decomposed circuit
     * (SWAP counts as 3 CX). Every two-qubit gate must sit on a
     * coupling edge (throws CheckError otherwise).
     */
    double recompute(const circuit::Circuit &physical,
                     const hw::Device &device) const;

  private:
    double tolerance_;
};

} // namespace qedm::check
