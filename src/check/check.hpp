/**
 * @file
 * Static verification of compiler artifacts (no simulation).
 *
 * Noise-adaptive compilers fail in ways that do not crash: a mapping
 * bug produces a plausible-but-wrong histogram (Murali et al.,
 * ASPLOS'19), so EDM's reliability claims rest on every ensemble
 * member being *provably* well-formed. qedm::check is a library of
 * verifier passes that validate a compiled program against the device
 * it was compiled for:
 *
 *   - CircuitChecker: structural validity of the gate list (indices in
 *     range, arity/params match the op kind, no use-after-measure);
 *   - MappingChecker: the layout is a bijection onto the device, every
 *     two-qubit gate sits on a coupling edge, and the SWAP trail turns
 *     the initial map into the final map;
 *   - MeasureChecker: the measurement table reads the final layout —
 *     every clbit written once, every measured qubit inside the final
 *     map's image, and (when the logical source is attached) the
 *     physical measures are exactly the logical ones pushed through
 *     the final map;
 *   - EspChecker: the reported ESP is recomputable from the routed
 *     circuit and the calibration tables within 1e-9.
 *
 * The passes run as a post-pass hook inside the Transpiler and over
 * every ensemble member: always-on in debug builds (kDefaultVerify),
 * opt-in via EdmConfig::verifyPasses / `qedm_cli --check` in release.
 * A violation throws CheckError naming the pass, the offending gate
 * index, and the physical qubits involved.
 */

#pragma once

#include <string>
#include <vector>

#include "circuit/circuit.hpp"
#include "common/error.hpp"
#include "hw/device.hpp"
#include "hw/device_view.hpp"

namespace qedm::check {

/**
 * Default verification policy: always-on in debug builds, opt-in in
 * release (checkers must be zero-cost when disabled).
 */
#ifdef NDEBUG
inline constexpr bool kDefaultVerify = false;
#else
inline constexpr bool kDefaultVerify = true;
#endif

/**
 * What class of violation a verifier pass found. Tests and callers
 * match on the kind instead of substring-grepping what(), so
 * diagnostic wording can evolve without breaking them.
 */
enum class CheckErrorKind
{
    Unspecified,      ///< legacy construction without a kind
    MissingArtifact,  ///< the program view lacks a required piece
    ArityMismatch,    ///< operand count does not match the op kind
    ParamMismatch,    ///< parameter count does not match the op kind
    QubitOutOfRange,  ///< gate qubit index outside the register
    DuplicateOperand, ///< a gate repeats an operand qubit
    UseAfterMeasure,  ///< a gate acts on a qubit after measurement
    ClbitMisuse,      ///< clbit out of range or on a non-measure op
    RegisterMismatch, ///< register/map sizes disagree with the device
    LayoutOutOfRange, ///< a layout entry leaves the device register
    LayoutNotBijective, ///< two logical qubits share a physical qubit
    UndecomposedGate, ///< >2-qubit gate survived into a routed circuit
    UncoupledGate,    ///< two-qubit gate on a non-adjacent pair
    SwapCountMismatch, ///< reported SWAP count != SWAPs in the circuit
    SwapTrailMismatch, ///< replayed SWAPs do not reach the final map
    EspMismatch,      ///< reported ESP does not recompute (stale score)
    EspUndefined,     ///< ESP recomputation hit an uncoupled gate
    MeasureOffLayout, ///< measure reads a qubit outside the final map
    MeasureRemapMismatch, ///< measure table != logical through final map
    QubitOutsideRegion, ///< placement/gate/measure leaves the view
    JournalHeaderInvalid, ///< journal magic/version/header unreadable
    JournalCorruptRecord, ///< mid-stream record failed its checksum
    JournalFingerprintMismatch, ///< journal was written by another run
};

/** Stable kebab-case name for one CheckErrorKind. */
const char *checkErrorKindName(CheckErrorKind kind);

/**
 * A verifier pass rejected an artifact. Carries the pass name, a
 * structured violation kind, the offending gate index (-1 when the
 * violation is not tied to one gate), and the physical qubits
 * involved; pass, gate, and qubits also appear in what().
 */
class CheckError : public Error
{
  public:
    CheckError(std::string pass, const std::string &message,
               int gate_index = -1, std::vector<int> qubits = {});

    CheckError(std::string pass, CheckErrorKind kind,
               const std::string &message, int gate_index = -1,
               std::vector<int> qubits = {});

    /** Name of the pass that rejected ("circuit", "mapping", "esp"). */
    const std::string &pass() const { return pass_; }

    /** Structured violation class (Unspecified for the legacy ctor). */
    CheckErrorKind kind() const { return kind_; }

    /** Offending gate index in the physical circuit, or -1. */
    int gateIndex() const { return gateIndex_; }

    /** Physical qubits involved in the violation (may be empty). */
    const std::vector<int> &qubits() const { return qubits_; }

  private:
    std::string pass_;
    CheckErrorKind kind_;
    int gateIndex_;
    std::vector<int> qubits_;
};

/**
 * Non-owning view of one compiled program plus the device it targets.
 * Mirrors transpile::CompiledProgram without depending on it, so the
 * transpiler can link against the checkers (and not vice versa).
 */
struct ProgramView
{
    /** Physical circuit over the full device register. */
    const circuit::Circuit *physical = nullptr;
    /** Initial logical-to-physical placement (logical index -> phys). */
    const std::vector<int> *initialMap = nullptr;
    /** Logical-to-physical map after all inserted SWAPs. */
    const std::vector<int> *finalMap = nullptr;
    /** Number of SWAP gates the router reported inserting. */
    int swapCount = 0;
    /** Compile-time ESP the score pass reported. */
    double esp = 0.0;
    /** Device the program was compiled for. */
    const hw::Device *device = nullptr;
    /**
     * Logical source circuit, when available. Optional: enables the
     * strong measurement-remap check (physical measures == logical
     * measures through the final map).
     */
    const circuit::Circuit *logical = nullptr;
    /**
     * Region the program was compiled under, when available.
     * Optional: when set and not full, MappingChecker rejects any
     * layout entry, gate operand (including SWAPs), or measurement
     * that touches a physical qubit outside the allowed mask.
     */
    const hw::DeviceView *region = nullptr;
};

/** One static verifier pass over a compiled program. */
class CheckerPass
{
  public:
    virtual ~CheckerPass() = default;

    /** Stable pass name used in diagnostics. */
    virtual const char *name() const = 0;

    /** Validate @p view; throws CheckError on the first violation. */
    virtual void run(const ProgramView &view) const = 0;
};

/**
 * The standard pass list in execution order: circuit, mapping,
 * measure, esp. The instances are immutable singletons; safe to share
 * across threads.
 */
const std::vector<const CheckerPass *> &standardPasses();

/**
 * Run every standard pass over @p view. Throws CheckError on the
 * first violation; returns the number of passes run otherwise.
 */
std::size_t verifyProgram(const ProgramView &view);

namespace detail {

/** Render "p3,p9" style physical-qubit lists for diagnostics. */
std::string formatQubits(const std::vector<int> &qubits);

} // namespace detail
} // namespace qedm::check
