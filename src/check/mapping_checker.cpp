#include "check/mapping_checker.hpp"

#include <string>
#include <vector>

namespace qedm::check {

void
MappingChecker::run(const ProgramView &view) const
{
    if (view.physical == nullptr || view.device == nullptr)
        throw CheckError(name(), CheckErrorKind::MissingArtifact,
                         "program view needs a circuit and a device");
    const circuit::Circuit &physical = *view.physical;
    const hw::Device &device = *view.device;

    if (physical.numQubits() != device.numQubits()) {
        throw CheckError(
            name(), CheckErrorKind::RegisterMismatch,
            "physical register has " +
                std::to_string(physical.numQubits()) +
                " qubits, device has " +
                std::to_string(device.numQubits()));
    }
    if (view.initialMap != nullptr)
        checkLayout(*view.initialMap, device, "initial map");
    if (view.finalMap != nullptr)
        checkLayout(*view.finalMap, device, "final map");
    checkCoupling(physical, device);
    if (view.initialMap != nullptr && view.finalMap != nullptr) {
        checkSwapBookkeeping(physical, *view.initialMap,
                             *view.finalMap, view.swapCount);
    }
    if (view.region != nullptr && !view.region->isFull())
        checkRegion(view, *view.region);
}

void
MappingChecker::checkRegion(const ProgramView &view,
                            const hw::DeviceView &region) const
{
    auto inside = [&](int p) {
        return p >= 0 && p < region.numQubits() && region.allowed(p);
    };
    auto checkMap = [&](const std::vector<int> &layout,
                        const char *label) {
        for (std::size_t l = 0; l < layout.size(); ++l) {
            if (!inside(layout[l])) {
                throw CheckError(
                    name(), CheckErrorKind::QubitOutsideRegion,
                    std::string(label) + " sends logical " +
                        std::to_string(l) +
                        " outside the allowed region",
                    -1, {layout[l]});
            }
        }
    };
    if (view.initialMap != nullptr)
        checkMap(*view.initialMap, "initial map");
    if (view.finalMap != nullptr)
        checkMap(*view.finalMap, "final map");

    // Every operand of every gate — two-qubit gates, router SWAPs,
    // and measures alike (checkCoupling skips measures, so the walk
    // here must not).
    const auto &gates = view.physical->gates();
    for (std::size_t i = 0; i < gates.size(); ++i) {
        const circuit::Gate &g = gates[i];
        if (g.kind == circuit::OpKind::Barrier)
            continue;
        for (int q : g.qubits) {
            if (!inside(q)) {
                throw CheckError(
                    name(), CheckErrorKind::QubitOutsideRegion,
                    circuit::opName(g.kind) +
                        " touches a qubit outside the allowed region",
                    static_cast<int>(i), g.qubits);
            }
        }
    }
}

void
MappingChecker::checkLayout(const std::vector<int> &layout,
                            const hw::Device &device,
                            const char *label) const
{
    std::vector<bool> taken(
        static_cast<std::size_t>(device.numQubits()), false);
    for (std::size_t l = 0; l < layout.size(); ++l) {
        const int p = layout[l];
        if (p < 0 || p >= device.numQubits()) {
            throw CheckError(name(),
                             CheckErrorKind::LayoutOutOfRange,
                             std::string(label) + " sends logical " +
                                 std::to_string(l) +
                                 " outside the device register",
                             -1, {p});
        }
        if (taken[static_cast<std::size_t>(p)]) {
            throw CheckError(name(),
                             CheckErrorKind::LayoutNotBijective,
                             std::string(label) +
                                 " is not a bijection: physical "
                                 "qubit assigned twice",
                             -1, {p});
        }
        taken[static_cast<std::size_t>(p)] = true;
    }
}

void
MappingChecker::checkCoupling(const circuit::Circuit &physical,
                              const hw::Device &device) const
{
    const hw::Topology &topo = device.topology();
    const auto &gates = physical.gates();
    for (std::size_t i = 0; i < gates.size(); ++i) {
        const circuit::Gate &g = gates[i];
        if (g.kind == circuit::OpKind::Barrier ||
            g.kind == circuit::OpKind::Measure) {
            continue;
        }
        const int arity = circuit::opArity(g.kind);
        if (arity > 2) {
            throw CheckError(name(),
                             CheckErrorKind::UndecomposedGate,
                             circuit::opName(g.kind) +
                                 " in a routed circuit (physical "
                                 "circuits must be decomposed to <= 2 "
                                 "qubit gates)",
                             static_cast<int>(i), g.qubits);
        }
        if (arity == 2 && !topo.adjacent(g.qubits[0], g.qubits[1])) {
            throw CheckError(name(), CheckErrorKind::UncoupledGate,
                             circuit::opName(g.kind) +
                                 " acts on an uncoupled pair",
                             static_cast<int>(i), g.qubits);
        }
    }
}

void
MappingChecker::checkSwapBookkeeping(
    const circuit::Circuit &physical,
    const std::vector<int> &initial_map,
    const std::vector<int> &final_map, int swap_count) const
{
    if (initial_map.size() != final_map.size()) {
        throw CheckError(
            name(), CheckErrorKind::RegisterMismatch,
            "initial map covers " +
                std::to_string(initial_map.size()) +
                " logical qubits, final map " +
                std::to_string(final_map.size()));
    }

    // Replay the SWAP trail: each Swap(a, b) exchanges the logical
    // occupants of physical qubits a and b.
    std::vector<int> location = initial_map; // logical -> physical
    int swaps_seen = 0;
    const auto &gates = physical.gates();
    for (std::size_t i = 0; i < gates.size(); ++i) {
        const circuit::Gate &g = gates[i];
        if (g.kind != circuit::OpKind::Swap)
            continue;
        ++swaps_seen;
        const int a = g.qubits[0];
        const int b = g.qubits[1];
        for (int &p : location) {
            if (p == a)
                p = b;
            else if (p == b)
                p = a;
        }
    }

    if (swaps_seen != swap_count) {
        throw CheckError(name(),
                         CheckErrorKind::SwapCountMismatch,
                         "routed circuit contains " +
                             std::to_string(swaps_seen) +
                             " SWAPs, program reports " +
                             std::to_string(swap_count));
    }
    for (std::size_t l = 0; l < location.size(); ++l) {
        if (location[l] != final_map[l]) {
            throw CheckError(
                name(), CheckErrorKind::SwapTrailMismatch,
                "SWAP trail leaves logical " + std::to_string(l) +
                    " on physical " + std::to_string(location[l]) +
                    ", final map says " +
                    std::to_string(final_map[l]),
                -1, {location[l], final_map[l]});
        }
    }
}

} // namespace qedm::check
