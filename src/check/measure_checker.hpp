/**
 * @file
 * Measurement remap verification.
 *
 * A routed program reads logical answers off *physical* qubits, so the
 * measurement table is where a mapping bug becomes a silently wrong
 * histogram: a measure left on a stale physical qubit after SWAP
 * insertion still produces plausible counts. This pass validates the
 * measurement-remap contract: each classical bit is written at most
 * once, every measured physical qubit is inside the final layout's
 * image, and — when the logical source circuit is available — the
 * physical measure table is exactly the logical one pushed through the
 * final map (logical measure (l, c) <=> physical measure
 * (finalMap[l], c)).
 */

#pragma once

#include "check/check.hpp"

namespace qedm::check {

/** Verifier pass: measurement table vs the final layout. */
class MeasureChecker final : public CheckerPass
{
  public:
    const char *name() const override { return "measure"; }

    void run(const ProgramView &view) const override;

    /**
     * Weak contract (no logical circuit needed): classical bits are
     * written at most once and every measured physical qubit is in
     * the image of @p final_map.
     */
    void checkMeasureTargets(const circuit::Circuit &physical,
                             const std::vector<int> &final_map) const;

    /**
     * Strong contract: the physical measure table equals the logical
     * measure table remapped through @p final_map, measure for
     * measure (same clbits, same multiplicity).
     */
    void checkMeasureRemap(const circuit::Circuit &logical,
                           const circuit::Circuit &physical,
                           const std::vector<int> &final_map) const;
};

} // namespace qedm::check
