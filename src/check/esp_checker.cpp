#include "check/esp_checker.hpp"

#include <cmath>
#include <sstream>

namespace qedm::check {

void
EspChecker::run(const ProgramView &view) const
{
    if (view.physical == nullptr || view.device == nullptr)
        throw CheckError(name(), CheckErrorKind::MissingArtifact,
                         "program view needs a circuit and a device");
    const double recomputed = recompute(*view.physical, *view.device);
    if (std::abs(view.esp - recomputed) > tolerance_) {
        std::ostringstream os;
        os.precision(17);
        os << "reported ESP " << view.esp
           << " does not match the routed circuit (recomputed "
           << recomputed << ", tolerance " << tolerance_
           << "); stale score?";
        throw CheckError(name(), CheckErrorKind::EspMismatch, os.str());
    }
}

double
EspChecker::recompute(const circuit::Circuit &physical,
                      const hw::Device &device) const
{
    const hw::Topology &topo = device.topology();
    const hw::Calibration &cal = device.calibration();
    const circuit::Circuit flat = physical.decomposed();

    double p = 1.0;
    const auto &gates = flat.gates();
    for (std::size_t i = 0; i < gates.size(); ++i) {
        const circuit::Gate &g = gates[i];
        switch (g.kind) {
          case circuit::OpKind::Barrier:
            break;
          case circuit::OpKind::Measure:
            p *= 1.0 - cal.qubit(g.qubits[0]).readoutError();
            break;
          default: {
            if (circuit::opArity(g.kind) == 1) {
                p *= 1.0 - cal.qubit(g.qubits[0]).error1q;
            } else {
                const int e = topo.edgeIndex(g.qubits[0], g.qubits[1]);
                if (e < 0) {
                    throw CheckError(
                        name(), CheckErrorKind::EspUndefined,
                        "ESP undefined: " + circuit::opName(g.kind) +
                            " on an uncoupled pair",
                        static_cast<int>(i), g.qubits);
                }
                p *= 1.0 - cal.edge(static_cast<std::size_t>(e)).cxError;
            }
          }
        }
    }
    return p;
}

} // namespace qedm::check
