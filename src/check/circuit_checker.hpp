/**
 * @file
 * Structural circuit verification.
 *
 * Validates that a gate list is a well-formed DAG over its registers:
 * every qubit/clbit index in range, gate arity and parameter count
 * matching the op kind, distinct operands, and no gate acting on a
 * qubit after it has been measured (measurement is terminal per qubit
 * in qedm's execution model unless explicitly declared otherwise).
 *
 * The Circuit builders already reject most malformed gates at append
 * time; the checker re-validates from the raw gate list so artifacts
 * arriving via deserialization, external tools, or future IR surgery
 * get the same guarantees (defense in depth), and adds the
 * use-after-measure analysis the builders do not do.
 */

#pragma once

#include "check/check.hpp"

namespace qedm::check {

/** Options for structural circuit checks. */
struct CircuitCheckOptions
{
    /**
     * Permit gates on a qubit after its measurement (mid-circuit
     * measurement). Off by default: routed circuits defer measures to
     * the end, and the executor treats measurement as terminal.
     */
    bool allowUseAfterMeasure = false;
};

/** Verifier pass: the physical circuit is structurally well-formed. */
class CircuitChecker final : public CheckerPass
{
  public:
    explicit CircuitChecker(CircuitCheckOptions options = {})
        : options_(options)
    {
    }

    const char *name() const override { return "circuit"; }

    void run(const ProgramView &view) const override;

    /** Check any circuit directly (device-independent). */
    void check(const circuit::Circuit &circuit) const;

    /**
     * Check a raw gate list against register sizes @p num_qubits /
     * @p num_clbits (the entry point for gates that never went
     * through the validated builders).
     */
    void checkGates(const std::vector<circuit::Gate> &gates,
                    int num_qubits, int num_clbits) const;

  private:
    CircuitCheckOptions options_;
};

} // namespace qedm::check
