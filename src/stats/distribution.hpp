/**
 * @file
 * Dense probability distribution over the outcomes of an m-bit register.
 */

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/bits.hpp"
#include "common/rng.hpp"
#include "stats/counts.hpp"

namespace qedm::stats {

/**
 * A probability distribution over all 2^width outcomes.
 *
 * This is the object EDM merges: the normalized output histogram of one
 * ensemble member. Stored densely, which is fine for the paper's regime
 * (m <= 20 classical bits, typically m <= 8).
 */
class Distribution
{
  public:
    /** All-zero distribution (not normalized) over 2^width outcomes. */
    explicit Distribution(int width);

    /** Normalized distribution from shot counts. Requires total > 0. */
    static Distribution fromCounts(const Counts &counts);

    /** Uniform distribution. */
    static Distribution uniform(int width);

    /** Point mass on @p outcome. */
    static Distribution pointMass(int width, Outcome outcome);

    /** From explicit probabilities (size must be a power of two). */
    static Distribution fromProbabilities(std::vector<double> probs);

    int width() const { return width_; }
    std::size_t size() const { return p_.size(); }

    double prob(Outcome outcome) const;
    void setProb(Outcome outcome, double p);
    void addProb(Outcome outcome, double p);

    const std::vector<double> &probabilities() const { return p_; }

    /** Sum of all probabilities. */
    double total() const;

    /** Scale so probabilities sum to 1. Requires a positive total. */
    void normalize();

    /** True if total() is within @p tol of 1. */
    bool isNormalized(double tol = 1e-9) const;

    /** Most probable outcome (lowest value wins ties). */
    Outcome mode() const;

    /** Top-k (outcome, probability) pairs by probability, descending. */
    std::vector<std::pair<Outcome, double>> topK(std::size_t k) const;

    /** Shannon entropy in nats. */
    double entropy() const;

    /** Relative standard deviation sigma/mu of the probability vector. */
    double relativeStdDev() const;

    /** Draw @p shots multinomial samples. */
    Counts sample(Rng &rng, std::uint64_t shots) const;

    /** Elementwise scale by @p factor. */
    void scale(double factor);

    /** Elementwise accumulate @p factor * other. Widths must match. */
    void accumulate(const Distribution &other, double factor = 1.0);

    /** Human-readable dump of outcomes with p > threshold. */
    std::string toString(double threshold = 1e-4) const;

  private:
    int width_;
    std::vector<double> p_;
};

/** Average of member distributions with equal weights (EDM merge). */
Distribution mergeUniform(const std::vector<Distribution> &members);

/**
 * Weighted merge: sum_i w[i] * members[i], then normalized (WEDM merge,
 * Appendix-B Eq. 5). Weights must be non-negative with a positive sum.
 */
Distribution mergeWeighted(const std::vector<Distribution> &members,
                           const std::vector<double> &weights);

} // namespace qedm::stats
