#include "stats/counts.hpp"

#include <algorithm>
#include <sstream>

#include "common/error.hpp"

namespace qedm::stats {

Counts::Counts(int width) : width_(width)
{
    QEDM_REQUIRE(width >= 1 && width <= 20,
                 "Counts width must be in [1, 20]");
}

void
Counts::add(Outcome outcome, std::uint64_t n)
{
    QEDM_REQUIRE(outcome < (Outcome(1) << width_),
                 "outcome exceeds register width");
    counts_[outcome] += n;
    total_ += n;
}

std::uint64_t
Counts::count(Outcome outcome) const
{
    auto it = counts_.find(outcome);
    return it == counts_.end() ? 0 : it->second;
}

void
Counts::merge(const Counts &other)
{
    QEDM_REQUIRE(other.width_ == width_,
                 "cannot merge Counts of different widths");
    for (const auto &[outcome, n] : other.counts_)
        add(outcome, n);
}

std::vector<std::pair<Outcome, std::uint64_t>>
Counts::sortedByCount() const
{
    std::vector<std::pair<Outcome, std::uint64_t>> v(counts_.begin(),
                                                     counts_.end());
    std::stable_sort(v.begin(), v.end(), [](const auto &a, const auto &b) {
        if (a.second != b.second)
            return a.second > b.second;
        return a.first < b.first;
    });
    return v;
}

std::string
Counts::toString() const
{
    std::ostringstream os;
    for (const auto &[outcome, n] : counts_)
        os << toBitstring(outcome, width_) << ": " << n << "\n";
    return os.str();
}

} // namespace qedm::stats
