#include "stats/distribution.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <numeric>
#include <sstream>

#include "common/error.hpp"

namespace qedm::stats {

Distribution::Distribution(int width) : width_(width)
{
    QEDM_REQUIRE(width >= 1 && width <= 20,
                 "Distribution width must be in [1, 20]");
    p_.assign(std::size_t(1) << width, 0.0);
}

Distribution
Distribution::fromCounts(const Counts &counts)
{
    QEDM_REQUIRE(counts.total() > 0,
                 "cannot normalize an empty Counts into a Distribution");
    Distribution d(counts.width());
    const double inv = 1.0 / static_cast<double>(counts.total());
    for (const auto &[outcome, n] : counts.entries())
        d.p_[outcome] = static_cast<double>(n) * inv;
    return d;
}

Distribution
Distribution::uniform(int width)
{
    Distribution d(width);
    const double p = 1.0 / static_cast<double>(d.p_.size());
    std::fill(d.p_.begin(), d.p_.end(), p);
    return d;
}

Distribution
Distribution::pointMass(int width, Outcome outcome)
{
    Distribution d(width);
    QEDM_REQUIRE(outcome < d.p_.size(), "outcome exceeds register width");
    d.p_[outcome] = 1.0;
    return d;
}

Distribution
Distribution::fromProbabilities(std::vector<double> probs)
{
    QEDM_REQUIRE(probs.size() >= 2 && std::has_single_bit(probs.size()),
                 "probability vector size must be a power of two >= 2");
    const int width = std::countr_zero(probs.size());
    Distribution d(width);
    for (double p : probs)
        QEDM_REQUIRE(p >= 0.0, "probabilities must be non-negative");
    d.p_ = std::move(probs);
    return d;
}

double
Distribution::prob(Outcome outcome) const
{
    QEDM_REQUIRE(outcome < p_.size(), "outcome exceeds register width");
    return p_[outcome];
}

void
Distribution::setProb(Outcome outcome, double p)
{
    QEDM_REQUIRE(outcome < p_.size(), "outcome exceeds register width");
    QEDM_REQUIRE(p >= 0.0, "probabilities must be non-negative");
    p_[outcome] = p;
}

void
Distribution::addProb(Outcome outcome, double p)
{
    QEDM_REQUIRE(outcome < p_.size(), "outcome exceeds register width");
    p_[outcome] += p;
}

double
Distribution::total() const
{
    // canonical order: serial index-ascending sum over the
    // contiguous probability vector — identical at every --jobs.
    return std::accumulate(p_.begin(), p_.end(), 0.0);
}

void
Distribution::normalize()
{
    const double t = total();
    QEDM_REQUIRE(t > 0.0, "cannot normalize an all-zero distribution");
    scale(1.0 / t);
}

bool
Distribution::isNormalized(double tol) const
{
    return std::abs(total() - 1.0) <= tol;
}

Outcome
Distribution::mode() const
{
    return static_cast<Outcome>(
        std::max_element(p_.begin(), p_.end()) - p_.begin());
}

std::vector<std::pair<Outcome, double>>
Distribution::topK(std::size_t k) const
{
    std::vector<std::pair<Outcome, double>> v;
    v.reserve(p_.size());
    for (std::size_t i = 0; i < p_.size(); ++i)
        v.emplace_back(static_cast<Outcome>(i), p_[i]);
    std::stable_sort(v.begin(), v.end(), [](const auto &a, const auto &b) {
        return a.second > b.second;
    });
    if (v.size() > k)
        v.resize(k);
    return v;
}

double
Distribution::entropy() const
{
    double h = 0.0;
    for (double p : p_) {
        if (p > 0.0)
            h -= p * std::log(p);
    }
    return h;
}

double
Distribution::relativeStdDev() const
{
    const double n = static_cast<double>(p_.size());
    const double mean = total() / n;
    if (mean <= 0.0)
        return 0.0;
    double var = 0.0;
    for (double p : p_)
        var += (p - mean) * (p - mean);
    var /= n;
    return std::sqrt(var) / mean;
}

Counts
Distribution::sample(Rng &rng, std::uint64_t shots) const
{
    Counts counts(width_);
    const double t = total();
    QEDM_REQUIRE(t > 0.0, "cannot sample an all-zero distribution");
    // CDF inversion per shot; outcome spaces here are small (<= 2^20)
    // but shots dominate, so build the CDF once.
    std::vector<double> cdf(p_.size());
    double acc = 0.0;
    for (std::size_t i = 0; i < p_.size(); ++i) {
        acc += p_[i] / t;
        cdf[i] = acc;
    }
    cdf.back() = 1.0;
    for (std::uint64_t s = 0; s < shots; ++s) {
        const double r = rng.uniform();
        const auto it = std::lower_bound(cdf.begin(), cdf.end(), r);
        counts.add(static_cast<Outcome>(it - cdf.begin()));
    }
    return counts;
}

void
Distribution::scale(double factor)
{
    for (double &p : p_)
        p *= factor;
}

void
Distribution::accumulate(const Distribution &other, double factor)
{
    QEDM_REQUIRE(other.width_ == width_,
                 "cannot accumulate distributions of different widths");
    for (std::size_t i = 0; i < p_.size(); ++i)
        p_[i] += factor * other.p_[i];
}

std::string
Distribution::toString(double threshold) const
{
    std::ostringstream os;
    for (std::size_t i = 0; i < p_.size(); ++i) {
        if (p_[i] > threshold) {
            os << toBitstring(static_cast<Outcome>(i), width_) << ": "
               << p_[i] << "\n";
        }
    }
    return os.str();
}

Distribution
mergeUniform(const std::vector<Distribution> &members)
{
    QEDM_REQUIRE(!members.empty(), "cannot merge an empty ensemble");
    return mergeWeighted(members,
                         std::vector<double>(members.size(), 1.0));
}

Distribution
mergeWeighted(const std::vector<Distribution> &members,
              const std::vector<double> &weights)
{
    QEDM_REQUIRE(!members.empty(), "cannot merge an empty ensemble");
    QEDM_REQUIRE(members.size() == weights.size(),
                 "one weight per ensemble member required");
    double wsum = 0.0;
    for (double w : weights) {
        QEDM_REQUIRE(w >= 0.0, "merge weights must be non-negative");
        wsum += w;
    }
    QEDM_REQUIRE(wsum > 0.0, "merge weights must not all be zero");

    Distribution out(members.front().width());
    for (std::size_t i = 0; i < members.size(); ++i)
        out.accumulate(members[i], weights[i] / wsum);
    return out;
}

} // namespace qedm::stats
