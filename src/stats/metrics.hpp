/**
 * @file
 * Reliability and divergence metrics from the EDM paper.
 *
 * - PST: Probability of a Successful Trial (Section 4.3).
 * - IST: Inference Strength, P(correct) / P(strongest wrong answer)
 *   (Section 4.3). IST > 1 means the machine infers the right answer.
 * - KL divergence and its symmetrized form (Appendix B), used both to
 *   characterize output diversity (Fig. 4) and to compute WEDM weights.
 */

#pragma once

#include <vector>

#include "common/bits.hpp"
#include "stats/distribution.hpp"

namespace qedm::stats {

/** PST: probability assigned to the correct outcome. */
double pst(const Distribution &dist, Outcome correct);

/**
 * IST: P(correct) / max over incorrect outcomes of P(outcome).
 *
 * If no incorrect outcome has positive probability the strength is
 * unbounded; we return +infinity in that case (ideal machine).
 */
double ist(const Distribution &dist, Outcome correct);

/**
 * Kullback-Leibler divergence D(P || Q) in nats (Appendix-B Eq. 1).
 *
 * Empirical distributions routinely contain zeros, where KL is
 * undefined; both arguments are smoothed by mixing in @p smoothing of
 * the uniform distribution before evaluation. @p smoothing must be in
 * (0, 1) unless both distributions are strictly positive, in which case
 * 0 is accepted.
 */
double klDivergence(const Distribution &p, const Distribution &q,
                    double smoothing = 1e-6);

/** Symmetric KL: D(P||Q) + D(Q||P) (Appendix-B Eq. 4). */
double symmetricKl(const Distribution &p, const Distribution &q,
                   double smoothing = 1e-6);

/** Jensen-Shannon divergence (bounded, symmetric; used in tests). */
double jensenShannon(const Distribution &p, const Distribution &q);

/** Total-variation distance: (1/2) sum |p_i - q_i|, in [0, 1]. */
double totalVariation(const Distribution &p, const Distribution &q);

/** Hellinger distance: sqrt(1 - sum sqrt(p_i q_i)), in [0, 1]. */
double hellinger(const Distribution &p, const Distribution &q);

/**
 * WEDM weights (Appendix-B Eq. 6): W_i = sum_j SKL(O_i, O_j),
 * normalized to sum to 1. With a single member the weight is 1. When
 * all members are identical (all SKL = 0) the weights degrade
 * gracefully to uniform.
 */
std::vector<double> wedmWeights(const std::vector<Distribution> &members,
                                double smoothing = 1e-6);

/**
 * Pairwise symmetric-KL matrix between members (Fig. 4 heat maps).
 * Entry [i][j] = SKL(members[i], members[j]); diagonal is zero.
 */
std::vector<std::vector<double>>
pairwiseDivergence(const std::vector<Distribution> &members,
                   double smoothing = 1e-6);

/** Mean of the off-diagonal entries of a pairwise divergence matrix. */
double meanOffDiagonal(const std::vector<std::vector<double>> &matrix);

/** Median of @p values (by copy; empty input is an error). */
double median(std::vector<double> values);

/** A two-sided confidence interval. */
struct ConfidenceInterval
{
    double lower = 0.0;
    double upper = 0.0;
    double pointEstimate = 0.0;
};

/**
 * Bootstrap confidence interval for the IST of a measured histogram:
 * resample the shot log @p resamples times (multinomial over the
 * empirical distribution) and take the percentile interval at
 * @p confidence (e.g. 0.95). Answers the practical question the paper
 * raises: given finitely many trials, how sure are we the correct
 * answer really is the strongest one?
 */
ConfidenceInterval
istConfidenceInterval(const Counts &counts, Outcome correct, Rng &rng,
                      int resamples = 200, double confidence = 0.95);

/**
 * Uniformity guard from the paper's footnote 2: true when the
 * distribution's relative standard deviation is within @p margin of a
 * uniform distribution's (i.e. close to 0), indicating the output
 * carries no signal and should be discarded.
 */
bool isNearUniform(const Distribution &dist, double margin = 0.25);

} // namespace qedm::stats
