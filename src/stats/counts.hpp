/**
 * @file
 * Shot-count accumulation (the "output log" of a NISQ run).
 */

#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/bits.hpp"

namespace qedm::stats {

/**
 * Histogram of measured outcomes for a fixed-width register.
 *
 * Mirrors the per-trial output log a NISQ machine produces: each shot
 * appends one outcome. Outcomes are ordered (std::map) so iteration and
 * textual dumps are deterministic.
 */
class Counts
{
  public:
    /** @param width number of classical bits per outcome (1..20). */
    explicit Counts(int width);

    /** Record @p n occurrences of @p outcome. */
    void add(Outcome outcome, std::uint64_t n = 1);

    /** Number of classical bits per outcome. */
    int width() const { return width_; }

    /** Total number of recorded shots. */
    std::uint64_t total() const { return total_; }

    /** Shots recorded for @p outcome (0 if never seen). */
    std::uint64_t count(Outcome outcome) const;

    /** Number of distinct outcomes observed. */
    std::size_t distinct() const { return counts_.size(); }

    /** Merge another Counts of the same width into this one. */
    void merge(const Counts &other);

    /** Ordered (outcome, count) view. */
    const std::map<Outcome, std::uint64_t> &entries() const
    {
        return counts_;
    }

    /** Outcomes sorted by count, descending (ties by outcome value). */
    std::vector<std::pair<Outcome, std::uint64_t>> sortedByCount() const;

    /** Human-readable multi-line dump ("110011: 457"). */
    std::string toString() const;

  private:
    int width_;
    std::uint64_t total_ = 0;
    std::map<Outcome, std::uint64_t> counts_;
};

} // namespace qedm::stats
