#include "stats/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.hpp"

namespace qedm::stats {
namespace {

/** Mix @p d with the uniform distribution: (1-eps)*d + eps*U. */
std::vector<double>
smoothed(const Distribution &d, double eps)
{
    std::vector<double> p = d.probabilities();
    const double u = 1.0 / static_cast<double>(p.size());
    for (double &x : p)
        x = (1.0 - eps) * x + eps * u;
    return p;
}

double
klRaw(const std::vector<double> &p, const std::vector<double> &q)
{
    double d = 0.0;
    for (std::size_t i = 0; i < p.size(); ++i) {
        if (p[i] > 0.0) {
            QEDM_REQUIRE(q[i] > 0.0,
                         "KL divergence undefined: q has a zero where p "
                         "is positive (use smoothing > 0)");
            d += p[i] * std::log(p[i] / q[i]);
        }
    }
    return d;
}

} // namespace

double
pst(const Distribution &dist, Outcome correct)
{
    return dist.prob(correct);
}

double
ist(const Distribution &dist, Outcome correct)
{
    const auto &p = dist.probabilities();
    QEDM_REQUIRE(correct < p.size(), "correct outcome exceeds width");
    double worst = 0.0;
    for (std::size_t i = 0; i < p.size(); ++i) {
        if (i != correct)
            worst = std::max(worst, p[i]);
    }
    if (worst <= 0.0)
        return std::numeric_limits<double>::infinity();
    return p[correct] / worst;
}

double
klDivergence(const Distribution &p, const Distribution &q, double smoothing)
{
    QEDM_REQUIRE(p.width() == q.width(),
                 "KL divergence requires equal widths");
    QEDM_REQUIRE(smoothing >= 0.0 && smoothing < 1.0,
                 "smoothing must be in [0, 1)");
    if (smoothing == 0.0)
        return klRaw(p.probabilities(), q.probabilities());
    return klRaw(smoothed(p, smoothing), smoothed(q, smoothing));
}

double
symmetricKl(const Distribution &p, const Distribution &q, double smoothing)
{
    return klDivergence(p, q, smoothing) + klDivergence(q, p, smoothing);
}

double
jensenShannon(const Distribution &p, const Distribution &q)
{
    QEDM_REQUIRE(p.width() == q.width(),
                 "JS divergence requires equal widths");
    Distribution m(p.width());
    m.accumulate(p, 0.5);
    m.accumulate(q, 0.5);
    // p and q are absolutely continuous w.r.t. m, so no smoothing needed.
    const auto &pp = p.probabilities();
    const auto &qq = q.probabilities();
    const auto &mm = m.probabilities();
    double d = 0.0;
    for (std::size_t i = 0; i < pp.size(); ++i) {
        if (pp[i] > 0.0)
            d += 0.5 * pp[i] * std::log(pp[i] / mm[i]);
        if (qq[i] > 0.0)
            d += 0.5 * qq[i] * std::log(qq[i] / mm[i]);
    }
    return d;
}

double
totalVariation(const Distribution &p, const Distribution &q)
{
    QEDM_REQUIRE(p.width() == q.width(),
                 "total variation requires equal widths");
    const auto &pp = p.probabilities();
    const auto &qq = q.probabilities();
    double d = 0.0;
    for (std::size_t i = 0; i < pp.size(); ++i)
        d += std::abs(pp[i] - qq[i]);
    return 0.5 * d;
}

double
hellinger(const Distribution &p, const Distribution &q)
{
    QEDM_REQUIRE(p.width() == q.width(),
                 "Hellinger distance requires equal widths");
    const auto &pp = p.probabilities();
    const auto &qq = q.probabilities();
    double bc = 0.0;
    for (std::size_t i = 0; i < pp.size(); ++i)
        bc += std::sqrt(pp[i] * qq[i]);
    return std::sqrt(std::max(1.0 - bc, 0.0));
}

std::vector<double>
wedmWeights(const std::vector<Distribution> &members, double smoothing)
{
    QEDM_REQUIRE(!members.empty(), "wedmWeights needs at least one member");
    const std::size_t n = members.size();
    std::vector<double> w(n, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < n; ++j) {
            if (i != j)
                w[i] += symmetricKl(members[i], members[j], smoothing);
        }
    }
    double sum = 0.0;
    for (double x : w)
        sum += x;
    if (sum <= 0.0) {
        // All members identical: fall back to uniform weights.
        std::fill(w.begin(), w.end(), 1.0 / static_cast<double>(n));
        return w;
    }
    for (double &x : w)
        x /= sum;
    return w;
}

std::vector<std::vector<double>>
pairwiseDivergence(const std::vector<Distribution> &members,
                   double smoothing)
{
    const std::size_t n = members.size();
    std::vector<std::vector<double>> m(n, std::vector<double>(n, 0.0));
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = i + 1; j < n; ++j) {
            const double d = symmetricKl(members[i], members[j], smoothing);
            m[i][j] = d;
            m[j][i] = d;
        }
    }
    return m;
}

double
meanOffDiagonal(const std::vector<std::vector<double>> &matrix)
{
    const std::size_t n = matrix.size();
    if (n < 2)
        return 0.0;
    double sum = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        QEDM_REQUIRE(matrix[i].size() == n,
                     "divergence matrix must be square");
        for (std::size_t j = 0; j < n; ++j) {
            if (i != j)
                sum += matrix[i][j];
        }
    }
    return sum / static_cast<double>(n * (n - 1));
}

ConfidenceInterval
istConfidenceInterval(const Counts &counts, Outcome correct, Rng &rng,
                      int resamples, double confidence)
{
    QEDM_REQUIRE(counts.total() > 0, "empty shot log");
    QEDM_REQUIRE(resamples >= 10, "need at least 10 resamples");
    QEDM_REQUIRE(confidence > 0.0 && confidence < 1.0,
                 "confidence must be in (0, 1)");
    const Distribution empirical = Distribution::fromCounts(counts);

    std::vector<double> samples;
    samples.reserve(static_cast<std::size_t>(resamples));
    for (int i = 0; i < resamples; ++i) {
        const Counts resampled =
            empirical.sample(rng, counts.total());
        samples.push_back(
            ist(Distribution::fromCounts(resampled), correct));
    }
    std::sort(samples.begin(), samples.end());
    const double alpha = (1.0 - confidence) / 2.0;
    const auto index = [&](double quantile) {
        const double pos =
            quantile * static_cast<double>(samples.size() - 1);
        return samples[static_cast<std::size_t>(pos + 0.5)];
    };
    return ConfidenceInterval{index(alpha), index(1.0 - alpha),
                              ist(empirical, correct)};
}

double
median(std::vector<double> values)
{
    QEDM_REQUIRE(!values.empty(), "median of an empty set is undefined");
    std::sort(values.begin(), values.end());
    const std::size_t n = values.size();
    if (n % 2 == 1)
        return values[n / 2];
    return 0.5 * (values[n / 2 - 1] + values[n / 2]);
}

bool
isNearUniform(const Distribution &dist, double margin)
{
    QEDM_REQUIRE(margin >= 0.0, "margin must be non-negative");
    // A uniform distribution has relative std dev 0; small values mean
    // the output is indistinguishable from noise.
    return dist.relativeStdDev() <= margin;
}

} // namespace qedm::stats
