#include "sim/statevector.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "sim/kernel_shapes.hpp"

namespace qedm::sim {

namespace {

using kernels::classify1q;
using kernels::decomposeMonomial4;
using kernels::kOne;
using kernels::kZero;
using kernels::Mat2Shape;

/**
 * Squared magnitude of (K psi) restricted to the butterfly pair
 * (a, b) = (amps[i], amps[i | mask]), accumulated over all pairs in
 * ascending base-index order — the same summation chain as the
 * reference implementation, so the result is the identical double.
 */
double
krausProbability(const std::vector<Complex> &amps,
                 const std::array<Complex, 4> &m, std::size_t mask)
{
    double p = 0.0;
    switch (classify1q(m)) {
      case Mat2Shape::Diagonal:
        for (std::size_t base = 0; base < amps.size(); base += mask << 1) {
            const Complex *lo = amps.data() + base;
            const Complex *hi = lo + mask;
            for (std::size_t off = 0; off < mask; ++off) {
                p += std::norm(m[0] * lo[off]);
                p += std::norm(m[3] * hi[off]);
            }
        }
        break;
      case Mat2Shape::AntiDiagonal:
        for (std::size_t base = 0; base < amps.size(); base += mask << 1) {
            const Complex *lo = amps.data() + base;
            const Complex *hi = lo + mask;
            for (std::size_t off = 0; off < mask; ++off) {
                p += std::norm(m[1] * hi[off]);
                p += std::norm(m[2] * lo[off]);
            }
        }
        break;
      case Mat2Shape::General:
        for (std::size_t base = 0; base < amps.size(); base += mask << 1) {
            const Complex *lo = amps.data() + base;
            const Complex *hi = lo + mask;
            for (std::size_t off = 0; off < mask; ++off) {
                const Complex a = lo[off];
                const Complex b = hi[off];
                p += std::norm(m[0] * a + m[1] * b);
                p += std::norm(m[2] * a + m[3] * b);
            }
        }
        break;
    }
    return p;
}

} // namespace

StateVector::StateVector(int num_qubits) : numQubits_(num_qubits)
{
    QEDM_REQUIRE(num_qubits >= 1 && num_qubits <= 24,
                 "state vector qubit count must be in [1, 24]");
    amps_.assign(std::size_t(1) << num_qubits, kZero);
    amps_[0] = kOne;
}

Complex
StateVector::amplitude(std::size_t basis) const
{
    QEDM_REQUIRE(basis < amps_.size(), "basis index out of range");
    return amps_[basis];
}

void
StateVector::reset()
{
    std::fill(amps_.begin(), amps_.end(), kZero);
    amps_[0] = kOne;
    cachedNorm_ = 1.0;
    normCacheValid_ = true;
}

void
StateVector::apply1q(const std::array<Complex, 4> &m, int q)
{
    QEDM_REQUIRE(q >= 0 && q < numQubits_, "qubit index out of range");
    const std::size_t mask = std::size_t(1) << q;
    switch (classify1q(m)) {
      case Mat2Shape::Diagonal:
        applyDiag1q(m[0], m[3], q);
        return;
      case Mat2Shape::AntiDiagonal:
        for (std::size_t base = 0; base < amps_.size();
             base += mask << 1) {
            Complex *lo = amps_.data() + base;
            Complex *hi = lo + mask;
            for (std::size_t off = 0; off < mask; ++off) {
                const Complex a = lo[off];
                lo[off] = m[1] * hi[off];
                hi[off] = m[2] * a;
            }
        }
        break;
      case Mat2Shape::General:
        for (std::size_t base = 0; base < amps_.size();
             base += mask << 1) {
            Complex *lo = amps_.data() + base;
            Complex *hi = lo + mask;
            for (std::size_t off = 0; off < mask; ++off) {
                const Complex a = lo[off];
                const Complex b = hi[off];
                lo[off] = m[0] * a + m[1] * b;
                hi[off] = m[2] * a + m[3] * b;
            }
        }
        break;
    }
    normCacheValid_ = false;
}

void
StateVector::applyDiag1q(Complex d0, Complex d1, int q)
{
    QEDM_REQUIRE(q >= 0 && q < numQubits_, "qubit index out of range");
    if (d0 == kOne && d1 == kOne)
        return; // identity: amplitudes (and the norm cache) unchanged
    const std::size_t mask = std::size_t(1) << q;
    if (d0 == kOne) {
        // Pure phase (Z/S/T/controlled-phase): touch only the upper
        // half of each butterfly.
        for (std::size_t base = 0; base < amps_.size();
             base += mask << 1) {
            Complex *hi = amps_.data() + base + mask;
            for (std::size_t off = 0; off < mask; ++off)
                hi[off] *= d1;
        }
    } else {
        for (std::size_t base = 0; base < amps_.size();
             base += mask << 1) {
            Complex *lo = amps_.data() + base;
            Complex *hi = lo + mask;
            for (std::size_t off = 0; off < mask; ++off) {
                lo[off] *= d0;
                hi[off] *= d1;
            }
        }
    }
    normCacheValid_ = false;
}

void
StateVector::apply2q(const std::array<Complex, 16> &m, int q0, int q1)
{
    QEDM_REQUIRE(q0 >= 0 && q0 < numQubits_ && q1 >= 0 &&
                     q1 < numQubits_ && q0 != q1,
                 "invalid two-qubit operands");
    const std::size_t m0 = std::size_t(1) << q0;
    const std::size_t m1 = std::size_t(1) << q1;
    // Bit-interleaved group construction: expand a dense group counter
    // g over 2^(n-2) values into the base index with zeros at both
    // operand bits, visiting groups in ascending base order.
    const std::size_t groups = amps_.size() >> 2;
    const std::size_t mlo = (m0 < m1 ? m0 : m1) - 1;
    const std::size_t mhi = (m0 < m1 ? m1 : m0) - 1;
    const auto groupBase = [mlo, mhi](std::size_t g) {
        const std::size_t x = ((g & ~mlo) << 1) | (g & mlo);
        return ((x & ~mhi) << 1) | (x & mhi);
    };

    int col[4];
    Complex coeff[4];
    if (decomposeMonomial4(m, col, coeff)) {
        const bool identity_012 =
            col[0] == 0 && col[1] == 1 && col[2] == 2 &&
            coeff[0] == kOne && coeff[1] == kOne && coeff[2] == kOne;
        if (identity_012 && col[3] == 3) {
            // Controlled phase (CZ family): only |11> amplitudes move.
            if (coeff[3] == kOne)
                return; // identity
            for (std::size_t g = 0; g < groups; ++g)
                amps_[groupBase(g) | m0 | m1] *= coeff[3];
            normCacheValid_ = false;
            return;
        }
        bool permutation = true;
        for (int r = 0; r < 4; ++r)
            permutation = permutation && coeff[r] == kOne;
        if (permutation) {
            // Transpositions (CX, SWAP): swap two amplitudes/group.
            int a = -1, b = -1;
            int moved = 0;
            for (int r = 0; r < 4; ++r) {
                if (col[r] != r) {
                    ++moved;
                    if (a < 0)
                        a = r;
                    else
                        b = r;
                }
            }
            if (moved == 0)
                return; // identity permutation
            if (moved == 2 && col[a] == b && col[b] == a) {
                const std::size_t off_a =
                    (a & 2 ? m0 : 0) | (a & 1 ? m1 : 0);
                const std::size_t off_b =
                    (b & 2 ? m0 : 0) | (b & 1 ? m1 : 0);
                for (std::size_t g = 0; g < groups; ++g) {
                    const std::size_t base = groupBase(g);
                    std::swap(amps_[base | off_a], amps_[base | off_b]);
                }
                normCacheValid_ = false;
                return;
            }
        }
        // General monomial: one gathered product per row.
        for (std::size_t g = 0; g < groups; ++g) {
            const std::size_t base = groupBase(g);
            const std::size_t idx[4] = {base, base | m1, base | m0,
                                        base | m0 | m1};
            const Complex v[4] = {amps_[idx[0]], amps_[idx[1]],
                                  amps_[idx[2]], amps_[idx[3]]};
            for (int r = 0; r < 4; ++r)
                amps_[idx[r]] = coeff[r] * v[col[r]];
        }
        normCacheValid_ = false;
        return;
    }

    // Dense 4x4: keep the reference accumulation order so results are
    // bit-identical to the pre-optimization engine.
    for (std::size_t g = 0; g < groups; ++g) {
        const std::size_t base = groupBase(g);
        const std::size_t idx[4] = {base, base | m1, base | m0,
                                    base | m0 | m1};
        Complex v[4];
        for (int k = 0; k < 4; ++k)
            v[k] = amps_[idx[k]];
        for (int r = 0; r < 4; ++r) {
            Complex acc(0.0);
            for (int c = 0; c < 4; ++c)
                acc += m[r * 4 + c] * v[c];
            amps_[idx[r]] = acc;
        }
    }
    normCacheValid_ = false;
}

void
StateVector::applyGate(circuit::OpKind kind, const std::vector<int> &qubits,
                       const std::vector<double> &params)
{
    using circuit::OpKind;
    QEDM_REQUIRE(circuit::opIsUnitary(kind) && kind != OpKind::Barrier,
                 "applyGate expects a unitary gate");
    const int arity = circuit::opArity(kind);
    QEDM_REQUIRE(static_cast<int>(qubits.size()) == arity,
                 "wrong operand count");
    if (arity == 1) {
        apply1q(circuit::gateMatrix1q(kind, params), qubits[0]);
    } else if (arity == 2) {
        apply2q(circuit::gateMatrix2q(kind), qubits[0], qubits[1]);
    } else {
        throw UserError("applyGate: decompose 3-qubit gates first");
    }
}

std::size_t
StateVector::applyKraus1q(
    const std::vector<std::array<Complex, 4>> &kraus, int q, Rng &rng)
{
    QEDM_REQUIRE(!kraus.empty(), "empty Kraus set");
    QEDM_REQUIRE(q >= 0 && q < numQubits_, "qubit index out of range");
    // Incremental Born sampling: p_k = || K_k |psi> ||^2 and the p_k
    // sum to the state norm (completeness), so draw r once and stop at
    // the first operator whose cumulative probability exceeds it. The
    // dominant no-event operator usually wins after one sweep. norm()
    // is served from the tracked-norm cache when the previous
    // operation was a renormalization.
    const std::size_t mask = std::size_t(1) << q;
    const double r = rng.uniform() * norm();
    double acc = 0.0;
    std::size_t pick = kraus.size() - 1;
    for (std::size_t k = 0; k + 1 < kraus.size(); ++k) {
        acc += krausProbability(amps_, kraus[k], mask);
        if (r < acc) {
            pick = k;
            break;
        }
    }
    apply1q(kraus[pick], q);
    normalize();
    return pick;
}

std::vector<double>
StateVector::probabilities() const
{
    std::vector<double> p(amps_.size());
    for (std::size_t i = 0; i < amps_.size(); ++i)
        p[i] = std::norm(amps_[i]);
    return p;
}

std::vector<double>
StateVector::cumulativeProbabilities() const
{
    std::vector<double> cum(amps_.size());
    double acc = 0.0;
    for (std::size_t i = 0; i < amps_.size(); ++i) {
        acc += std::norm(amps_[i]);
        cum[i] = acc;
    }
    return cum;
}

double
StateVector::probability(std::size_t basis) const
{
    QEDM_REQUIRE(basis < amps_.size(), "basis index out of range");
    return std::norm(amps_[basis]);
}

std::size_t
StateVector::sampleMeasurement(Rng &rng) const
{
    const double r = rng.uniform() * norm();
    double acc = 0.0;
    for (std::size_t i = 0; i < amps_.size(); ++i) {
        acc += std::norm(amps_[i]);
        if (r < acc)
            return i;
    }
    return amps_.size() - 1;
}

double
StateVector::norm() const
{
    if (normCacheValid_)
        return cachedNorm_;
    return computeNorm();
}

double
StateVector::computeNorm() const
{
    double n = 0.0;
    for (const Complex &a : amps_)
        n += std::norm(a);
    cachedNorm_ = n;
    normCacheValid_ = true;
    return n;
}

void
StateVector::normalize()
{
    const double n = norm();
    QEDM_REQUIRE(n > 0.0, "cannot normalize a zero state");
    const double inv = 1.0 / std::sqrt(n);
    // Fuse the scaling sweep with the accumulation of the post-scale
    // norm, in linear order, so the cache holds exactly the value a
    // fresh sweep would produce.
    double post = 0.0;
    for (Complex &a : amps_) {
        a *= inv;
        post += std::norm(a);
    }
    cachedNorm_ = post;
    normCacheValid_ = true;
}

std::size_t
sampleFromCumulative(const std::vector<double> &cum, Rng &rng)
{
    QEDM_REQUIRE(!cum.empty(), "empty cumulative distribution");
    const double r = rng.uniform() * cum.back();
    const auto it = std::upper_bound(cum.begin(), cum.end(), r);
    if (it == cum.end())
        return cum.size() - 1;
    return static_cast<std::size_t>(it - cum.begin());
}

} // namespace qedm::sim
