#include "sim/statevector.hpp"

#include <cmath>

#include "common/error.hpp"

namespace qedm::sim {

StateVector::StateVector(int num_qubits) : numQubits_(num_qubits)
{
    QEDM_REQUIRE(num_qubits >= 1 && num_qubits <= 24,
                 "state vector qubit count must be in [1, 24]");
    amps_.assign(std::size_t(1) << num_qubits, Complex(0.0));
    amps_[0] = Complex(1.0);
}

Complex
StateVector::amplitude(std::size_t basis) const
{
    QEDM_REQUIRE(basis < amps_.size(), "basis index out of range");
    return amps_[basis];
}

void
StateVector::reset()
{
    std::fill(amps_.begin(), amps_.end(), Complex(0.0));
    amps_[0] = Complex(1.0);
}

void
StateVector::apply1q(const std::array<Complex, 4> &m, int q)
{
    QEDM_REQUIRE(q >= 0 && q < numQubits_, "qubit index out of range");
    const std::size_t mask = std::size_t(1) << q;
    for (std::size_t i = 0; i < amps_.size(); ++i) {
        if (i & mask)
            continue;
        const Complex a = amps_[i];
        const Complex b = amps_[i | mask];
        amps_[i] = m[0] * a + m[1] * b;
        amps_[i | mask] = m[2] * a + m[3] * b;
    }
}

void
StateVector::apply2q(const std::array<Complex, 16> &m, int q0, int q1)
{
    QEDM_REQUIRE(q0 >= 0 && q0 < numQubits_ && q1 >= 0 &&
                     q1 < numQubits_ && q0 != q1,
                 "invalid two-qubit operands");
    const std::size_t m0 = std::size_t(1) << q0;
    const std::size_t m1 = std::size_t(1) << q1;
    for (std::size_t i = 0; i < amps_.size(); ++i) {
        if (i & (m0 | m1))
            continue;
        const std::size_t idx[4] = {i, i | m1, i | m0, i | m0 | m1};
        Complex v[4];
        for (int k = 0; k < 4; ++k)
            v[k] = amps_[idx[k]];
        for (int r = 0; r < 4; ++r) {
            Complex acc(0.0);
            for (int c = 0; c < 4; ++c)
                acc += m[r * 4 + c] * v[c];
            amps_[idx[r]] = acc;
        }
    }
}

void
StateVector::applyGate(circuit::OpKind kind, const std::vector<int> &qubits,
                       const std::vector<double> &params)
{
    using circuit::OpKind;
    QEDM_REQUIRE(circuit::opIsUnitary(kind) && kind != OpKind::Barrier,
                 "applyGate expects a unitary gate");
    const int arity = circuit::opArity(kind);
    QEDM_REQUIRE(static_cast<int>(qubits.size()) == arity,
                 "wrong operand count");
    if (arity == 1) {
        apply1q(circuit::gateMatrix1q(kind, params), qubits[0]);
    } else if (arity == 2) {
        apply2q(circuit::gateMatrix2q(kind), qubits[0], qubits[1]);
    } else {
        throw UserError("applyGate: decompose 3-qubit gates first");
    }
}

std::size_t
StateVector::applyKraus1q(
    const std::vector<std::array<Complex, 4>> &kraus, int q, Rng &rng)
{
    QEDM_REQUIRE(!kraus.empty(), "empty Kraus set");
    QEDM_REQUIRE(q >= 0 && q < numQubits_, "qubit index out of range");
    // Incremental Born sampling: p_k = || K_k |psi> ||^2 and the p_k
    // sum to the state norm (completeness), so draw r once and stop at
    // the first operator whose cumulative probability exceeds it. The
    // dominant no-event operator usually wins after one sweep.
    const std::size_t mask = std::size_t(1) << q;
    const double r = rng.uniform() * norm();
    double acc = 0.0;
    std::size_t pick = kraus.size() - 1;
    for (std::size_t k = 0; k + 1 < kraus.size(); ++k) {
        const auto &m = kraus[k];
        double p = 0.0;
        for (std::size_t i = 0; i < amps_.size(); ++i) {
            if (i & mask)
                continue;
            const Complex a = amps_[i];
            const Complex b = amps_[i | mask];
            p += std::norm(m[0] * a + m[1] * b);
            p += std::norm(m[2] * a + m[3] * b);
        }
        acc += p;
        if (r < acc) {
            pick = k;
            break;
        }
    }
    apply1q(kraus[pick], q);
    normalize();
    return pick;
}

std::vector<double>
StateVector::probabilities() const
{
    std::vector<double> p(amps_.size());
    for (std::size_t i = 0; i < amps_.size(); ++i)
        p[i] = std::norm(amps_[i]);
    return p;
}

double
StateVector::probability(std::size_t basis) const
{
    QEDM_REQUIRE(basis < amps_.size(), "basis index out of range");
    return std::norm(amps_[basis]);
}

std::size_t
StateVector::sampleMeasurement(Rng &rng) const
{
    const double r = rng.uniform() * norm();
    double acc = 0.0;
    for (std::size_t i = 0; i < amps_.size(); ++i) {
        acc += std::norm(amps_[i]);
        if (r < acc)
            return i;
    }
    return amps_.size() - 1;
}

double
StateVector::norm() const
{
    double n = 0.0;
    for (const Complex &a : amps_)
        n += std::norm(a);
    return n;
}

void
StateVector::normalize()
{
    const double n = norm();
    QEDM_REQUIRE(n > 0.0, "cannot normalize a zero state");
    const double inv = 1.0 / std::sqrt(n);
    for (Complex &a : amps_)
        a *= inv;
}

} // namespace qedm::sim
