#include "sim/channels.hpp"

#include <cmath>

#include "common/error.hpp"

namespace qedm::sim {
namespace {

constexpr Complex kI(0.0, 1.0);

std::array<Complex, 4>
scaled(const std::array<Complex, 4> &m, double s)
{
    return {m[0] * s, m[1] * s, m[2] * s, m[3] * s};
}

const std::array<Complex, 4> kIdentity{1, 0, 0, 1};
const std::array<Complex, 4> kPauliX{0, 1, 1, 0};
const std::array<Complex, 4> kPauliY{0, -kI, kI, 0};
const std::array<Complex, 4> kPauliZ{1, 0, 0, -1};

} // namespace

Kraus1q
depolarizing1q(double p)
{
    QEDM_REQUIRE(p >= 0.0 && p <= 1.0, "probability out of range");
    return {
        scaled(kIdentity, std::sqrt(1.0 - p)),
        scaled(kPauliX, std::sqrt(p / 3.0)),
        scaled(kPauliY, std::sqrt(p / 3.0)),
        scaled(kPauliZ, std::sqrt(p / 3.0)),
    };
}

Kraus1q
bitFlip(double p)
{
    QEDM_REQUIRE(p >= 0.0 && p <= 1.0, "probability out of range");
    return {
        scaled(kIdentity, std::sqrt(1.0 - p)),
        scaled(kPauliX, std::sqrt(p)),
    };
}

Kraus1q
phaseFlip(double p)
{
    QEDM_REQUIRE(p >= 0.0 && p <= 1.0, "probability out of range");
    return {
        scaled(kIdentity, std::sqrt(1.0 - p)),
        scaled(kPauliZ, std::sqrt(p)),
    };
}

Kraus1q
amplitudeDamping(double gamma)
{
    QEDM_REQUIRE(gamma >= 0.0 && gamma <= 1.0,
                 "damping probability out of range");
    return {
        {1, 0, 0, std::sqrt(1.0 - gamma)},
        {0, std::sqrt(gamma), 0, 0},
    };
}

Kraus1q
phaseDamping(double lambda)
{
    QEDM_REQUIRE(lambda >= 0.0 && lambda <= 1.0,
                 "dephasing probability out of range");
    return {
        {1, 0, 0, std::sqrt(1.0 - lambda)},
        {0, 0, 0, std::sqrt(lambda)},
    };
}

std::vector<Kraus1q>
thermalRelaxation(double t_ns, double t1_us, double t2_us)
{
    QEDM_REQUIRE(t_ns >= 0.0 && t1_us > 0.0 && t2_us > 0.0,
                 "invalid relaxation parameters");
    const double t_us = t_ns * 1e-3;
    const double gamma = 1.0 - std::exp(-t_us / t1_us);
    // Pure dephasing rate: 1/T_phi = 1/T2 - 1/(2 T1); clamp when the
    // calibration violates T2 <= 2 T1.
    const double t2_eff = std::min(t2_us, 2.0 * t1_us);
    const double phi_rate =
        std::max(1.0 / t2_eff - 0.5 / t1_us, 0.0);
    const double lambda = 1.0 - std::exp(-2.0 * t_us * phi_rate);
    std::vector<Kraus1q> out;
    if (gamma > 0.0)
        out.push_back(amplitudeDamping(gamma));
    if (lambda > 0.0)
        out.push_back(phaseDamping(lambda));
    return out;
}

bool
isTracePreserving(const Kraus1q &kraus, double tol)
{
    Complex sum[4] = {0, 0, 0, 0};
    for (const auto &k : kraus) {
        // K^dagger K for a 2x2 matrix.
        sum[0] += std::conj(k[0]) * k[0] + std::conj(k[2]) * k[2];
        sum[1] += std::conj(k[0]) * k[1] + std::conj(k[2]) * k[3];
        sum[2] += std::conj(k[1]) * k[0] + std::conj(k[3]) * k[2];
        sum[3] += std::conj(k[1]) * k[1] + std::conj(k[3]) * k[3];
    }
    return std::abs(sum[0] - Complex(1.0)) < tol &&
           std::abs(sum[1]) < tol && std::abs(sum[2]) < tol &&
           std::abs(sum[3] - Complex(1.0)) < tol;
}

std::pair<std::array<Complex, 4>, std::array<Complex, 4>>
twoQubitPauli(int which)
{
    return twoQubitPauliRef(which);
}

const std::pair<std::array<Complex, 4>, std::array<Complex, 4>> &
twoQubitPauliRef(int which)
{
    QEDM_REQUIRE(which >= 0 && which < 15,
                 "two-qubit Pauli index must be in [0, 15)");
    // Enumerate (a, b) in row-major order skipping (I, I).
    static const auto table = [] {
        const std::array<Complex, 4> paulis[4] = {kIdentity, kPauliX,
                                                  kPauliY, kPauliZ};
        std::array<std::pair<std::array<Complex, 4>,
                             std::array<Complex, 4>>,
                   15>
            t;
        for (int i = 0; i < 15; ++i)
            t[static_cast<std::size_t>(i)] = {paulis[(i + 1) / 4],
                                              paulis[(i + 1) % 4]};
        return t;
    }();
    return table[static_cast<std::size_t>(which)];
}

const std::array<Complex, 4> &
pauliMatrix1q(int which)
{
    QEDM_REQUIRE(which >= 0 && which < 3,
                 "one-qubit Pauli index must be in [0, 3)");
    static const std::array<std::array<Complex, 4>, 3> table = {
        kPauliX, kPauliY, kPauliZ};
    return table[static_cast<std::size_t>(which)];
}

} // namespace qedm::sim
