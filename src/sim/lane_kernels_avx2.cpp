/**
 * @file
 * AVX2 build of the lane kernels: the same source as the scalar build
 * (lane_kernels_impl.hpp) compiled with -mavx2 -ffp-contract=off, so
 * the hot loops run 4-lane intrinsic butterflies. Excluded from the
 * build entirely under -DQEDM_NO_SIMD=ON; selected at runtime only
 * when the CPU reports AVX2 (lane_kernels.cpp).
 */

#define QEDM_LANE_NS lane_avx2
#include "sim/lane_kernels_impl.hpp"
