/**
 * @file
 * Pure-state simulation engine.
 *
 * Backs the per-shot trajectory simulator: unitary gates evolve the
 * state exactly, stochastic noise is injected by the caller as sampled
 * Pauli/Kraus operators, and measurement samples the Born distribution.
 */

#pragma once

#include <array>
#include <complex>
#include <vector>

#include "common/bits.hpp"
#include "common/rng.hpp"
#include "circuit/op.hpp"

namespace qedm::sim {

using circuit::Complex;

/** State vector over n qubits; qubit 0 is the least-significant bit. */
class StateVector
{
  public:
    /** |0...0> on @p num_qubits qubits (1..24). */
    explicit StateVector(int num_qubits);

    int numQubits() const { return numQubits_; }
    std::size_t dim() const { return amps_.size(); }

    const std::vector<Complex> &amplitudes() const { return amps_; }
    Complex amplitude(std::size_t basis) const;

    /** Reset to |0...0>. */
    void reset();

    /** Apply a 1-qubit unitary (row-major 2x2) to qubit @p q. */
    void apply1q(const std::array<Complex, 4> &m, int q);

    /** Apply a 2-qubit unitary (row-major 4x4, operand 0 = MSB) to
     *  qubits (q0, q1). */
    void apply2q(const std::array<Complex, 16> &m, int q0, int q1);

    /** Apply a named gate. */
    void applyGate(circuit::OpKind kind, const std::vector<int> &qubits,
                   const std::vector<double> &params);

    /**
     * Apply one operator from a 1-qubit Kraus set by Born-rule
     * sampling, then renormalize (quantum-trajectory step).
     * @returns the sampled Kraus index.
     */
    std::size_t
    applyKraus1q(const std::vector<std::array<Complex, 4>> &kraus, int q,
                 Rng &rng);

    /** Probability of each computational basis state. */
    std::vector<double> probabilities() const;

    /** Probability that measuring all qubits yields @p basis. */
    double probability(std::size_t basis) const;

    /** Sample a full-register measurement outcome (no collapse). */
    std::size_t sampleMeasurement(Rng &rng) const;

    /** Squared norm (should stay 1 within rounding). */
    double norm() const;

    /** Scale so the squared norm is 1. */
    void normalize();

  private:
    int numQubits_;
    std::vector<Complex> amps_;
};

} // namespace qedm::sim
