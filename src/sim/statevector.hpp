/**
 * @file
 * Pure-state simulation engine.
 *
 * Backs the per-shot trajectory simulator: unitary gates evolve the
 * state exactly, stochastic noise is injected by the caller as sampled
 * Pauli/Kraus operators, and measurement samples the Born distribution.
 *
 * Kernel design (DESIGN.md §12): gate application iterates only the
 * contributing index groups (2^(n-1) butterflies for 1q, 2^(n-2)
 * quartets for 2q) with bit-interleaved index construction, so the
 * inner loops are branch-free and vectorizable. Structured matrices
 * (diagonal, anti-diagonal, monomial/permutation) are detected per
 * call and dispatched to cheaper kernels that touch fewer amplitudes.
 * All kernels preserve the per-amplitude floating-point arithmetic of
 * the reference implementation (same products, same summation order),
 * so fixed-seed trajectories are bit-identical to the pre-optimization
 * engine; structured fast paths may differ only in the sign of zeros,
 * which no probability or sampling decision observes.
 *
 * The squared norm is tracked: renormalization fuses the scaling sweep
 * with the accumulation of the post-scale norm, and every consumer of
 * norm() (Kraus Born sampling, measurement sampling) reuses the cached
 * value instead of re-sweeping the state. The cache is only ever
 * populated with a value identical to what a fresh linear sweep would
 * return, and any gate application invalidates it.
 */

#pragma once

#include <array>
#include <complex>
#include <vector>

#include "common/bits.hpp"
#include "common/rng.hpp"
#include "circuit/op.hpp"

namespace qedm::sim {

using circuit::Complex;

/** State vector over n qubits; qubit 0 is the least-significant bit. */
class StateVector
{
  public:
    /** |0...0> on @p num_qubits qubits (1..24). */
    explicit StateVector(int num_qubits);

    int numQubits() const { return numQubits_; }
    std::size_t dim() const { return amps_.size(); }

    const std::vector<Complex> &amplitudes() const { return amps_; }
    Complex amplitude(std::size_t basis) const;

    /** Reset to |0...0>. */
    void reset();

    /** Apply a 1-qubit unitary (row-major 2x2) to qubit @p q.
     *  Diagonal and anti-diagonal matrices dispatch to cheaper
     *  kernels automatically. */
    void apply1q(const std::array<Complex, 4> &m, int q);

    /** Apply a diagonal 1-qubit operator diag(d0, d1) to qubit @p q.
     *  (Rz/Z/S/T/phase fast path: no butterfly, multiply-only.) */
    void applyDiag1q(Complex d0, Complex d1, int q);

    /** Apply a 2-qubit unitary (row-major 4x4, operand 0 = MSB) to
     *  qubits (q0, q1). Monomial matrices (one entry per row:
     *  CX/CZ/SWAP/diagonal) dispatch to permutation/phase kernels. */
    void apply2q(const std::array<Complex, 16> &m, int q0, int q1);

    /** Apply a named gate. */
    void applyGate(circuit::OpKind kind, const std::vector<int> &qubits,
                   const std::vector<double> &params);

    /**
     * Apply one operator from a 1-qubit Kraus set by Born-rule
     * sampling, then renormalize (quantum-trajectory step). The Born
     * probabilities are computed with branch-free butterfly sweeps and
     * the initial norm comes from the tracked-norm cache whenever the
     * previous operation was a renormalization.
     * @returns the sampled Kraus index.
     */
    std::size_t
    applyKraus1q(const std::vector<std::array<Complex, 4>> &kraus, int q,
                 Rng &rng);

    /** Probability of each computational basis state. */
    std::vector<double> probabilities() const;

    /**
     * Cumulative basis-state probabilities in basis order:
     * cum[i] = sum_{j<=i} |amps[j]|^2, so cum.back() equals norm().
     * Precompute once for a fixed state and use sampleFromCumulative
     * to turn per-shot measurement sampling into a binary search.
     */
    std::vector<double> cumulativeProbabilities() const;

    /** Probability that measuring all qubits yields @p basis. */
    double probability(std::size_t basis) const;

    /** Sample a full-register measurement outcome (no collapse). */
    std::size_t sampleMeasurement(Rng &rng) const;

    /** Squared norm (should stay 1 within rounding). Served from the
     *  tracked-norm cache when valid. */
    double norm() const;

    /** Scale so the squared norm is 1. */
    void normalize();

  private:
    /** Fresh linear sweep; repopulates the norm cache. */
    double computeNorm() const;

    int numQubits_;
    std::vector<Complex> amps_;
    /**
     * Tracked squared norm. Valid only when no gate has been applied
     * since it was last populated; by construction the cached value is
     * bit-identical to what computeNorm() would return.
     */
    mutable double cachedNorm_ = 1.0;
    mutable bool normCacheValid_ = true;
};

/**
 * Sample an outcome index from precomputed cumulative probabilities
 * (see StateVector::cumulativeProbabilities) with one RNG draw and a
 * binary search. Selects the same index as a linear Born scan with
 * r = uniform() * cum.back(): the first i with r < cum[i].
 */
std::size_t sampleFromCumulative(const std::vector<double> &cum,
                                 Rng &rng);

} // namespace qedm::sim
