/**
 * @file
 * Standard quantum noise channels as Kraus-operator sets.
 *
 * Used in two modes:
 *  - trajectory simulation: StateVector::applyKraus1q samples one
 *    operator per shot;
 *  - exact simulation: DensityMatrix::applyKraus1q applies the full
 *    channel sum.
 */

#pragma once

#include <array>
#include <vector>

#include "circuit/op.hpp"

namespace qedm::sim {

using circuit::Complex;

/** A single-qubit channel: a set of 2x2 Kraus operators. */
using Kraus1q = std::vector<std::array<Complex, 4>>;

/** Depolarizing channel with error probability @p p in [0, 1]. */
Kraus1q depolarizing1q(double p);

/** Bit-flip channel: X with probability @p p. */
Kraus1q bitFlip(double p);

/** Phase-flip channel: Z with probability @p p. */
Kraus1q phaseFlip(double p);

/** Amplitude damping with decay probability @p gamma in [0, 1]. */
Kraus1q amplitudeDamping(double gamma);

/** Pure phase damping with dephasing probability @p lambda. */
Kraus1q phaseDamping(double lambda);

/**
 * Combined thermal relaxation for an idle period.
 * @param t_ns duration (ns)
 * @param t1_us relaxation time (us)
 * @param t2_us dephasing time (us); clamped to 2*T1
 * @returns amplitude damping then pure dephasing Kraus sets to apply
 *          in sequence.
 */
std::vector<Kraus1q> thermalRelaxation(double t_ns, double t1_us,
                                       double t2_us);

/**
 * Verify the completeness relation sum_k K_k^dagger K_k = I within
 * @p tol. Used by tests and debug assertions.
 */
bool isTracePreserving(const Kraus1q &kraus, double tol = 1e-9);

/**
 * Sample one of the 15 non-identity two-qubit Paulis (uniformly) as a
 * pair of 1-qubit Pauli matrices to apply to the two operands; entry
 * may be identity on one operand but not both.
 * @param which index in [0, 15).
 */
std::pair<std::array<Complex, 4>, std::array<Complex, 4>>
twoQubitPauli(int which);

/**
 * Same as twoQubitPauli, returning a reference into a cached table —
 * the shot-loop variant (no per-draw matrix construction).
 */
const std::pair<std::array<Complex, 4>, std::array<Complex, 4>> &
twoQubitPauliRef(int which);

/**
 * The non-identity 1-qubit Pauli matrices, cached: 0 = X, 1 = Y,
 * 2 = Z (matching the uniform X/Y/Z error draw in the shot loop).
 */
const std::array<Complex, 4> &pauliMatrix1q(int which);

} // namespace qedm::sim
