/**
 * @file
 * Batched structure-of-arrays trajectory engine.
 *
 * Evolves a batch of B shots through one tape walk: amplitudes are
 * laid out `[amp_index][lane]` as separate re/im planes, shared
 * unitary factors apply one matrix to every lane with vectorized
 * butterfly sweeps (sim/lane_kernels.hpp), and per-shot stochastic
 * divergence — sampled Pauli errors, Born-rule Kraus picks — applies
 * as lane-masked fixups with per-lane coefficients.
 *
 * Bit-identity contract (DESIGN.md §17): for every lane, the
 * floating-point chain equals the scalar StateVector's chain for that
 * shot — same structured-kernel dispatch (shared via
 * sim/kernel_shapes.hpp), same butterfly iteration order, same
 * summation order in norms and Born probabilities. Where a lane-masked
 * fixup applies a general 2x2 in place of a structured kernel (or of
 * no-op, for untouched lanes), the identity/zero coefficients perturb
 * only the *sign of zeros*, which no probability, norm, or sampling
 * comparison can observe. Per-lane norms share one validity flag:
 * conservative invalidation is safe because the cache, when valid, is
 * bit-identical to a fresh sweep.
 *
 * This class never draws randomness — every decision input arrives
 * pre-sampled (sim/shot_plan.hpp); qedm_analyze's `rng-in-kernel`
 * rule keeps it that way.
 */

#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "sim/channels.hpp"
#include "sim/lane_kernels.hpp"

namespace qedm::sim {

/** B trajectory states over n qubits, evolved in lock-step. */
class BatchedStateVector
{
  public:
    /** |0...0> in every lane; @p num_qubits in [1, 24], lanes >= 1. */
    BatchedStateVector(int num_qubits, std::size_t lanes);

    int numQubits() const { return numQubits_; }
    std::size_t dim() const { return dim_; }
    std::size_t lanes() const { return lanes_; }

    /** Reset every lane to |0...0>. */
    void reset();

    /** Amplitude of @p basis in @p lane (testing/inspection). */
    Complex amplitude(std::size_t basis, std::size_t lane) const;

    /** Apply one 1-qubit unitary to every lane (structured-shape
     *  dispatch identical to StateVector::apply1q). */
    void apply1q(const std::array<Complex, 4> &m, int q);

    /** diag(d0, d1) on every lane (identity and phase-only fast
     *  paths identical to StateVector::applyDiag1q). */
    void applyDiag1q(Complex d0, Complex d1, int q);

    /** Apply one 2-qubit unitary to every lane (monomial/permutation
     *  dispatch identical to StateVector::apply2q). */
    void apply2q(const std::array<Complex, 16> &m, int q0, int q1);

    /**
     * Lane-masked 1-qubit depolarizing fixup: lane l applies Pauli
     * pauliMatrix1q(idx[l]), or nothing when idx[l] < 0. Whole-batch
     * uniform outcomes collapse to the shared structured kernel.
     */
    void applyPauli1qLanes(const std::int8_t *idx, int q);

    /** Lane-masked 2-qubit depolarizing fixup: lane l applies the
     *  twoQubitPauliRef(idx[l]) pair to (q0, q1); idx[l] < 0 none. */
    void applyPauli2qLanes(const std::int8_t *idx, int q0, int q1);

    /**
     * Trajectory Kraus step on every lane: lane l picks operator k by
     * the scalar rule r = u[l] * norm_l, acc += p_k in ascending k,
     * then applies its pick and renormalizes. u holds one pre-sampled
     * raw uniform per lane (shot_plan.hpp).
     *
     * When the caller knows the next Kraus site follows immediately
     * (no unitary or fixup in between) and its first operator is
     * diag(1, nextD1) on qubit bit @p nextMask, passing that hint
     * lets the closing renormalization sweep also accumulate the next
     * site's Born probability (lane_kernels normalizeProbDiag). The
     * hint is advisory: a wrong or stale hint costs a redundant
     * sweep, never a different result — the cached probability is
     * only consumed when the state provably has not changed since.
     */
    void applyKraus1qLanes(const Kraus1q &kraus, int q,
                           const double *u, std::size_t nextMask = 0,
                           Complex nextD1 = Complex(0.0, 0.0));

    /**
     * Sample a full-register outcome per lane with the scalar linear
     * Born scan (r = u[l] * norm_l, first index with r < cumulative).
     */
    void sampleMeasurementLanes(const double *u, std::size_t *out);

  private:
    /** Per-lane squared norms, from the cache or a fresh sweep. */
    const double *normLanes() const;
    /** Per-lane renormalization (scalar normalize(), per lane); a
     *  nonzero nextMask chains the next site's diag(1, nextD1) Born
     *  probability into the same sweep (see applyKraus1qLanes). */
    void normalizeLanes(std::size_t nextMask = 0,
                        Complex nextD1 = Complex(0.0, 0.0));
    /** Per-lane 2x2 from gathered matrices (nullptr = identity). */
    void applyMatLanes(const std::array<Complex, 4> *const *mats,
                       int q);

    int numQubits_;
    std::size_t dim_;
    std::size_t lanes_;
    std::vector<double> re_; ///< [amp][lane]
    std::vector<double> im_; ///< [amp][lane]
    /** Per-lane squared norms; valid only under normsValid_, and then
     *  bit-identical to a fresh per-lane sweep. */
    mutable std::vector<double> norms_;
    mutable bool normsValid_ = true;
    // Per-batch scratch (sized once; no per-op allocation).
    std::vector<double> prob_, r_, acc_, inv_, coef_, scratch_;
    std::vector<double> lobuf_; ///< [mask][lane] pair-order replay
    std::vector<std::size_t> pick_;
    std::vector<std::uint8_t> decided_;
    std::vector<const std::array<Complex, 4> *> mats_;
    /** Speculative post-apply norms rider: whenever prob_ holds a
     *  diag(1, d1) Born probability, pendN1_ holds the linear-order
     *  norm the state would have after applying that operator, so a
     *  confirmed pick renormalizes without any fresh sweep. */
    std::vector<double> pendN1_;
    /** When valid, prob_ holds the Born probability of diag(1,
     *  pendingD1_) on bit pendingMask_ for the CURRENT state (and
     *  pendN1_ its post-apply norm), accumulated by the last chained
     *  normalizeLanes sweep. Any state mutation outside that flow
     *  clears it. */
    std::size_t pendingMask_ = 0;
    Complex pendingD1_{0.0, 0.0};
    bool pendingValid_ = false;
};

} // namespace qedm::sim
