/**
 * @file
 * Single source for both lane-kernel builds (see lane_kernels.hpp).
 *
 * Included exactly twice, by lane_kernels_scalar.cpp (baseline ISA)
 * and lane_kernels_avx2.cpp (compiled with -mavx2 -ffp-contract=off);
 * the includer defines QEDM_LANE_NS to give each build its own
 * namespace. When __AVX2__ is defined the hot loops run explicit
 * 4-lane intrinsics with a plain remainder loop; otherwise the plain
 * loop covers every lane. The two builds are bit-identical: every
 * operation is an elementwise IEEE mul/add/sub on independent lanes
 * (no reassociation, no FMA), and the plain expressions below spell
 * out the exact same operand order the intrinsics use.
 *
 * Complex arithmetic is expanded over the split re/im planes using
 * the same formulas libstdc++'s std::complex lowers to for finite
 * values: (x*y).re = xr*yr - xi*yi, (x*y).im = xr*yi + xi*yr, and
 * std::norm(z) = zr*zr + zi*zi added as one addend.
 */

#pragma once

#include <algorithm>
#include <array>
#include <cmath>
#include <cstddef>

#include "sim/lane_kernels.hpp"

#ifndef QEDM_LANE_NS
#error "define QEDM_LANE_NS before including lane_kernels_impl.hpp"
#endif

#ifdef __AVX2__
#include <immintrin.h>
#endif

namespace qedm::sim {
namespace QEDM_LANE_NS {
namespace {

/*
 * Coefficient kinds for the specialized fast paths. Gate matrices and
 * Kraus operators in this codebase are overwhelmingly real (H, X, Ry,
 * CX, damping diag(1, sqrt(1-g))), and the generic complex product
 * spends most of its multiplies on `0 * x` terms. Dropping those terms
 * can only flip the sign of a zero — `a - 0*b` differs from `a` at
 * most in zero sign — which squares (Born addends, norms) erase
 * entirely and which is inside the amplitude zero-sign license of
 * DESIGN.md §17 (amplitudes are assumed finite throughout). Both
 * builds take the same branch, so they remain mutually bit-identical.
 */
enum : int {
    kCoefOne = 0,
    kCoefReal = 1,
    kCoefComplex = 2,
    kCoefImag = 3,
};

inline int
coefKind(double cr, double ci)
{
    if (ci != 0.0)
        return kCoefComplex;
    return cr == 1.0 ? kCoefOne : kCoefReal;
}

/** Kind for a multiplication coefficient: purely-imaginary entries
 *  (RX-style over-rotations, Y) get their own two-multiply path. A
 *  zero coefficient classifies as Real — its products are zeros of
 *  some sign either way. */
inline int
mulKind(double cr, double ci)
{
    if (ci == 0.0)
        return kCoefReal;
    return cr == 0.0 ? kCoefImag : kCoefComplex;
}

/** Two coefficients sharing one fast path: mixed kinds fall back to
 *  the generic complex product. */
inline int
combineKind(int a, int b)
{
    return a == b ? a : kCoefComplex;
}

/** |c * a|^2 as the scalar chain computes it for this coefficient
 *  kind (one addend: t*t + u*u). */
template <int KIND>
inline double
normAddend(double ar, double ai, double cr, double ci)
{
    if constexpr (KIND == kCoefOne) {
        return ar * ar + ai * ai;
    } else if constexpr (KIND == kCoefReal) {
        const double t = cr * ar;
        const double u = cr * ai;
        return t * t + u * u;
    } else {
        const double t = cr * ar - ci * ai;
        const double u = cr * ai + ci * ar;
        return t * t + u * u;
    }
}

/** (c * a).re for this coefficient kind (cr*ar - ci*ai, minus the
 *  `ci*ai` term when the coefficient is real — zero-sign only). */
template <int KIND>
inline double
smulRe(double cr, double ci, double ar, double ai)
{
    if constexpr (KIND == kCoefComplex)
        return cr * ar - ci * ai;
    else if constexpr (KIND == kCoefImag)
        return -(ci * ai); // 0*ar - ci*ai, zero-sign only
    else
        return cr * ar;
}

/** (c * a).im for this coefficient kind. */
template <int KIND>
inline double
smulIm(double cr, double ci, double ar, double ai)
{
    if constexpr (KIND == kCoefComplex)
        return cr * ai + ci * ar;
    else if constexpr (KIND == kCoefImag)
        return ci * ar; // cr*ai + ci*ar with cr == 0
    else
        return cr * ai;
}

#ifdef __AVX2__

/** (a * b).re for split-complex vectors: ar*br - ai*bi. */
inline __m256d
cmulRe(__m256d ar, __m256d ai, __m256d br, __m256d bi)
{
    return _mm256_sub_pd(_mm256_mul_pd(ar, br), _mm256_mul_pd(ai, bi));
}

/** (a * b).im for split-complex vectors: ar*bi + ai*br. */
inline __m256d
cmulIm(__m256d ar, __m256d ai, __m256d br, __m256d bi)
{
    return _mm256_add_pd(_mm256_mul_pd(ar, bi), _mm256_mul_pd(ai, br));
}

/** zr*zr + zi*zi as one addend (matches std::norm). */
inline __m256d
cnorm(__m256d zr, __m256d zi)
{
    return _mm256_add_pd(_mm256_mul_pd(zr, zr), _mm256_mul_pd(zi, zi));
}

/** Vector form of normAddend<KIND>. */
template <int KIND>
inline __m256d
vnormAddend(__m256d ar, __m256d ai, __m256d cr, __m256d ci)
{
    if constexpr (KIND == kCoefOne) {
        return cnorm(ar, ai);
    } else if constexpr (KIND == kCoefReal) {
        return cnorm(_mm256_mul_pd(cr, ar), _mm256_mul_pd(cr, ai));
    } else {
        return cnorm(cmulRe(cr, ci, ar, ai), cmulIm(cr, ci, ar, ai));
    }
}

/** Vector form of smulRe<KIND> (sign-bit xor is exact negation). */
template <int KIND>
inline __m256d
vmulRe(__m256d cr, __m256d ci, __m256d ar, __m256d ai)
{
    if constexpr (KIND == kCoefComplex)
        return cmulRe(cr, ci, ar, ai);
    else if constexpr (KIND == kCoefImag)
        return _mm256_xor_pd(_mm256_mul_pd(ci, ai),
                             _mm256_set1_pd(-0.0));
    else
        return _mm256_mul_pd(cr, ar);
}

/** Vector form of smulIm<KIND>. */
template <int KIND>
inline __m256d
vmulIm(__m256d cr, __m256d ci, __m256d ar, __m256d ai)
{
    if constexpr (KIND == kCoefComplex)
        return cmulIm(cr, ci, ar, ai);
    else if constexpr (KIND == kCoefImag)
        return _mm256_mul_pd(ci, ar);
    else
        return _mm256_mul_pd(cr, ai);
}

#endif // __AVX2__

/** Dense 2x2 sweep with separate coefficient kinds for the diagonal
 *  (m0, m3 — KD) and off-diagonal (m1, m2 — KO) entries, so e.g. an
 *  RX-style matrix (real diagonal, imaginary off-diagonal) runs on
 *  two multiplies per product instead of the full complex four. */
template <int KD, int KO>
inline void
apply1qGeneralImpl(double *re, double *im, std::size_t dim,
                   std::size_t lanes, std::size_t mask, double m0r,
                   double m0i, double m1r, double m1i, double m2r,
                   double m2i, double m3r, double m3i)
{
#ifdef __AVX2__
    const __m256d v0r = _mm256_set1_pd(m0r), v0i = _mm256_set1_pd(m0i);
    const __m256d v1r = _mm256_set1_pd(m1r), v1i = _mm256_set1_pd(m1i);
    const __m256d v2r = _mm256_set1_pd(m2r), v2i = _mm256_set1_pd(m2i);
    const __m256d v3r = _mm256_set1_pd(m3r), v3i = _mm256_set1_pd(m3i);
#endif
    for (std::size_t base = 0; base < dim; base += mask << 1) {
        for (std::size_t off = 0; off < mask; ++off) {
            double *lor = re + (base + off) * lanes;
            double *loi = im + (base + off) * lanes;
            double *hir = re + (base + mask + off) * lanes;
            double *hii = im + (base + mask + off) * lanes;
            std::size_t l = 0;
#ifdef __AVX2__
            for (; l + 4 <= lanes; l += 4) {
                const __m256d ar = _mm256_loadu_pd(lor + l);
                const __m256d ai = _mm256_loadu_pd(loi + l);
                const __m256d br = _mm256_loadu_pd(hir + l);
                const __m256d bi = _mm256_loadu_pd(hii + l);
                _mm256_storeu_pd(
                    lor + l,
                    _mm256_add_pd(vmulRe<KD>(v0r, v0i, ar, ai),
                                  vmulRe<KO>(v1r, v1i, br, bi)));
                _mm256_storeu_pd(
                    loi + l,
                    _mm256_add_pd(vmulIm<KD>(v0r, v0i, ar, ai),
                                  vmulIm<KO>(v1r, v1i, br, bi)));
                _mm256_storeu_pd(
                    hir + l,
                    _mm256_add_pd(vmulRe<KO>(v2r, v2i, ar, ai),
                                  vmulRe<KD>(v3r, v3i, br, bi)));
                _mm256_storeu_pd(
                    hii + l,
                    _mm256_add_pd(vmulIm<KO>(v2r, v2i, ar, ai),
                                  vmulIm<KD>(v3r, v3i, br, bi)));
            }
#endif
            for (; l < lanes; ++l) {
                const double ar = lor[l], ai = loi[l];
                const double br = hir[l], bi = hii[l];
                lor[l] = smulRe<KD>(m0r, m0i, ar, ai) +
                         smulRe<KO>(m1r, m1i, br, bi);
                loi[l] = smulIm<KD>(m0r, m0i, ar, ai) +
                         smulIm<KO>(m1r, m1i, br, bi);
                hir[l] = smulRe<KO>(m2r, m2i, ar, ai) +
                         smulRe<KD>(m3r, m3i, br, bi);
                hii[l] = smulIm<KO>(m2r, m2i, ar, ai) +
                         smulIm<KD>(m3r, m3i, br, bi);
            }
        }
    }
}

void
apply1qGeneral(double *re, double *im, std::size_t dim,
               std::size_t lanes, std::size_t mask,
               const std::array<Complex, 4> &m)
{
    const double m0r = m[0].real(), m0i = m[0].imag();
    const double m1r = m[1].real(), m1i = m[1].imag();
    const double m2r = m[2].real(), m2i = m[2].imag();
    const double m3r = m[3].real(), m3i = m[3].imag();
    const int kd = combineKind(mulKind(m0r, m0i), mulKind(m3r, m3i));
    const int ko = combineKind(mulKind(m1r, m1i), mulKind(m2r, m2i));
    if (kd == kCoefReal && ko == kCoefReal) {
        apply1qGeneralImpl<kCoefReal, kCoefReal>(re, im, dim, lanes,
                                                 mask, m0r, m0i, m1r,
                                                 m1i, m2r, m2i, m3r,
                                                 m3i);
    } else if (kd == kCoefReal && ko == kCoefImag) {
        apply1qGeneralImpl<kCoefReal, kCoefImag>(re, im, dim, lanes,
                                                 mask, m0r, m0i, m1r,
                                                 m1i, m2r, m2i, m3r,
                                                 m3i);
    } else {
        apply1qGeneralImpl<kCoefComplex, kCoefComplex>(
            re, im, dim, lanes, mask, m0r, m0i, m1r, m1i, m2r, m2i,
            m3r, m3i);
    }
}

template <int KIND>
inline void
apply1qAntiDiagImpl(double *re, double *im, std::size_t dim,
                    std::size_t lanes, std::size_t mask, double m1r,
                    double m1i, double m2r, double m2i)
{
#ifdef __AVX2__
    const __m256d v1r = _mm256_set1_pd(m1r), v1i = _mm256_set1_pd(m1i);
    const __m256d v2r = _mm256_set1_pd(m2r), v2i = _mm256_set1_pd(m2i);
#endif
    for (std::size_t base = 0; base < dim; base += mask << 1) {
        for (std::size_t off = 0; off < mask; ++off) {
            double *lor = re + (base + off) * lanes;
            double *loi = im + (base + off) * lanes;
            double *hir = re + (base + mask + off) * lanes;
            double *hii = im + (base + mask + off) * lanes;
            std::size_t l = 0;
#ifdef __AVX2__
            for (; l + 4 <= lanes; l += 4) {
                const __m256d ar = _mm256_loadu_pd(lor + l);
                const __m256d ai = _mm256_loadu_pd(loi + l);
                const __m256d br = _mm256_loadu_pd(hir + l);
                const __m256d bi = _mm256_loadu_pd(hii + l);
                _mm256_storeu_pd(lor + l,
                                 vmulRe<KIND>(v1r, v1i, br, bi));
                _mm256_storeu_pd(loi + l,
                                 vmulIm<KIND>(v1r, v1i, br, bi));
                _mm256_storeu_pd(hir + l,
                                 vmulRe<KIND>(v2r, v2i, ar, ai));
                _mm256_storeu_pd(hii + l,
                                 vmulIm<KIND>(v2r, v2i, ar, ai));
            }
#endif
            for (; l < lanes; ++l) {
                const double ar = lor[l], ai = loi[l];
                const double br = hir[l], bi = hii[l];
                lor[l] = smulRe<KIND>(m1r, m1i, br, bi);
                loi[l] = smulIm<KIND>(m1r, m1i, br, bi);
                hir[l] = smulRe<KIND>(m2r, m2i, ar, ai);
                hii[l] = smulIm<KIND>(m2r, m2i, ar, ai);
            }
        }
    }
}

void
apply1qAntiDiag(double *re, double *im, std::size_t dim,
                std::size_t lanes, std::size_t mask, Complex m1,
                Complex m2)
{
    const double m1r = m1.real(), m1i = m1.imag();
    const double m2r = m2.real(), m2i = m2.imag();
    if (m1i == 0.0 && m2i == 0.0) {
        apply1qAntiDiagImpl<kCoefReal>(re, im, dim, lanes, mask, m1r,
                                       m1i, m2r, m2i);
    } else {
        apply1qAntiDiagImpl<kCoefComplex>(re, im, dim, lanes, mask,
                                          m1r, m1i, m2r, m2i);
    }
}

void
applyDiagBoth(double *re, double *im, std::size_t dim,
              std::size_t lanes, std::size_t mask, Complex d0,
              Complex d1)
{
    const double d0r = d0.real(), d0i = d0.imag();
    const double d1r = d1.real(), d1i = d1.imag();
#ifdef __AVX2__
    const __m256d v0r = _mm256_set1_pd(d0r), v0i = _mm256_set1_pd(d0i);
    const __m256d v1r = _mm256_set1_pd(d1r), v1i = _mm256_set1_pd(d1i);
#endif
    for (std::size_t base = 0; base < dim; base += mask << 1) {
        for (std::size_t off = 0; off < mask; ++off) {
            double *lor = re + (base + off) * lanes;
            double *loi = im + (base + off) * lanes;
            double *hir = re + (base + mask + off) * lanes;
            double *hii = im + (base + mask + off) * lanes;
            std::size_t l = 0;
#ifdef __AVX2__
            for (; l + 4 <= lanes; l += 4) {
                const __m256d ar = _mm256_loadu_pd(lor + l);
                const __m256d ai = _mm256_loadu_pd(loi + l);
                const __m256d br = _mm256_loadu_pd(hir + l);
                const __m256d bi = _mm256_loadu_pd(hii + l);
                _mm256_storeu_pd(lor + l, cmulRe(ar, ai, v0r, v0i));
                _mm256_storeu_pd(loi + l, cmulIm(ar, ai, v0r, v0i));
                _mm256_storeu_pd(hir + l, cmulRe(br, bi, v1r, v1i));
                _mm256_storeu_pd(hii + l, cmulIm(br, bi, v1r, v1i));
            }
#endif
            for (; l < lanes; ++l) {
                const double ar = lor[l], ai = loi[l];
                const double br = hir[l], bi = hii[l];
                lor[l] = ar * d0r - ai * d0i;
                loi[l] = ar * d0i + ai * d0r;
                hir[l] = br * d1r - bi * d1i;
                hii[l] = br * d1i + bi * d1r;
            }
        }
    }
}

void
applyDiagPhase(double *re, double *im, std::size_t dim,
               std::size_t lanes, std::size_t mask, Complex d1)
{
    const double d1r = d1.real(), d1i = d1.imag();
#ifdef __AVX2__
    const __m256d v1r = _mm256_set1_pd(d1r), v1i = _mm256_set1_pd(d1i);
#endif
    for (std::size_t base = 0; base < dim; base += mask << 1) {
        for (std::size_t off = 0; off < mask; ++off) {
            double *hir = re + (base + mask + off) * lanes;
            double *hii = im + (base + mask + off) * lanes;
            std::size_t l = 0;
#ifdef __AVX2__
            for (; l + 4 <= lanes; l += 4) {
                const __m256d br = _mm256_loadu_pd(hir + l);
                const __m256d bi = _mm256_loadu_pd(hii + l);
                _mm256_storeu_pd(hir + l, cmulRe(br, bi, v1r, v1i));
                _mm256_storeu_pd(hii + l, cmulIm(br, bi, v1r, v1i));
            }
#endif
            for (; l < lanes; ++l) {
                const double br = hir[l], bi = hii[l];
                hir[l] = br * d1r - bi * d1i;
                hii[l] = br * d1i + bi * d1r;
            }
        }
    }
}

void
apply1qPerLane(double *re, double *im, std::size_t dim,
               std::size_t lanes, std::size_t mask, const LaneMat2 &m)
{
    for (std::size_t base = 0; base < dim; base += mask << 1) {
        for (std::size_t off = 0; off < mask; ++off) {
            double *lor = re + (base + off) * lanes;
            double *loi = im + (base + off) * lanes;
            double *hir = re + (base + mask + off) * lanes;
            double *hii = im + (base + mask + off) * lanes;
            std::size_t l = 0;
#ifdef __AVX2__
            for (; l + 4 <= lanes; l += 4) {
                const __m256d ar = _mm256_loadu_pd(lor + l);
                const __m256d ai = _mm256_loadu_pd(loi + l);
                const __m256d br = _mm256_loadu_pd(hir + l);
                const __m256d bi = _mm256_loadu_pd(hii + l);
                const __m256d v0r = _mm256_loadu_pd(m.re[0] + l);
                const __m256d v0i = _mm256_loadu_pd(m.im[0] + l);
                const __m256d v1r = _mm256_loadu_pd(m.re[1] + l);
                const __m256d v1i = _mm256_loadu_pd(m.im[1] + l);
                const __m256d v2r = _mm256_loadu_pd(m.re[2] + l);
                const __m256d v2i = _mm256_loadu_pd(m.im[2] + l);
                const __m256d v3r = _mm256_loadu_pd(m.re[3] + l);
                const __m256d v3i = _mm256_loadu_pd(m.im[3] + l);
                _mm256_storeu_pd(
                    lor + l, _mm256_add_pd(cmulRe(v0r, v0i, ar, ai),
                                           cmulRe(v1r, v1i, br, bi)));
                _mm256_storeu_pd(
                    loi + l, _mm256_add_pd(cmulIm(v0r, v0i, ar, ai),
                                           cmulIm(v1r, v1i, br, bi)));
                _mm256_storeu_pd(
                    hir + l, _mm256_add_pd(cmulRe(v2r, v2i, ar, ai),
                                           cmulRe(v3r, v3i, br, bi)));
                _mm256_storeu_pd(
                    hii + l, _mm256_add_pd(cmulIm(v2r, v2i, ar, ai),
                                           cmulIm(v3r, v3i, br, bi)));
            }
#endif
            for (; l < lanes; ++l) {
                const double ar = lor[l], ai = loi[l];
                const double br = hir[l], bi = hii[l];
                const double m0r = m.re[0][l], m0i = m.im[0][l];
                const double m1r = m.re[1][l], m1i = m.im[1][l];
                const double m2r = m.re[2][l], m2i = m.im[2][l];
                const double m3r = m.re[3][l], m3i = m.im[3][l];
                lor[l] = (m0r * ar - m0i * ai) + (m1r * br - m1i * bi);
                loi[l] = (m0r * ai + m0i * ar) + (m1r * bi + m1i * br);
                hir[l] = (m2r * ar - m2i * ai) + (m3r * br - m3i * bi);
                hii[l] = (m2r * ai + m2i * ar) + (m3r * bi + m3i * br);
            }
        }
    }
}

/*
 * The accumulating kernels below (Born probabilities and norms) carry
 * one serial add chain per lane — the scalar summation order is part
 * of the bit-identity contract, so the chain cannot be reassociated.
 * What CAN move is scheduling: the AVX2 builds hold the accumulators
 * in registers across the whole row loop and interleave several
 * independent lane-vector chains per tile (NV vectors = NV * 4 lanes),
 * hiding the add latency without changing any lane's addend order.
 */

#ifdef __AVX2__

template <int NV, int K0, int K3>
inline void
krausProbDiagTile(const double *re, const double *im, std::size_t dim,
                  std::size_t lanes, std::size_t mask, __m256d v0r,
                  __m256d v0i, __m256d v3r, __m256d v3i, double *out)
{
    __m256d acc[NV];
    for (int v = 0; v < NV; ++v)
        acc[v] = _mm256_setzero_pd();
    for (std::size_t base = 0; base < dim; base += mask << 1) {
        for (std::size_t off = 0; off < mask; ++off) {
            const double *lor = re + (base + off) * lanes;
            const double *loi = im + (base + off) * lanes;
            const double *hir = re + (base + mask + off) * lanes;
            const double *hii = im + (base + mask + off) * lanes;
            for (int v = 0; v < NV; ++v) {
                const __m256d ar = _mm256_loadu_pd(lor + 4 * v);
                const __m256d ai = _mm256_loadu_pd(loi + 4 * v);
                acc[v] = _mm256_add_pd(
                    acc[v], vnormAddend<K0>(ar, ai, v0r, v0i));
            }
            for (int v = 0; v < NV; ++v) {
                const __m256d br = _mm256_loadu_pd(hir + 4 * v);
                const __m256d bi = _mm256_loadu_pd(hii + 4 * v);
                acc[v] = _mm256_add_pd(
                    acc[v], vnormAddend<K3>(br, bi, v3r, v3i));
            }
        }
    }
    for (int v = 0; v < NV; ++v)
        _mm256_storeu_pd(out + 4 * v, acc[v]);
}

#endif // __AVX2__

template <int K0, int K3>
inline void
krausProbDiagImpl(const double *re, const double *im, std::size_t dim,
                  std::size_t lanes, std::size_t mask, double m0r,
                  double m0i, double m3r, double m3i, double *out)
{
    std::size_t l = 0;
#ifdef __AVX2__
    const __m256d v0r = _mm256_set1_pd(m0r), v0i = _mm256_set1_pd(m0i);
    const __m256d v3r = _mm256_set1_pd(m3r), v3i = _mm256_set1_pd(m3i);
    for (; l + 16 <= lanes; l += 16)
        krausProbDiagTile<4, K0, K3>(re + l, im + l, dim, lanes, mask,
                                     v0r, v0i, v3r, v3i, out + l);
    for (; l + 4 <= lanes; l += 4)
        krausProbDiagTile<1, K0, K3>(re + l, im + l, dim, lanes, mask,
                                     v0r, v0i, v3r, v3i, out + l);
#endif
    for (; l < lanes; ++l) {
        double acc = 0.0;
        for (std::size_t base = 0; base < dim; base += mask << 1) {
            for (std::size_t off = 0; off < mask; ++off) {
                acc += normAddend<K0>(re[(base + off) * lanes + l],
                                      im[(base + off) * lanes + l],
                                      m0r, m0i);
                acc += normAddend<K3>(
                    re[(base + mask + off) * lanes + l],
                    im[(base + mask + off) * lanes + l], m3r, m3i);
            }
        }
        out[l] = acc;
    }
}

void
krausProbDiag(const double *re, const double *im, std::size_t dim,
              std::size_t lanes, std::size_t mask, Complex m0,
              Complex m3, double *out)
{
    const double m0r = m0.real(), m0i = m0.imag();
    const double m3r = m3.real(), m3i = m3.imag();
    const int k0 = coefKind(m0r, m0i);
    const int k3 = coefKind(m3r, m3i);
    if (k0 == kCoefOne && k3 != kCoefComplex) {
        krausProbDiagImpl<kCoefOne, kCoefReal>(re, im, dim, lanes,
                                               mask, m0r, m0i, m3r,
                                               m3i, out);
    } else if (k0 != kCoefComplex && k3 != kCoefComplex) {
        krausProbDiagImpl<kCoefReal, kCoefReal>(re, im, dim, lanes,
                                                mask, m0r, m0i, m3r,
                                                m3i, out);
    } else {
        krausProbDiagImpl<kCoefComplex, kCoefComplex>(
            re, im, dim, lanes, mask, m0r, m0i, m3r, m3i, out);
    }
}

#ifdef __AVX2__

template <int NV, int K1, int K2>
inline void
krausProbAntiDiagTile(const double *re, const double *im,
                      std::size_t dim, std::size_t lanes,
                      std::size_t mask, __m256d v1r, __m256d v1i,
                      __m256d v2r, __m256d v2i, double *out)
{
    __m256d acc[NV];
    for (int v = 0; v < NV; ++v)
        acc[v] = _mm256_setzero_pd();
    for (std::size_t base = 0; base < dim; base += mask << 1) {
        for (std::size_t off = 0; off < mask; ++off) {
            const double *lor = re + (base + off) * lanes;
            const double *loi = im + (base + off) * lanes;
            const double *hir = re + (base + mask + off) * lanes;
            const double *hii = im + (base + mask + off) * lanes;
            for (int v = 0; v < NV; ++v) {
                const __m256d br = _mm256_loadu_pd(hir + 4 * v);
                const __m256d bi = _mm256_loadu_pd(hii + 4 * v);
                acc[v] = _mm256_add_pd(
                    acc[v], vnormAddend<K1>(br, bi, v1r, v1i));
            }
            for (int v = 0; v < NV; ++v) {
                const __m256d ar = _mm256_loadu_pd(lor + 4 * v);
                const __m256d ai = _mm256_loadu_pd(loi + 4 * v);
                acc[v] = _mm256_add_pd(
                    acc[v], vnormAddend<K2>(ar, ai, v2r, v2i));
            }
        }
    }
    for (int v = 0; v < NV; ++v)
        _mm256_storeu_pd(out + 4 * v, acc[v]);
}

#endif // __AVX2__

template <int K1, int K2>
inline void
krausProbAntiDiagImpl(const double *re, const double *im,
                      std::size_t dim, std::size_t lanes,
                      std::size_t mask, double m1r, double m1i,
                      double m2r, double m2i, double *out)
{
    std::size_t l = 0;
#ifdef __AVX2__
    const __m256d v1r = _mm256_set1_pd(m1r), v1i = _mm256_set1_pd(m1i);
    const __m256d v2r = _mm256_set1_pd(m2r), v2i = _mm256_set1_pd(m2i);
    for (; l + 16 <= lanes; l += 16)
        krausProbAntiDiagTile<4, K1, K2>(re + l, im + l, dim, lanes,
                                         mask, v1r, v1i, v2r, v2i,
                                         out + l);
    for (; l + 4 <= lanes; l += 4)
        krausProbAntiDiagTile<1, K1, K2>(re + l, im + l, dim, lanes,
                                         mask, v1r, v1i, v2r, v2i,
                                         out + l);
#endif
    for (; l < lanes; ++l) {
        double acc = 0.0;
        for (std::size_t base = 0; base < dim; base += mask << 1) {
            for (std::size_t off = 0; off < mask; ++off) {
                acc += normAddend<K1>(
                    re[(base + mask + off) * lanes + l],
                    im[(base + mask + off) * lanes + l], m1r, m1i);
                acc += normAddend<K2>(re[(base + off) * lanes + l],
                                      im[(base + off) * lanes + l],
                                      m2r, m2i);
            }
        }
        out[l] = acc;
    }
}

void
krausProbAntiDiag(const double *re, const double *im, std::size_t dim,
                  std::size_t lanes, std::size_t mask, Complex m1,
                  Complex m2, double *out)
{
    const double m1r = m1.real(), m1i = m1.imag();
    const double m2r = m2.real(), m2i = m2.imag();
    if (m1i == 0.0 && m2i == 0.0) {
        krausProbAntiDiagImpl<kCoefReal, kCoefReal>(
            re, im, dim, lanes, mask, m1r, m1i, m2r, m2i, out);
    } else {
        krausProbAntiDiagImpl<kCoefComplex, kCoefComplex>(
            re, im, dim, lanes, mask, m1r, m1i, m2r, m2i, out);
    }
}

#ifdef __AVX2__

template <int NV>
inline void
krausProbGeneralTile(const double *re, const double *im,
                     std::size_t dim, std::size_t lanes,
                     std::size_t mask, const __m256d *vm, double *out)
{
    __m256d acc[NV];
    for (int v = 0; v < NV; ++v)
        acc[v] = _mm256_setzero_pd();
    for (std::size_t base = 0; base < dim; base += mask << 1) {
        for (std::size_t off = 0; off < mask; ++off) {
            const double *lor = re + (base + off) * lanes;
            const double *loi = im + (base + off) * lanes;
            const double *hir = re + (base + mask + off) * lanes;
            const double *hii = im + (base + mask + off) * lanes;
            for (int v = 0; v < NV; ++v) {
                const __m256d ar = _mm256_loadu_pd(lor + 4 * v);
                const __m256d ai = _mm256_loadu_pd(loi + 4 * v);
                const __m256d br = _mm256_loadu_pd(hir + 4 * v);
                const __m256d bi = _mm256_loadu_pd(hii + 4 * v);
                const __m256d sr =
                    _mm256_add_pd(cmulRe(vm[0], vm[1], ar, ai),
                                  cmulRe(vm[2], vm[3], br, bi));
                const __m256d si =
                    _mm256_add_pd(cmulIm(vm[0], vm[1], ar, ai),
                                  cmulIm(vm[2], vm[3], br, bi));
                acc[v] = _mm256_add_pd(acc[v], cnorm(sr, si));
                const __m256d tr =
                    _mm256_add_pd(cmulRe(vm[4], vm[5], ar, ai),
                                  cmulRe(vm[6], vm[7], br, bi));
                const __m256d ti =
                    _mm256_add_pd(cmulIm(vm[4], vm[5], ar, ai),
                                  cmulIm(vm[6], vm[7], br, bi));
                acc[v] = _mm256_add_pd(acc[v], cnorm(tr, ti));
            }
        }
    }
    for (int v = 0; v < NV; ++v)
        _mm256_storeu_pd(out + 4 * v, acc[v]);
}

#endif // __AVX2__

void
krausProbGeneral(const double *re, const double *im, std::size_t dim,
                 std::size_t lanes, std::size_t mask,
                 const std::array<Complex, 4> &m, double *out)
{
    const double m0r = m[0].real(), m0i = m[0].imag();
    const double m1r = m[1].real(), m1i = m[1].imag();
    const double m2r = m[2].real(), m2i = m[2].imag();
    const double m3r = m[3].real(), m3i = m[3].imag();
    std::size_t l = 0;
#ifdef __AVX2__
    const __m256d vm[8] = {
        _mm256_set1_pd(m0r), _mm256_set1_pd(m0i), _mm256_set1_pd(m1r),
        _mm256_set1_pd(m1i), _mm256_set1_pd(m2r), _mm256_set1_pd(m2i),
        _mm256_set1_pd(m3r), _mm256_set1_pd(m3i)};
    for (; l + 8 <= lanes; l += 8)
        krausProbGeneralTile<2>(re + l, im + l, dim, lanes, mask, vm,
                                out + l);
    for (; l + 4 <= lanes; l += 4)
        krausProbGeneralTile<1>(re + l, im + l, dim, lanes, mask, vm,
                                out + l);
#endif
    for (; l < lanes; ++l) {
        double acc = 0.0;
        for (std::size_t base = 0; base < dim; base += mask << 1) {
            for (std::size_t off = 0; off < mask; ++off) {
                const double ar = re[(base + off) * lanes + l];
                const double ai = im[(base + off) * lanes + l];
                const double br = re[(base + mask + off) * lanes + l];
                const double bi = im[(base + mask + off) * lanes + l];
                const double sr =
                    (m0r * ar - m0i * ai) + (m1r * br - m1i * bi);
                const double si =
                    (m0r * ai + m0i * ar) + (m1r * bi + m1i * br);
                acc += sr * sr + si * si;
                const double tr =
                    (m2r * ar - m2i * ai) + (m3r * br - m3i * bi);
                const double ti =
                    (m2r * ai + m2i * ar) + (m3r * bi + m3i * br);
                acc += tr * tr + ti * ti;
            }
        }
        out[l] = acc;
    }
}

#ifdef __AVX2__

template <int NV>
inline void
computeNormsTile(const double *re, const double *im, std::size_t dim,
                 std::size_t lanes, double *out)
{
    __m256d acc[NV];
    for (int v = 0; v < NV; ++v)
        acc[v] = _mm256_setzero_pd();
    for (std::size_t i = 0; i < dim; ++i) {
        const double *r = re + i * lanes;
        const double *m = im + i * lanes;
        for (int v = 0; v < NV; ++v) {
            const __m256d vr = _mm256_loadu_pd(r + 4 * v);
            const __m256d vi = _mm256_loadu_pd(m + 4 * v);
            acc[v] = _mm256_add_pd(acc[v], cnorm(vr, vi));
        }
    }
    for (int v = 0; v < NV; ++v)
        _mm256_storeu_pd(out + 4 * v, acc[v]);
}

#endif // __AVX2__

void
computeNorms(const double *re, const double *im, std::size_t dim,
             std::size_t lanes, double *out)
{
    std::size_t l = 0;
#ifdef __AVX2__
    for (; l + 16 <= lanes; l += 16)
        computeNormsTile<4>(re + l, im + l, dim, lanes, out + l);
    for (; l + 4 <= lanes; l += 4)
        computeNormsTile<1>(re + l, im + l, dim, lanes, out + l);
#endif
    for (; l < lanes; ++l) {
        double acc = 0.0;
        for (std::size_t i = 0; i < dim; ++i) {
            const double r = re[i * lanes + l];
            const double m = im[i * lanes + l];
            acc += r * r + m * m;
        }
        out[l] = acc;
    }
}

#ifdef __AVX2__

template <int NV, int AKIND>
inline void
normalizeFusedTile(double *re, double *im, std::size_t dim,
                   std::size_t lanes, const double *inv,
                   std::size_t amask, Complex ad1, double *post)
{
    const __m256d adr = _mm256_set1_pd(ad1.real());
    const __m256d adi = _mm256_set1_pd(ad1.imag());
    __m256d vinv[NV], acc[NV];
    for (int v = 0; v < NV; ++v) {
        vinv[v] = _mm256_loadu_pd(inv + 4 * v);
        acc[v] = _mm256_setzero_pd();
    }
    for (std::size_t i = 0; i < dim; ++i) {
        const bool ap = AKIND != kCoefOne && (i & amask) != 0;
        double *r = re + i * lanes;
        double *m = im + i * lanes;
        for (int v = 0; v < NV; ++v) {
            __m256d ar = _mm256_loadu_pd(r + 4 * v);
            __m256d ai = _mm256_loadu_pd(m + 4 * v);
            if (ap) {
                // Deferred pick: rounds exactly as the separate apply
                // sweep would have stored before the scale.
                const __m256d tr = vmulRe<AKIND>(adr, adi, ar, ai);
                const __m256d ti = vmulIm<AKIND>(adr, adi, ar, ai);
                ar = tr;
                ai = ti;
            }
            const __m256d vr = _mm256_mul_pd(ar, vinv[v]);
            const __m256d vi = _mm256_mul_pd(ai, vinv[v]);
            _mm256_storeu_pd(r + 4 * v, vr);
            _mm256_storeu_pd(m + 4 * v, vi);
            acc[v] = _mm256_add_pd(acc[v], cnorm(vr, vi));
        }
    }
    for (int v = 0; v < NV; ++v)
        _mm256_storeu_pd(post + 4 * v, acc[v]);
}

#endif // __AVX2__

template <int AKIND>
inline void
normalizeFusedImpl(double *re, double *im, std::size_t dim,
                   std::size_t lanes, const double *inv,
                   std::size_t amask, Complex ad1, double *post)
{
    std::size_t l = 0;
#ifdef __AVX2__
    for (; l + 16 <= lanes; l += 16)
        normalizeFusedTile<4, AKIND>(re + l, im + l, dim, lanes,
                                     inv + l, amask, ad1, post + l);
    for (; l + 4 <= lanes; l += 4)
        normalizeFusedTile<1, AKIND>(re + l, im + l, dim, lanes,
                                     inv + l, amask, ad1, post + l);
#endif
    const double adr = ad1.real();
    const double adi = ad1.imag();
    for (; l < lanes; ++l) {
        const double s = inv[l];
        double acc = 0.0;
        for (std::size_t i = 0; i < dim; ++i) {
            double &r = re[i * lanes + l];
            double &m = im[i * lanes + l];
            double ar = r;
            double ai = m;
            if (AKIND != kCoefOne && (i & amask) != 0) {
                const double tr = smulRe<AKIND>(adr, adi, ar, ai);
                const double ti = smulIm<AKIND>(adr, adi, ar, ai);
                ar = tr;
                ai = ti;
            }
            r = ar * s;
            m = ai * s;
            acc += r * r + m * m;
        }
        post[l] = acc;
    }
}

void
normalizeFused(double *re, double *im, std::size_t dim,
               std::size_t lanes, const double *inv,
               std::size_t applyMask, Complex applyD1, double *post)
{
    const int ak = applyMask == 0 ? kCoefOne
                                  : coefKind(applyD1.real(),
                                             applyD1.imag());
    switch (ak) {
    case kCoefOne:
        // Multiplying by exactly 1.0 is identity bitwise, so skipping
        // the factor is exact (not merely zero-sign licensed).
        normalizeFusedImpl<kCoefOne>(re, im, dim, lanes, inv,
                                     applyMask, applyD1, post);
        break;
    case kCoefReal:
        normalizeFusedImpl<kCoefReal>(re, im, dim, lanes, inv,
                                      applyMask, applyD1, post);
        break;
    default:
        normalizeFusedImpl<kCoefComplex>(re, im, dim, lanes, inv,
                                         applyMask, applyD1, post);
        break;
    }
}

#ifdef __AVX2__

template <int NV, int KIND>
inline void
applyDiagPhaseNormTile(double *re, double *im, std::size_t dim,
                       std::size_t lanes, std::size_t mask,
                       __m256d v1r, __m256d v1i, double *out)
{
    __m256d acc[NV];
    for (int v = 0; v < NV; ++v)
        acc[v] = _mm256_setzero_pd();
    for (std::size_t i = 0; i < dim; ++i) {
        double *r = re + i * lanes;
        double *m = im + i * lanes;
        if (i & mask) {
            for (int v = 0; v < NV; ++v) {
                const __m256d br = _mm256_loadu_pd(r + 4 * v);
                const __m256d bi = _mm256_loadu_pd(m + 4 * v);
                const __m256d nr = vmulRe<KIND>(v1r, v1i, br, bi);
                const __m256d ni = vmulIm<KIND>(v1r, v1i, br, bi);
                _mm256_storeu_pd(r + 4 * v, nr);
                _mm256_storeu_pd(m + 4 * v, ni);
                acc[v] = _mm256_add_pd(acc[v], cnorm(nr, ni));
            }
        } else {
            for (int v = 0; v < NV; ++v) {
                const __m256d vr = _mm256_loadu_pd(r + 4 * v);
                const __m256d vi = _mm256_loadu_pd(m + 4 * v);
                acc[v] = _mm256_add_pd(acc[v], cnorm(vr, vi));
            }
        }
    }
    for (int v = 0; v < NV; ++v)
        _mm256_storeu_pd(out + 4 * v, acc[v]);
}

#endif // __AVX2__

template <int KIND>
inline void
applyDiagPhaseNormImpl(double *re, double *im, std::size_t dim,
                       std::size_t lanes, std::size_t mask, double d1r,
                       double d1i, double *out)
{
    std::size_t l = 0;
#ifdef __AVX2__
    const __m256d v1r = _mm256_set1_pd(d1r), v1i = _mm256_set1_pd(d1i);
    for (; l + 16 <= lanes; l += 16)
        applyDiagPhaseNormTile<4, KIND>(re + l, im + l, dim, lanes,
                                        mask, v1r, v1i, out + l);
    for (; l + 4 <= lanes; l += 4)
        applyDiagPhaseNormTile<1, KIND>(re + l, im + l, dim, lanes,
                                        mask, v1r, v1i, out + l);
#endif
    for (; l < lanes; ++l) {
        double acc = 0.0;
        for (std::size_t i = 0; i < dim; ++i) {
            double &r = re[i * lanes + l];
            double &m = im[i * lanes + l];
            if (i & mask) {
                const double br = r, bi = m;
                r = smulRe<KIND>(d1r, d1i, br, bi);
                m = smulIm<KIND>(d1r, d1i, br, bi);
            }
            acc += r * r + m * m;
        }
        out[l] = acc;
    }
}

void
applyDiagPhaseNorm(double *re, double *im, std::size_t dim,
                   std::size_t lanes, std::size_t mask, Complex d1,
                   double *out)
{
    const double d1r = d1.real(), d1i = d1.imag();
    if (d1i == 0.0) {
        applyDiagPhaseNormImpl<kCoefReal>(re, im, dim, lanes, mask,
                                          d1r, d1i, out);
    } else {
        applyDiagPhaseNormImpl<kCoefComplex>(re, im, dim, lanes, mask,
                                             d1r, d1i, out);
    }
}

#ifdef __AVX2__

template <int NV, int KIND>
inline void
applyDiagBothNormTile(double *re, double *im, std::size_t dim,
                      std::size_t lanes, std::size_t mask, __m256d v0r,
                      __m256d v0i, __m256d v1r, __m256d v1i,
                      double *out)
{
    __m256d acc[NV];
    for (int v = 0; v < NV; ++v)
        acc[v] = _mm256_setzero_pd();
    for (std::size_t i = 0; i < dim; ++i) {
        double *r = re + i * lanes;
        double *m = im + i * lanes;
        const __m256d dr = (i & mask) ? v1r : v0r;
        const __m256d di = (i & mask) ? v1i : v0i;
        for (int v = 0; v < NV; ++v) {
            const __m256d ar = _mm256_loadu_pd(r + 4 * v);
            const __m256d ai = _mm256_loadu_pd(m + 4 * v);
            const __m256d nr = vmulRe<KIND>(dr, di, ar, ai);
            const __m256d ni = vmulIm<KIND>(dr, di, ar, ai);
            _mm256_storeu_pd(r + 4 * v, nr);
            _mm256_storeu_pd(m + 4 * v, ni);
            acc[v] = _mm256_add_pd(acc[v], cnorm(nr, ni));
        }
    }
    for (int v = 0; v < NV; ++v)
        _mm256_storeu_pd(out + 4 * v, acc[v]);
}

#endif // __AVX2__

template <int KIND>
inline void
applyDiagBothNormImpl(double *re, double *im, std::size_t dim,
                      std::size_t lanes, std::size_t mask, double d0r,
                      double d0i, double d1r, double d1i, double *out)
{
    std::size_t l = 0;
#ifdef __AVX2__
    const __m256d v0r = _mm256_set1_pd(d0r), v0i = _mm256_set1_pd(d0i);
    const __m256d v1r = _mm256_set1_pd(d1r), v1i = _mm256_set1_pd(d1i);
    for (; l + 16 <= lanes; l += 16)
        applyDiagBothNormTile<4, KIND>(re + l, im + l, dim, lanes,
                                       mask, v0r, v0i, v1r, v1i,
                                       out + l);
    for (; l + 4 <= lanes; l += 4)
        applyDiagBothNormTile<1, KIND>(re + l, im + l, dim, lanes,
                                       mask, v0r, v0i, v1r, v1i,
                                       out + l);
#endif
    for (; l < lanes; ++l) {
        double acc = 0.0;
        for (std::size_t i = 0; i < dim; ++i) {
            double &r = re[i * lanes + l];
            double &m = im[i * lanes + l];
            const double sr = (i & mask) ? d1r : d0r;
            const double si = (i & mask) ? d1i : d0i;
            const double ar = r, ai = m;
            r = smulRe<KIND>(sr, si, ar, ai);
            m = smulIm<KIND>(sr, si, ar, ai);
            acc += r * r + m * m;
        }
        out[l] = acc;
    }
}

void
applyDiagBothNorm(double *re, double *im, std::size_t dim,
                  std::size_t lanes, std::size_t mask, Complex d0,
                  Complex d1, double *out)
{
    const double d0r = d0.real(), d0i = d0.imag();
    const double d1r = d1.real(), d1i = d1.imag();
    if (d0i == 0.0 && d1i == 0.0) {
        applyDiagBothNormImpl<kCoefReal>(re, im, dim, lanes, mask, d0r,
                                         d0i, d1r, d1i, out);
    } else {
        applyDiagBothNormImpl<kCoefComplex>(re, im, dim, lanes, mask,
                                            d0r, d0i, d1r, d1i, out);
    }
}

/*
 * Fused norm + Born-probability sweeps. Both kernels iterate rows
 * LINEARLY (the norm/post chain order) while reconstructing the
 * probability chain's pair order — lo(0), hi(0), lo(1), hi(1), ... per
 * 2*mask block — by parking each lo-row addend in lobuf[off][lane]
 * until the matching hi row arrives. Within a block the lo rows all
 * precede the hi rows in linear order, so every buffered addend is
 * written before it is read, and blocks reuse the same buffer slots.
 * The lo probability addend for a diag(1, d1) operator is |amp|^2 —
 * the exact double the norm chain adds — so it is computed once and
 * shared (for a complex-dispatch krausProbDiag the lo addend differs
 * only in signs of zeros before squaring, which the square erases).
 *
 * Both kernels also emit n1: the linear-order norm of the state
 * diag(1, d1) WOULD leave behind. Its addends are the probability
 * chain's addends (lo rows untouched by the operator contribute
 * their plain |amp|^2; hi rows contribute |d1 * amp|^2, computed
 * once and fed to both accumulators), but summed in computeNorms row
 * order — exactly the norm the scalar path reads back after storing
 * the applied amplitudes. When the site then picks that operator,
 * renormalization can start from n1 without any fresh sweep.
 */

#ifdef __AVX2__

template <int NV, int KIND>
inline void
normsProbDiagTile(const double *re, const double *im, std::size_t dim,
                  std::size_t lanes, std::size_t mask, __m256d dr,
                  __m256d di, double *norms, double *prob, double *n1,
                  double *lobuf)
{
    __m256d nacc[NV], pacc[NV], sacc[NV];
    for (int v = 0; v < NV; ++v) {
        nacc[v] = _mm256_setzero_pd();
        pacc[v] = _mm256_setzero_pd();
        sacc[v] = _mm256_setzero_pd();
    }
    for (std::size_t i = 0; i < dim; ++i) {
        const double *r = re + i * lanes;
        const double *m = im + i * lanes;
        double *buf = lobuf + (i & (mask - 1)) * lanes;
        if (i & mask) {
            for (int v = 0; v < NV; ++v) {
                const __m256d ar = _mm256_loadu_pd(r + 4 * v);
                const __m256d ai = _mm256_loadu_pd(m + 4 * v);
                const __m256d h = vnormAddend<KIND>(ar, ai, dr, di);
                nacc[v] = _mm256_add_pd(nacc[v], cnorm(ar, ai));
                sacc[v] = _mm256_add_pd(sacc[v], h);
                pacc[v] = _mm256_add_pd(pacc[v],
                                        _mm256_loadu_pd(buf + 4 * v));
                pacc[v] = _mm256_add_pd(pacc[v], h);
            }
        } else {
            for (int v = 0; v < NV; ++v) {
                const __m256d ar = _mm256_loadu_pd(r + 4 * v);
                const __m256d ai = _mm256_loadu_pd(m + 4 * v);
                const __m256d t = cnorm(ar, ai);
                nacc[v] = _mm256_add_pd(nacc[v], t);
                sacc[v] = _mm256_add_pd(sacc[v], t);
                _mm256_storeu_pd(buf + 4 * v, t);
            }
        }
    }
    for (int v = 0; v < NV; ++v) {
        _mm256_storeu_pd(norms + 4 * v, nacc[v]);
        _mm256_storeu_pd(prob + 4 * v, pacc[v]);
        _mm256_storeu_pd(n1 + 4 * v, sacc[v]);
    }
}

#endif // __AVX2__

template <int KIND>
inline void
normsProbDiagImpl(const double *re, const double *im, std::size_t dim,
                  std::size_t lanes, std::size_t mask, double d1r,
                  double d1i, double *norms, double *prob, double *n1,
                  double *lobuf)
{
    std::size_t l = 0;
#ifdef __AVX2__
    // Three accumulator arrays per vector slot: NV=2 keeps them all
    // in registers (NV=4 spills and costs more than it saves).
    const __m256d dr = _mm256_set1_pd(d1r), di = _mm256_set1_pd(d1i);
    for (; l + 8 <= lanes; l += 8)
        normsProbDiagTile<2, KIND>(re + l, im + l, dim, lanes, mask,
                                   dr, di, norms + l, prob + l, n1 + l,
                                   lobuf + l);
    for (; l + 4 <= lanes; l += 4)
        normsProbDiagTile<1, KIND>(re + l, im + l, dim, lanes, mask,
                                   dr, di, norms + l, prob + l, n1 + l,
                                   lobuf + l);
#endif
    for (; l < lanes; ++l) {
        double nacc = 0.0, pacc = 0.0, sacc = 0.0;
        for (std::size_t i = 0; i < dim; ++i) {
            const double r = re[i * lanes + l];
            const double m = im[i * lanes + l];
            const double t = r * r + m * m;
            nacc += t;
            double &buf = lobuf[(i & (mask - 1)) * lanes + l];
            if (i & mask) {
                const double h = normAddend<KIND>(r, m, d1r, d1i);
                sacc += h;
                pacc += buf;
                pacc += h;
            } else {
                sacc += t;
                buf = t;
            }
        }
        norms[l] = nacc;
        prob[l] = pacc;
        n1[l] = sacc;
    }
}

void
normsProbDiag(const double *re, const double *im, std::size_t dim,
              std::size_t lanes, std::size_t mask, Complex d1,
              double *norms, double *prob, double *n1, double *lobuf)
{
    const double d1r = d1.real(), d1i = d1.imag();
    if (d1i == 0.0) {
        normsProbDiagImpl<kCoefReal>(re, im, dim, lanes, mask, d1r,
                                     d1i, norms, prob, n1, lobuf);
    } else {
        normsProbDiagImpl<kCoefComplex>(re, im, dim, lanes, mask, d1r,
                                        d1i, norms, prob, n1, lobuf);
    }
}

#ifdef __AVX2__

template <int NV, int AKIND, int KIND>
inline void
normalizeProbDiagTile(double *re, double *im, std::size_t dim,
                      std::size_t lanes, const double *inv,
                      std::size_t amask, __m256d adr, __m256d adi,
                      std::size_t mask, __m256d dr, __m256d di,
                      double *post, double *prob, double *n1,
                      double *lobuf)
{
    __m256d vinv[NV], nacc[NV], pacc[NV], sacc[NV];
    for (int v = 0; v < NV; ++v) {
        vinv[v] = _mm256_loadu_pd(inv + 4 * v);
        nacc[v] = _mm256_setzero_pd();
        pacc[v] = _mm256_setzero_pd();
        sacc[v] = _mm256_setzero_pd();
    }
    for (std::size_t i = 0; i < dim; ++i) {
        double *r = re + i * lanes;
        double *m = im + i * lanes;
        double *buf = lobuf + (i & (mask - 1)) * lanes;
        const bool ap = AKIND != kCoefOne && (i & amask) != 0;
        for (int v = 0; v < NV; ++v) {
            __m256d ar = _mm256_loadu_pd(r + 4 * v);
            __m256d ai = _mm256_loadu_pd(m + 4 * v);
            if (ap) {
                // Deferred pick: a*applyD1 rounds here exactly as the
                // separate apply sweep would have stored it.
                const __m256d tr = vmulRe<AKIND>(adr, adi, ar, ai);
                const __m256d ti = vmulIm<AKIND>(adr, adi, ar, ai);
                ar = tr;
                ai = ti;
            }
            const __m256d vr = _mm256_mul_pd(ar, vinv[v]);
            const __m256d vi = _mm256_mul_pd(ai, vinv[v]);
            _mm256_storeu_pd(r + 4 * v, vr);
            _mm256_storeu_pd(m + 4 * v, vi);
            const __m256d t = cnorm(vr, vi);
            nacc[v] = _mm256_add_pd(nacc[v], t);
            if (i & mask) {
                const __m256d h = vnormAddend<KIND>(vr, vi, dr, di);
                sacc[v] = _mm256_add_pd(sacc[v], h);
                pacc[v] = _mm256_add_pd(pacc[v],
                                        _mm256_loadu_pd(buf + 4 * v));
                pacc[v] = _mm256_add_pd(pacc[v], h);
            } else {
                sacc[v] = _mm256_add_pd(sacc[v], t);
                _mm256_storeu_pd(buf + 4 * v, t);
            }
        }
    }
    for (int v = 0; v < NV; ++v) {
        _mm256_storeu_pd(post + 4 * v, nacc[v]);
        _mm256_storeu_pd(prob + 4 * v, pacc[v]);
        _mm256_storeu_pd(n1 + 4 * v, sacc[v]);
    }
}

#endif // __AVX2__

template <int AKIND, int KIND>
inline void
normalizeProbDiagImpl(double *re, double *im, std::size_t dim,
                      std::size_t lanes, const double *inv,
                      std::size_t amask, double ad1r, double ad1i,
                      std::size_t mask, double d1r, double d1i,
                      double *post, double *prob, double *n1,
                      double *lobuf)
{
    std::size_t l = 0;
#ifdef __AVX2__
    // Four live vector arrays (inv + three accumulators): NV=2 is the
    // widest tile that stays within the 16 YMM registers.
    const __m256d adr = _mm256_set1_pd(ad1r);
    const __m256d adi = _mm256_set1_pd(ad1i);
    const __m256d dr = _mm256_set1_pd(d1r), di = _mm256_set1_pd(d1i);
    for (; l + 8 <= lanes; l += 8)
        normalizeProbDiagTile<2, AKIND, KIND>(
            re + l, im + l, dim, lanes, inv + l, amask, adr, adi, mask,
            dr, di, post + l, prob + l, n1 + l, lobuf + l);
    for (; l + 4 <= lanes; l += 4)
        normalizeProbDiagTile<1, AKIND, KIND>(
            re + l, im + l, dim, lanes, inv + l, amask, adr, adi, mask,
            dr, di, post + l, prob + l, n1 + l, lobuf + l);
#endif
    for (; l < lanes; ++l) {
        const double s = inv[l];
        double nacc = 0.0, pacc = 0.0, sacc = 0.0;
        for (std::size_t i = 0; i < dim; ++i) {
            double &r = re[i * lanes + l];
            double &m = im[i * lanes + l];
            double ar = r, ai = m;
            if (AKIND != kCoefOne && (i & amask) != 0) {
                const double tr = smulRe<AKIND>(ad1r, ad1i, ar, ai);
                const double ti = smulIm<AKIND>(ad1r, ad1i, ar, ai);
                ar = tr;
                ai = ti;
            }
            r = ar * s;
            m = ai * s;
            const double t = r * r + m * m;
            nacc += t;
            double &buf = lobuf[(i & (mask - 1)) * lanes + l];
            if (i & mask) {
                const double h = normAddend<KIND>(r, m, d1r, d1i);
                sacc += h;
                pacc += buf;
                pacc += h;
            } else {
                sacc += t;
                buf = t;
            }
        }
        post[l] = nacc;
        prob[l] = pacc;
        n1[l] = sacc;
    }
}

template <int AKIND>
inline void
normalizeProbDiagDispatch(double *re, double *im, std::size_t dim,
                          std::size_t lanes, const double *inv,
                          std::size_t amask, double ad1r, double ad1i,
                          std::size_t mask, double d1r, double d1i,
                          double *post, double *prob, double *n1,
                          double *lobuf)
{
    if (d1i == 0.0) {
        normalizeProbDiagImpl<AKIND, kCoefReal>(
            re, im, dim, lanes, inv, amask, ad1r, ad1i, mask, d1r, d1i,
            post, prob, n1, lobuf);
    } else {
        normalizeProbDiagImpl<AKIND, kCoefComplex>(
            re, im, dim, lanes, inv, amask, ad1r, ad1i, mask, d1r, d1i,
            post, prob, n1, lobuf);
    }
}

void
normalizeProbDiag(double *re, double *im, std::size_t dim,
                  std::size_t lanes, const double *inv,
                  std::size_t applyMask, Complex applyD1,
                  std::size_t mask, Complex d1, double *post,
                  double *prob, double *n1, double *lobuf)
{
    const double ad1r = applyD1.real(), ad1i = applyD1.imag();
    const double d1r = d1.real(), d1i = d1.imag();
    const int ak = applyMask == 0 ? kCoefOne : coefKind(ad1r, ad1i);
    switch (ak) {
      case kCoefOne:
        // Multiplying by exactly 1.0 is the identity bitwise, so the
        // kCoefOne instantiation skipping it is exact, not licensed.
        normalizeProbDiagDispatch<kCoefOne>(re, im, dim, lanes, inv,
                                            applyMask, ad1r, ad1i,
                                            mask, d1r, d1i, post, prob,
                                            n1, lobuf);
        break;
      case kCoefReal:
        normalizeProbDiagDispatch<kCoefReal>(re, im, dim, lanes, inv,
                                             applyMask, ad1r, ad1i,
                                             mask, d1r, d1i, post,
                                             prob, n1, lobuf);
        break;
      default:
        normalizeProbDiagDispatch<kCoefComplex>(re, im, dim, lanes,
                                                inv, applyMask, ad1r,
                                                ad1i, mask, d1r, d1i,
                                                post, prob, n1, lobuf);
        break;
    }
}

void
invSqrt(const double *n, std::size_t lanes, double *inv)
{
    std::size_t l = 0;
#ifdef __AVX2__
    const __m256d vone = _mm256_set1_pd(1.0);
    for (; l + 4 <= lanes; l += 4)
        _mm256_storeu_pd(
            inv + l,
            _mm256_div_pd(vone,
                          _mm256_sqrt_pd(_mm256_loadu_pd(n + l))));
#endif
    for (; l < lanes; ++l)
        inv[l] = 1.0 / std::sqrt(n[l]);
}

constexpr LaneKernels kTable = {
    &apply1qGeneral,    &apply1qAntiDiag,  &applyDiagBoth,
    &applyDiagPhase,    &apply1qPerLane,   &krausProbDiag,
    &krausProbAntiDiag, &krausProbGeneral, &computeNorms,
    &normalizeFused,    &applyDiagPhaseNorm, &applyDiagBothNorm,
    &invSqrt,           &normsProbDiag,    &normalizeProbDiag,
};

} // namespace

const LaneKernels &
table()
{
    return kTable;
}

} // namespace QEDM_LANE_NS
} // namespace qedm::sim
