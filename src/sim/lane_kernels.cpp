/**
 * @file
 * Runtime dispatch between the lane-kernel builds (lane_kernels.hpp):
 * the AVX2 table when the binary contains it (not QEDM_NO_SIMD) and
 * the CPU reports the feature, else the baseline table. The choice is
 * observable only through laneKernelsSimd() — both tables compute
 * bit-identical results.
 */

#include "sim/lane_kernels.hpp"

#include <atomic>

namespace qedm::sim {

namespace lane_scalar {
const LaneKernels &table();
}

#if !defined(QEDM_NO_SIMD) && defined(__x86_64__) && defined(__GNUC__)
#define QEDM_HAVE_AVX2_BUILD 1
namespace lane_avx2 {
const LaneKernels &table();
}
#endif

namespace {

std::atomic<bool> g_force_scalar{false};

bool
cpuHasAvx2()
{
#ifdef QEDM_HAVE_AVX2_BUILD
    return __builtin_cpu_supports("avx2") != 0;
#else
    return false;
#endif
}

} // namespace

const LaneKernels &
laneKernels()
{
#ifdef QEDM_HAVE_AVX2_BUILD
    // Feature detection is immutable per process; cache it once.
    static const bool has_avx2 = cpuHasAvx2();
    if (has_avx2 && !g_force_scalar.load(std::memory_order_relaxed))
        return lane_avx2::table();
#endif
    return lane_scalar::table();
}

bool
laneKernelsSimd()
{
    return &laneKernels() != &lane_scalar::table();
}

void
forceScalarLaneKernels(bool force)
{
    g_force_scalar.store(force, std::memory_order_relaxed);
}

} // namespace qedm::sim
