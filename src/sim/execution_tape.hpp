/**
 * @file
 * Precompiled, shareable execution tapes.
 *
 * A tape is the device-specific preprocessing of one physical circuit:
 * active-qubit compaction, per-gate systematic noise terms, scheduled
 * idle/gate relaxation channels, and the readout channel list. It is
 * immutable after build and references nothing mutable, so one tape can
 * be executed by any number of threads concurrently.
 *
 * Tapes are the unit the runtime layer caches: within one experimental
 * round, the four baseline policies and the K ensemble members re-run
 * the same (circuit, calibration) pairs repeatedly, and the tape only
 * needs to be built once per pair. The cache key is (device
 * fingerprint, circuit fingerprint); calibration drift changes the
 * device fingerprint, so stale tapes from earlier rounds can never be
 * served ("drift-aware invalidation" by construction).
 */

#pragma once

#include <array>
#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "circuit/circuit.hpp"
#include "hw/device.hpp"
#include "sim/channels.hpp"

namespace qedm::sim {

/** One preprocessed gate on a tape.
 *
 *  All unitary factors are pre-materialized at build time (the base
 *  gate matrix, the over-rotation/control-phase kicks, and the
 *  crosstalk phases), so the per-shot trajectory loop never calls
 *  gateMatrix1q/gateMatrix2q or evaluates trigonometry. */
struct TapeOp
{
    circuit::OpKind kind;
    std::vector<double> params;
    int l0 = -1, l1 = -1; ///< local operands
    int p0 = -1, p1 = -1; ///< physical operands
    /** Pre-materialized base gate matrix (arity-1 ops). */
    std::array<circuit::Complex, 4> gate1q{};
    /** Pre-materialized base gate matrix (arity-2 ops). */
    std::array<circuit::Complex, 16> gate2q{};
    double overRotation = 0.0; ///< coherent extra on target (rad)
    double controlPhase = 0.0; ///< coherent Rz on control (rad)
    /** Rx(overRotation), pre-materialized; valid iff overRotation != 0. */
    std::array<circuit::Complex, 4> overRotationMat{};
    /** Rz(controlPhase), pre-materialized; valid iff controlPhase != 0. */
    std::array<circuit::Complex, 4> controlPhaseMat{};
    /** (local spectator, Rz(angle) matrix) crosstalk kicks. */
    std::vector<std::pair<int, std::array<circuit::Complex, 4>>>
        crosstalk;
    double depolProb = 0.0; ///< stochastic depolarizing strength
    /** Thermal relaxation applied *before* the gate, covering each
     *  operand's idle window since its previous gate. */
    std::vector<std::pair<int, Kraus1q>> preRelaxation;
    /** Thermal-relaxation Kraus sets per operand (local qubit,
     *  channel), precomputed from gate duration and T1/T2. */
    std::vector<std::pair<int, Kraus1q>> relaxation;
};

/** One measurement on a tape. */
struct TapeMeasure
{
    int local;
    int phys;
    int clbit;
    /** Relaxation during the measurement window. */
    std::vector<Kraus1q> relaxation;
};

/** Pairwise-correlated readout flip between two classical bits. */
struct TapePairReadout
{
    int clbitA;
    int clbitB;
    double jointFlipProb;
};

/**
 * Immutable preprocessed program for one (device, physical circuit)
 * pair. Build once, execute from any thread.
 */
struct ExecutionTape
{
    int numLocal = 0;
    int numClbits = 0;
    std::vector<int> localToPhys;
    std::vector<TapeOp> ops;
    std::vector<TapeMeasure> measures;
    std::vector<TapePairReadout> pairReadout;
    bool stochastic = false; ///< any per-shot randomness pre-readout

    /**
     * Preprocess @p physical for @p device. The circuit register must
     * match the device; every 2-qubit gate must sit on a coupling
     * edge; at least one qubit must be measured.
     */
    static ExecutionTape build(const hw::Device &device,
                               const circuit::Circuit &physical);
};

/**
 * Thread-safe LRU cache of built tapes keyed on
 * (device fingerprint, circuit fingerprint).
 */
class TapeCache
{
  public:
    /** @param capacity maximum resident tapes (>= 1). */
    explicit TapeCache(std::size_t capacity = 256);

    /** Fetch the tape for (@p device, @p physical), building on miss. */
    std::shared_ptr<const ExecutionTape>
    get(const hw::Device &device, const circuit::Circuit &physical);

    std::size_t size() const;
    std::uint64_t hits() const;
    std::uint64_t misses() const;
    void clear();

  private:
    using Key = std::pair<std::uint64_t, std::uint64_t>;

    std::size_t capacity_;
    mutable std::mutex mutex_;
    /** LRU order: front = most recent. */
    std::list<Key> order_;
    std::map<Key, std::pair<std::shared_ptr<const ExecutionTape>,
                            std::list<Key>::iterator>>
        entries_;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
};

} // namespace qedm::sim
