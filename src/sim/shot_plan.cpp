#include "sim/shot_plan.hpp"

namespace qedm::sim {

bool
batchEligible(const ExecutionTape &tape, const hw::Calibration &cal)
{
    if (!tape.stochastic)
        return false; // the deterministic fast path stays dedicated
    for (const TapeMeasure &m : tape.measures) {
        const auto &qc = cal.qubit(m.phys);
        // A half-zero readout channel draws only when the measured bit
        // selects the nonzero probability — a state-dependent draw
        // structure pre-sampling cannot reproduce.
        if ((qc.readoutP01 > 0.0) != (qc.readoutP10 > 0.0))
            return false;
    }
    return true;
}

void
BatchPlan::presample(const ExecutionTape &tape,
                     const hw::Calibration &cal, std::size_t lanes,
                     Rng &rng)
{
    lanes_ = lanes;
    std::size_t kraus_sites = 0;
    std::size_t depol_sites = 0;
    for (const TapeOp &op : tape.ops) {
        kraus_sites += op.preRelaxation.size() + op.relaxation.size();
        if (op.depolProb > 0.0)
            ++depol_sites;
    }
    std::size_t readout_sites = 0;
    for (const TapeMeasure &m : tape.measures) {
        kraus_sites += m.relaxation.size();
        if (cal.qubit(m.phys).readoutP01 > 0.0)
            ++readout_sites;
    }
    krausU_.resize(kraus_sites * lanes);
    pauli_.resize(depol_sites * lanes);
    measureU_.resize(lanes);
    readoutU_.resize(readout_sites * lanes);
    pairFlip_.resize(tape.pairReadout.size() * lanes);

    // Shot-major replay of the scalar loop's exact call sequence:
    // every rng method below is the method the scalar loop calls at
    // the same stream position, so recorded values and the final
    // stream state match the scalar run bit for bit.
    for (std::size_t shot = 0; shot < lanes; ++shot) {
        std::size_t ks = 0;
        std::size_t ds = 0;
        for (const TapeOp &op : tape.ops) {
            for (std::size_t i = 0; i < op.preRelaxation.size(); ++i)
                krausU_[ks++ * lanes + shot] = rng.uniform();
            if (op.depolProb > 0.0) {
                std::int8_t idx = -1;
                if (rng.bernoulli(op.depolProb)) {
                    idx = static_cast<std::int8_t>(
                        rng.uniformInt(op.l1 < 0 ? 3 : 15));
                }
                pauli_[ds++ * lanes + shot] = idx;
            }
            for (std::size_t i = 0; i < op.relaxation.size(); ++i)
                krausU_[ks++ * lanes + shot] = rng.uniform();
        }
        for (const TapeMeasure &m : tape.measures) {
            for (std::size_t i = 0; i < m.relaxation.size(); ++i)
                krausU_[ks++ * lanes + shot] = rng.uniform();
        }
        measureU_[shot] = rng.uniform();
        std::size_t rs = 0;
        for (const TapeMeasure &m : tape.measures) {
            if (cal.qubit(m.phys).readoutP01 > 0.0)
                readoutU_[rs++ * lanes + shot] = rng.uniform();
        }
        for (std::size_t p = 0; p < tape.pairReadout.size(); ++p) {
            pairFlip_[p * lanes + shot] =
                rng.bernoulli(tape.pairReadout[p].jointFlipProb) ? 1
                                                                 : 0;
        }
    }
}

} // namespace qedm::sim
