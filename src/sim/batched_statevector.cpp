#include "sim/batched_statevector.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "sim/kernel_shapes.hpp"

namespace qedm::sim {

namespace {

using kernels::kOne;
using kernels::kZero;

const std::array<Complex, 4> kIdentity1q = {kOne, kZero, kZero, kOne};

} // namespace

BatchedStateVector::BatchedStateVector(int num_qubits,
                                       std::size_t lanes)
    : numQubits_(num_qubits),
      dim_(std::size_t(1) << num_qubits),
      lanes_(lanes)
{
    QEDM_REQUIRE(num_qubits >= 1 && num_qubits <= 24,
                 "state vector qubit count must be in [1, 24]");
    QEDM_REQUIRE(lanes >= 1, "batch needs at least one lane");
    re_.assign(dim_ * lanes_, 0.0);
    im_.assign(dim_ * lanes_, 0.0);
    norms_.assign(lanes_, 1.0);
    prob_.resize(lanes_);
    r_.resize(lanes_);
    acc_.resize(lanes_);
    inv_.resize(lanes_);
    coef_.resize(8 * lanes_);
    scratch_.resize(8 * lanes_);
    lobuf_.resize((dim_ / 2) * lanes_);
    pendN1_.resize(lanes_);
    pick_.resize(lanes_);
    decided_.resize(lanes_);
    mats_.resize(lanes_);
    std::fill(re_.begin(), re_.begin() + lanes_, 1.0);
}

void
BatchedStateVector::reset()
{
    std::fill(re_.begin(), re_.end(), 0.0);
    std::fill(im_.begin(), im_.end(), 0.0);
    std::fill(re_.begin(), re_.begin() + lanes_, 1.0);
    std::fill(norms_.begin(), norms_.end(), 1.0);
    normsValid_ = true;
    pendingValid_ = false;
}

Complex
BatchedStateVector::amplitude(std::size_t basis,
                              std::size_t lane) const
{
    QEDM_REQUIRE(basis < dim_ && lane < lanes_,
                 "amplitude index out of range");
    return {re_[basis * lanes_ + lane], im_[basis * lanes_ + lane]};
}

void
BatchedStateVector::apply1q(const std::array<Complex, 4> &m, int q)
{
    QEDM_REQUIRE(q >= 0 && q < numQubits_, "qubit index out of range");
    const std::size_t mask = std::size_t(1) << q;
    switch (kernels::classify1q(m)) {
      case kernels::Mat2Shape::Diagonal:
        applyDiag1q(m[0], m[3], q);
        return;
      case kernels::Mat2Shape::AntiDiagonal:
        laneKernels().apply1qAntiDiag(re_.data(), im_.data(), dim_,
                                      lanes_, mask, m[1], m[2]);
        break;
      case kernels::Mat2Shape::General:
        laneKernels().apply1qGeneral(re_.data(), im_.data(), dim_,
                                     lanes_, mask, m);
        break;
    }
    normsValid_ = false;
    pendingValid_ = false;
}

void
BatchedStateVector::applyDiag1q(Complex d0, Complex d1, int q)
{
    QEDM_REQUIRE(q >= 0 && q < numQubits_, "qubit index out of range");
    if (d0 == kOne && d1 == kOne)
        return; // identity: amplitudes (and the norm cache) unchanged
    const std::size_t mask = std::size_t(1) << q;
    if (d0 == kOne) {
        laneKernels().applyDiagPhase(re_.data(), im_.data(), dim_,
                                     lanes_, mask, d1);
    } else {
        laneKernels().applyDiagBoth(re_.data(), im_.data(), dim_,
                                    lanes_, mask, d0, d1);
    }
    normsValid_ = false;
    pendingValid_ = false;
}

void
BatchedStateVector::apply2q(const std::array<Complex, 16> &m, int q0,
                            int q1)
{
    QEDM_REQUIRE(q0 >= 0 && q0 < numQubits_ && q1 >= 0 &&
                     q1 < numQubits_ && q0 != q1,
                 "invalid two-qubit operands");
    const std::size_t m0 = std::size_t(1) << q0;
    const std::size_t m1 = std::size_t(1) << q1;
    // Same bit-interleaved group construction as the scalar engine:
    // groups are visited in ascending base order.
    const std::size_t groups = dim_ >> 2;
    const std::size_t mlo = (m0 < m1 ? m0 : m1) - 1;
    const std::size_t mhi = (m0 < m1 ? m1 : m0) - 1;
    const auto groupBase = [mlo, mhi](std::size_t g) {
        const std::size_t x = ((g & ~mlo) << 1) | (g & mlo);
        return ((x & ~mhi) << 1) | (x & mhi);
    };
    const std::size_t lanes = lanes_;

    int col[4];
    Complex coeff[4];
    if (kernels::decomposeMonomial4(m, col, coeff)) {
        const bool identity_012 =
            col[0] == 0 && col[1] == 1 && col[2] == 2 &&
            coeff[0] == kOne && coeff[1] == kOne && coeff[2] == kOne;
        if (identity_012 && col[3] == 3) {
            // Controlled phase (CZ family): only |11> rows move.
            if (coeff[3] == kOne)
                return; // identity
            const double cr = coeff[3].real();
            const double ci = coeff[3].imag();
            for (std::size_t g = 0; g < groups; ++g) {
                const std::size_t row =
                    (groupBase(g) | m0 | m1) * lanes;
                double *rr = re_.data() + row;
                double *ii = im_.data() + row;
                for (std::size_t l = 0; l < lanes; ++l) {
                    const double ar = rr[l], ai = ii[l];
                    rr[l] = ar * cr - ai * ci;
                    ii[l] = ar * ci + ai * cr;
                }
            }
            normsValid_ = false;
            pendingValid_ = false;
            return;
        }
        bool permutation = true;
        for (int r = 0; r < 4; ++r)
            permutation = permutation && coeff[r] == kOne;
        if (permutation) {
            // Transpositions (CX, SWAP): swap two rows per group.
            int a = -1, b = -1;
            int moved = 0;
            for (int r = 0; r < 4; ++r) {
                if (col[r] != r) {
                    ++moved;
                    if (a < 0)
                        a = r;
                    else
                        b = r;
                }
            }
            if (moved == 0)
                return; // identity permutation
            if (moved == 2 && col[a] == b && col[b] == a) {
                const std::size_t off_a =
                    (a & 2 ? m0 : 0) | (a & 1 ? m1 : 0);
                const std::size_t off_b =
                    (b & 2 ? m0 : 0) | (b & 1 ? m1 : 0);
                for (std::size_t g = 0; g < groups; ++g) {
                    const std::size_t base = groupBase(g);
                    const std::size_t ra = (base | off_a) * lanes;
                    const std::size_t rb = (base | off_b) * lanes;
                    std::swap_ranges(re_.begin() + ra,
                                     re_.begin() + ra + lanes,
                                     re_.begin() + rb);
                    std::swap_ranges(im_.begin() + ra,
                                     im_.begin() + ra + lanes,
                                     im_.begin() + rb);
                }
                normsValid_ = false;
                pendingValid_ = false;
                return;
            }
        }
        // General monomial: one scaled row gather per output row.
        for (std::size_t g = 0; g < groups; ++g) {
            const std::size_t base = groupBase(g);
            const std::size_t idx[4] = {base, base | m1, base | m0,
                                        base | m0 | m1};
            for (int r = 0; r < 4; ++r) {
                const double *sr = re_.data() + idx[r] * lanes;
                const double *si = im_.data() + idx[r] * lanes;
                std::copy(sr, sr + lanes,
                          scratch_.data() + std::size_t(r) * lanes);
                std::copy(si, si + lanes,
                          scratch_.data() +
                              (std::size_t(r) + 4) * lanes);
            }
            for (int r = 0; r < 4; ++r) {
                const double cr = coeff[r].real();
                const double ci = coeff[r].imag();
                const double *vr =
                    scratch_.data() + std::size_t(col[r]) * lanes;
                const double *vi =
                    scratch_.data() +
                    (std::size_t(col[r]) + 4) * lanes;
                double *dr = re_.data() + idx[r] * lanes;
                double *di = im_.data() + idx[r] * lanes;
                for (std::size_t l = 0; l < lanes; ++l) {
                    dr[l] = cr * vr[l] - ci * vi[l];
                    di[l] = cr * vi[l] + ci * vr[l];
                }
            }
        }
        normsValid_ = false;
        pendingValid_ = false;
        return;
    }

    // Dense 4x4: reference accumulation order, per lane.
    for (std::size_t g = 0; g < groups; ++g) {
        const std::size_t base = groupBase(g);
        const std::size_t idx[4] = {base, base | m1, base | m0,
                                    base | m0 | m1};
        for (int k = 0; k < 4; ++k) {
            const double *sr = re_.data() + idx[k] * lanes;
            const double *si = im_.data() + idx[k] * lanes;
            std::copy(sr, sr + lanes,
                      scratch_.data() + std::size_t(k) * lanes);
            std::copy(si, si + lanes,
                      scratch_.data() + (std::size_t(k) + 4) * lanes);
        }
        for (int r = 0; r < 4; ++r) {
            double *dr = re_.data() + idx[r] * lanes;
            double *di = im_.data() + idx[r] * lanes;
            for (std::size_t l = 0; l < lanes; ++l) {
                double accre = 0.0;
                double accim = 0.0;
                for (int c = 0; c < 4; ++c) {
                    const double mr = m[r * 4 + c].real();
                    const double mi = m[r * 4 + c].imag();
                    const double vr =
                        scratch_[std::size_t(c) * lanes + l];
                    const double vi =
                        scratch_[(std::size_t(c) + 4) * lanes + l];
                    accre += mr * vr - mi * vi;
                    accim += mr * vi + mi * vr;
                }
                dr[l] = accre;
                di[l] = accim;
            }
        }
    }
    normsValid_ = false;
    pendingValid_ = false;
}

void
BatchedStateVector::applyMatLanes(
    const std::array<Complex, 4> *const *mats, int q)
{
    bool all_identity = true;
    bool uniform = true;
    for (std::size_t l = 0; l < lanes_; ++l) {
        if (*mats[l] != kIdentity1q)
            all_identity = false;
        if (*mats[l] != *mats[0])
            uniform = false;
    }
    if (all_identity)
        return; // every lane's scalar twin skips without invalidating
    if (uniform) {
        apply1q(*mats[0], q); // exact structured dispatch, all lanes
        return;
    }
    for (int k = 0; k < 4; ++k) {
        double *cre = coef_.data() + std::size_t(k) * lanes_;
        double *cim = coef_.data() + (std::size_t(k) + 4) * lanes_;
        for (std::size_t l = 0; l < lanes_; ++l) {
            cre[l] = (*mats[l])[k].real();
            cim[l] = (*mats[l])[k].imag();
        }
    }
    LaneMat2 lm;
    for (int k = 0; k < 4; ++k) {
        lm.re[k] = coef_.data() + std::size_t(k) * lanes_;
        lm.im[k] = coef_.data() + (std::size_t(k) + 4) * lanes_;
    }
    laneKernels().apply1qPerLane(re_.data(), im_.data(), dim_, lanes_,
                                 std::size_t(1) << q, lm);
    normsValid_ = false;
    pendingValid_ = false;
}

void
BatchedStateVector::applyPauli1qLanes(const std::int8_t *idx, int q)
{
    // Depolarizing hits are rare; skip the matrix gather (and the
    // identity scan in applyMatLanes) when no lane drew one. The
    // scalar twin of every lane skips without touching the state.
    bool any = false;
    for (std::size_t l = 0; l < lanes_; ++l)
        any = any || idx[l] >= 0;
    if (!any)
        return;
    for (std::size_t l = 0; l < lanes_; ++l)
        mats_[l] = idx[l] < 0 ? &kIdentity1q : &pauliMatrix1q(idx[l]);
    applyMatLanes(mats_.data(), q);
}

void
BatchedStateVector::applyPauli2qLanes(const std::int8_t *idx, int q0,
                                      int q1)
{
    bool any = false;
    for (std::size_t l = 0; l < lanes_; ++l)
        any = any || idx[l] >= 0;
    if (!any)
        return;
    // The scalar twin applies the pair as two 1q applications
    // (control first); mirror that as two lane-masked fixups.
    for (std::size_t l = 0; l < lanes_; ++l) {
        mats_[l] = idx[l] < 0 ? &kIdentity1q
                              : &twoQubitPauliRef(idx[l]).first;
    }
    applyMatLanes(mats_.data(), q0);
    for (std::size_t l = 0; l < lanes_; ++l) {
        mats_[l] = idx[l] < 0 ? &kIdentity1q
                              : &twoQubitPauliRef(idx[l]).second;
    }
    applyMatLanes(mats_.data(), q1);
}

void
BatchedStateVector::applyKraus1qLanes(const Kraus1q &kraus, int q,
                                      const double *u,
                                      std::size_t nextMask,
                                      Complex nextD1)
{
    QEDM_REQUIRE(!kraus.empty(), "empty Kraus set");
    QEDM_REQUIRE(q >= 0 && q < numQubits_, "qubit index out of range");
    const std::size_t mask = std::size_t(1) << q;
    const LaneKernels &lk = laneKernels();

    // The dominant first operator is diag(1, d): its probability can
    // ride along with a norm sweep instead of costing its own.
    // have_p0: prob_ already holds p_0 — either left by the previous
    // site's chained renormalization (pending hit) or produced by the
    // fused fresh-norm sweep below. Both reproduce krausProbDiag's
    // pair-order chain exactly.
    const bool p0_diag_phase =
        kraus.size() > 1 &&
        kernels::classify1q(kraus[0]) ==
            kernels::Mat2Shape::Diagonal &&
        kraus[0][0] == kOne;
    bool have_p0 = false;
    if (p0_diag_phase) {
        if (pendingValid_ && normsValid_ && pendingMask_ == mask &&
            pendingD1_ == kraus[0][3]) {
            have_p0 = true;
        } else if (!normsValid_) {
            lk.normsProbDiag(re_.data(), im_.data(), dim_, lanes_,
                             mask, kraus[0][3], norms_.data(),
                             prob_.data(), pendN1_.data(),
                             lobuf_.data());
            normsValid_ = true;
            have_p0 = true;
        }
    }
    pendingValid_ = false;

    // Scalar rule per lane: r = u * norm, then incremental Born
    // accumulation in ascending operator order, first k with r < acc.
    const double *n = normLanes();
    for (std::size_t l = 0; l < lanes_; ++l)
        r_[l] = u[l] * n[l];
    std::fill(pick_.begin(), pick_.end(), kraus.size() - 1);
    if (kraus.size() > 1) {
        std::fill(acc_.begin(), acc_.end(), 0.0);
        std::fill(decided_.begin(), decided_.end(), 0);
        std::size_t undecided = lanes_;
        for (std::size_t k = 0; k + 1 < kraus.size() && undecided > 0;
             ++k) {
            // p_k for every lane; computing it for already-decided
            // lanes is redundant work, never a different decision.
            if (k == 0 && have_p0) {
                // prob_ already holds p_0 from a fused sweep.
            } else
            switch (kernels::classify1q(kraus[k])) {
              case kernels::Mat2Shape::Diagonal:
                lk.krausProbDiag(re_.data(), im_.data(), dim_, lanes_,
                                 mask, kraus[k][0], kraus[k][3],
                                 prob_.data());
                break;
              case kernels::Mat2Shape::AntiDiagonal:
                lk.krausProbAntiDiag(re_.data(), im_.data(), dim_,
                                     lanes_, mask, kraus[k][1],
                                     kraus[k][2], prob_.data());
                break;
              case kernels::Mat2Shape::General:
                lk.krausProbGeneral(re_.data(), im_.data(), dim_,
                                    lanes_, mask, kraus[k],
                                    prob_.data());
                break;
            }
            for (std::size_t l = 0; l < lanes_; ++l) {
                if (decided_[l])
                    continue;
                acc_[l] += prob_[l];
                if (r_[l] < acc_[l]) {
                    pick_[l] = k;
                    decided_[l] = 1;
                    --undecided;
                }
            }
        }
    }

    bool uniform = true;
    for (std::size_t l = 1; l < lanes_; ++l)
        uniform = uniform && pick_[l] == pick_[0];
    if (uniform && pick_[0] == 0 && have_p0) {
        // Every lane confirmed the dominant diag(1, d) pick whose
        // Born probability rode along with an earlier sweep — and so
        // did its post-apply norm (pendN1_). Nothing has been applied
        // yet, so the whole site collapses to ONE sweep that folds
        // the deferred diagonal into the renormalization; `(a*d)*inv`
        // rounds exactly as the two stores the scalar path performs.
        // The same sweep seeds the next site's probability and norm.
        for (std::size_t l = 0; l < lanes_; ++l)
            QEDM_REQUIRE(pendN1_[l] > 0.0,
                         "cannot normalize a zero state");
        lk.invSqrt(pendN1_.data(), lanes_, inv_.data());
        if (nextMask != 0) {
            lk.normalizeProbDiag(re_.data(), im_.data(), dim_, lanes_,
                                 inv_.data(), mask, kraus[0][3],
                                 nextMask, nextD1, norms_.data(),
                                 prob_.data(), pendN1_.data(),
                                 lobuf_.data());
            pendingMask_ = nextMask;
            pendingD1_ = nextD1;
            pendingValid_ = true;
        } else {
            // No chain hint: the lighter fused kernel folds the
            // deferred diagonal into the renormalization without the
            // probability/norm riders nobody would read.
            lk.normalizeFused(re_.data(), im_.data(), dim_, lanes_,
                              inv_.data(), mask, kraus[0][3],
                              norms_.data());
            pendingValid_ = false;
        }
        normsValid_ = true;
        return;
    }
    if (uniform) {
        // The dominant pick is the diagonal no-event operator; its
        // application is element-local, so one fused sweep produces
        // both the applied amplitudes and the fresh linear-order norms
        // the following renormalization needs (saving a whole sweep
        // on the hottest path).
        const std::array<Complex, 4> &km = kraus[pick_[0]];
        if (kernels::classify1q(km) == kernels::Mat2Shape::Diagonal &&
            !(km[0] == kOne && km[3] == kOne)) {
            if (km[0] == kOne) {
                lk.applyDiagPhaseNorm(re_.data(), im_.data(), dim_,
                                      lanes_, mask, km[3],
                                      norms_.data());
            } else {
                lk.applyDiagBothNorm(re_.data(), im_.data(), dim_,
                                     lanes_, mask, km[0], km[3],
                                     norms_.data());
            }
            normsValid_ = true;
        } else {
            apply1q(km, q);
        }
    } else {
        for (std::size_t l = 0; l < lanes_; ++l)
            mats_[l] = &kraus[pick_[l]];
        applyMatLanes(mats_.data(), q);
    }
    normalizeLanes(nextMask, nextD1);
}

void
BatchedStateVector::sampleMeasurementLanes(const double *u,
                                           std::size_t *out)
{
    const double *n = normLanes();
    for (std::size_t l = 0; l < lanes_; ++l) {
        r_[l] = u[l] * n[l];
        out[l] = dim_ - 1;
    }
    std::fill(acc_.begin(), acc_.end(), 0.0);
    std::fill(decided_.begin(), decided_.end(), 0);
    std::size_t undecided = lanes_;
    for (std::size_t i = 0; i < dim_ && undecided > 0; ++i) {
        const double *rr = re_.data() + i * lanes_;
        const double *ii = im_.data() + i * lanes_;
        for (std::size_t l = 0; l < lanes_; ++l) {
            if (decided_[l])
                continue;
            acc_[l] += rr[l] * rr[l] + ii[l] * ii[l];
            if (r_[l] < acc_[l]) {
                out[l] = i;
                decided_[l] = 1;
                --undecided;
            }
        }
    }
}

const double *
BatchedStateVector::normLanes() const
{
    if (!normsValid_) {
        laneKernels().computeNorms(re_.data(), im_.data(), dim_,
                                   lanes_, norms_.data());
        normsValid_ = true;
    }
    return norms_.data();
}

void
BatchedStateVector::normalizeLanes(std::size_t nextMask,
                                   Complex nextD1)
{
    const double *n = normLanes();
    for (std::size_t l = 0; l < lanes_; ++l)
        QEDM_REQUIRE(n[l] > 0.0, "cannot normalize a zero state");
    laneKernels().invSqrt(n, lanes_, inv_.data());
    // Fused scale + post-scale norm accumulation, refreshing the
    // cache with exactly what a fresh sweep would produce. With a
    // chain hint, the same sweep also accumulates the next site's
    // diag(1, nextD1) Born probability into prob_ (consumed by the
    // next applyKraus1qLanes only if the state stays untouched).
    if (nextMask != 0) {
        laneKernels().normalizeProbDiag(
            re_.data(), im_.data(), dim_, lanes_, inv_.data(), 0,
            Complex(0.0, 0.0), nextMask, nextD1, norms_.data(),
            prob_.data(), pendN1_.data(), lobuf_.data());
        pendingMask_ = nextMask;
        pendingD1_ = nextD1;
        pendingValid_ = true;
    } else {
        laneKernels().normalizeFused(re_.data(), im_.data(), dim_,
                                     lanes_, inv_.data(), 0,
                                     Complex(0.0, 0.0), norms_.data());
        pendingValid_ = false;
    }
    normsValid_ = true;
}

} // namespace qedm::sim
