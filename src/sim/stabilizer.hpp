/**
 * @file
 * Stabilizer (Clifford) simulator — Aaronson-Gottesman tableau.
 *
 * Most of the paper's benchmarks (BV, greycode, GHZ, Fredkin up to
 * its T gates) are Clifford or nearly so; the tableau simulator
 * evolves them in O(gates * n^2) instead of O(gates * 2^n), giving an
 * independent oracle for cross-validating the state-vector engine and
 * a scalable ideal-output reference for large registers.
 *
 * Supported gates: I, X, Y, Z, H, S, Sdg, CX, CZ, SWAP. Measurement
 * is computational-basis with the standard deterministic/random
 * outcome rules.
 */

#pragma once

#include <cstdint>
#include <vector>

#include "circuit/circuit.hpp"
#include "common/bits.hpp"
#include "common/rng.hpp"
#include "stats/counts.hpp"

namespace qedm::sim {

/** Aaronson-Gottesman CHP tableau over n qubits (n <= 64). */
class StabilizerState
{
  public:
    /** |0...0> on @p num_qubits qubits. */
    explicit StabilizerState(int num_qubits);

    int numQubits() const { return numQubits_; }

    /** Reset to |0...0>. */
    void reset();

    /** @name Clifford gate applications */
    /** @{ */
    void h(int q);
    void s(int q);
    void sdg(int q);
    void x(int q);
    void y(int q);
    void z(int q);
    void cx(int control, int target);
    void cz(int a, int b);
    void swap(int a, int b);
    /** @} */

    /**
     * Apply a named gate; throws qedm::UserError for non-Clifford
     * kinds (Rx/Ry/Rz/T/...).
     */
    void applyGate(circuit::OpKind kind, const std::vector<int> &qubits);

    /** True when @p kind is in the supported Clifford set. */
    static bool isClifford(circuit::OpKind kind);

    /**
     * Measure qubit @p q in the computational basis (collapses the
     * state). Random outcomes are drawn from @p rng.
     */
    int measure(int q, Rng &rng);

    /**
     * True if measuring @p q would give a deterministic outcome (the
     * qubit is in a Z eigenstate).
     */
    bool isDeterministic(int q) const;

  private:
    /** Row product: row i *= row k (with phase tracking). */
    void rowMult(std::size_t i, std::size_t k);

    int numQubits_;
    // 2n+1 rows (destabilizers, stabilizers, scratch); each row holds
    // x bits, z bits, and a sign.
    std::vector<std::vector<std::uint8_t>> x_;
    std::vector<std::vector<std::uint8_t>> z_;
    std::vector<std::uint8_t> r_;
};

/**
 * Execute a Clifford circuit (after decomposition) for @p shots and
 * return the outcome histogram over its classical register. Throws
 * qedm::UserError if the circuit contains non-Clifford gates.
 */
stats::Counts runStabilizer(const circuit::Circuit &circuit,
                            std::uint64_t shots, Rng &rng);

/** True when every gate of @p circuit (decomposed) is Clifford or
 *  Measure/Barrier. */
bool isCliffordCircuit(const circuit::Circuit &circuit);

} // namespace qedm::sim
