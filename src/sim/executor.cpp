#include "sim/executor.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <utility>

#include "common/error.hpp"
#include "sim/channels.hpp"
#include "sim/density_matrix.hpp"
#include "sim/statevector.hpp"

namespace qedm::sim {

using circuit::Circuit;
using circuit::Gate;
using circuit::OpKind;

namespace {

/** Apply per-bit readout confusion to a classical distribution. */
void
applyBitConfusion(stats::Distribution &dist, int bit, double p01,
                  double p10)
{
    stats::Distribution next(dist.width());
    const auto &p = dist.probabilities();
    for (std::size_t o = 0; o < p.size(); ++o) {
        if (p[o] <= 0.0)
            continue;
        const bool one = getBit(o, bit);
        const double flip = one ? p10 : p01;
        next.addProb(o, p[o] * (1.0 - flip));
        next.addProb(flipBit(o, bit), p[o] * flip);
    }
    dist = std::move(next);
}

/** Apply a joint two-bit flip channel to a classical distribution. */
void
applyJointFlip(stats::Distribution &dist, int bit_a, int bit_b, double p)
{
    if (p <= 0.0)
        return;
    stats::Distribution next(dist.width());
    const auto &probs = dist.probabilities();
    for (std::size_t o = 0; o < probs.size(); ++o) {
        if (probs[o] <= 0.0)
            continue;
        next.addProb(o, probs[o] * (1.0 - p));
        next.addProb(flipBit(flipBit(o, bit_a), bit_b), probs[o] * p);
    }
    dist = std::move(next);
}

/** Rx(theta) as an explicit matrix (coherent over-rotation). */
std::array<Complex, 4>
rxMatrix(double theta)
{
    return circuit::gateMatrix1q(OpKind::Rx, {theta});
}

std::array<Complex, 4>
rzMatrix(double theta)
{
    return circuit::gateMatrix1q(OpKind::Rz, {theta});
}

} // namespace

Executor::Executor(hw::Device device) : device_(std::move(device)) {}

Executor::Tape
Executor::buildTape(const Circuit &physical) const
{
    const auto &topo = device_.topology();
    const auto &cal = device_.calibration();
    const auto &noise = device_.noise();
    const auto &spec = noise.spec();

    QEDM_REQUIRE(physical.numQubits() == topo.numQubits(),
                 "physical circuit register must match the device");
    const Circuit flat = physical.decomposed();

    // Collect active qubits and build the local compaction map.
    std::map<int, int> physToLocal;
    for (const Gate &g : flat.gates()) {
        for (int q : g.qubits) {
            if (!physToLocal.count(q)) {
                const int local = static_cast<int>(physToLocal.size());
                physToLocal[q] = local;
            }
        }
    }
    // Renumber in physical order for determinism.
    {
        int next = 0;
        for (auto &[phys, local] : physToLocal)
            local = next++;
    }

    Tape tape;
    tape.numLocal = static_cast<int>(physToLocal.size());
    tape.numClbits = flat.numClbits();
    tape.localToPhys.resize(tape.numLocal);
    for (const auto &[phys, local] : physToLocal)
        tape.localToPhys[local] = phys;
    QEDM_REQUIRE(tape.numLocal >= 1, "circuit has no active qubits");

    std::vector<bool> measured(topo.numQubits(), false);
    std::vector<bool> clbitWritten(std::max(flat.numClbits(), 1), false);
    // ASAP schedule clock per local qubit, for idle-window damping.
    std::vector<double> ready_ns(
        static_cast<std::size_t>(tape.numLocal), 0.0);

    for (const Gate &g : flat.gates()) {
        if (g.kind == OpKind::Barrier)
            continue;
        for (int q : g.qubits) {
            QEDM_REQUIRE(!measured[q],
                         "gate after measurement is not supported");
        }
        if (g.kind == OpKind::Measure) {
            const int q = g.qubits[0];
            measured[q] = true;
            QEDM_REQUIRE(!clbitWritten[g.clbit],
                         "clbit measured more than once");
            clbitWritten[g.clbit] = true;
            tape.measures.push_back(
                MeasureOp{physToLocal.at(q), q, g.clbit});
            continue;
        }
        TapeOp op;
        op.kind = g.kind;
        op.params = g.params;
        op.p0 = g.qubits[0];
        op.l0 = physToLocal.at(op.p0);
        auto addRelaxation = [&](int local, int phys, double dur_ns) {
            if (!spec.enableDecoherence)
                return;
            for (auto &kraus : thermalRelaxation(
                     dur_ns, cal.qubit(phys).t1Us,
                     cal.qubit(phys).t2Us)) {
                op.relaxation.emplace_back(local, std::move(kraus));
            }
        };
        const double duration = circuit::opArity(g.kind) == 1
                                    ? spec.gate1qNs
                                    : spec.gate2qNs;
        double start_ns = 0.0;
        for (int q : g.qubits) {
            start_ns = std::max(
                start_ns,
                ready_ns[static_cast<std::size_t>(physToLocal.at(q))]);
        }
        // Idle-window damping for operands that waited.
        if (spec.enableDecoherence && spec.idleDecoherence) {
            for (int q : g.qubits) {
                const int local = physToLocal.at(q);
                const double gap =
                    start_ns - ready_ns[static_cast<std::size_t>(local)];
                if (gap > 0.0) {
                    for (auto &kraus : thermalRelaxation(
                             gap, cal.qubit(q).t1Us,
                             cal.qubit(q).t2Us)) {
                        op.preRelaxation.emplace_back(
                            local, std::move(kraus));
                    }
                }
            }
        }
        for (int q : g.qubits) {
            ready_ns[static_cast<std::size_t>(physToLocal.at(q))] =
                start_ns + duration;
        }
        if (circuit::opArity(g.kind) == 1) {
            op.overRotation = noise.overRotation1q(op.p0);
            op.depolProb = std::min(
                cal.qubit(op.p0).error1q * spec.stochasticScale, 1.0);
            addRelaxation(op.l0, op.p0, spec.gate1qNs);
        } else {
            op.p1 = g.qubits[1];
            op.l1 = physToLocal.at(op.p1);
            const int edge = topo.edgeIndex(op.p0, op.p1);
            QEDM_REQUIRE(edge >= 0,
                         "two-qubit gate on uncoupled physical qubits");
            op.overRotation =
                noise.overRotation(static_cast<std::size_t>(edge));
            op.controlPhase =
                noise.controlPhase(static_cast<std::size_t>(edge));
            op.depolProb = std::min(
                cal.edge(static_cast<std::size_t>(edge)).cxError *
                    spec.stochasticScale,
                1.0);
            for (const auto &xt :
                 noise.crosstalk(static_cast<std::size_t>(edge))) {
                auto it = physToLocal.find(xt.spectator);
                if (it != physToLocal.end())
                    op.crosstalk.emplace_back(it->second, xt.angleRad);
            }
            addRelaxation(op.l0, op.p0, spec.gate2qNs);
            addRelaxation(op.l1, op.p1, spec.gate2qNs);
        }
        if (op.depolProb > 0.0 || !op.relaxation.empty() ||
            !op.preRelaxation.empty()) {
            tape.stochastic = true;
        }
        tape.ops.push_back(std::move(op));
    }
    QEDM_REQUIRE(!tape.measures.empty(),
                 "circuit must measure at least one qubit");
    if (spec.enableDecoherence) {
        // Measurement fires simultaneously at circuit end; qubits that
        // finished early idle until then.
        double end_ns = 0.0;
        for (double t : ready_ns)
            end_ns = std::max(end_ns, t);
        for (auto &m : tape.measures) {
            if (spec.idleDecoherence) {
                const double gap =
                    end_ns - ready_ns[static_cast<std::size_t>(m.local)];
                if (gap > 0.0) {
                    m.relaxation = thermalRelaxation(
                        gap, cal.qubit(m.phys).t1Us,
                        cal.qubit(m.phys).t2Us);
                }
            }
            for (auto &kraus : thermalRelaxation(
                     spec.measureNs, cal.qubit(m.phys).t1Us,
                     cal.qubit(m.phys).t2Us)) {
                m.relaxation.push_back(std::move(kraus));
            }
            if (!m.relaxation.empty())
                tape.stochastic = true;
        }
    }

    // Correlated readout channels between pairs of *measured* qubits.
    std::map<int, int> physToClbit;
    for (const auto &m : tape.measures)
        physToClbit[m.phys] = m.clbit;
    for (const auto &cr : noise.correlatedReadout()) {
        auto a = physToClbit.find(cr.qubitA);
        auto b = physToClbit.find(cr.qubitB);
        if (a != physToClbit.end() && b != physToClbit.end()) {
            tape.pairReadout.push_back(PairReadout{
                a->second, b->second, cr.jointFlipProb});
        }
    }
    return tape;
}

stats::Counts
Executor::run(const Circuit &physical, std::uint64_t shots,
              Rng &rng) const
{
    QEDM_REQUIRE(shots > 0, "shots must be positive");
    const Tape tape = buildTape(physical);
    const auto &cal = device_.calibration();

    stats::Counts counts(tape.numClbits);
    StateVector sv(tape.numLocal);

    // Deterministic fast path: with no per-shot randomness before
    // readout, evolve once and only sample measurement + readout noise.
    const bool deterministic = !tape.stochastic;

    auto applyTrajectoryNoise = [&](StateVector &state) {
        for (const TapeOp &op : tape.ops) {
            for (const auto &[local, kraus] : op.preRelaxation)
                state.applyKraus1q(kraus, local, rng);
            if (op.l1 < 0) {
                state.apply1q(circuit::gateMatrix1q(op.kind, op.params),
                              op.l0);
                if (op.overRotation != 0.0)
                    state.apply1q(rxMatrix(op.overRotation), op.l0);
                if (op.depolProb > 0.0 &&
                    rng.bernoulli(op.depolProb)) {
                    // Uniform X/Y/Z error.
                    static const OpKind paulis[3] = {OpKind::X, OpKind::Y,
                                                     OpKind::Z};
                    state.apply1q(
                        circuit::gateMatrix1q(
                            paulis[rng.uniformInt(3)], {}),
                        op.l0);
                }
            } else {
                state.apply2q(circuit::gateMatrix2q(op.kind), op.l0,
                              op.l1);
                if (op.overRotation != 0.0)
                    state.apply1q(rxMatrix(op.overRotation), op.l1);
                if (op.controlPhase != 0.0)
                    state.apply1q(rzMatrix(op.controlPhase), op.l0);
                for (const auto &[spectator, angle] : op.crosstalk)
                    state.apply1q(rzMatrix(angle), spectator);
                if (op.depolProb > 0.0 &&
                    rng.bernoulli(op.depolProb)) {
                    const auto [pa, pb] = twoQubitPauli(
                        static_cast<int>(rng.uniformInt(15)));
                    state.apply1q(pa, op.l0);
                    state.apply1q(pb, op.l1);
                }
            }
            for (const auto &[local, kraus] : op.relaxation)
                state.applyKraus1q(kraus, local, rng);
        }
        // Decoherence during the measurement window.
        for (const auto &m : tape.measures) {
            for (const auto &kraus : m.relaxation)
                state.applyKraus1q(kraus, m.local, rng);
        }
    };

    StateVector precomputed(tape.numLocal);
    if (deterministic) {
        applyTrajectoryNoise(precomputed); // no randomness is consumed
    }

    for (std::uint64_t shot = 0; shot < shots; ++shot) {
        const StateVector *state = &precomputed;
        if (!deterministic) {
            sv.reset();
            applyTrajectoryNoise(sv);
            state = &sv;
        }
        const std::size_t basis = state->sampleMeasurement(rng);

        Outcome outcome = 0;
        for (const auto &m : tape.measures) {
            int bit = getBit(basis, m.local);
            const auto &qc = cal.qubit(m.phys);
            const double flip = bit ? qc.readoutP10 : qc.readoutP01;
            if (flip > 0.0 && rng.bernoulli(flip))
                bit ^= 1;
            outcome = setBit(outcome, m.clbit, bit);
        }
        for (const auto &pr : tape.pairReadout) {
            if (rng.bernoulli(pr.jointFlipProb)) {
                outcome = flipBit(outcome, pr.clbitA);
                outcome = flipBit(outcome, pr.clbitB);
            }
        }
        counts.add(outcome);
    }
    return counts;
}

stats::Distribution
Executor::exactDistribution(const Circuit &physical) const
{
    const Tape tape = buildTape(physical);
    QEDM_REQUIRE(tape.numLocal <= 10,
                 "exact simulation is limited to 10 active qubits");
    const auto &cal = device_.calibration();

    DensityMatrix rho(tape.numLocal);
    for (const TapeOp &op : tape.ops) {
        for (const auto &[local, kraus] : op.preRelaxation)
            rho.applyKraus1q(kraus, local);
        if (op.l1 < 0) {
            rho.apply1q(circuit::gateMatrix1q(op.kind, op.params),
                        op.l0);
            if (op.overRotation != 0.0)
                rho.apply1q(rxMatrix(op.overRotation), op.l0);
            if (op.depolProb > 0.0)
                rho.applyKraus1q(depolarizing1q(op.depolProb), op.l0);
        } else {
            rho.apply2q(circuit::gateMatrix2q(op.kind), op.l0, op.l1);
            if (op.overRotation != 0.0)
                rho.apply1q(rxMatrix(op.overRotation), op.l1);
            if (op.controlPhase != 0.0)
                rho.apply1q(rzMatrix(op.controlPhase), op.l0);
            for (const auto &[spectator, angle] : op.crosstalk)
                rho.apply1q(rzMatrix(angle), spectator);
            if (op.depolProb > 0.0)
                rho.applyDepolarizing2q(op.depolProb, op.l0, op.l1);
        }
        for (const auto &[local, kraus] : op.relaxation)
            rho.applyKraus1q(kraus, local);
    }
    for (const auto &m : tape.measures) {
        for (const auto &kraus : m.relaxation)
            rho.applyKraus1q(kraus, m.local);
    }

    // Project the basis-state probabilities onto the classical register.
    stats::Distribution dist(tape.numClbits);
    const std::vector<double> probs = rho.probabilities();
    for (std::size_t basis = 0; basis < probs.size(); ++basis) {
        if (probs[basis] <= 0.0)
            continue;
        Outcome outcome = 0;
        for (const auto &m : tape.measures)
            outcome = setBit(outcome, m.clbit, getBit(basis, m.local));
        dist.addProb(outcome, probs[basis]);
    }

    // Classical readout channels.
    for (const auto &m : tape.measures) {
        const auto &qc = cal.qubit(m.phys);
        if (qc.readoutP01 > 0.0 || qc.readoutP10 > 0.0)
            applyBitConfusion(dist, m.clbit, qc.readoutP01,
                              qc.readoutP10);
    }
    for (const auto &pr : tape.pairReadout)
        applyJointFlip(dist, pr.clbitA, pr.clbitB, pr.jointFlipProb);

    dist.normalize();
    return dist;
}

stats::Distribution
idealDistribution(const Circuit &logical)
{
    const Circuit flat = logical.decomposed();
    QEDM_REQUIRE(flat.numQubits() <= 24, "circuit too large");

    StateVector sv(flat.numQubits());
    std::vector<std::pair<int, int>> measures; // (qubit, clbit)
    std::vector<bool> measured(flat.numQubits(), false);
    for (const Gate &g : flat.gates()) {
        if (g.kind == OpKind::Barrier)
            continue;
        for (int q : g.qubits)
            QEDM_REQUIRE(!measured[q],
                         "gate after measurement is not supported");
        if (g.kind == OpKind::Measure) {
            measured[g.qubits[0]] = true;
            measures.emplace_back(g.qubits[0], g.clbit);
            continue;
        }
        sv.applyGate(g.kind, g.qubits, g.params);
    }
    QEDM_REQUIRE(!measures.empty(),
                 "circuit must measure at least one qubit");

    stats::Distribution dist(flat.numClbits());
    const std::vector<double> probs = sv.probabilities();
    for (std::size_t basis = 0; basis < probs.size(); ++basis) {
        if (probs[basis] <= 0.0)
            continue;
        Outcome outcome = 0;
        for (const auto &[q, c] : measures)
            outcome = setBit(outcome, c, getBit(basis, q));
        dist.addProb(outcome, probs[basis]);
    }
    dist.normalize();
    return dist;
}

} // namespace qedm::sim
