#include "sim/executor.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "sim/batched_statevector.hpp"
#include "sim/channels.hpp"
#include "sim/density_matrix.hpp"
#include "sim/kernel_shapes.hpp"
#include "sim/shot_plan.hpp"
#include "sim/statevector.hpp"

namespace qedm::sim {

using circuit::Circuit;
using circuit::Gate;
using circuit::OpKind;

namespace {

/**
 * Apply per-bit readout confusion to a classical distribution,
 * in place: outcomes pair up as (o, o^bit), and each pair exchanges
 * probability mass independently of every other pair, so no scratch
 * distribution is needed. The two accumulations keep the term order
 * of the historical copy-based implementation (lower-index source
 * first), so results are bit-identical to it.
 */
void
applyBitConfusion(stats::Distribution &dist, int bit, double p01,
                  double p10)
{
    const std::size_t n = dist.size();
    const std::size_t mask = std::size_t(1) << bit;
    for (std::size_t o = 0; o < n; ++o) {
        if (o & mask)
            continue;
        const double p0 = dist.prob(o);
        const double p1 = dist.prob(o | mask);
        dist.setProb(o, p0 * (1.0 - p01) + p1 * p10);
        dist.setProb(o | mask, p0 * p01 + p1 * (1.0 - p10));
    }
}

/** Apply a joint two-bit flip channel to a classical distribution,
 *  in place (outcomes pair up under the flip involution). */
void
applyJointFlip(stats::Distribution &dist, int bit_a, int bit_b, double p)
{
    if (p <= 0.0)
        return;
    const std::size_t n = dist.size();
    for (std::size_t o = 0; o < n; ++o) {
        const Outcome f = flipBit(flipBit(o, bit_a), bit_b);
        if (f <= o)
            continue; // visit each pair once, from its lower index
        const double po = dist.prob(o);
        const double pf = dist.prob(f);
        dist.setProb(o, po * (1.0 - p) + pf * p);
        dist.setProb(f, po * p + pf * (1.0 - p));
    }
}

} // namespace

Executor::Executor(hw::Device device) : device_(std::move(device)) {}

stats::Counts
Executor::run(const Circuit &physical, std::uint64_t shots,
              Rng &rng) const
{
    return run(ExecutionTape::build(device_, physical), shots, rng);
}

namespace {

/**
 * The trajectory loop, templated on the per-trial continuation gate so
 * the gate-free overload compiles to exactly the unhooked loop (the
 * fault hook costs nothing unless a gate is passed).
 *
 * Every unitary factor comes pre-materialized from the tape: the shot
 * loop applies stored matrices (with the StateVector's structured-
 * matrix fast paths) and never re-derives a gate matrix.
 */
template <typename Gate>
stats::Counts
runShots(const hw::Calibration &cal, const ExecutionTape &tape,
         std::uint64_t shots, Rng &rng, const Gate &gate)
{
    stats::Counts counts(tape.numClbits);
    StateVector sv(tape.numLocal);

    // Deterministic fast path: with no per-shot randomness before
    // readout, evolve once and only sample measurement + readout noise.
    const bool deterministic = !tape.stochastic;

    auto applyTrajectoryNoise = [&](StateVector &state) {
        for (const TapeOp &op : tape.ops) {
            for (const auto &[local, kraus] : op.preRelaxation)
                state.applyKraus1q(kraus, local, rng);
            if (op.l1 < 0) {
                state.apply1q(op.gate1q, op.l0);
                if (op.overRotation != 0.0)
                    state.apply1q(op.overRotationMat, op.l0);
                if (op.depolProb > 0.0 &&
                    rng.bernoulli(op.depolProb)) {
                    // Uniform X/Y/Z error.
                    state.apply1q(
                        pauliMatrix1q(
                            static_cast<int>(rng.uniformInt(3))),
                        op.l0);
                }
            } else {
                state.apply2q(op.gate2q, op.l0, op.l1);
                if (op.overRotation != 0.0)
                    state.apply1q(op.overRotationMat, op.l1);
                if (op.controlPhase != 0.0)
                    state.apply1q(op.controlPhaseMat, op.l0);
                for (const auto &[spectator, kick] : op.crosstalk)
                    state.apply1q(kick, spectator);
                if (op.depolProb > 0.0 &&
                    rng.bernoulli(op.depolProb)) {
                    const auto &[pa, pb] = twoQubitPauliRef(
                        static_cast<int>(rng.uniformInt(15)));
                    state.apply1q(pa, op.l0);
                    state.apply1q(pb, op.l1);
                }
            }
            for (const auto &[local, kraus] : op.relaxation)
                state.applyKraus1q(kraus, local, rng);
        }
        // Decoherence during the measurement window.
        for (const auto &m : tape.measures) {
            for (const auto &kraus : m.relaxation)
                state.applyKraus1q(kraus, m.local, rng);
        }
    };

    // On the deterministic path the Born distribution is fixed across
    // shots: precompute its cumulative form once and sampling becomes
    // a binary search instead of an O(2^n) scan per shot.
    std::vector<double> cumulative;
    if (deterministic) {
        applyTrajectoryNoise(sv); // no randomness is consumed
        cumulative = sv.cumulativeProbabilities();
    }

    for (std::uint64_t shot = 0; shot < shots; ++shot) {
        if (!gate(shot))
            break;
        std::size_t basis;
        if (deterministic) {
            basis = sampleFromCumulative(cumulative, rng);
        } else {
            sv.reset();
            applyTrajectoryNoise(sv);
            basis = sv.sampleMeasurement(rng);
        }

        Outcome outcome = 0;
        for (const auto &m : tape.measures) {
            int bit = getBit(basis, m.local);
            const auto &qc = cal.qubit(m.phys);
            const double flip = bit ? qc.readoutP10 : qc.readoutP01;
            if (flip > 0.0 && rng.bernoulli(flip))
                bit ^= 1;
            outcome = setBit(outcome, m.clbit, bit);
        }
        for (const auto &pr : tape.pairReadout) {
            if (rng.bernoulli(pr.jointFlipProb)) {
                outcome = flipBit(outcome, pr.clbitA);
                outcome = flipBit(outcome, pr.clbitB);
            }
        }
        counts.add(outcome);
    }
    return counts;
}

/**
 * One batch through the SoA engine: the tape is walked once, shared
 * unitary factors broadcast to every lane, and the pre-sampled plan
 * supplies each lane's stochastic realization (Pauli fixups, Kraus
 * uniforms, measurement/readout uniforms) in the scalar loop's draw
 * positions. Kraus (ks) and depolarizing (ds) site counters advance
 * exactly as the pre-sampler's did, pairing every site with its
 * recorded lane row.
 */
/** Per-Kraus-site chain hint for applyKraus1qLanes: when mask is
 *  nonzero, the site that follows this one in walk order starts with
 *  diag(1, d1) on that qubit bit and nothing else touches the state
 *  in between, so the closing renormalization can pre-accumulate the
 *  next site's Born probability in the same sweep. */
struct ChainHint
{
    std::size_t mask = 0;
    Complex d1{0.0, 0.0};
};

/**
 * Walk the tape in the exact runOneBatch order and record, for each
 * Kraus site, whether the next state mutation is another Kraus site
 * whose first operator is diag(1, d1) — the amplitude-damping shape.
 * Gates (and their fixups) break the chain; consecutive relaxation
 * sites, the seam from one op's post-relaxation into the next op's
 * pre-relaxation, and the measurement relaxation run all chain.
 * Hints are advisory: a wrong one costs a redundant sweep, never a
 * different bit (BatchedStateVector re-validates before consuming).
 */
std::vector<ChainHint>
buildChainHints(const ExecutionTape &tape)
{
    std::vector<ChainHint> hints;
    int prev = -1;
    const auto site = [&](const Kraus1q &kraus, int local) {
        if (prev >= 0 && kraus.size() > 1 &&
            kernels::classify1q(kraus[0]) ==
                kernels::Mat2Shape::Diagonal &&
            kraus[0][0] == kernels::kOne) {
            hints[static_cast<std::size_t>(prev)] = {
                std::size_t(1) << local, kraus[0][3]};
        }
        prev = static_cast<int>(hints.size());
        hints.emplace_back();
    };
    for (const TapeOp &op : tape.ops) {
        for (const auto &[local, kraus] : op.preRelaxation)
            site(kraus, local);
        prev = -1; // the gate and its fixups break the chain
        for (const auto &[local, kraus] : op.relaxation)
            site(kraus, local);
    }
    for (const auto &m : tape.measures)
        for (const auto &kraus : m.relaxation)
            site(kraus, m.local);
    return hints;
}

void
runOneBatch(BatchedStateVector &sv, const BatchPlan &plan,
            const hw::Calibration &cal, const ExecutionTape &tape,
            const std::vector<ChainHint> &hints, stats::Counts &counts,
            std::vector<std::size_t> &basis)
{
    const std::size_t lanes = plan.lanes();
    std::size_t ks = 0;
    std::size_t ds = 0;
    const auto kraus_site = [&](const Kraus1q &kraus, int local) {
        sv.applyKraus1qLanes(kraus, local, plan.krausU(ks),
                             hints[ks].mask, hints[ks].d1);
        ++ks;
    };
    for (const TapeOp &op : tape.ops) {
        for (const auto &[local, kraus] : op.preRelaxation)
            kraus_site(kraus, local);
        if (op.l1 < 0) {
            sv.apply1q(op.gate1q, op.l0);
            if (op.overRotation != 0.0)
                sv.apply1q(op.overRotationMat, op.l0);
            if (op.depolProb > 0.0)
                sv.applyPauli1qLanes(plan.pauli(ds++), op.l0);
        } else {
            sv.apply2q(op.gate2q, op.l0, op.l1);
            if (op.overRotation != 0.0)
                sv.apply1q(op.overRotationMat, op.l1);
            if (op.controlPhase != 0.0)
                sv.apply1q(op.controlPhaseMat, op.l0);
            for (const auto &[spectator, kick] : op.crosstalk)
                sv.apply1q(kick, spectator);
            if (op.depolProb > 0.0)
                sv.applyPauli2qLanes(plan.pauli(ds++), op.l0, op.l1);
        }
        for (const auto &[local, kraus] : op.relaxation)
            kraus_site(kraus, local);
    }
    for (const auto &m : tape.measures) {
        for (const auto &kraus : m.relaxation)
            kraus_site(kraus, m.local);
    }

    basis.resize(lanes);
    sv.sampleMeasurementLanes(plan.measureU(), basis.data());

    for (std::size_t l = 0; l < lanes; ++l) {
        Outcome outcome = 0;
        std::size_t rs = 0;
        for (const auto &m : tape.measures) {
            int bit = getBit(basis[l], m.local);
            const auto &qc = cal.qubit(m.phys);
            // Eligibility guarantees P01 > 0 <=> P10 > 0, so the
            // site is active independent of the measured bit.
            if (qc.readoutP01 > 0.0) {
                const double flip =
                    bit ? qc.readoutP10 : qc.readoutP01;
                if (plan.readoutU(rs)[l] < flip)
                    bit ^= 1;
                ++rs;
            }
            outcome = setBit(outcome, m.clbit, bit);
        }
        for (std::size_t p = 0; p < tape.pairReadout.size(); ++p) {
            if (plan.pairFlip(p)[l] != 0) {
                outcome = flipBit(outcome, tape.pairReadout[p].clbitA);
                outcome = flipBit(outcome, tape.pairReadout[p].clbitB);
            }
        }
        counts.add(outcome);
    }
}

stats::Counts
runShotsBatched(const hw::Calibration &cal, const ExecutionTape &tape,
                std::uint64_t shots, Rng &rng, std::size_t width)
{
    // Cap the width so both amplitude planes together stay in the
    // lower half of L1 (~16 KiB): every tape op sweeps the full
    // working set, and the pair-order replay buffer plus the plan
    // rows stream alongside it, so wider batches that push the
    // combined footprint past L1 run slower, not faster. Keep at
    // least 4 lanes (one SIMD vector) for large registers, but never
    // above ~16 MiB total.
    const std::size_t dim = std::size_t(1) << tape.numLocal;
    const std::size_t amp_bytes = dim * 2 * sizeof(double);
    const std::size_t l1_lanes = (std::size_t(16) << 10) / amp_bytes;
    const std::size_t mem_lanes = std::max<std::size_t>(
        1, (std::size_t(16) << 20) / amp_bytes);
    width = std::min(
        {width, std::max<std::size_t>(l1_lanes, 4), mem_lanes});

    stats::Counts counts(tape.numClbits);
    BatchPlan plan;
    const std::vector<ChainHint> hints = buildChainHints(tape);
    std::vector<std::size_t> basis;
    std::unique_ptr<BatchedStateVector> full;
    std::uint64_t done = 0;
    while (done < shots) {
        const auto batch = static_cast<std::size_t>(
            std::min<std::uint64_t>(width, shots - done));
        BatchedStateVector *sv = nullptr;
        std::unique_ptr<BatchedStateVector> tail;
        if (batch == width) {
            if (full)
                full->reset();
            else
                full = std::make_unique<BatchedStateVector>(
                    tape.numLocal, width);
            sv = full.get();
        } else {
            // Non-multiple remainder: a one-off engine of exactly the
            // leftover lane count (plan rows are stride-`batch`).
            tail = std::make_unique<BatchedStateVector>(tape.numLocal,
                                                        batch);
            sv = tail.get();
        }
        plan.presample(tape, cal, batch, rng);
        runOneBatch(*sv, plan, cal, tape, hints, counts, basis);
        done += batch;
    }
    return counts;
}

} // namespace

stats::Counts
Executor::run(const ExecutionTape &tape, std::uint64_t shots,
              Rng &rng) const
{
    QEDM_REQUIRE(shots > 0, "shots must be positive");
    if (simBatch_ > 0 && batchEligible(tape, device_.calibration())) {
        return runShotsBatched(device_.calibration(), tape, shots,
                               rng, simBatch_);
    }
    return runShots(device_.calibration(), tape, shots, rng,
                    [](std::uint64_t) { return true; });
}

stats::Counts
Executor::run(const ExecutionTape &tape, std::uint64_t shots, Rng &rng,
              const TrialGate &gate) const
{
    QEDM_REQUIRE(shots > 0, "shots must be positive");
    QEDM_REQUIRE(gate != nullptr, "trial gate must be callable");
    return runShots(device_.calibration(), tape, shots, rng, gate);
}

stats::Distribution
Executor::exactDistribution(const Circuit &physical) const
{
    return exactDistribution(ExecutionTape::build(device_, physical));
}

stats::Distribution
Executor::exactDistribution(const ExecutionTape &tape) const
{
    QEDM_REQUIRE(tape.numLocal <= 10,
                 "exact density-matrix simulation supports at most 10 "
                 "active qubits, circuit has " +
                     std::to_string(tape.numLocal) +
                     "; use trajectory sampling (Executor::run) for "
                     "larger circuits");
    const auto &cal = device_.calibration();

    DensityMatrix rho(tape.numLocal);
    for (const TapeOp &op : tape.ops) {
        for (const auto &[local, kraus] : op.preRelaxation)
            rho.applyKraus1q(kraus, local);
        if (op.l1 < 0) {
            rho.apply1q(op.gate1q, op.l0);
            if (op.overRotation != 0.0)
                rho.apply1q(op.overRotationMat, op.l0);
            if (op.depolProb > 0.0)
                rho.applyKraus1q(depolarizing1q(op.depolProb), op.l0);
        } else {
            rho.apply2q(op.gate2q, op.l0, op.l1);
            if (op.overRotation != 0.0)
                rho.apply1q(op.overRotationMat, op.l1);
            if (op.controlPhase != 0.0)
                rho.apply1q(op.controlPhaseMat, op.l0);
            for (const auto &[spectator, kick] : op.crosstalk)
                rho.apply1q(kick, spectator);
            if (op.depolProb > 0.0)
                rho.applyDepolarizing2q(op.depolProb, op.l0, op.l1);
        }
        for (const auto &[local, kraus] : op.relaxation)
            rho.applyKraus1q(kraus, local);
    }
    for (const auto &m : tape.measures) {
        for (const auto &kraus : m.relaxation)
            rho.applyKraus1q(kraus, m.local);
    }

    // Project the basis-state probabilities onto the classical register.
    stats::Distribution dist(tape.numClbits);
    const std::vector<double> probs = rho.probabilities();
    for (std::size_t basis = 0; basis < probs.size(); ++basis) {
        if (probs[basis] <= 0.0)
            continue;
        Outcome outcome = 0;
        for (const auto &m : tape.measures)
            outcome = setBit(outcome, m.clbit, getBit(basis, m.local));
        dist.addProb(outcome, probs[basis]);
    }

    // Classical readout channels (applied in place; see the helpers).
    for (const auto &m : tape.measures) {
        const auto &qc = cal.qubit(m.phys);
        if (qc.readoutP01 > 0.0 || qc.readoutP10 > 0.0)
            applyBitConfusion(dist, m.clbit, qc.readoutP01,
                              qc.readoutP10);
    }
    for (const auto &pr : tape.pairReadout)
        applyJointFlip(dist, pr.clbitA, pr.clbitB, pr.jointFlipProb);

    dist.normalize();
    return dist;
}

stats::Distribution
idealDistribution(const Circuit &logical)
{
    const Circuit flat = logical.decomposed();
    QEDM_REQUIRE(flat.numQubits() <= 24, "circuit too large");

    StateVector sv(flat.numQubits());
    std::vector<std::pair<int, int>> measures; // (qubit, clbit)
    std::vector<bool> measured(flat.numQubits(), false);
    for (const Gate &g : flat.gates()) {
        if (g.kind == OpKind::Barrier)
            continue;
        for (int q : g.qubits)
            QEDM_REQUIRE(!measured[q],
                         "gate after measurement is not supported");
        if (g.kind == OpKind::Measure) {
            measured[g.qubits[0]] = true;
            measures.emplace_back(g.qubits[0], g.clbit);
            continue;
        }
        sv.applyGate(g.kind, g.qubits, g.params);
    }
    QEDM_REQUIRE(!measures.empty(),
                 "circuit must measure at least one qubit");

    stats::Distribution dist(flat.numClbits());
    const std::vector<double> probs = sv.probabilities();
    for (std::size_t basis = 0; basis < probs.size(); ++basis) {
        if (probs[basis] <= 0.0)
            continue;
        Outcome outcome = 0;
        for (const auto &[q, c] : measures)
            outcome = setBit(outcome, c, getBit(basis, q));
        dist.addProb(outcome, probs[basis]);
    }
    dist.normalize();
    return dist;
}

} // namespace qedm::sim
