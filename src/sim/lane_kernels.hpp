/**
 * @file
 * Vectorized lane-sweep kernels for the batched SoA trajectory engine.
 *
 * BatchedStateVector stores B shots' amplitudes structure-of-arrays
 * (`[amp_index][lane]`, separate real/imaginary planes), so every
 * kernel here is a sweep whose innermost loop runs over the lane
 * dimension — contiguous, independent per-lane IEEE chains that
 * vectorize without reassociation.
 *
 * Two implementations of the same source (lane_kernels_impl.hpp) are
 * compiled into the binary: a baseline-ISA build and (unless
 * QEDM_NO_SIMD) an AVX2 build whose hot loops use explicit 4-lane
 * intrinsics. Selection happens once at runtime from CPU capability;
 * both paths are bit-identical because every lane's floating-point
 * chain is elementwise (vmulpd/vaddpd/vsubpd are IEEE-identical to
 * their scalar forms and neither build enables FMA contraction), so
 * the choice can never leak into results — see DESIGN.md §17.
 *
 * These translation units must never draw randomness: all stochastic
 * decisions are pre-sampled into the per-shot plan (sim/shot_plan.hpp)
 * before the batch walk starts. qedm_analyze's `rng-in-kernel` rule
 * enforces this.
 */

#pragma once

#include <array>
#include <cstddef>

#include "circuit/op.hpp"

namespace qedm::sim {

using circuit::Complex;

/**
 * Per-lane 2x2 coefficients, SoA: entry k of the matrix for lane l is
 * Complex(re[k][l], im[k][l]). Used for lane-masked fixups (per-shot
 * Pauli errors, divergent Kraus picks) where each lane applies its own
 * matrix — identity coefficients for untouched lanes.
 */
struct LaneMat2
{
    const double *re[4];
    const double *im[4];
};

/**
 * The sweep-kernel dispatch table. All `re`/`im` planes are
 * `[amp][lane]` with row stride @p lanes; @p dim is the number of
 * amplitude rows and @p mask the target-qubit bit (butterfly stride).
 * Accumulating kernels produce per-lane sums whose addend order equals
 * the scalar StateVector's sweep order, so each lane's result is the
 * identical double.
 */
struct LaneKernels
{
    /** lo' = m0*lo + m1*hi, hi' = m2*lo + m3*hi (dense 2x2). */
    void (*apply1qGeneral)(double *re, double *im, std::size_t dim,
                           std::size_t lanes, std::size_t mask,
                           const std::array<Complex, 4> &m);
    /** lo' = m1*hi, hi' = m2*lo (X/Y, damping K1). */
    void (*apply1qAntiDiag)(double *re, double *im, std::size_t dim,
                            std::size_t lanes, std::size_t mask,
                            Complex m1, Complex m2);
    /** lo *= d0, hi *= d1. */
    void (*applyDiagBoth)(double *re, double *im, std::size_t dim,
                          std::size_t lanes, std::size_t mask,
                          Complex d0, Complex d1);
    /** hi *= d1 only (pure phase, d0 == 1). */
    void (*applyDiagPhase)(double *re, double *im, std::size_t dim,
                           std::size_t lanes, std::size_t mask,
                           Complex d1);
    /** Dense 2x2 with per-lane coefficients (lane-masked fixups). */
    void (*apply1qPerLane)(double *re, double *im, std::size_t dim,
                           std::size_t lanes, std::size_t mask,
                           const LaneMat2 &m);
    /** out[l] = || diag(m0,m3) psi_l ||^2, scalar-order addends. */
    void (*krausProbDiag)(const double *re, const double *im,
                          std::size_t dim, std::size_t lanes,
                          std::size_t mask, Complex m0, Complex m3,
                          double *out);
    /** out[l] for the anti-diagonal operator (m1 upper, m2 lower). */
    void (*krausProbAntiDiag)(const double *re, const double *im,
                              std::size_t dim, std::size_t lanes,
                              std::size_t mask, Complex m1, Complex m2,
                              double *out);
    /** out[l] for a dense 2x2 operator. */
    void (*krausProbGeneral)(const double *re, const double *im,
                             std::size_t dim, std::size_t lanes,
                             std::size_t mask,
                             const std::array<Complex, 4> &m,
                             double *out);
    /** out[l] = sum_amp re^2 + im^2 in ascending amp order. */
    void (*computeNorms)(const double *re, const double *im,
                         std::size_t dim, std::size_t lanes,
                         double *out);
    /** Scale lane l by inv[l], accumulating the post-scale norm into
     *  post[l] in the same fused sweep the scalar normalize() uses.
     *  A nonzero @p applyMask first multiplies the rows it selects by
     *  @p applyD1 — the deferred diag(1, applyD1) pick of the current
     *  site when no chain hint follows; `(a * applyD1) * inv` rounds
     *  exactly like the two separate stores of apply-then-normalize,
     *  so deferral is bit-invisible. */
    void (*normalizeFused)(double *re, double *im, std::size_t dim,
                           std::size_t lanes, const double *inv,
                           std::size_t applyMask, Complex applyD1,
                           double *post);
    /**
     * hi *= d1 fused with a fresh linear-order norm sweep into out
     * (diagonal scaling is element-local, so one pass produces both
     * the applyDiagPhase amplitudes and the computeNorms sums). The
     * hot Kraus-site sequence apply-then-norm collapses to one sweep.
     */
    void (*applyDiagPhaseNorm)(double *re, double *im, std::size_t dim,
                               std::size_t lanes, std::size_t mask,
                               Complex d1, double *out);
    /** lo *= d0, hi *= d1 fused with the fresh norm sweep. */
    void (*applyDiagBothNorm)(double *re, double *im, std::size_t dim,
                              std::size_t lanes, std::size_t mask,
                              Complex d0, Complex d1, double *out);
    /** inv[l] = 1.0 / sqrt(n[l]). Both sqrt and divide are correctly
     *  rounded per IEEE 754, so the vector form is bit-identical to
     *  the scalar expression. */
    void (*invSqrt)(const double *n, std::size_t lanes, double *inv);
    /**
     * Fresh linear-order norms fused with the Born probability of a
     * diag(1, d1) Kraus operator on qubit bit @p mask, in one sweep.
     * The probability chain replays the scalar pair order — lo then
     * hi per (base, off) — by buffering each lo addend in @p lobuf
     * ([mask][lanes]) until its hi partner arrives; the lo addend is
     * the very |amp|^2 double the norm chain adds, so no extra work.
     * @p n1 additionally receives the linear-order norm the state
     * would have AFTER applying diag(1, d1) — the same addends the
     * probability chain uses, accumulated in computeNorms order — so
     * a subsequent pick of that operator can renormalize without a
     * fresh norm sweep (the deferred-apply fast path).
     */
    void (*normsProbDiag)(const double *re, const double *im,
                          std::size_t dim, std::size_t lanes,
                          std::size_t mask, Complex d1, double *norms,
                          double *prob, double *n1, double *lobuf);
    /**
     * The single-sweep steady state of a chained Kraus walk: multiply
     * rows selected by @p applyMask by @p applyD1 (the deferred
     * diag(1, applyD1) pick of the CURRENT site; applyMask 0 = no
     * deferred apply), scale everything by inv, accumulate the linear
     * post-scale norm into post, and accumulate the NEXT site's
     * diag(1, d1) Born probability (pair order via the lobuf replay)
     * plus its speculative post-apply norm @p n1 (linear order).
     * `(a * applyD1) * inv` rounds exactly like the two separate
     * stores the scalar path performs, so deferral is bit-invisible.
     */
    void (*normalizeProbDiag)(double *re, double *im, std::size_t dim,
                              std::size_t lanes, const double *inv,
                              std::size_t applyMask, Complex applyD1,
                              std::size_t mask, Complex d1,
                              double *post, double *prob, double *n1,
                              double *lobuf);
};

/** The active kernel table (AVX2 when available, else baseline). */
const LaneKernels &laneKernels();

/** True when laneKernels() currently dispatches to the AVX2 build. */
bool laneKernelsSimd();

/**
 * Test hook: force the baseline build regardless of CPU capability
 * (used by the scalar-vs-SIMD equivalence tests). Not meant to be
 * toggled while batched runs are in flight.
 */
void forceScalarLaneKernels(bool force);

} // namespace qedm::sim
