/**
 * @file
 * Exact mixed-state simulation engine.
 *
 * The density matrix evolves through the same gate/noise sequence as
 * the trajectory simulator but applies every channel exactly, yielding
 * the exact output distribution. Used as the reference implementation
 * in tests and for sampling-free benchmarking of small circuits.
 */

#pragma once

#include <array>
#include <complex>
#include <vector>

#include "circuit/op.hpp"
#include "sim/channels.hpp"

namespace qedm::sim {

/** Density matrix over n qubits (n <= 10); qubit 0 is the LSB. */
class DensityMatrix
{
  public:
    /** |0..0><0..0| on @p num_qubits qubits. */
    explicit DensityMatrix(int num_qubits);

    int numQubits() const { return numQubits_; }
    std::size_t dim() const { return dim_; }

    Complex at(std::size_t row, std::size_t col) const;

    /** rho -> U rho U^dagger for a 1-qubit unitary on @p q. */
    void apply1q(const std::array<Complex, 4> &m, int q);

    /** rho -> U rho U^dagger for a 2-qubit unitary on (q0, q1);
     *  operand 0 is the most-significant factor. */
    void apply2q(const std::array<Complex, 16> &m, int q0, int q1);

    /** Apply a named unitary gate. */
    void applyGate(circuit::OpKind kind, const std::vector<int> &qubits,
                   const std::vector<double> &params);

    /** rho -> sum_k K_k rho K_k^dagger for a 1-qubit Kraus set. */
    void applyKraus1q(const Kraus1q &kraus, int q);

    /** Two-qubit depolarizing channel with probability @p p. */
    void applyDepolarizing2q(double p, int q0, int q1);

    /** Diagonal (basis-state probabilities). */
    std::vector<double> probabilities() const;

    /** Trace (should stay 1 within rounding). */
    double trace() const;

    /** Purity Tr(rho^2); 1 for pure states. */
    double purity() const;

  private:
    int numQubits_;
    std::size_t dim_;
    std::vector<Complex> rho_;
};

} // namespace qedm::sim
