/**
 * @file
 * Classical readout-error mitigation.
 *
 * The paper's companion work (Tannu & Qureshi [41]) shows measurement
 * errors are state-dependent and a major IST killer. This module
 * provides the two standard counters, both composable with EDM:
 *
 *  - ReadoutMitigator: tensor-product confusion-matrix inversion
 *    built from the device calibration (each measured bit's 2x2
 *    confusion matrix is inverted analytically and applied to the
 *    measured distribution);
 *  - invert-and-measure support: the transpile-side transform lives
 *    in transpile/invert_measure.hpp; here, flipOutcomeBits() undoes
 *    the logical inversion on a measured distribution.
 */

#pragma once

#include <array>
#include <vector>

#include "hw/device.hpp"
#include "stats/distribution.hpp"

namespace qedm::sim {

/** Inverts per-qubit readout confusion on measured distributions. */
class ReadoutMitigator
{
  public:
    /**
     * @param device device whose calibration supplies the confusion
     *        matrices
     * @param clbit_to_phys physical qubit measured into each clbit
     *        (index = clbit); entries must be valid device qubits
     */
    ReadoutMitigator(const hw::Device &device,
                     const std::vector<int> &clbit_to_phys);

    /**
     * Apply the inverse confusion to @p measured. Inversion can
     * produce small negative quasi-probabilities; they are clipped to
     * zero and the result renormalized.
     */
    stats::Distribution
    mitigate(const stats::Distribution &measured) const;

  private:
    /** Row-major inverse 2x2 confusion per clbit. */
    std::vector<std::array<double, 4>> inverse_;
};

/** Flip the given outcome bits of a distribution (XOR with mask). */
stats::Distribution flipOutcomeBits(const stats::Distribution &dist,
                                    Outcome mask);

} // namespace qedm::sim
