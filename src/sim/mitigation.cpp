#include "sim/mitigation.hpp"

#include <cmath>

#include "common/error.hpp"

namespace qedm::sim {

ReadoutMitigator::ReadoutMitigator(
    const hw::Device &device, const std::vector<int> &clbit_to_phys)
{
    QEDM_REQUIRE(!clbit_to_phys.empty(),
                 "mitigator needs at least one measured bit");
    inverse_.reserve(clbit_to_phys.size());
    for (int phys : clbit_to_phys) {
        const auto &qc = device.calibration().qubit(phys);
        // Confusion matrix M (column = true state):
        //   [ P(read 0|0)  P(read 0|1) ]   [ 1-p01  p10   ]
        //   [ P(read 1|0)  P(read 1|1) ] = [ p01    1-p10 ]
        const double a = 1.0 - qc.readoutP01;
        const double b = qc.readoutP10;
        const double c = qc.readoutP01;
        const double d = 1.0 - qc.readoutP10;
        const double det = a * d - b * c;
        QEDM_REQUIRE(std::abs(det) > 1e-9,
                     "readout confusion matrix is singular "
                     "(error rate ~50%)");
        inverse_.push_back({d / det, -b / det, -c / det, a / det});
    }
}

stats::Distribution
ReadoutMitigator::mitigate(const stats::Distribution &measured) const
{
    QEDM_REQUIRE(static_cast<std::size_t>(measured.width()) ==
                     inverse_.size(),
                 "distribution width must match the mitigator");
    std::vector<double> p = measured.probabilities();
    // Apply the inverse confusion bit by bit (tensor structure).
    for (std::size_t bit = 0; bit < inverse_.size(); ++bit) {
        const auto &m = inverse_[bit];
        const Outcome mask = Outcome(1) << bit;
        for (std::size_t o = 0; o < p.size(); ++o) {
            if (o & mask)
                continue;
            const double p0 = p[o];
            const double p1 = p[o | mask];
            p[o] = m[0] * p0 + m[1] * p1;
            p[o | mask] = m[2] * p0 + m[3] * p1;
        }
    }
    // Clip quasi-probabilities and renormalize.
    stats::Distribution out(measured.width());
    for (std::size_t o = 0; o < p.size(); ++o) {
        if (p[o] > 0.0)
            out.setProb(o, p[o]);
    }
    out.normalize();
    return out;
}

stats::Distribution
flipOutcomeBits(const stats::Distribution &dist, Outcome mask)
{
    QEDM_REQUIRE(mask < (Outcome(1) << dist.width()),
                 "flip mask exceeds the register width");
    stats::Distribution out(dist.width());
    const auto &p = dist.probabilities();
    for (std::size_t o = 0; o < p.size(); ++o) {
        if (p[o] > 0.0)
            out.setProb(o ^ mask, p[o]);
    }
    return out;
}

} // namespace qedm::sim
