/**
 * @file
 * Noisy execution of physical circuits on a Device model.
 *
 * The Executor is the stand-in for submitting a compiled program to
 * the real machine: it takes a *physical* circuit (qubit indices are
 * device qubits; every 2-qubit gate sits on a coupling edge), applies
 * the device's systematic and stochastic noise, and returns shot
 * counts exactly as the IBMQ job API would.
 *
 * Two engines share one preprocessing pass ("tape"):
 *  - trajectory: per-shot state-vector evolution with sampled noise;
 *  - exact: density-matrix evolution applying every channel fully.
 *
 * Only the qubits the circuit touches are simulated; the tape compacts
 * physical indices into a dense local register while retaining the
 * physical identities for calibration/noise lookups.
 */

#pragma once

#include <cstdint>
#include <vector>

#include "circuit/circuit.hpp"
#include "common/rng.hpp"
#include "hw/device.hpp"
#include "sim/channels.hpp"
#include "stats/counts.hpp"
#include "stats/distribution.hpp"

namespace qedm::sim {

/** Runs physical circuits against one device model. */
class Executor
{
  public:
    /** @param device device model (copied; the Executor owns its own). */
    explicit Executor(hw::Device device);

    const hw::Device &device() const { return device_; }

    /**
     * Execute @p physical for @p shots trials with per-shot noise
     * trajectories and return the outcome histogram.
     */
    stats::Counts run(const circuit::Circuit &physical,
                      std::uint64_t shots, Rng &rng) const;

    /**
     * Exact output distribution over the classical register via
     * density-matrix simulation (active qubit count <= 10).
     */
    stats::Distribution
    exactDistribution(const circuit::Circuit &physical) const;

  private:
    struct TapeOp
    {
        circuit::OpKind kind;
        std::vector<double> params;
        int l0 = -1, l1 = -1; ///< local operands
        int p0 = -1, p1 = -1; ///< physical operands
        double overRotation = 0.0; ///< coherent extra on target (rad)
        double controlPhase = 0.0; ///< coherent Rz on control (rad)
        /** (local spectator, RZ angle) crosstalk kicks. */
        std::vector<std::pair<int, double>> crosstalk;
        double depolProb = 0.0; ///< stochastic depolarizing strength
        /** Thermal relaxation applied *before* the gate, covering each
         *  operand's idle window since its previous gate. */
        std::vector<std::pair<int, Kraus1q>> preRelaxation;
        /** Thermal-relaxation Kraus sets per operand (local qubit,
         *  channel), precomputed from gate duration and T1/T2. */
        std::vector<std::pair<int, Kraus1q>> relaxation;
    };

    struct MeasureOp
    {
        int local;
        int phys;
        int clbit;
        /** Relaxation during the measurement window. */
        std::vector<Kraus1q> relaxation;
    };

    struct PairReadout
    {
        int clbitA;
        int clbitB;
        double jointFlipProb;
    };

    struct Tape
    {
        int numLocal = 0;
        int numClbits = 0;
        std::vector<int> localToPhys;
        std::vector<TapeOp> ops;
        std::vector<MeasureOp> measures;
        std::vector<PairReadout> pairReadout;
        bool stochastic = false; ///< any per-shot randomness pre-readout
    };

    Tape buildTape(const circuit::Circuit &physical) const;

    hw::Device device_;
};

/**
 * Exact output distribution of @p circuit on an ideal machine,
 * ignoring any device (no mapping required). Barriers are skipped;
 * Ccx/Cswap/Swap are decomposed. Qubits without a Measure are
 * marginalized out.
 */
stats::Distribution idealDistribution(const circuit::Circuit &circuit);

} // namespace qedm::sim
